"""Interpreter semantics tests."""

import pytest

from repro.errors import (
    ArityError,
    ExecutionLimitError,
    InterpreterError,
    UndefinedFunctionError,
    UndefinedVariableError,
)
from repro.interp import ExecConfig, Interpreter, TableRuntime
from repro.interp.values import Array, truthy
from repro.ir import ProgramBuilder, add, call, intrinsic, load, lt, mul, sub, var


def run(populate, args=(), config=None, runtime=None, params=("n",)):
    pb = ProgramBuilder()
    with pb.function("main", list(params)) as f:
        populate(f)
    prog = pb.build(entry="main")
    interp = Interpreter(
        prog, runtime=runtime, config=config or ExecConfig()
    )
    return interp.run(args)


class TestBasics:
    def test_return_value(self):
        res = run(lambda f: f.ret(add(var("n"), 1)), {"n": 41})
        assert res.value == 42

    def test_no_return_is_none(self):
        res = run(lambda f: f.assign("x", 1), {"n": 0})
        assert res.value is None

    def test_undefined_variable(self):
        with pytest.raises(UndefinedVariableError):
            run(lambda f: f.ret(var("nope")), {"n": 0})

    def test_undefined_function(self):
        with pytest.raises(UndefinedFunctionError):
            run(lambda f: f.call("ghost"), {"n": 0})

    def test_arithmetic_ops(self):
        def body(f):
            f.assign("a", mul(var("n"), 3))
            f.assign("b", sub(var("a"), 2))
            f.ret(var("b"))

        assert run(body, {"n": 5}).value == 13

    def test_division_and_mod(self):
        from repro.ir import div, floordiv, mod

        def body(f):
            f.ret(
                add(
                    add(div(var("n"), 4), floordiv(var("n"), 4)),
                    mod(var("n"), 4),
                )
            )

        assert run(body, {"n": 10}).value == 10 / 4 + 10 // 4 + 10 % 4

    def test_short_circuit_and(self):
        from repro.ir import and_, eq

        def body(f):
            # rhs would divide by zero if evaluated
            from repro.ir import div

            f.ret(and_(eq(var("n"), 999), div(1, var("n"))))

        assert run(body, {"n": 0}).value is False or run(body, {"n": 0}).value == 0

    def test_min_max(self):
        from repro.ir import max_, min_

        def body(f):
            f.ret(add(min_(var("n"), 3), max_(var("n"), 3)))

        assert run(body, {"n": 7}).value == 3 + 7


class TestControlFlow:
    def test_if_else(self):
        def body(f):
            with f.if_(lt(var("n"), 5)):
                f.ret(1)
            with f.else_():
                f.ret(2)

        assert run(body, {"n": 3}).value == 1
        assert run(body, {"n": 8}).value == 2

    def test_for_loop_accumulates(self):
        def body(f):
            f.assign("acc", 0)
            with f.for_("i", 0, f.var("n")):
                f.assign("acc", add(var("acc"), var("i")))
            f.ret(var("acc"))

        assert run(body, {"n": 5}).value == 10

    def test_for_loop_step(self):
        def body(f):
            f.assign("acc", 0)
            with f.for_("i", 0, f.var("n"), 2):
                f.assign("acc", add(var("acc"), 1))
            f.ret(var("acc"))

        assert run(body, {"n": 7}).value == 4

    def test_nonpositive_step_rejected(self):
        def body(f):
            with f.for_("i", 0, f.var("n"), 0):
                f.work(1)

        with pytest.raises(InterpreterError):
            run(body, {"n": 3})

    def test_break(self):
        def body(f):
            f.assign("acc", 0)
            with f.for_("i", 0, f.var("n")):
                with f.if_(lt(var("i"), 3)):
                    f.assign("acc", add(var("acc"), 1))
                with f.else_():
                    f.brk()
            f.ret(var("acc"))

        assert run(body, {"n": 100}).value == 3

    def test_continue(self):
        from repro.ir import mod, eq

        def body(f):
            f.assign("acc", 0)
            with f.for_("i", 0, f.var("n")):
                with f.if_(eq(mod(var("i"), 2), 0)):
                    f.cont()
                f.assign("acc", add(var("acc"), 1))
            f.ret(var("acc"))

        assert run(body, {"n": 10}).value == 5

    def test_while(self):
        def body(f):
            f.assign("i", 0)
            with f.while_(lt(var("i"), var("n"))):
                f.assign("i", add(var("i"), 1))
            f.ret(var("i"))

        assert run(body, {"n": 6}).value == 6

    def test_return_from_loop(self):
        def body(f):
            with f.for_("i", 0, f.var("n")):
                f.ret(var("i"))
            f.ret(-1)

        assert run(body, {"n": 5}).value == 0
        assert run(body, {"n": 0}).value == -1

    def test_step_limit(self):
        def body(f):
            f.assign("i", 0)
            with f.while_(lt(var("i"), var("n"))):
                f.assign("i", add(var("i"), 1))

        cfg = ExecConfig(step_limit=100)
        with pytest.raises(ExecutionLimitError):
            run(body, {"n": 10**9}, config=cfg)


class TestArrays:
    def test_alloc_store_load(self):
        def body(f):
            f.alloc("a", 4)
            f.store("a", 2, var("n"))
            f.ret(load("a", 2))

        assert run(body, {"n": 9}).value == 9.0

    def test_out_of_bounds(self):
        def body(f):
            f.alloc("a", 2)
            f.store("a", 5, 1)

        with pytest.raises(IndexError):
            run(body, {"n": 0})

    def test_store_to_scalar_rejected(self):
        def body(f):
            f.assign("a", 3)
            f.store("a", 0, 1)

        with pytest.raises(InterpreterError):
            run(body, {"n": 0})

    def test_array_passed_by_reference(self):
        pb = ProgramBuilder()
        with pb.function("fill", ["arr"]) as f:
            f.store("arr", 0, 7)
        with pb.function("main", []) as f:
            f.alloc("a", 1)
            f.call("fill", var("a"))
            f.ret(load("a", 0))
        prog = pb.build(entry="main")
        assert Interpreter(prog).run({}).value == 7.0


class TestCalls:
    def test_call_chain(self):
        pb = ProgramBuilder()
        with pb.function("sq", ["x"]) as f:
            f.ret(mul(var("x"), var("x")))
        with pb.function("main", ["n"]) as f:
            f.ret(call("sq", call("sq", var("n"))))
        prog = pb.build(entry="main")
        assert Interpreter(prog).run({"n": 2}).value == 16

    def test_arity_error(self):
        pb = ProgramBuilder()
        with pb.function("f", ["a", "b"]) as f:
            f.ret(var("a"))
        prog = pb.build(entry="f")
        with pytest.raises(ArityError):
            Interpreter(prog).run([1])

    def test_missing_entry_args(self):
        pb = ProgramBuilder()
        with pb.function("f", ["a"]) as f:
            f.ret(var("a"))
        prog = pb.build(entry="f")
        with pytest.raises(InterpreterError):
            Interpreter(prog).run({})

    def test_recursion_depth_limit(self):
        pb = ProgramBuilder()
        with pb.function("f", ["n"]) as f:
            f.ret(call("f", add(var("n"), 1)))
        prog = pb.build(entry="f")
        with pytest.raises(InterpreterError):
            Interpreter(prog, config=ExecConfig(max_call_depth=10)).run({"n": 0})

    def test_library_runtime(self):
        rt = TableRuntime()
        rt.register("external_triple", lambda x: x * 3)

        def body(f):
            f.ret(call("external_triple", var("n")))

        assert run(body, {"n": 4}, runtime=rt).value == 12


class TestIntrinsics:
    def test_work_charges_compute(self):
        res = run(lambda f: f.work(100), {"n": 0})
        from repro.interp.events import CostKind

        assert res.metrics.totals[CostKind.COMPUTE] >= 100

    def test_mem_work_charges_memory(self):
        res = run(lambda f: f.mem_work(50), {"n": 0})
        from repro.interp.events import CostKind

        assert res.metrics.totals[CostKind.MEMORY] == 50

    def test_negative_work_rejected(self):
        with pytest.raises(InterpreterError):
            run(lambda f: f.work(-1), {"n": 0})

    def test_math_intrinsics(self):
        from repro.ir import log2, sqrt

        def body(f):
            f.ret(add(log2(8), sqrt(9)))

        assert run(body, {"n": 0}).value == 6.0

    def test_log2_nonpositive_is_zero(self):
        from repro.ir import log2

        assert run(lambda f: f.ret(log2(0)), {"n": 0}).value == 0.0


class TestValues:
    def test_truthy_numbers(self):
        assert truthy(1) and truthy(2.5) and not truthy(0)

    def test_truthy_array_rejected(self):
        with pytest.raises(TypeError):
            truthy(Array(3))

    def test_truthy_none_rejected(self):
        with pytest.raises(TypeError):
            truthy(None)

    def test_array_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Array(-1)
