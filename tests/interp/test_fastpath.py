"""Fast-path equivalence: closed-form loop execution must match genuine
iteration exactly — time, loop counts, and call counts."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interp import ExecConfig, Interpreter
from repro.interp.events import CostKind
from repro.interp.fastpath import FastPathPlanner, leaf_unit_cost
from repro.ir import ProgramBuilder, add, call, mul, var


def both_runs(prog, args):
    slow = Interpreter(prog, config=ExecConfig(fast_loops=False)).run(args)
    fast = Interpreter(prog, config=ExecConfig(fast_loops=True)).run(args)
    return slow, fast


def assert_equivalent(prog, args):
    slow, fast = both_runs(prog, args)
    assert slow.time == pytest.approx(fast.time)
    assert dict(slow.metrics.loop_iterations) == dict(
        fast.metrics.loop_iterations
    )
    for name in prog.functions:
        assert slow.metrics.calls_of(name) == fast.metrics.calls_of(name)
    assert slow.value == fast.value


def cost_nest_program(depth=2, with_calls=True):
    pb = ProgramBuilder()
    with pb.function("getter", ["i"], kind="accessor") as f:
        f.assign("v", mul(var("i"), 2.0))
        f.work(2)
        f.ret(var("v"))
    with pb.function("main", ["n", "m"]) as f:
        outer = f.for_("i", 0, f.var("n"))
        with outer:
            f.work(5)
            if with_calls:
                f.call("getter", f.var("i"))
            with f.for_("j", 0, f.var("m")):
                f.mem_work(3)
    return pb.build(entry="main")


class TestEquivalence:
    @given(
        n=st.integers(min_value=0, max_value=40),
        m=st.integers(min_value=0, max_value=40),
    )
    @settings(max_examples=30, deadline=None)
    def test_nest_equivalence(self, n, m):
        assert_equivalent(cost_nest_program(), {"n": n, "m": m})

    def test_empty_loop(self):
        assert_equivalent(cost_nest_program(), {"n": 0, "m": 5})

    def test_fractional_bounds(self):
        pb = ProgramBuilder()
        with pb.function("main", ["n"]) as f:
            with f.for_("i", 0, f.var("n"), 2):
                f.work(1)
        prog = pb.build(entry="main")
        assert_equivalent(prog, {"n": 7})

    def test_loop_var_final_value(self):
        pb = ProgramBuilder()
        with pb.function("main", ["n"]) as f:
            with f.for_("i", 0, f.var("n"), 3):
                f.work(1)
            f.ret(var("i"))
        prog = pb.build(entry="main")
        slow, fast = both_runs(prog, {"n": 10})
        assert slow.value == fast.value

    def test_invariant_cost_amount(self):
        pb = ProgramBuilder()
        with pb.function("main", ["n", "c"]) as f:
            with f.for_("i", 0, f.var("n")):
                f.work(mul(var("c"), 3))
        prog = pb.build(entry="main")
        assert_equivalent(prog, {"n": 9, "c": 4})


class TestFastPathSpeed:
    def test_huge_nest_is_instant(self):
        prog = cost_nest_program()
        res = Interpreter(prog).run({"n": 10**6, "m": 10**6})
        assert res.metrics.iterations_of("main", 1) == 10**12
        # slow path would need 10^12 steps; the fast path uses O(1)
        assert res.steps < 1000


class TestEligibility:
    def test_store_in_body_disables(self):
        pb = ProgramBuilder()
        with pb.function("main", ["n"]) as f:
            f.alloc("a", 100)
            with f.for_("i", 0, 50):
                f.store("a", var("i"), 1)
        prog = pb.build(entry="main")
        planner = FastPathPlanner(prog, ExecConfig())
        loop = prog.function("main").loops()[0]
        assert planner.plan("main", loop) is None

    def test_assign_in_body_disables(self):
        pb = ProgramBuilder()
        with pb.function("main", ["n"]) as f:
            with f.for_("i", 0, f.var("n")):
                f.assign("x", var("i"))
        prog = pb.build(entry="main")
        planner = FastPathPlanner(prog, ExecConfig())
        loop = prog.function("main").loops()[0]
        assert planner.plan("main", loop) is None

    def test_loop_var_in_cost_amount_disables(self):
        pb = ProgramBuilder()
        with pb.function("main", ["n"]) as f:
            with f.for_("i", 0, f.var("n")):
                f.work(var("i"))
        prog = pb.build(entry="main")
        planner = FastPathPlanner(prog, ExecConfig())
        loop = prog.function("main").loops()[0]
        assert planner.plan("main", loop) is None
        # ...but the program still runs correctly on the slow path
        res = Interpreter(prog).run({"n": 5})
        assert res.metrics.iterations_of("main", 0) == 5

    def test_call_to_looping_function_disables(self):
        pb = ProgramBuilder()
        with pb.function("loopy", ["x"]) as f:
            with f.for_("j", 0, 3):
                f.work(1)
        with pb.function("main", ["n"]) as f:
            with f.for_("i", 0, f.var("n")):
                f.call("loopy", f.var("i"))
        prog = pb.build(entry="main")
        planner = FastPathPlanner(prog, ExecConfig())
        loop = prog.function("main").loops()[0]
        assert planner.plan("main", loop) is None
        # slow and fast interpreters still agree (fast falls back)
        assert_equivalent(prog, {"n": 4})

    def test_call_in_bound_disables(self):
        pb = ProgramBuilder()
        with pb.function("bound", []) as f:
            f.ret(5)
        with pb.function("main", []) as f:
            with f.for_("i", 0, call("bound")):
                f.work(1)
        prog = pb.build(entry="main")
        planner = FastPathPlanner(prog, ExecConfig())
        loop = prog.function("main").loops()[0]
        assert planner.plan("main", loop) is None

    def test_inner_bound_depending_on_outer_var_disables(self):
        pb = ProgramBuilder()
        with pb.function("main", ["n"]) as f:
            with f.for_("i", 0, f.var("n")):
                with f.for_("j", 0, f.var("i")):  # triangular
                    f.work(1)
        prog = pb.build(entry="main")
        planner = FastPathPlanner(prog, ExecConfig())
        loop = prog.function("main").loops()[0]
        assert planner.plan("main", loop) is None
        assert_equivalent(prog, {"n": 6})


class TestLeafCost:
    def test_accessor_is_leaf(self):
        prog = cost_nest_program()
        cost = leaf_unit_cost(prog.function("getter"), ExecConfig())
        assert cost is not None
        # Assign + ExprStmt(work 2): 1 + (1 + 2) compute
        assert cost.compute == 4.0
        assert cost.memory == 0.0

    def test_looping_function_not_leaf(self):
        pb = ProgramBuilder()
        with pb.function("f", ["n"]) as f:
            with f.for_("i", 0, f.var("n")):
                f.work(1)
        prog = pb.build(entry="f")
        assert leaf_unit_cost(prog.function("f"), ExecConfig()) is None

    def test_calling_function_not_leaf(self):
        pb = ProgramBuilder()
        with pb.function("g", []) as f:
            f.work(1)
        with pb.function("f", []) as f:
            f.call("g")
        prog = pb.build(entry="f")
        assert leaf_unit_cost(prog.function("f"), ExecConfig()) is None

    def test_variable_cost_not_leaf(self):
        pb = ProgramBuilder()
        with pb.function("f", ["x"]) as f:
            f.work(var("x"))
        prog = pb.build(entry="f")
        assert leaf_unit_cost(prog.function("f"), ExecConfig()) is None

    def test_mem_work_split(self):
        pb = ProgramBuilder()
        with pb.function("f", []) as f:
            f.mem_work(7)
        prog = pb.build(entry="f")
        cost = leaf_unit_cost(prog.function("f"), ExecConfig())
        assert cost.memory == 7.0
        assert cost.compute == 1.0  # the ExprStmt itself
