"""Unit tests for the IR→closure compiler and the engine factory.

The randomized differential suite (``test_compiled_differential.py``)
covers equivalence in bulk; these tests pin down the factory contract,
the improved limit errors, and specific constructs whose compiled
lowering is easy to get subtly wrong (short-circuiting, fast-path
fallback, break/continue, recursion, re-runs).
"""

from __future__ import annotations

import pytest

from repro.errors import (
    ArityError,
    ExecutionLimitError,
    InterpreterError,
    UndefinedFunctionError,
    UndefinedVariableError,
)
from repro.interp import (
    CompiledEngine,
    CostKind,
    ExecConfig,
    Interpreter,
    TableRuntime,
    make_engine,
)
from repro.interp.runtime import LibraryCall
from repro.ir.builder import (
    ProgramBuilder,
    add,
    and_,
    call,
    gt,
    lt,
    mod,
    mul,
    or_,
    sub,
    var,
)

from test_compiled_differential import (
    RecordingListener,
    assert_equivalent,
    run_one,
)


def simple_program():
    pb = ProgramBuilder()
    with pb.function("main", ["n"]) as f:
        f.assign("acc", 0)
        with f.for_("i", 0, var("n")):
            f.assign("acc", add(var("acc"), var("i")))
        f.ret(var("acc"))
    return pb.build(entry="main")


class TestMakeEngine:
    def test_tree_is_interpreter(self):
        engine = make_engine(simple_program(), "tree")
        assert isinstance(engine, Interpreter)

    def test_compiled_is_compiled_engine(self):
        engine = make_engine(simple_program(), "compiled")
        assert isinstance(engine, CompiledEngine)

    def test_default_is_tree(self):
        assert isinstance(make_engine(simple_program()), Interpreter)

    def test_unknown_engine_lists_valid_names(self):
        with pytest.raises(ValueError) as err:
            make_engine(simple_program(), "jit")
        assert "jit" in str(err.value)
        assert "compiled" in str(err.value)
        assert "tree" in str(err.value)

    def test_both_engines_same_value(self):
        for name in ("tree", "compiled"):
            assert make_engine(simple_program(), name).run({"n": 5}).value == 10


class TestLimitErrors:
    def test_step_limit_names_function_and_limit(self):
        config = ExecConfig(step_limit=10)
        for engine in ("tree", "compiled"):
            with pytest.raises(ExecutionLimitError) as err:
                make_engine(simple_program(), engine, config=config).run(
                    {"n": 100}
                )
            assert "'main'" in str(err.value)
            assert "10" in str(err.value)
            assert err.value.function == "main"
            assert err.value.limit == 10

    def test_call_depth_names_function_and_limit(self):
        pb = ProgramBuilder()
        with pb.function("down", ["n"]) as f:
            f.ret(call("down", sub(var("n"), 1)))
        with pb.function("main", ["n"]) as f:
            f.ret(call("down", var("n")))
        prog = pb.build(entry="main")
        config = ExecConfig(max_call_depth=16)
        for engine in ("tree", "compiled"):
            with pytest.raises(ExecutionLimitError) as err:
                make_engine(prog, engine, config=config).run({"n": 99})
            assert "'down'" in str(err.value)
            assert "16" in str(err.value)
            assert err.value.function == "down"
            assert err.value.limit == 16

    def test_limit_errors_identical_across_engines(self):
        config = ExecConfig(step_limit=10)
        tree = run_one(simple_program(), "tree", {"n": 100}, config)
        compiled = run_one(simple_program(), "compiled", {"n": 100}, config)
        assert tree == compiled
        assert tree[0] == "error"
        assert tree[1] == "ExecutionLimitError"


class TestCompiledConstructs:
    """Targeted lowering cases, each asserted bit-identical to the tree."""

    def _equiv(self, build, args, **config):
        pb = ProgramBuilder()
        build(pb)
        assert_equivalent(
            pb.build(entry="main"), args, ExecConfig(step_limit=50_000, **config)
        )

    def test_short_circuit_skips_side_effects(self):
        # The rhs call must not execute (no events) when lhs decides.
        def build(pb):
            with pb.function("probe", []) as f:
                f.work(7.0)
                f.ret(1)
            with pb.function("main", ["a"]) as f:
                f.assign("x", and_(lt(var("a"), 0), call("probe")))
                f.assign("y", or_(gt(var("a"), -1), call("probe")))
                f.ret(add(var("x"), var("y")))

        self._equiv(build, {"a": 3})

    def test_break_continue_in_nested_loops(self):
        def build(pb):
            with pb.function("main", ["n"]) as f:
                f.assign("acc", 0)
                with f.for_("i", 0, var("n")):
                    with f.for_("j", 0, var("n")):
                        with f.if_(gt(var("j"), 2)):
                            f.brk()
                        with f.if_(mod(var("j"), 2)):
                            f.cont()
                        f.assign("acc", add(var("acc"), 1))
                    with f.if_(gt(var("acc"), 5)):
                        f.brk()
                f.ret(var("acc"))

        self._equiv(build, {"n": 6})

    def test_while_with_continue(self):
        def build(pb):
            with pb.function("main", ["n"]) as f:
                f.assign("k", 0)
                f.assign("acc", 0)
                with f.while_(lt(var("k"), var("n"))):
                    f.assign("k", add(var("k"), 1))
                    with f.if_(mod(var("k"), 2)):
                        f.cont()
                    f.assign("acc", add(var("acc"), var("k")))
                f.ret(var("acc"))

        self._equiv(build, {"n": 9})

    def test_fastpath_nest_with_aggregated_calls(self):
        def build(pb):
            with pb.function("get", ["i"], kind="accessor") as f:
                f.assign("v", mul(var("i"), 2.0))
                f.work(1.5)
                f.ret(var("v"))
            with pb.function("main", ["n"]) as f:
                with f.for_("i", 0, var("n")):
                    with f.for_("j", 0, var("n")):
                        f.work(3.0)
                        f.call("get", var("j"))
                f.ret(var("i"))

        self._equiv(build, {"n": 7}, fast_loops=True)
        self._equiv(build, {"n": 7}, fast_loops=False)

    def test_fastpath_runtime_fallback_zero_trip(self):
        # Eligible shape but zero trips at run time: both engines agree.
        def build(pb):
            with pb.function("main", ["n"]) as f:
                with f.for_("i", 0, var("n")):
                    f.work(5.0)
                f.ret(var("i"))

        self._equiv(build, {"n": 0}, fast_loops=True)

    def test_loop_variable_final_value_after_fastpath(self):
        def build(pb):
            with pb.function("main", ["n"]) as f:
                with f.for_("i", 0, var("n"), step=2):
                    f.work(1.0)
                f.ret(var("i"))

        self._equiv(build, {"n": 9}, fast_loops=True)
        self._equiv(build, {"n": 9}, fast_loops=False)

    def test_recursion(self):
        def build(pb):
            with pb.function("fib", ["n"]) as f:
                with f.if_(lt(var("n"), 2)):
                    f.ret(var("n"))
                f.ret(
                    add(
                        call("fib", sub(var("n"), 1)),
                        call("fib", sub(var("n"), 2)),
                    )
                )
            with pb.function("main", ["n"]) as f:
                f.ret(call("fib", var("n")))

        self._equiv(build, {"n": 9})

    def test_bad_loop_step_error_parity(self):
        def build(pb):
            with pb.function("main", ["n"]) as f:
                with f.for_("i", 0, 10, step=var("n")):
                    f.work(1.0)
                f.ret(0)

        self._equiv(build, {"n": 0})
        self._equiv(build, {"n": -1})

    def test_undefined_variable_and_function_parity(self):
        def build(pb):
            with pb.function("main", ["n"]) as f:
                with f.if_(gt(var("n"), 5)):
                    f.assign("x", var("never_assigned"))
                with f.if_(gt(var("n"), 10)):
                    f.assign("y", call("no_such_function"))
                f.ret(var("n"))

        self._equiv(build, {"n": 3})
        self._equiv(build, {"n": 7})
        self._equiv(build, {"n": 11})

    def test_store_to_non_array_parity(self):
        def build(pb):
            with pb.function("main", ["n"]) as f:
                f.assign("a", 3)
                f.store("a", 0, var("n"))
                f.ret(0)

        self._equiv(build, {"n": 1})

    def test_arity_error_parity(self):
        # Wrong-arity call sites are rejected by IR validation, so the
        # runtime check only triggers through direct engine invocation.
        pb = ProgramBuilder()
        with pb.function("two", ["a", "b"]) as f:
            f.ret(add(var("a"), var("b")))
        with pb.function("main", []) as f:
            f.ret(call("two", 1, 2))
        prog = pb.build(entry="main")
        tree = make_engine(prog, "tree")
        compiled = make_engine(prog, "compiled")
        with pytest.raises(ArityError) as tree_err:
            tree._call_function("two", [1])
        with pytest.raises(ArityError) as compiled_err:
            compiled._functions["two"].call([1])
        assert str(tree_err.value) == str(compiled_err.value)

    def test_missing_entry_argument_parity(self):
        prog = simple_program()
        config = ExecConfig()
        tree = run_one(prog, "tree", {}, config)
        compiled = run_one(prog, "compiled", {}, config)
        assert tree == compiled
        assert tree[0] == "error"


class TestCompiledEngineBehavior:
    def test_metrics_accumulate_across_runs_like_tree(self):
        prog = simple_program()
        tree = make_engine(prog, "tree")
        compiled = make_engine(prog, "compiled")
        for _ in range(3):
            t = tree.run({"n": 4})
            c = compiled.run({"n": 4})
        assert t.steps == c.steps
        assert t.metrics.totals == c.metrics.totals
        assert t.metrics.loop_iterations == c.metrics.loop_iterations

    def test_library_calls_and_listener_events(self):
        pb = ProgramBuilder()
        with pb.function("main", ["n"]) as f:
            f.assign("x", call("LIB_double", var("n")))
            f.ret(var("x"))
        prog = pb.build(entry="main")

        def run(engine):
            rt = TableRuntime()
            rt.register(
                "LIB_double",
                lambda x: LibraryCall(
                    value=x * 2, costs={CostKind.COMM: 4.0}
                ),
            )
            listener = RecordingListener()
            result = make_engine(
                prog, engine, runtime=rt, listener=listener
            ).run({"n": 21})
            return result.value, listener.events

        assert run("tree") == run("compiled")
        assert run("compiled")[0] == 42

    def test_program_compiles_once_not_per_run(self):
        prog = simple_program()
        engine = make_engine(prog, "compiled")
        fn = engine._functions["main"]
        engine.run({"n": 3})
        assert engine._functions["main"] is fn  # no recompilation
