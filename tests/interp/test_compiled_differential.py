"""Differential property tests: compiled engine ≡ tree-walking engine.

The compiled engine must be *bit-identical* to the tree-walker — same
``RunResult`` (value, steps, totals, per-function metrics, loop
iterations), same execution-event streams, and the same raised errors at
the same point — over randomized IR programs and over all bundled apps.
These tests are the license for the measurement layer to default to the
compiled engine.

The same holds for the **taint** analysis domain: the tree-walking and
compiled shadow engines must produce identical ``TaintReport`` objects
(loop/branch/library records with their parameter sets and call paths,
implicit flows, warnings, executed-function sets) plus identical values
and metrics — the license for the taint stage to default to the compiled
engine.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interp import CostKind, ExecConfig, TableRuntime, make_engine
from repro.interp.runtime import LibraryCall
from repro.ir.builder import (
    ProgramBuilder,
    add,
    binop,
    call,
    const,
    intrinsic,
    load,
    lt,
    min_,
    mod,
    mul,
    neg,
    sub,
    var,
)
from repro.measure.instrumentation import full_plan
from repro.measure.io import profile_to_dict
from repro.measure.profiler import profile_run


class RecordingListener:
    """Captures the full execution-event stream for exact comparison."""

    def __init__(self) -> None:
        self.events: list[tuple] = []

    def on_enter(self, function):
        self.events.append(("enter", function))

    def on_exit(self, function):
        self.events.append(("exit", function))

    def on_cost(self, kind, amount):
        self.events.append(("cost", kind, amount))

    def on_loop_iterations(self, function, loop_id, count):
        self.events.append(("iters", function, loop_id, count))

    def on_aggregate_calls(self, callee, count, unit_compute, unit_memory):
        self.events.append(("agg", callee, count, unit_compute, unit_memory))


def _runtime() -> TableRuntime:
    rt = TableRuntime()
    rt.register(
        "LIB_scale",
        lambda x: LibraryCall(value=x * 2, costs={CostKind.COMM: 5.0}),
    )
    return rt


def run_one(program, engine: str, args, config: ExecConfig):
    """Run *program* on *engine*; canonicalize outcome (result or error)."""
    listener = RecordingListener()
    eng = make_engine(
        program, engine, runtime=_runtime(), config=config, listener=listener
    )
    try:
        result = eng.run(args)
    except Exception as exc:  # noqa: BLE001 - error parity is the point
        return ("error", type(exc).__name__, str(exc), listener.events)
    functions = {
        name: (fm.calls, fm.compute, fm.memory, fm.comm)
        for name, fm in result.metrics.functions.items()
    }
    return (
        "ok",
        result.value,
        result.steps,
        dict(result.metrics.totals),
        functions,
        dict(result.metrics.loop_iterations),
        listener.events,
    )


def assert_equivalent(program, args, config: ExecConfig) -> None:
    tree = run_one(program, "tree", args, config)
    compiled = run_one(program, "compiled", args, config)
    assert tree == compiled, (
        f"engines diverged\ntree:     {tree!r}\ncompiled: {compiled!r}"
    )


# ----------------------------------------------------------------------
# randomized program generation

ARITH_OPS = ("+", "-", "*", "min", "max")
CMP_OPS = ("<", "<=", ">", ">=", "==", "!=")


def _gen_expr(draw, names: list[str], depth: int):
    """A random arithmetic expression over the defined *names*."""
    if depth <= 0 or draw(st.integers(0, 3)) == 0:
        if names and draw(st.booleans()):
            return var(draw(st.sampled_from(names)))
        return const(draw(st.integers(-3, 5)))
    choice = draw(st.integers(0, 4))
    if choice <= 1:
        op = draw(st.sampled_from(ARITH_OPS))
        return binop(
            op,
            _gen_expr(draw, names, depth - 1),
            _gen_expr(draw, names, depth - 1),
        )
    if choice == 2:
        return mod(_gen_expr(draw, names, depth - 1), const(draw(st.integers(1, 4))))
    if choice == 3:
        return neg(_gen_expr(draw, names, depth - 1))
    return intrinsic("abs", _gen_expr(draw, names, depth - 1))


def _gen_cond(draw, names: list[str]):
    op = draw(st.sampled_from(CMP_OPS))
    return binop(op, _gen_expr(draw, names, 1), _gen_expr(draw, names, 1))


def _gen_block(draw, f, names: list[str], depth: int, in_loop: bool) -> None:
    """Emit 1-4 random statements into builder *f* (mutates *names*)."""
    for _ in range(draw(st.integers(1, 4))):
        kind = draw(st.integers(0, 9))
        if kind <= 2:  # assignment (possibly to a fresh local)
            if names and draw(st.booleans()):
                name = draw(st.sampled_from(names))
            else:
                name = f"t{len(names)}"
            f.assign(name, _gen_expr(draw, names, 2))
            if name not in names:
                names.append(name)
        elif kind == 3:  # cost intrinsic (sometimes negative -> error parity)
            amount = _gen_expr(draw, names, 1)
            if draw(st.booleans()):
                amount = intrinsic("abs", amount)
            f.work(amount)
        elif kind == 4 and depth > 0:  # counted loop
            loop_var = f"i{depth}{len(names)}"
            stop = min_(_gen_expr(draw, names, 1), const(draw(st.integers(0, 5))))
            if draw(st.booleans()):
                # Pure-cost body: eligible for the O(1) fast path.
                with f.for_(loop_var, 0, stop):
                    f.work(float(draw(st.integers(1, 9))))
            else:
                with f.for_(loop_var, 0, stop):
                    inner = names + [loop_var]
                    _gen_block(draw, f, inner, depth - 1, in_loop=True)
        elif kind == 5 and depth > 0:  # bounded while
            counter = f"w{depth}{len(names)}"
            f.assign(counter, 0)
            bound = draw(st.integers(0, 4))
            with f.while_(lt(var(counter), bound)):
                f.assign(counter, add(var(counter), 1))
                inner = names + [counter]
                _gen_block(draw, f, inner, depth - 1, in_loop=True)
        elif kind == 6 and depth > 0:  # branch
            with f.if_(_gen_cond(draw, names)):
                _gen_block(draw, f, list(names), depth - 1, in_loop)
            with f.else_():
                _gen_block(draw, f, list(names), depth - 1, in_loop)
        elif kind == 7 and in_loop:  # guarded break/continue
            with f.if_(_gen_cond(draw, names)):
                if draw(st.booleans()):
                    f.brk()
                else:
                    f.cont()
        elif kind == 8:  # array traffic (indices mostly in bounds)
            arr = f"arr{len(names)}"
            f.alloc(arr, 4)
            f.store(arr, mod(_gen_expr(draw, names, 1), 4), _gen_expr(draw, names, 1))
            f.assign(f"t{len(names)}", load(arr, mod(_gen_expr(draw, names, 1), 4)))
            names.append(f"t{len(names)}")
        else:  # call (program function or library routine)
            callee = draw(st.sampled_from(["leaf", "helper", "LIB_scale"]))
            target = f"t{len(names)}"
            if callee == "helper":
                f.assign(
                    target,
                    call(callee, _gen_expr(draw, names, 1), _gen_expr(draw, names, 1)),
                )
            else:
                f.assign(target, call(callee, _gen_expr(draw, names, 1)))
            names.append(target)


@st.composite
def programs(draw):
    pb = ProgramBuilder()
    with pb.function("leaf", ["x"], kind="accessor") as f:
        f.assign("v", mul(var("x"), 2.0))
        f.work(3.0)
        f.ret(var("v"))
    with pb.function("helper", ["n", "m"]) as f:
        f.assign("acc", 0)
        with f.for_("i", 0, min_(var("n"), 6)):
            f.assign("acc", add(var("acc"), call("leaf", var("i"))))
            f.work(2.0)
        f.ret(add(var("acc"), var("m")))
    with pb.function("main", ["a", "b"]) as f:
        names = ["a", "b"]
        _gen_block(draw, f, names, depth=2, in_loop=False)
        f.ret(_gen_expr(draw, names, 1))
    return pb.build(entry="main")


class TestRandomizedDifferential:
    @given(
        program=programs(),
        a=st.integers(0, 6),
        b=st.integers(-2, 6),
        fast_loops=st.booleans(),
    )
    @settings(max_examples=80, deadline=None)
    def test_engines_bit_identical(self, program, a, b, fast_loops):
        # Bounded step budget: random assignments can reset a while
        # counter into an infinite loop; both engines must then raise the
        # identical limit error instead of hanging the test.
        config = ExecConfig(fast_loops=fast_loops, step_limit=20_000)
        assert_equivalent(program, {"a": a, "b": b}, config)

    @given(program=programs(), a=st.integers(0, 6), b=st.integers(0, 6))
    @settings(max_examples=25, deadline=None)
    def test_step_limit_errors_identical(self, program, a, b):
        """Tiny step budget: both engines must fail at the same step with
        the same message (which names the function and the limit)."""
        config = ExecConfig(step_limit=7)
        tree = run_one(program, "tree", {"a": a, "b": b}, config)
        compiled = run_one(program, "compiled", {"a": a, "b": b}, config)
        assert tree == compiled


def _canon_lane(result, events):
    """Canonicalize one lane outcome (RunResult or raised error)."""
    if isinstance(result, Exception):
        return ("error", type(result).__name__, str(result), tuple(events))
    return (
        "ok",
        result.value,
        result.steps,
        dict(result.metrics.totals),
        {
            name: (fm.calls, fm.compute, fm.memory, fm.comm)
            for name, fm in result.metrics.functions.items()
        },
        dict(result.metrics.loop_iterations),
        tuple(events),
    )


class TestVectorizedDifferential:
    """Vectorized engine ≡ tree/compiled — scalar runs and every lane of
    every batch width (the license for the batched measurement layer)."""

    @given(
        program=programs(),
        a=st.integers(0, 6),
        b=st.integers(-2, 6),
        fast_loops=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_scalar_run_bit_identical(self, program, a, b, fast_loops):
        config = ExecConfig(fast_loops=fast_loops, step_limit=20_000)
        tree = run_one(program, "tree", {"a": a, "b": b}, config)
        vectorized = run_one(program, "vectorized", {"a": a, "b": b}, config)
        assert tree == vectorized, (
            f"engines diverged\ntree:       {tree!r}\n"
            f"vectorized: {vectorized!r}"
        )

    @given(program=programs())
    @settings(max_examples=60, deadline=None)
    def test_batch_lanes_bit_identical(self, program):
        """Widths 1 and 7, divergent per-lane arguments: every lane's
        result, metrics, and event stream must equal a dedicated
        compiled-engine run of that lane — including raised errors."""
        from repro.interp import CompiledEngine, VectorizedEngine

        config = ExecConfig(step_limit=20_000)
        for width in (1, 7):
            args_list = [{"a": 3 + lane, "b": 4 - lane} for lane in range(width)]
            reference = []
            for args in args_list:
                listener = RecordingListener()
                engine = CompiledEngine(
                    program,
                    runtime=_runtime(),
                    config=config,
                    listener=listener,
                )
                try:
                    outcome = engine.run(args)
                except Exception as exc:  # noqa: BLE001 - error parity
                    outcome = exc
                reference.append(_canon_lane(outcome, listener.events))
            listeners = [RecordingListener() for _ in range(width)]
            batch = VectorizedEngine(program, config=config).run_batch(
                args_list,
                lane_runtimes=[_runtime() for _ in range(width)],
                lane_listeners=listeners,
                collect_errors=True,
            )
            got = [
                _canon_lane(outcome, listeners[lane].events)
                for lane, outcome in enumerate(batch)
            ]
            assert got == reference, (
                f"lanes diverged at width {width}\n"
                f"reference: {reference!r}\ngot:       {got!r}"
            )


def run_taint(program, engine: str, args, config: ExecConfig, policy=None):
    """Run taint analysis on *engine*; canonicalize outcome or error."""
    from repro.taint.engine import TaintEngine
    from repro.taint.policy import FULL_POLICY

    taint = TaintEngine(
        program,
        runtime=_runtime(),
        config=config,
        policy=policy or FULL_POLICY,
        engine=engine,
    )
    try:
        result = taint.analyze(args, {"a": "a", "b": "b"})
    except Exception as exc:  # noqa: BLE001 - error parity is the point
        return ("error", type(exc).__name__, str(exc), taint.report)
    return (
        "ok",
        result.value,
        result.report,
        dict(result.metrics.totals),
        dict(result.metrics.loop_iterations),
        {
            name: (fm.calls, fm.compute, fm.memory, fm.comm)
            for name, fm in result.metrics.functions.items()
        },
    )


class TestTaintDifferential:
    """Tree-walking taint ≡ compiled taint, report-bit-identical."""

    @given(
        program=programs(),
        a=st.integers(0, 6),
        b=st.integers(-2, 6),
        implicit=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_taint_reports_bit_identical(self, program, a, b, implicit):
        from repro.taint.policy import PropagationPolicy

        policy = PropagationPolicy(implicit_flow=implicit)
        config = ExecConfig(step_limit=20_000)
        args = {"a": a, "b": b}
        tree = run_taint(program, "tree", args, config, policy)
        compiled = run_taint(program, "compiled", args, config, policy)
        assert tree == compiled, (
            f"taint engines diverged\ntree:     {tree!r}\n"
            f"compiled: {compiled!r}"
        )

    @given(program=programs(), a=st.integers(0, 6), b=st.integers(0, 6))
    @settings(max_examples=20, deadline=None)
    def test_dataflow_only_policy_identical(self, program, a, b):
        from repro.taint.policy import DATAFLOW_ONLY

        config = ExecConfig(step_limit=20_000)
        args = {"a": a, "b": b}
        tree = run_taint(program, "tree", args, config, DATAFLOW_ONLY)
        compiled = run_taint(program, "compiled", args, config, DATAFLOW_ONLY)
        assert tree == compiled

    def _assert_app_taint_matches(self, workload) -> None:
        from repro.core.stages import run_taint_stage
        from repro.libdb.mpi_models import MPI_DATABASE
        from repro.taint.policy import FULL_POLICY

        program = workload.program()
        reports = [
            run_taint_stage(
                workload,
                program,
                FULL_POLICY,
                MPI_DATABASE.copy(),
                engine=engine,
            )
            for engine in ("tree", "compiled")
        ]
        tree, compiled = reports
        assert tree == compiled
        # The canonical artifact payload (what campaign workspaces
        # persist) must match bit for bit as well.
        from repro.core.artifacts import taint_report_to_dict

        assert taint_report_to_dict(tree) == taint_report_to_dict(compiled)

    def test_lulesh(self):
        from repro.apps.lulesh import LuleshWorkload

        self._assert_app_taint_matches(LuleshWorkload())

    def test_milc(self):
        from repro.apps.milc import MilcWorkload

        self._assert_app_taint_matches(MilcWorkload())

    def test_synthetic(self):
        from repro.apps.synthetic import make_scaling_workload

        self._assert_app_taint_matches(make_scaling_workload())


class TestAppDifferential:
    """Bit-identical profiles on every bundled application."""

    def _assert_profiles_match(self, workload, config) -> None:
        program = workload.program()
        plan = full_plan(program)
        profiles = []
        for engine in ("tree", "compiled", "vectorized"):
            setup = workload.setup(config)
            profiles.append(
                profile_run(
                    program,
                    setup.args,
                    plan,
                    runtime=setup.runtime,
                    exec_config=setup.exec_config,
                    entry=setup.entry,
                    engine=engine,
                )
            )
        tree, compiled, vectorized = profiles
        assert profile_to_dict(tree) == profile_to_dict(compiled)
        assert tree.total_time() == compiled.total_time()
        assert profile_to_dict(tree) == profile_to_dict(vectorized)
        assert tree.total_time() == vectorized.total_time()

    def test_lulesh(self):
        from repro.apps.lulesh import LuleshWorkload

        workload = LuleshWorkload()
        self._assert_profiles_match(workload, workload.taint_config())

    def test_milc(self):
        from repro.apps.milc import MilcWorkload

        workload = MilcWorkload()
        self._assert_profiles_match(workload, workload.taint_config())

    def test_synthetic(self):
        from repro.apps.synthetic import make_scaling_workload

        workload = make_scaling_workload()
        self._assert_profiles_match(workload, {"p": 6.0, "s": 9.0})
