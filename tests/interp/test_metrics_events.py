"""Metrics collection and event fan-out tests."""

from repro.interp import Interpreter, MetricsCollector, MultiListener
from repro.interp.events import CostKind, NullListener
from repro.ir import ProgramBuilder, var


def sample_program():
    pb = ProgramBuilder()
    with pb.function("child", []) as f:
        f.work(10)
    with pb.function("main", ["n"]) as f:
        f.mem_work(5)
        with f.for_("i", 0, f.var("n")):
            f.work(1)
        f.call("child")
    return pb.build(entry="main")


class TestMetricsCollector:
    def test_exclusive_attribution(self):
        res = Interpreter(sample_program()).run({"n": 4})
        m = res.metrics
        # child's work lands on child, not main
        assert m.functions["child"].compute >= 10
        assert m.functions["main"].memory == 5

    def test_call_counts(self):
        res = Interpreter(sample_program()).run({"n": 4})
        assert res.metrics.calls_of("child") == 1
        assert res.metrics.calls_of("main") == 1
        assert res.metrics.calls_of("ghost") == 0

    def test_loop_iterations(self):
        res = Interpreter(sample_program()).run({"n": 4})
        assert res.metrics.iterations_of("main", 0) == 4
        assert res.metrics.iterations_of("main", 99) == 0

    def test_total_time_is_sum(self):
        res = Interpreter(sample_program()).run({"n": 4})
        total = sum(res.metrics.totals.values())
        assert res.time == total

    def test_standalone_collector(self):
        c = MetricsCollector()
        c.on_enter("f")
        c.on_cost(CostKind.COMPUTE, 5.0)
        c.on_aggregate_calls("leaf", 10, 2.0, 1.0)
        c.on_exit("f")
        assert c.functions["f"].compute == 5.0
        assert c.functions["leaf"].calls == 10
        assert c.functions["leaf"].compute == 20.0
        assert c.functions["leaf"].memory == 10.0
        assert c.totals[CostKind.MEMORY] == 10.0

    def test_snapshot_is_copy(self):
        c = MetricsCollector()
        c.on_enter("f")
        snap = c.snapshot()
        c.on_enter("g")
        assert "g" not in snap


class TestListeners:
    def test_multi_listener_broadcasts(self):
        a, b = MetricsCollector(), MetricsCollector()
        fan = MultiListener(a, b)
        Interpreter(sample_program(), listener=fan).run({"n": 2})
        assert a.functions.keys() == b.functions.keys()
        assert a.totals == b.totals

    def test_null_listener_is_noop(self):
        lst = NullListener()
        lst.on_enter("f")
        lst.on_cost(CostKind.COMM, 1.0)
        lst.on_exit("f")
        lst.on_loop_iterations("f", 0, 1)
        lst.on_aggregate_calls("g", 1, 1.0, 0.0)

    def test_listener_sees_same_events_as_metrics(self):
        collector = MetricsCollector()
        res = Interpreter(sample_program(), listener=collector).run({"n": 3})
        assert collector.totals == res.metrics.totals
        assert dict(collector.loop_iterations) == dict(
            res.metrics.loop_iterations
        )
