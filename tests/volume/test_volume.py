"""Volume calculus tests: symbolic algebra, composition rules, dependency
classification (paper sections 4.2–4.3, A2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.synthetic import (
    build_additive_example,
    build_multiplicative_example,
)
from repro.taint import TaintInterpreter
from repro.volume import (
    LoopCount,
    Volume,
    classify_volume,
    compute_volumes,
)
from repro.volume.symbolic import Term


def g(fn, lid, *params):
    return Volume.of_loop(LoopCount(fn, lid, frozenset(params)))


class TestVolumeAlgebra:
    def test_constant(self):
        v = Volume.constant(3)
        assert v.is_constant
        assert v.params == frozenset()

    def test_sequencing_adds(self):
        v = g("f", 0, "a") + g("f", 1, "b")
        assert len(v.terms) == 2
        assert v.params == frozenset({"a", "b"})

    def test_nesting_multiplies(self):
        v = g("f", 0, "a") * g("f", 1, "b")
        assert len(v.terms) == 1
        assert v.terms[0].params == frozenset({"a", "b"})

    def test_distribution(self):
        v = g("f", 0, "a") * (g("f", 1, "b") + Volume.constant(1))
        groups = v.param_groups()
        assert frozenset({"a", "b"}) in groups
        assert frozenset({"a"}) in groups

    def test_merge_equal_terms(self):
        v = g("f", 0, "a") + g("f", 0, "a")
        assert len(v.terms) == 1
        assert v.terms[0].coefficient == 2.0

    def test_zero_coefficient_dropped(self):
        v = Volume([Term(0.0, ())])
        assert v.terms == ()

    def test_scaled(self):
        v = g("f", 0, "a").scaled(3)
        assert v.terms[0].coefficient == 3.0

    def test_degree(self):
        v = g("f", 0, "a") * g("f", 1, "b") * g("f", 2, "c")
        assert v.degree() == 3
        assert Volume.constant(5).degree() == 0

    def test_str_stable(self):
        v = g("f", 1, "b") + g("f", 0, "a")
        assert str(v) == str(g("f", 1, "b") + g("f", 0, "a"))

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 3), st.sets(st.sampled_from("abc"), max_size=2)
            ),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_addition_commutative(self, specs):
        vols = [
            Volume.of_loop(LoopCount("f", lid, frozenset(ps)))
            for lid, ps in specs
        ]
        left = Volume.zero()
        for v in vols:
            left = left + v
        right = Volume.zero()
        for v in reversed(vols):
            right = right + v
        assert left == right

    @given(
        st.sets(st.sampled_from("abcd"), min_size=0, max_size=3),
        st.sets(st.sampled_from("abcd"), min_size=0, max_size=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_product_params_union(self, xs, ys):
        a = Volume.of_loop(LoopCount("f", 0, frozenset(xs)))
        b = Volume.of_loop(LoopCount("g", 1, frozenset(ys)))
        assert (a * b).params == frozenset(xs) | frozenset(ys)


class TestDependencyClassification:
    def test_additive(self):
        v = g("f", 0, "p") + g("f", 1, "s")
        dep = classify_volume(v)
        assert dep.additive_only
        assert dep.are_additive("p", "s")

    def test_multiplicative(self):
        v = g("f", 0, "p") * g("f", 1, "s")
        dep = classify_volume(v)
        assert not dep.additive_only
        assert dep.are_multiplicative("p", "s")
        assert dep.multiplicative_groups == (frozenset({"p", "s"}),)

    def test_single_condition_multilabel_is_multiplicative(self):
        """The paper's conservative over-approximation (5.2)."""
        v = g("f", 0, "p", "s")
        dep = classify_volume(v)
        assert dep.are_multiplicative("p", "s")

    def test_mixed(self):
        v = g("f", 0, "p") * g("f", 1, "s") + g("f", 2, "q")
        dep = classify_volume(v)
        assert dep.are_multiplicative("p", "s")
        assert dep.are_additive("p", "q")

    def test_constant_volume(self):
        dep = classify_volume(Volume.constant(4))
        assert dep.additive_only
        assert dep.params == frozenset()


class TestVolumeAnalyzer:
    def _taint(self, prog, args, sources=None):
        entry = prog.function(prog.entry)
        sources = sources or {n: n for n in entry.params}
        return TaintInterpreter(prog).analyze(args, sources).report

    def test_additive_program(self):
        prog = build_additive_example()
        taint = self._taint(prog, {"p": 3, "s": 4})
        report = compute_volumes(prog, taint)
        dep = classify_volume(report.program)
        assert dep.are_additive("p", "s")

    def test_multiplicative_program(self):
        prog = build_multiplicative_example()
        taint = self._taint(prog, {"p": 3, "s": 4})
        report = compute_volumes(prog, taint)
        dep = classify_volume(report.program)
        assert dep.are_multiplicative("p", "s")

    def test_exclusive_vs_inclusive(self):
        prog = build_additive_example()
        taint = self._taint(prog, {"p": 3, "s": 4})
        report = compute_volumes(prog, taint)
        # main has no own loops: exclusive constant, inclusive parametric.
        assert report.exclusive["main"].is_constant
        assert not report.inclusive["main"].is_constant

    def test_static_loops_are_constants(self):
        from repro.ir import ProgramBuilder

        pb = ProgramBuilder()
        with pb.function("main", ["n"]) as f:
            with f.for_("i", 0, 8):
                f.work(1)
        prog = pb.build(entry="main")
        taint = self._taint(prog, {"n": 2})
        report = compute_volumes(prog, taint)
        assert report.program.is_constant

    def test_unexecuted_loop_warns(self):
        from repro.ir import ProgramBuilder, lt, var

        pb = ProgramBuilder()
        with pb.function("main", ["n"]) as f:
            with f.if_(lt(var("n"), 0)):
                with f.for_("i", 0, f.var("n")):
                    f.work(1)
        prog = pb.build(entry="main")
        taint = self._taint(prog, {"n": 5})  # branch not taken
        report = compute_volumes(prog, taint)
        assert any("not executed" in w for w in report.warnings)

    def test_lulesh_program_volume_params(self, lulesh_program, lulesh_taint):
        report = compute_volumes(lulesh_program, lulesh_taint)
        # every annotated parameter that reaches a loop shows up
        assert {"size", "iters", "regions", "p"} <= report.program.params

    def test_recursion_skips_edge(self):
        from repro.ir import ProgramBuilder, lt, var, call, add

        pb = ProgramBuilder()
        with pb.function("rec", ["n"]) as f:
            with f.for_("i", 0, f.var("n")):
                f.work(1)
            with f.if_(lt(var("n"), 2)):
                f.call("rec", add(var("n"), 1))
        with pb.function("main", ["n"]) as f:
            f.call("rec", var("n"))
        prog = pb.build(entry="main")
        taint = self._taint(prog, {"n": 0})
        report = compute_volumes(prog, taint)
        assert any("recursive" in w for w in report.warnings)
