"""Cross-cutting property tests.

The strongest invariants of the stack:

* taint tracking must never change program *values* (the taint
  interpreter is a semantics-preserving extension);
* the cost fast path must never change values either;
* measurement noise must be reproducible and mean-unbiased-ish;
* classification must partition the function set exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interp import ExecConfig, Interpreter
from repro.ir import ProgramBuilder, add, lt, mod, mul, var
from repro.taint import TaintInterpreter
from repro.taint.policy import PropagationPolicy


def random_program(which: int):
    """A small family of deterministic programs indexed by *which*."""
    pb = ProgramBuilder()
    with pb.function("helper", ["x"]) as f:
        f.ret(add(mul(var("x"), 3), 1))
    with pb.function("main", ["a", "b"]) as f:
        f.assign("acc", 0)
        if which % 2 == 0:
            with f.for_("i", 0, f.var("a")):
                f.assign("acc", add(var("acc"), var("i")))
                with f.if_(lt(mod(var("i"), 3), 1)):
                    f.assign("acc", add(var("acc"), var("b")))
        else:
            f.assign("j", 0)
            with f.while_(lt(var("j"), var("a"))):
                f.assign("j", add(var("j"), 1))
                f.assign("acc", add(var("acc"), var("j")))
        from repro.ir import call

        f.assign("acc", add(var("acc"), call("helper", var("b"))))
        f.ret(var("acc"))
    return pb.build(entry="main")


class TestSemanticsPreservation:
    @given(
        which=st.integers(0, 3),
        a=st.integers(0, 12),
        b=st.integers(0, 12),
        implicit=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_taint_preserves_values(self, which, a, b, implicit):
        prog = random_program(which)
        plain = Interpreter(prog).run({"a": a, "b": b})
        policy = PropagationPolicy(implicit_flow=implicit)
        tainted = TaintInterpreter(prog, policy=policy).analyze(
            {"a": a, "b": b}, {"a": "a", "b": "b"}
        )
        assert plain.value == tainted.value

    @given(which=st.integers(0, 3), a=st.integers(0, 12), b=st.integers(0, 12))
    @settings(max_examples=40, deadline=None)
    def test_fast_path_preserves_values_and_cost(self, which, a, b):
        prog = random_program(which)
        slow = Interpreter(prog, config=ExecConfig(fast_loops=False)).run(
            {"a": a, "b": b}
        )
        fast = Interpreter(prog, config=ExecConfig(fast_loops=True)).run(
            {"a": a, "b": b}
        )
        assert slow.value == fast.value
        assert slow.time == pytest.approx(fast.time)

    @given(a=st.integers(1, 10), b=st.integers(1, 10))
    @settings(max_examples=20, deadline=None)
    def test_taint_metrics_match_plain(self, a, b):
        """Loop-iteration counts agree between engines."""
        prog = random_program(0)
        plain = Interpreter(prog, config=ExecConfig(fast_loops=False)).run(
            {"a": a, "b": b}
        )
        tainted = TaintInterpreter(prog).analyze(
            {"a": a, "b": b}, {"a": "a"}
        )
        assert dict(plain.metrics.loop_iterations) == dict(
            tainted.metrics.loop_iterations
        )


class TestNoiseProperties:
    @given(base=st.floats(min_value=1e3, max_value=1e9))
    @settings(max_examples=20, deadline=None)
    def test_noise_roughly_unbiased(self, base):
        from repro.measure.noise import GaussianNoise, rng_for

        noise = GaussianNoise(relative_sigma=0.02, absolute_sigma=100)
        samples = [
            noise.perturb(base, rng_for(0, "f", (base,), i))
            for i in range(200)
        ]
        mean = np.mean(samples)
        # absolute floor adds |N| ~ 80 on average; the relative part is
        # unbiased up to sampling error of the 200-sample mean (std
        # ~0.0014*base, so a 1% band keeps unlucky draws out).
        assert base * 0.99 <= mean <= base * 1.05 + 200


class TestClassificationPartition:
    def test_partition_exact(self, lulesh_program, lulesh_static, lulesh_taint):
        from repro.core.classify import classify_functions

        cls = classify_functions(lulesh_program, lulesh_static, lulesh_taint)
        buckets = [
            cls.pruned_static,
            cls.pruned_dynamic,
            cls.kernels,
            cls.comm_routines,
            cls.unexecuted,
        ]
        union = frozenset().union(*buckets)
        assert union == lulesh_program.defined_names()
        total = sum(len(b) for b in buckets)
        assert total == len(union)  # pairwise disjoint

    def test_milc_partition_exact(self, milc_program, milc_static, milc_taint):
        from repro.core.classify import classify_functions

        cls = classify_functions(milc_program, milc_static, milc_taint)
        buckets = [
            cls.pruned_static,
            cls.pruned_dynamic,
            cls.kernels,
            cls.comm_routines,
            cls.unexecuted,
        ]
        assert sum(len(b) for b in buckets) == milc_program.function_count()
