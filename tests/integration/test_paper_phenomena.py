"""Integration tests asserting the paper's headline phenomena end-to-end.

Each test corresponds to an evaluation claim (see EXPERIMENTS.md); the
benchmarks regenerate the full tables/figures, these tests pin the *shape*
so regressions are caught by ``pytest``.
"""

import numpy as np
import pytest

from repro.apps.lulesh import LuleshWorkload
from repro.apps.milc import MilcWorkload
from repro.core import detect_segmented_behavior
from repro.core.hybrid import HybridModeler
from repro.core.pipeline import PerfTaintPipeline
from repro.measure import (
    APP_KEY,
    InstrumentationMode,
    default_filter_plan,
    full_plan,
    none_plan,
    profile_run,
    taint_filter_plan,
)
from repro.mpisim.contention import LogQuadraticContention


@pytest.fixture(scope="module")
def lulesh_run():
    """A small (3x3, 3 reps) LULESH pipeline run with black-box models."""
    wl = LuleshWorkload()
    pipe = PerfTaintPipeline(workload=wl, repetitions=3, seed=11)
    return pipe.run(
        {"p": [27, 125, 343], "size": [8, 14, 20]},
        mode=InstrumentationMode.TAINT_FILTER,
        compare_black_box=True,
    )


class TestOverheadShapes:
    """Figures 3/4: taint filter << default/full instrumentation."""

    def test_lulesh_overhead_ordering(
        self, lulesh_workload, lulesh_static, lulesh_taint
    ):
        prog = lulesh_workload.program()
        setup = lulesh_workload.setup({"p": 64, "size": 20})
        times = {}
        for name, plan in (
            ("native", none_plan()),
            ("taint", taint_filter_plan(prog, lulesh_taint, lulesh_static)),
            ("default", default_filter_plan(prog)),
            ("full", full_plan(prog)),
        ):
            times[name] = profile_run(
                prog, setup.args, plan, runtime=setup.runtime
            ).total_time()
        # paper: taint filter within a few percent of native
        assert times["taint"] / times["native"] < 1.06
        # paper: full instrumentation an order of magnitude worse
        assert times["full"] / times["native"] > 8
        # ordering
        assert (
            times["native"]
            <= times["taint"]
            < times["default"]
            < times["full"]
        )

    def test_milc_default_filter_useless(
        self, milc_workload, milc_static, milc_taint
    ):
        """Figure 4: 'the default instrumentation provides little to no
        benefit' on MILC."""
        prog = milc_workload.program()
        setup = milc_workload.setup({"p": 16, "size": 256})
        native = profile_run(
            prog, setup.args, none_plan(), runtime=setup.runtime
        ).total_time()
        default = profile_run(
            prog, setup.args, default_filter_plan(prog), runtime=setup.runtime
        ).total_time()
        full = profile_run(
            prog, setup.args, full_plan(prog), runtime=setup.runtime
        ).total_time()
        taint = profile_run(
            prog,
            setup.args,
            taint_filter_plan(prog, milc_taint, milc_static),
            runtime=setup.runtime,
        ).total_time()
        assert default / native > 0.85 * (full / native)
        assert taint / native < 1.15


class TestQualityB1:
    """B1: the taint prior removes noise-induced false dependencies."""

    def test_hybrid_removes_false_dependencies(self, lulesh_run):
        false_by_fn = HybridModeler.false_dependency_report(lulesh_run.models)
        # black-box modeling produces several false dependencies...
        assert len(false_by_fn) >= 3
        # ...and every hybrid model is free of taint-refuted parameters.
        for fn, cmp in lulesh_run.models.items():
            if fn == APP_KEY or cmp.prior is None:
                continue
            allowed = cmp.prior.allowed_params
            if cmp.prior.forced_constant:
                assert cmp.hybrid.is_constant, fn
            elif allowed is not None:
                assert cmp.hybrid.used_parameters() <= allowed, fn

    def test_kernel_models_match_ground_truth(self, lulesh_run):
        """IntegrateStressForElems has true exclusive volume ~ size^3."""
        cmp = lulesh_run.models.get("IntegrateStressForElems")
        assert cmp is not None
        pred_ratio = cmp.hybrid.predict_one(
            {"p": 64, "size": 28}
        ) / cmp.hybrid.predict_one({"p": 64, "size": 14})
        assert pred_ratio == pytest.approx(8.0, rel=0.35)

    def test_no_contention_findings_without_contention(self, lulesh_run):
        assert lulesh_run.contention_findings == []


class TestIntrusionB2:
    """B2: instrumentation changes the measured model of CalcQForElems."""

    def test_default_filter_misses_calcq(self, lulesh_workload):
        """'The default Score-P filter does not instrument this function,
        leading to false-negative result.'"""
        plan = default_filter_plan(lulesh_workload.program())
        assert not plan.is_instrumented("CalcQForElems")

    def test_taint_filter_keeps_calcq(
        self, lulesh_workload, lulesh_static, lulesh_taint
    ):
        plan = taint_filter_plan(
            lulesh_workload.program(), lulesh_taint, lulesh_static
        )
        assert plan.is_instrumented("CalcQForElems")

    def test_filtered_model_is_multiplicative(self, lulesh_run):
        cmp = lulesh_run.models.get("CalcQForElems")
        assert cmp is not None
        # the pack loop is size^2 * p^0.25: both parameters survive in a
        # product term of the hybrid model
        multi_terms = [
            t for t in cmp.hybrid.terms if len(t.uses()) == 2
        ]
        assert multi_terms, cmp.hybrid.format()


class TestContentionC1:
    """C1: co-located ranks produce log2(r)-family models on kernels that
    taint proves r-independent."""

    @pytest.fixture(scope="class")
    def r_sweep(self):
        wl = LuleshWorkload(parameters=("r",))
        pipe = PerfTaintPipeline(
            workload=wl,
            repetitions=3,
            seed=5,
            contention=LogQuadraticContention(beta=0.06),
        )
        static, taint, volumes, deps, cls = pipe.analyze()
        plan = pipe.plan_for(InstrumentationMode.TAINT_FILTER, taint, static)
        design = [
            {"r": r, "p": 64, "size": 16} for r in (2, 4, 6, 8, 12, 16, 18)
        ]
        meas, _ = pipe.measure(design, plan)
        models = pipe.model(meas, taint, volumes, compare_black_box=True)
        findings = pipe.validate(meas, models, taint)
        return meas, models, findings

    def test_contention_detected(self, r_sweep):
        _meas, _models, findings = r_sweep
        assert len(findings) >= 5
        flagged = {f.function for f in findings}
        assert "CalcHourglassControlForElems" in flagged  # Fig. 5 headline

    def test_models_are_log_family(self, r_sweep):
        _meas, models, findings = r_sweep
        flagged = {f.function for f in findings}
        for fn in flagged & {"CalcHourglassControlForElems", APP_KEY}:
            model = models[fn].black_box or models[fn].hybrid
            text = model.format()
            assert "r" in text and ("log2(r)" in text or "r^" in text)

    def test_app_slowdown_magnitude(self, r_sweep):
        """Paper: ~50% application slowdown from r=2 to r=18."""
        meas, _models, _findings = r_sweep
        t2 = np.mean(meas.repetitions(APP_KEY, (2.0,)))
        t18 = np.mean(meas.repetitions(APP_KEY, (18.0,)))
        assert 1.2 < t18 / t2 < 2.5


class TestValidityC2:
    """C2: the MILC gather algorithm switch is flagged as segmented."""

    def test_gather_switch_detected(self, milc_workload):
        findings = detect_segmented_behavior(
            milc_workload.program(),
            [
                {"p": 4, "size": 16},
                {"p": 8, "size": 16},
                {"p": 32, "size": 16},
            ],
            milc_workload.setup,
            milc_workload.sources(),
            library_taint=__import__(
                "repro.libdb", fromlist=["MPI_DATABASE"]
            ).MPI_DATABASE,
        )
        gather = [f for f in findings if f.function == "do_gather"]
        assert len(gather) == 1
        assert gather[0].params == frozenset({"p"})

    def test_no_flag_within_one_regime(self, milc_workload):
        from repro.libdb import MPI_DATABASE

        findings = detect_segmented_behavior(
            milc_workload.program(),
            [{"p": 16, "size": 16}, {"p": 64, "size": 16}],
            milc_workload.setup,
            milc_workload.sources(),
            library_taint=MPI_DATABASE,
        )
        assert all(f.function != "do_gather" for f in findings)


class TestDesignReductionA:
    """A1/A2: parameter pruning and design reduction."""

    def test_lulesh_six_to_two_parameters(self, lulesh_run):
        # modeled parameters are p and size; iters etc. never enter models
        for fn, cmp in lulesh_run.models.items():
            assert cmp.hybrid.used_parameters() <= {"p", "size"}

    def test_pipeline_summary_renders(self, lulesh_run):
        from repro.core import render_summary

        text = render_summary("lulesh", lulesh_run)
        assert "Functions" in text and "hybrid model" in text
