"""CFG, dominator, and natural-loop tests."""

import pytest

from repro.ir import ProgramBuilder, build_cfg, var
from repro.ir.dominators import dominates, dominators, immediate_dominators
from repro.ir.loops import find_natural_loops, loop_forest


def build_fn(populate):
    pb = ProgramBuilder()
    with pb.function("f", ["n"]) as f:
        populate(f)
    return pb.build(entry="f").function("f")


class TestCFG:
    def test_straight_line(self):
        fn = build_fn(lambda f: (f.assign("a", 1), f.assign("b", 2)))
        cfg = build_cfg(fn)
        assert cfg.entry in cfg.blocks and cfg.exit in cfg.blocks
        assert cfg.exit in cfg.reachable()

    def test_if_has_two_paths(self):
        def body(f):
            with f.if_(var("n")):
                f.assign("a", 1)
            with f.else_():
                f.assign("a", 2)

        cfg = build_cfg(build_fn(body))
        # Some block has two successors (the condition block).
        assert any(len(b.succs) == 2 for b in cfg.blocks.values())

    def test_for_creates_header_with_loop_id(self):
        def body(f):
            with f.for_("i", 0, f.var("n")):
                f.work(1)

        cfg = build_cfg(build_fn(body))
        headers = [b for b in cfg.blocks.values() if b.kind == "loop_header"]
        assert len(headers) == 1
        assert headers[0].loop_id == 0
        assert headers[0].cond is not None

    def test_return_jumps_to_exit(self):
        def body(f):
            f.ret(1)
            f.assign("dead", 1)  # unreachable

        cfg = build_cfg(build_fn(body))
        assert cfg.exit in cfg.reachable()

    def test_break_exits_loop(self):
        def body(f):
            with f.for_("i", 0, f.var("n")):
                f.brk()

        cfg = build_cfg(build_fn(body))
        assert cfg.exit in cfg.reachable()

    def test_continue_targets_latch(self):
        def body(f):
            with f.for_("i", 0, f.var("n")):
                f.cont()

        cfg = build_cfg(build_fn(body))
        forest = find_natural_loops(cfg)
        assert len(forest.loops) == 1


class TestDominators:
    def test_entry_dominates_all(self):
        def body(f):
            with f.for_("i", 0, f.var("n")):
                f.work(1)

        cfg = build_cfg(build_fn(body))
        idom = immediate_dominators(cfg)
        for bid in idom:
            assert dominates(idom, cfg.entry, cfg.entry, bid)

    def test_idom_of_entry_is_itself(self):
        cfg = build_cfg(build_fn(lambda f: f.assign("a", 1)))
        idom = immediate_dominators(cfg)
        assert idom[cfg.entry] == cfg.entry

    def test_full_dominator_sets_contain_self(self):
        def body(f):
            with f.if_(var("n")):
                f.assign("a", 1)

        cfg = build_cfg(build_fn(body))
        doms = dominators(cfg)
        for bid, ds in doms.items():
            assert bid in ds
            assert cfg.entry in ds

    def test_branch_blocks_do_not_dominate_join(self):
        def body(f):
            with f.if_(var("n")):
                f.assign("a", 1)
            with f.else_():
                f.assign("a", 2)
            f.assign("b", 3)

        cfg = build_cfg(build_fn(body))
        doms = dominators(cfg)
        # The join block's dominators exclude both branch bodies.
        # Find two blocks with a common successor that both contain stores.
        joins = [
            bid
            for bid in doms
            if len(cfg.preds(bid)) >= 2 and bid != cfg.exit
        ]
        assert joins, "expected a join block"


class TestNaturalLoops:
    def test_single_loop(self):
        def body(f):
            with f.for_("i", 0, f.var("n")):
                f.work(1)

        forest = loop_forest(build_fn(body))
        assert len(forest.loops) == 1
        assert forest.is_reducible
        assert forest.loops[0].ast_loop_id == 0

    def test_nested_loops_parenting(self):
        def body(f):
            with f.for_("i", 0, f.var("n")):
                with f.for_("j", 0, f.var("n")):
                    f.work(1)

        forest = loop_forest(build_fn(body))
        assert len(forest.loops) == 2
        by_ast = forest.by_ast_id()
        inner, outer = by_ast[1], by_ast[0]
        inner_idx = forest.loops.index(inner)
        assert forest.nesting_depth(inner_idx) == 2
        assert inner.body < outer.body

    def test_sequential_loops_are_siblings(self):
        def body(f):
            with f.for_("i", 0, f.var("n")):
                f.work(1)
            with f.for_("j", 0, f.var("n")):
                f.work(1)

        forest = loop_forest(build_fn(body))
        assert len(forest.roots()) == 2

    def test_while_loop_detected(self):
        def body(f):
            f.assign("i", 0)
            with f.while_(var("i")):
                f.assign("i", 1)

        forest = loop_forest(build_fn(body))
        assert len(forest.loops) == 1

    def test_triple_nest_depths(self):
        def body(f):
            with f.for_("i", 0, f.var("n")):
                with f.for_("j", 0, f.var("n")):
                    with f.for_("k", 0, f.var("n")):
                        f.work(1)

        forest = loop_forest(build_fn(body))
        depths = sorted(
            forest.nesting_depth(i) for i in range(len(forest.loops))
        )
        assert depths == [1, 2, 3]

    def test_loop_with_branch_inside(self):
        def body(f):
            with f.for_("i", 0, f.var("n")):
                with f.if_(var("i")):
                    f.work(1)

        forest = loop_forest(build_fn(body))
        assert len(forest.loops) == 1
        assert forest.is_reducible

    def test_structured_programs_always_reducible(self, lulesh_program):
        for fn in lulesh_program:
            assert loop_forest(fn).is_reducible, fn.name
