"""Expression node tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.expr import (
    BINARY_OPS,
    BinOp,
    Call,
    Const,
    Intrinsic,
    Load,
    UnOp,
    Var,
)


class TestConst:
    def test_free_vars_empty(self):
        assert Const(3).free_vars() == frozenset()

    def test_children_empty(self):
        assert Const(3).children() == ()

    def test_equality(self):
        assert Const(3) == Const(3)
        assert Const(3) != Const(4)


class TestVar:
    def test_free_vars(self):
        assert Var("x").free_vars() == frozenset({"x"})

    def test_equality(self):
        assert Var("x") == Var("x")
        assert Var("x") != Var("y")


class TestBinOp:
    def test_free_vars_union(self):
        e = BinOp("+", Var("a"), BinOp("*", Var("b"), Const(2)))
        assert e.free_vars() == frozenset({"a", "b"})

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            BinOp("@@", Var("a"), Var("b"))

    @given(st.sampled_from(sorted(BINARY_OPS)))
    def test_all_listed_ops_construct(self, op):
        BinOp(op, Const(1), Const(2))

    def test_walk_preorder(self):
        e = BinOp("+", Var("a"), Const(1))
        nodes = list(e.walk())
        assert nodes[0] is e
        assert Var("a") in nodes and Const(1) in nodes


class TestUnOp:
    def test_neg_free_vars(self):
        assert UnOp("-", Var("x")).free_vars() == frozenset({"x"})

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            UnOp("~", Var("x"))


class TestLoad:
    def test_free_vars_include_array(self):
        e = Load("arr", Var("i"))
        assert e.free_vars() == frozenset({"arr", "i"})


class TestCall:
    def test_args_tuplified(self):
        c = Call("f", [Var("x")])
        assert isinstance(c.args, tuple)

    def test_free_vars(self):
        c = Call("f", (Var("x"), Const(2), Var("y")))
        assert c.free_vars() == frozenset({"x", "y"})

    def test_no_args(self):
        assert Call("f").free_vars() == frozenset()


class TestIntrinsic:
    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            Intrinsic("frobnicate", (Const(1),))

    def test_cost_flags(self):
        assert Intrinsic("work", (Const(1),)).is_cost
        assert Intrinsic("mem_work", (Const(1),)).is_cost
        assert not Intrinsic("log2", (Const(1),)).is_cost

    def test_free_vars(self):
        e = Intrinsic("work", (BinOp("*", Var("n"), Const(3)),))
        assert e.free_vars() == frozenset({"n"})
