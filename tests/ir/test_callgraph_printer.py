"""Call graph and pretty-printer tests."""

import pytest

from repro.errors import IRError
from repro.ir import ProgramBuilder, build_callgraph, call, var
from repro.ir.printer import format_expr, format_function, format_program


def linear_chain():
    pb = ProgramBuilder()
    with pb.function("c", []) as f:
        f.work(1)
    with pb.function("b", []) as f:
        f.call("c")
    with pb.function("a", []) as f:
        f.call("b")
        f.call("MPI_Barrier")
    return pb.build(entry="a")


def recursive_program():
    pb = ProgramBuilder()
    with pb.function("f", ["n"]) as f:
        with f.if_(var("n")):
            f.call("f", 0)
    return pb.build(entry="f")


class TestCallGraph:
    def test_edges(self):
        cg = build_callgraph(linear_chain())
        assert cg.callees("a") == frozenset({"b"})
        assert cg.callers("c") == frozenset({"b"})

    def test_externals(self):
        cg = build_callgraph(linear_chain())
        assert cg.externals_of("a") == frozenset({"MPI_Barrier"})
        assert cg.transitive_externals("a") == frozenset({"MPI_Barrier"})

    def test_no_recursion(self):
        cg = build_callgraph(linear_chain())
        assert not cg.has_recursion
        assert cg.recursive_functions() == frozenset()

    def test_self_recursion_detected(self):
        cg = build_callgraph(recursive_program())
        assert cg.has_recursion
        assert "f" in cg.recursive_functions()

    def test_mutual_recursion_detected(self):
        pb = ProgramBuilder()
        with pb.function("even", ["n"]) as f:
            f.call("odd", var("n"))
        with pb.function("odd", ["n"]) as f:
            f.call("even", var("n"))
        with pb.function("main", []) as f:
            f.call("even", 4)
        cg = build_callgraph(pb.build(entry="main"))
        assert cg.recursive_functions() == frozenset({"even", "odd"})

    def test_topological_order_callee_first(self):
        cg = build_callgraph(linear_chain())
        order = cg.topological_order()
        assert order.index("c") < order.index("b") < order.index("a")

    def test_topological_order_raises_on_recursion(self):
        cg = build_callgraph(recursive_program())
        with pytest.raises(IRError):
            cg.topological_order()

    def test_reachable_from(self):
        cg = build_callgraph(linear_chain())
        assert cg.reachable_from("b") == frozenset({"b", "c"})

    def test_lulesh_acyclic(self, lulesh_program):
        assert not build_callgraph(lulesh_program).has_recursion


class TestPrinter:
    def test_expr_minimal_parens(self):
        from repro.ir.builder import add, mul

        text = format_expr(mul(add(var("a"), 1), var("b")))
        assert text == "(a + 1) * b"

    def test_expr_no_redundant_parens(self):
        from repro.ir.builder import add, mul

        text = format_expr(add(mul(var("a"), 2), var("b")))
        assert text == "a * 2 + b"

    def test_function_renders_loops_and_ids(self):
        prog = linear_chain()
        pb = ProgramBuilder()
        with pb.function("k", ["n"]) as f:
            with f.for_("i", 0, f.var("n")):
                f.work(3)
        prog = pb.build(entry="k")
        text = format_function(prog.function("k"))
        assert "for i in" in text
        assert "# loop 0" in text
        assert "@work(3" in text

    def test_program_round_stability(self):
        prog = linear_chain()
        assert format_program(prog) == format_program(prog)

    def test_program_entry_first(self):
        text = format_program(linear_chain())
        assert text.index("def a(") < text.index("def b(")

    def test_call_format(self):
        assert format_expr(call("f", var("x"), 2)) == "f(x, 2)"
