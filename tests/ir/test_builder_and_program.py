"""Builder and Program tests."""

import pytest

from repro.errors import IRError, IRValidationError
from repro.ir import (
    Function,
    Program,
    ProgramBuilder,
    add,
    call,
    iter_branches,
    iter_loops,
    mul,
    var,
    work,
)
from repro.ir.stmt import Assign, Break, For, If, Return, While, assigned_names


def simple_program():
    pb = ProgramBuilder()
    with pb.function("helper", ["x"]) as f:
        f.ret(mul(var("x"), 2))
    with pb.function("main", ["n"]) as f:
        with f.for_("i", 0, f.var("n")):
            f.work(1)
        with f.if_(var("n")):
            f.assign("y", call("helper", var("n")))
        f.ret(f.var("n"))
    return pb.build(entry="main")


class TestBuilder:
    def test_builds_finalized_program(self):
        prog = simple_program()
        assert prog.entry == "main"
        assert "helper" in prog

    def test_loop_ids_assigned(self):
        prog = simple_program()
        loops = prog.function("main").loops()
        assert [l.loop_id for l in loops] == [0]

    def test_branch_ids_assigned(self):
        prog = simple_program()
        branches = prog.function("main").branches()
        assert [b.branch_id for b in branches] == [0]

    def test_nested_blocks(self):
        pb = ProgramBuilder()
        with pb.function("f", ["n"]) as f:
            with f.for_("i", 0, f.var("n")):
                with f.for_("j", 0, f.var("i")):
                    f.work(1)
        prog = pb.build(entry="f")
        assert len(prog.function("f").loops()) == 2

    def test_else_branch(self):
        pb = ProgramBuilder()
        with pb.function("f", ["n"]) as f:
            with f.if_(var("n")):
                f.assign("x", 1)
            with f.else_():
                f.assign("x", 2)
        prog = pb.build(entry="f")
        branch = prog.function("f").branches()[0]
        assert branch.then_body and branch.else_body

    def test_else_without_if_raises(self):
        pb = ProgramBuilder()
        with pytest.raises(IRError):
            with pb.function("f", []) as f:
                with f.else_():
                    pass

    def test_while_loop(self):
        pb = ProgramBuilder()
        with pb.function("f", ["n"]) as f:
            f.assign("i", 0)
            with f.while_(var("i")):
                f.assign("i", add(var("i"), 1))
        prog = pb.build(entry="f")
        assert isinstance(prog.function("f").loops()[0], While)


class TestProgram:
    def test_duplicate_function_rejected(self):
        fn = Function("f", (), [Return(None)])
        with pytest.raises(IRError):
            Program.build([fn, Function("f", (), [])], entry="f")

    def test_missing_entry_rejected(self):
        fn = Function("f", (), [])
        with pytest.raises(IRError):
            Program.build([fn], entry="nope")

    def test_duplicate_params_rejected(self):
        with pytest.raises(IRError):
            Function("f", ("a", "a"), [])

    def test_external_callees(self):
        pb = ProgramBuilder()
        with pb.function("main", []) as f:
            f.call("MPI_Barrier")
        prog = pb.build(entry="main")
        assert prog.external_callees() == frozenset({"MPI_Barrier"})

    def test_counts(self):
        prog = simple_program()
        assert prog.function_count() == 2
        assert prog.loop_count() == 1

    def test_callees(self):
        prog = simple_program()
        assert prog.function("main").callees() == frozenset({"helper"})


class TestValidation:
    def test_break_outside_loop_rejected(self):
        fn = Function("f", (), [Break()])
        with pytest.raises(IRValidationError):
            Program.build([fn], entry="f")

    def test_break_inside_loop_ok(self):
        from repro.ir.expr import Const, Var

        loop = For("i", Const(0), Const(10), Const(1), [Break()])
        Program.build([Function("f", (), [loop])], entry="f")

    def test_arity_mismatch_rejected(self):
        pb = ProgramBuilder()
        with pb.function("helper", ["a", "b"]) as f:
            f.ret(var("a"))
        with pb.function("main", []) as f:
            f.call("helper", 1)
        with pytest.raises(IRValidationError):
            pb.build(entry="main")


class TestStmtHelpers:
    def test_iter_loops_nested(self):
        prog = simple_program()
        pb = ProgramBuilder()
        with pb.function("f", ["n"]) as f:
            with f.for_("i", 0, f.var("n")):
                with f.if_(var("i")):
                    with f.for_("j", 0, f.var("i")):
                        f.work(1)
        prog = pb.build(entry="f")
        assert len(list(iter_loops(prog.function("f").body))) == 2
        assert len(list(iter_branches(prog.function("f").body))) == 1

    def test_assigned_names(self):
        pb = ProgramBuilder()
        with pb.function("f", ["n"]) as f:
            f.assign("a", 1)
            with f.for_("i", 0, f.var("n")):
                f.store("arr", 0, 1)
        prog = pb.build(entry="f")
        names = assigned_names(prog.function("f").body)
        assert names == frozenset({"a", "i", "arr"})
