"""Broker + worker: bit-identity under any worker count or failure.

The service's headline invariant, as a property test: for random
designs, any number of workers, any chunking, and injected crashes or
failures, the distributed measure stage returns ``Measurements``
bit-identical to the serial :class:`ExperimentRunner` — crash recovery
may duplicate work, but it can never change a bit of the output.
"""

from __future__ import annotations

import json
import random
import threading

import pytest

from repro.apps.synthetic import (
    SyntheticWorkload,
    build_additive_example,
    build_foo_example,
    build_multiplicative_example,
)
from repro.errors import LeaseTimeout, ServiceError
from repro.measure import (
    ExperimentRunner,
    full_factorial,
    full_plan,
    measurements_to_dict,
)
from repro.measure.batched import BatchedExperimentRunner
from repro.measure.noise import GaussianNoise
from repro.mpisim.contention import LogQuadraticContention, NoContention
from repro.service import (
    Broker,
    BrokerScheduler,
    LocalBrokerTransport,
    LocalStore,
    Worker,
)


def canonical(measurements) -> str:
    return json.dumps(measurements_to_dict(measurements), sort_keys=True)


BUILDERS = {
    "foo": (build_foo_example, ("a", "b")),
    "additive": (build_additive_example, ("p", "s")),
    "multiplicative": (build_multiplicative_example, ("p", "s")),
}


def make_workload(name: str) -> SyntheticWorkload:
    builder, params = BUILDERS[name]
    return SyntheticWorkload(builder=builder, parameters=params, name=name)


def random_design(params, rng: random.Random, n: int) -> list[dict]:
    grid = full_factorial(
        {p: [float(v) for v in range(2, 7)] for p in params}
    )
    return rng.sample(grid, n)


def run_distributed(
    workload,
    design,
    plan,
    *,
    engine="compiled",
    n_workers=2,
    store=None,
    lease_ttl=10.0,
    max_attempts=3,
    chunk_size=None,
    faults=(),
    timeout=60.0,
    **kw,
):
    """One distributed measure run over in-process worker threads.

    *faults* maps worker slots to fault specs (e.g. ``{0: "crash:1"}``).
    Returns (measurements, profiles, scheduler, worker stats list).
    """
    broker = Broker(
        store=store,
        lease_ttl=lease_ttl,
        max_attempts=max_attempts,
        chunk_size=chunk_size,
        workers_hint=n_workers,
    )
    scheduler = BrokerScheduler(broker, timeout=timeout)
    stop = threading.Event()
    workers = [
        Worker(
            LocalBrokerTransport(broker),
            worker_id=f"w{i}",
            poll_interval=0.01,
            fault=dict(faults).get(i),
        )
        for i in range(n_workers)
    ]
    stats = [None] * n_workers
    threads = []
    for i, worker in enumerate(workers):
        def run(i=i, worker=worker):
            stats[i] = worker.run(stop)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        threads.append(thread)
    try:
        measurements, profiles = scheduler.run_measure(
            workload,
            design,
            plan,
            engine=engine,
            **kw,
        )
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
    return measurements, profiles, scheduler, stats


class TestBitIdentity:
    @pytest.mark.parametrize("app", sorted(BUILDERS))
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_matches_serial_for_any_worker_count(self, app, n_workers):
        rng = random.Random(hash((app, n_workers)) & 0xFFFF)
        workload = make_workload(app)
        design = random_design(workload.parameters, rng, 5)
        plan = full_plan(workload.program())
        kw = dict(
            noise=GaussianNoise(),
            contention=LogQuadraticContention(beta=0.04),
            repetitions=3,
            seed=rng.randrange(100),
        )
        serial, serial_profiles = ExperimentRunner(
            workload=workload, plan=plan, **kw
        ).run(design)
        distributed, profiles, scheduler, _ = run_distributed(
            workload,
            design,
            plan,
            n_workers=n_workers,
            chunk_size=rng.choice([None, 1, 2]),
            **kw,
        )
        assert canonical(distributed) == canonical(serial)
        assert set(profiles) == set(serial_profiles)
        assert scheduler.last_stats.executed == len(design)

    @pytest.mark.parametrize(
        "faults",
        [{0: "crash:1"}, {0: "fail:1"}, {0: "crash:1", 1: "fail:1"}],
        ids=["crash", "fail", "crash+fail"],
    )
    def test_matches_serial_under_injected_faults(self, faults):
        # A short TTL turns the crashed worker's silence into a requeue
        # quickly; the healthy worker finishes the job.  Output must not
        # change by a single bit.
        rng = random.Random(7)
        workload = make_workload("additive")
        design = random_design(workload.parameters, rng, 6)
        plan = full_plan(workload.program())
        kw = dict(
            noise=GaussianNoise(),
            contention=NoContention(),
            repetitions=2,
            seed=3,
        )
        serial, _ = ExperimentRunner(
            workload=workload, plan=plan, **kw
        ).run(design)
        distributed, _, _, stats = run_distributed(
            workload,
            design,
            plan,
            n_workers=3,
            chunk_size=1,
            lease_ttl=0.3,
            faults=faults,
            **kw,
        )
        assert canonical(distributed) == canonical(serial)
        # A worker with a crash fault dies on its first claim — but only
        # if it won a claim at all before the healthy workers drained
        # the queue (scheduling-dependent), so assert conditionally.
        for slot, spec in faults.items():
            if spec.startswith("crash") and stats[slot].claimed >= 1:
                assert stats[slot].crashed

    def test_vectorized_engine_runs_leases_as_batches(self):
        # A supports_batch engine routes whole leases through
        # run_batch_configurations; results must equal the batched
        # runner's (itself bit-identical to serial).
        workload = make_workload("multiplicative")
        design = full_factorial({"p": [2.0, 3.0], "s": [4.0, 5.0]})
        plan = full_plan(workload.program())
        kw = dict(
            noise=GaussianNoise(),
            contention=NoContention(),
            repetitions=3,
            seed=5,
        )
        batched, _ = BatchedExperimentRunner(
            workload=workload, plan=plan, engine="vectorized", **kw
        ).run(design)
        distributed, _, _, stats = run_distributed(
            workload, design, plan, engine="vectorized", n_workers=2, **kw
        )
        assert canonical(distributed) == canonical(batched)
        # Leases carried more than one configuration each (batch path).
        done = [s for s in stats if s is not None]
        assert sum(s.configurations for s in done) == len(design)
        assert sum(s.completed for s in done) < len(design)


class TestStoreDedupe:
    def test_second_submission_executes_nothing(self, tmp_path):
        workload = make_workload("foo")
        design = full_factorial({"a": [2.0, 3.0], "b": [4.0, 5.0]})
        plan = full_plan(workload.program())
        store = LocalStore(tmp_path / "store")
        kw = dict(
            noise=GaussianNoise(),
            contention=NoContention(),
            repetitions=2,
            seed=0,
        )
        first, _, sched1, _ = run_distributed(
            workload, design, plan, store=store, **kw
        )
        assert sched1.last_stats.executed == len(design)
        assert len(store.keys("runs")) == len(design)

        # A *different* broker over the same store: full cache hit, no
        # workers even needed.
        broker2 = Broker(store=store)
        sched2 = BrokerScheduler(broker2, timeout=5.0)
        second, _ = sched2.run_measure(
            workload, design, plan, engine="compiled", **kw
        )
        assert sched2.last_stats.executed == 0
        assert sched2.last_stats.cached == len(design)
        assert canonical(second) == canonical(first)

    def test_fingerprints_isolate_different_seeds(self, tmp_path):
        workload = make_workload("foo")
        design = [{"a": 2.0, "b": 3.0}]
        plan = full_plan(workload.program())
        store = LocalStore(tmp_path / "store")
        kw = dict(
            noise=GaussianNoise(), contention=NoContention(), repetitions=2
        )
        run_distributed(workload, design, plan, store=store, seed=0, **kw)
        _, _, sched, _ = run_distributed(
            workload, design, plan, store=store, seed=1, **kw
        )
        assert sched.last_stats.executed == 1  # different seed: no hit


class TestFaultHandling:
    def test_exhausted_lease_raises_named_timeout(self):
        # Every worker crashes on its first lease; with max_attempts=2
        # the second reap poisons the job.
        workload = make_workload("foo")
        design = [{"a": 2.0, "b": 3.0}]
        plan = full_plan(workload.program())
        with pytest.raises(LeaseTimeout) as err:
            run_distributed(
                workload,
                design,
                plan,
                n_workers=2,
                lease_ttl=0.2,
                max_attempts=2,
                faults={0: "crash:1", 1: "crash:1"},
                timeout=30.0,
                noise=GaussianNoise(),
                contention=NoContention(),
                repetitions=2,
                seed=0,
            )
        message = str(err.value)
        assert "L" in message and "J" in message  # lease + job named
        assert "attempt" in message
        assert "resubmit" in message  # actionable: cache keeps progress

    def test_failed_lease_requeues_and_completes(self):
        # fail:1 reports failure immediately (no TTL wait); the lease is
        # requeued and completed on a later attempt.
        workload = make_workload("foo")
        design = [{"a": 2.0, "b": 3.0}, {"a": 4.0, "b": 5.0}]
        plan = full_plan(workload.program())
        kw = dict(
            noise=GaussianNoise(),
            contention=NoContention(),
            repetitions=2,
            seed=0,
        )
        serial, _ = ExperimentRunner(
            workload=workload, plan=plan, **kw
        ).run(design)
        distributed, _, _, stats = run_distributed(
            workload,
            design,
            plan,
            n_workers=1,
            chunk_size=1,
            faults={0: "fail:1"},
            **kw,
        )
        assert canonical(distributed) == canonical(serial)
        assert stats[0].failed == 1

    def test_wait_timeout_mentions_workers(self):
        workload = make_workload("foo")
        plan = full_plan(workload.program())
        broker = Broker()  # nobody attached
        scheduler = BrokerScheduler(broker, timeout=0.2)
        with pytest.raises(ServiceError, match="workers"):
            scheduler.run_measure(
                workload,
                [{"a": 2.0, "b": 3.0}],
                plan,
                noise=GaussianNoise(),
                contention=NoContention(),
                repetitions=1,
                seed=0,
                engine="compiled",
            )


class TestBrokerSurface:
    def test_claim_on_empty_queue_returns_none(self):
        assert Broker().claim("w0") is None

    def test_complete_rejects_foreign_index(self):
        workload = make_workload("foo")
        plan = full_plan(workload.program())
        broker = Broker(chunk_size=1)
        broker.submit_measure(
            workload,
            [{"a": 2.0, "b": 3.0}, {"a": 3.0, "b": 4.0}],
            plan,
            noise=GaussianNoise(),
            contention=NoContention(),
            repetitions=1,
            seed=0,
            engine="compiled",
        )
        lease = broker.claim("w0")
        foreign = [i for i in (0, 1) if i not in lease["indices"]][0]
        with pytest.raises(ServiceError, match="does not hold"):
            broker.complete(
                lease["lease"], [{"index": foreign, "result": {}}]
            )

    def test_late_completion_of_reaped_lease_is_dropped(self):
        workload = make_workload("foo")
        plan = full_plan(workload.program())
        broker = Broker(lease_ttl=0.05, max_attempts=5)
        broker.submit_measure(
            workload,
            [{"a": 2.0, "b": 3.0}],
            plan,
            noise=GaussianNoise(),
            contention=NoContention(),
            repetitions=1,
            seed=0,
            engine="compiled",
        )
        worker = Worker(LocalBrokerTransport(broker), worker_id="w0")
        lease = broker.claim("w0")
        results = worker.execute(lease)
        import time

        time.sleep(0.1)
        assert broker.queue_depth() == 1  # reaped and requeued
        broker.complete(lease["lease"], results)  # late: dropped, no error
        lease2 = broker.claim("w0")
        assert lease2["attempt"] == 1
        broker.complete(lease2["lease"], worker.execute(lease2))
        measurements, _ = broker.wait(lease2["job"], timeout=5)
        assert measurements.data

    def test_invalid_fault_spec_rejected(self):
        broker = Broker()
        with pytest.raises(ServiceError, match="crash:<n>"):
            Worker(LocalBrokerTransport(broker), fault="explode:now")

    def test_fault_env_var_is_read(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_FAULT", "crash:2")
        broker = Broker()
        worker = Worker(LocalBrokerTransport(broker))
        assert worker.fault == ("crash", 2)
