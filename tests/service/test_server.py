"""The campaign server over real HTTP: submit, poll, resume, recover.

These tests run the stdlib ``ThreadingHTTPServer`` on an ephemeral port
with worker *threads* speaking :class:`HttpBrokerTransport` — every
byte crosses a real socket, exactly as in a multi-host deployment.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.stages import Campaign
from repro.errors import ServiceError
from repro.measure import measurements_to_dict
from repro.service import (
    HttpBrokerTransport,
    RemoteRunCache,
    RemoteStore,
    ServiceClient,
    Worker,
    serve,
)
from repro.service.protocol import PROTOCOL_VERSION, envelope
from repro.service.remote_store import http_json

SPEC = {
    "app": "lulesh",
    "mode": "taint",
    "repetitions": 2,
    "seed": 0,
    "parameters": {"p": [8.0, 27.0], "size": [4.0, 6.0]},
}


@pytest.fixture()
def server(tmp_path):
    httpd = serve(tmp_path / "store", port=0, lease_ttl=2.0)
    threading.Thread(target=httpd.serve_forever, daemon=True).start()
    host, port = httpd.server_address[:2]
    try:
        yield f"http://{host}:{port}", httpd
    finally:
        httpd.shutdown()
        httpd.server_close()


def attach_workers(url, n, stop, **kw):
    threads = []
    for i in range(n):
        worker = Worker(
            HttpBrokerTransport(url),
            worker_id=f"hw{i}",
            poll_interval=0.02,
            **kw,
        )
        thread = threading.Thread(
            target=worker.run, args=(stop,), daemon=True
        )
        thread.start()
        threads.append(thread)
    return threads


class TestCampaignLifecycle:
    def test_submit_resume_and_artifacts(self, server, tmp_path):
        url, _httpd = server
        client = ServiceClient(url)
        assert client.health()["status"] == "ok"

        stop = threading.Event()
        attach_workers(url, 2, stop)
        try:
            first_id = client.submit(SPEC)
            first = client.wait(first_id, timeout=120)
            assert first["state"] == "done"
            assert set(first["stages"].values()) == {"computed"}
            assert first["profile_executions"] == 4

            # Identical second submission: every stage resumes from the
            # shared store, zero profile executions anywhere.
            second = client.wait(client.submit(SPEC), timeout=120)
            assert second["state"] == "done"
            assert set(second["stages"].values()) == {"resumed"}
            assert second["profile_executions"] == 0
            assert second["fingerprints"] == first["fingerprints"]

            # Distributed fingerprints equal local ones (the scheduler
            # is not part of any stage identity), so the measure
            # artifact is byte-shared with a purely local campaign.
            local = Campaign.from_spec(
                SPEC, workspace=tmp_path / "local-ws"
            )
            local_result = local.run()
            assert local.fingerprints == first["fingerprints"]

            artifact = client.artifact(first_id, "measure")
            assert artifact["stage"] == "measure"
            assert artifact["fingerprint"] == first["fingerprints"]["measure"]
            wire_measure = artifact["payload"]["measurements"]
            assert wire_measure == json.loads(
                json.dumps(
                    measurements_to_dict(local_result.measurements)
                )
            )
        finally:
            stop.set()

    def test_worker_death_mid_campaign_recovers(self, server):
        url, _httpd = server
        client = ServiceClient(url)
        stop = threading.Event()
        # One worker dies holding its first lease; one healthy worker
        # picks up the reaped lease after the 2s TTL.
        attach_workers(url, 1, stop, fault="crash:1")
        attach_workers(url, 1, stop)
        try:
            status = client.wait(client.submit(SPEC), timeout=180)
            assert status["state"] == "done"
            assert status["stages"]["measure"] == "computed"
        finally:
            stop.set()

    def test_bad_spec_rejected_with_spec_error(self, server):
        url, _httpd = server
        client = ServiceClient(url)
        with pytest.raises(ServiceError, match="app"):
            client.submit({"app": "no-such-app", "parameters": {"p": [1.0]}})
        with pytest.raises(ServiceError, match="spec"):
            client.submit({"app": "lulesh", "nonsense_key": 1,
                           "parameters": {"p": [1.0]}})

    def test_unknown_campaign_is_404(self, server):
        url, _httpd = server
        with pytest.raises(ServiceError, match="unknown campaign"):
            ServiceClient(url).status("C999")

    def test_unknown_stage_rejected(self, server):
        url, _httpd = server
        with pytest.raises(ServiceError, match="unknown stage"):
            ServiceClient(url).artifact("C999", "transmogrify")


class TestProtocolEnforcement:
    def test_version_skew_rejected(self, server):
        url, _httpd = server
        message = envelope("lease.claim", {"worker": "w0"})
        message["protocol"] = PROTOCOL_VERSION + 1
        status, body = http_json(
            "POST", f"{url}/api/v1/leases/claim", message
        )
        assert status == 400
        assert body["body"]["kind"] == "ProtocolVersionMismatch"

    def test_non_json_body_rejected(self, server):
        url, _httpd = server
        import urllib.request

        request = urllib.request.Request(
            f"{url}/api/v1/campaigns",
            data=b"not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        try:
            urllib.request.urlopen(request)
            raise AssertionError("expected HTTP 400")
        except urllib.error.HTTPError as err:
            assert err.code == 400

    def test_unknown_path_is_404(self, server):
        url, _httpd = server
        status, _ = http_json("GET", f"{url}/api/v1/flux")
        assert status == 404

    def test_unreachable_server_error_is_actionable(self):
        client = ServiceClient("http://127.0.0.1:1")  # nothing listens
        with pytest.raises(ServiceError, match="repro serve"):
            client.health()


class TestRemoteStore:
    def test_get_put_has_round_trip(self, server):
        url, _httpd = server
        store = RemoteStore(url)
        assert not store.has("runs", "deadbeef")
        assert store.get("runs", "deadbeef") is None
        payload = {"values": [0.1, 2.0 / 3.0], "nested": {"a": 1}}
        store.put("runs", "deadbeef", payload)
        assert store.has("runs", "deadbeef")
        assert store.get("runs", "deadbeef") == payload

    def test_invalid_key_rejected_client_side(self, server):
        url, _httpd = server
        store = RemoteStore(url)
        with pytest.raises(ServiceError, match="invalid store"):
            store.put("runs", "../escape", {})

    def test_remote_run_cache_round_trip(self, server):
        from repro.apps.synthetic import (
            SyntheticWorkload,
            build_foo_example,
        )
        from repro.measure import full_plan
        from repro.measure.experiment import run_configuration
        from repro.measure.noise import GaussianNoise
        from repro.mpisim.contention import NoContention

        url, _httpd = server
        workload = SyntheticWorkload(
            builder=build_foo_example, parameters=("a", "b")
        )
        result = run_configuration(
            workload.program(),
            workload.setup({"a": 2.0, "b": 3.0}),
            full_plan(workload.program()),
            GaussianNoise(),
            NoContention(),
            2,
            0,
            (2.0, 3.0),
        )
        cache = RemoteRunCache(RemoteStore(url))
        assert cache.get("fp0") is None
        cache.put("fp0", result)
        loaded = cache.get("fp0")
        assert loaded is not None
        assert loaded.cached is True
        assert loaded.key == result.key
        assert loaded.samples == result.samples

    def test_has_many_is_one_round_trip(self, server):
        url, _httpd = server
        store = RemoteStore(url)
        store.put("runs", "fp-a", {"x": 1})
        store.put("runs", "fp-c", {"x": 3})
        assert store.has_many("runs", ["fp-a", "fp-b", "fp-c"]) == [
            True,
            False,
            True,
        ]
        assert store.has_many("runs", []) == []
        # Same order-preserving answers through the RunCache adapter.
        assert RemoteRunCache(store).has_many(["fp-b", "fp-a"]) == [
            False,
            True,
        ]

    def test_has_many_rejects_malformed_body(self, server):
        url, _httpd = server
        status, body = http_json(
            "POST",
            f"{url}/api/v1/store/runs/has-many",
            envelope("store.has_many", {"keys": "not-a-list"}),
        )
        assert status == 400
        assert "keys" in body["body"]["error"]


class TestTelemetryEndpoint:
    def test_telemetry_over_http(self, server):
        url, _httpd = server
        client = ServiceClient(url)
        stop = threading.Event()
        attach_workers(url, 2, stop)
        try:
            status = client.wait(client.submit(SPEC), timeout=180)
            assert status["state"] == "done"
        finally:
            stop.set()
        telemetry = client.telemetry()
        assert set(telemetry) == {"leases", "workers", "store", "service"}
        assert telemetry["store"]["corrupt_entries"] == 0
        assert telemetry["service"]["restarts"] == 0
        assert telemetry["leases"], "completed leases must be logged"
        assert all(
            r["status"] in ("completed", "failed", "reaped")
            for r in telemetry["leases"]
        )
        names = [w["worker"] for w in telemetry["workers"]]
        assert names == sorted(names)
        assert set(names) <= {"hw0", "hw1"}
        for w in telemetry["workers"]:
            assert w["supports_batch"] is True

    def test_status_cli_prints_telemetry(self, server, capsys):
        from repro.cli import main

        url, _httpd = server
        client = ServiceClient(url)
        stop = threading.Event()
        attach_workers(url, 1, stop)
        try:
            campaign_id = client.submit(SPEC)
            client.wait(campaign_id, timeout=180)
        finally:
            stop.set()
        assert (
            main(
                ["status", campaign_id, "--server", url, "--telemetry"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "workers (" in out
        assert "leases (" in out
        assert "completed" in out
