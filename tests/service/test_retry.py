"""The shared retry/backoff policy: deterministic jitter, typed exhaustion."""

from __future__ import annotations

import pytest

from repro.errors import RetryExhausted, ServiceError, TransientServiceError
from repro.service.retry import (
    ATTEMPTS_ENV,
    BASE_DELAY_ENV,
    MAX_DELAY_ENV,
    DEFAULT_RETRY_POLICY,
    RetryPolicy,
    retry_call,
)


class TestRetryPolicy:
    def test_backoff_schedule_is_deterministic_per_key(self):
        policy = RetryPolicy(max_attempts=5)
        assert policy.backoffs("store.get:runs/abc") == policy.backoffs(
            "store.get:runs/abc"
        )

    def test_different_keys_jitter_differently(self):
        policy = RetryPolicy(max_attempts=6)
        assert policy.backoffs("key-one") != policy.backoffs("key-two")

    def test_schedule_is_bounded_exponential(self):
        policy = RetryPolicy(
            max_attempts=8, base_delay=0.1, max_delay=1.0, jitter=0.25
        )
        schedule = policy.backoffs("k")
        assert len(schedule) == 7
        for attempt, delay in enumerate(schedule):
            ideal = min(1.0, 0.1 * 2.0**attempt)
            assert ideal * 0.75 <= delay <= ideal * 1.25

    def test_zero_jitter_is_exact(self):
        policy = RetryPolicy(
            max_attempts=4, base_delay=0.1, max_delay=10.0, jitter=0.0
        )
        assert policy.backoffs("anything") == [0.1, 0.2, 0.4]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)

    def test_from_env_reads_knobs(self, monkeypatch):
        monkeypatch.setenv(ATTEMPTS_ENV, "7")
        monkeypatch.setenv(BASE_DELAY_ENV, "0.5")
        monkeypatch.setenv(MAX_DELAY_ENV, "9.0")
        policy = RetryPolicy.from_env()
        assert policy.max_attempts == 7
        assert policy.base_delay == 0.5
        assert policy.max_delay == 9.0

    def test_from_env_defaults_match_default_policy(self, monkeypatch):
        monkeypatch.delenv(ATTEMPTS_ENV, raising=False)
        monkeypatch.delenv(BASE_DELAY_ENV, raising=False)
        monkeypatch.delenv(MAX_DELAY_ENV, raising=False)
        assert RetryPolicy.from_env() == DEFAULT_RETRY_POLICY

    def test_explicit_overrides_beat_env(self, monkeypatch):
        monkeypatch.setenv(ATTEMPTS_ENV, "7")
        assert RetryPolicy.from_env(max_attempts=2).max_attempts == 2


class TestRetryCall:
    def test_success_needs_no_sleep(self):
        slept = []
        result = retry_call(
            lambda: 42, key="k", sleep=slept.append
        )
        assert result == 42
        assert slept == []

    def test_transient_failures_are_retried(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientServiceError("connection reset")
            return "ok"

        slept = []
        policy = RetryPolicy(max_attempts=4)
        assert (
            retry_call(flaky, key="k", policy=policy, sleep=slept.append)
            == "ok"
        )
        assert len(calls) == 3
        # The two sleeps are the first two entries of the key's
        # deterministic schedule.
        assert slept == policy.backoffs("k")[:2]

    def test_permanent_errors_propagate_immediately(self):
        calls = []

        def broken():
            calls.append(1)
            raise ServiceError("unknown campaign 'C9'")

        with pytest.raises(ServiceError):
            retry_call(broken, key="k", sleep=lambda _: None)
        assert len(calls) == 1

    def test_exhaustion_raises_typed_error_with_trace(self):
        def always_down():
            raise TransientServiceError("connection refused")

        policy = RetryPolicy(max_attempts=3, base_delay=0.01)
        with pytest.raises(RetryExhausted) as excinfo:
            retry_call(
                always_down, key="store.put:runs/fp", policy=policy,
                sleep=lambda _: None,
            )
        exc = excinfo.value
        assert exc.key == "store.put:runs/fp"
        assert len(exc.attempts) == 3
        assert all(
            "connection refused" in entry["error"] for entry in exc.attempts
        )
        # The final attempt has no backoff (nothing follows it).
        assert exc.attempts[-1]["backoff"] is None
        assert isinstance(exc.__cause__, TransientServiceError)
        assert "store.put:runs/fp" in str(exc)
        # RetryExhausted is itself permanent: nesting retry layers must
        # not multiply attempts.
        assert not isinstance(exc, TransientServiceError)

    def test_single_attempt_policy_never_sleeps(self):
        slept = []
        policy = RetryPolicy(max_attempts=1)
        with pytest.raises(RetryExhausted):
            retry_call(
                lambda: (_ for _ in ()).throw(
                    TransientServiceError("down")
                ),
                key="k",
                policy=policy,
                sleep=slept.append,
            )
        assert slept == []
