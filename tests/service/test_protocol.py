"""Wire protocol: envelopes, the marked codec, workload spec round trips.

Every value the campaign service ships between processes must survive a
JSON round trip *exactly* — the service's bit-identity guarantee starts
here.  These tests always push encoded values through
``json.loads(json.dumps(...))`` so they cover real wire conditions, not
just the in-process dict shapes.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.apps.lulesh import LuleshWorkload
from repro.apps.milc import MilcWorkload
from repro.apps.synthetic import (
    SyntheticWorkload,
    build_foo_example,
    make_scaling_workload,
)
from repro.errors import ProtocolVersionMismatch, ServiceError
from repro.interp.config import ExecConfig
from repro.measure.instrumentation import (
    InstrumentationMode,
    full_plan,
)
from repro.measure.io import program_hash
from repro.measure.noise import GaussianNoise
from repro.measure.parallel import spec_of, workload_repr
from repro.mpisim.contention import LogQuadraticContention
from repro.service.protocol import (
    PROTOCOL_VERSION,
    configs_from_wire,
    configs_to_wire,
    envelope,
    from_wire,
    measure_task_from_wire,
    measure_task_to_wire,
    open_envelope,
    to_wire,
    workload_spec_from_wire,
    workload_spec_to_wire,
)


def wire_trip(value):
    """Encode, push through real JSON, decode."""
    return from_wire(json.loads(json.dumps(to_wire(value))))


# ----------------------------------------------------------------------
# envelopes


class TestEnvelope:
    def test_round_trip(self):
        body = {"x": 1}
        assert open_envelope(envelope("msg", body), "msg") == body

    def test_version_mismatch_is_typed(self):
        bad = envelope("msg", {})
        bad["protocol"] = PROTOCOL_VERSION + 1
        with pytest.raises(ProtocolVersionMismatch) as err:
            open_envelope(bad)
        assert str(PROTOCOL_VERSION) in str(err.value)
        assert str(PROTOCOL_VERSION + 1) in str(err.value)

    def test_missing_version_is_mismatch(self):
        with pytest.raises(ProtocolVersionMismatch):
            open_envelope({"type": "msg", "body": {}})

    def test_wrong_type_rejected(self):
        with pytest.raises(ServiceError, match="unexpected"):
            open_envelope(envelope("other", {}), "msg")

    def test_non_mapping_rejected(self):
        with pytest.raises(ServiceError, match="envelope"):
            open_envelope([1, 2, 3])

    def test_missing_body_rejected(self):
        with pytest.raises(ServiceError, match="body"):
            open_envelope({"protocol": PROTOCOL_VERSION, "type": "msg"})


# ----------------------------------------------------------------------
# the marked value codec


class TestCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -17,
            3.5,
            1e-300,
            "text",
            [1, "two", 3.0],
            (1, (2, 3)),
            {"a": 1, "b": [True, None]},
            {1.5: "float-key"},
            frozenset({"x", "y"}),
            {1, 2, 3},
        ],
    )
    def test_exact_round_trip(self, value):
        result = wire_trip(value)
        assert result == value
        assert type(result) is type(value)

    def test_float_bits_survive(self):
        # repr-based JSON floats are the shortest round-tripping form;
        # equality here is bitwise, not approximate.
        values = [0.1, 2.0 / 3.0, 1.0000000000000002, 5e-324]
        assert wire_trip(values) == values

    def test_tuple_stays_tuple_inside_dict(self):
        value = {"key": (1, 2), "nested": [(3, 4)]}
        result = wire_trip(value)
        assert result["key"] == (1, 2)
        assert result["nested"][0] == (3, 4)

    def test_str_enum_keeps_enum_identity(self):
        # InstrumentationMode subclasses str: the enum branch must win
        # over the primitive branch or modes decode as plain strings.
        for mode in InstrumentationMode:
            result = wire_trip(mode)
            assert result is mode
            assert isinstance(result, InstrumentationMode)

    def test_dataclass_round_trip(self):
        config = ExecConfig()
        result = wire_trip(config)
        assert result == config
        assert isinstance(result, ExecConfig)

    def test_noise_and_contention_round_trip(self):
        noise = GaussianNoise(relative_sigma=0.05, absolute_sigma=17.0)
        contention = LogQuadraticContention(beta=0.06)
        assert wire_trip(noise) == noise
        # Contention models may not define __eq__; compare reprs (repr
        # is what all fingerprints use).
        assert repr(wire_trip(contention)) == repr(contention)

    def test_module_level_callable_by_reference(self):
        assert wire_trip(build_foo_example) is build_foo_example

    def test_local_function_rejected_with_fix(self):
        def local():  # pragma: no cover - never called
            pass

        with pytest.raises(ServiceError, match="module scope"):
            to_wire(local)

    def test_unresolvable_ref_names_module(self):
        with pytest.raises(ServiceError, match="no_such_module"):
            from_wire({"__kind__": "ref", "ref": "no_such_module:thing"})

    def test_missing_attribute_named(self):
        with pytest.raises(ServiceError, match="no attribute"):
            from_wire({"__kind__": "ref", "ref": "json:not_a_thing"})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ServiceError, match="unknown wire value kind"):
            from_wire({"__kind__": "flux-capacitor"})

    def test_unencodable_object_rejected(self):
        with pytest.raises(ServiceError, match="cannot encode"):
            to_wire(object())


# ----------------------------------------------------------------------
# workload specs


WORKLOADS = {
    "lulesh": LuleshWorkload,
    "milc": MilcWorkload,
    "synthetic-foo": lambda: SyntheticWorkload(
        builder=build_foo_example, parameters=("a", "b")
    ),
    "synthetic-scaling": make_scaling_workload,
}


class TestWorkloadSpec:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_round_trip_rebuilds_identical_workload(self, name):
        workload = WORKLOADS[name]()
        spec = spec_of(workload)
        payload = json.loads(json.dumps(workload_spec_to_wire(spec)))
        rebuilt = workload_spec_from_wire(payload).build()
        # Identity is what the cache fingerprints see: same program
        # content, same workload repr (defaults, network, exec config).
        assert workload_repr(rebuilt) == workload_repr(workload)
        assert program_hash(rebuilt.program()) == program_hash(
            workload.program()
        )

    def test_factory_must_resolve_to_callable(self):
        payload = workload_spec_to_wire(spec_of(LuleshWorkload()))
        payload["factory"] = to_wire("not-a-callable")
        with pytest.raises(ServiceError, match="callable"):
            workload_spec_from_wire(payload)


# ----------------------------------------------------------------------
# measure tasks and configurations


class TestMeasureTask:
    def test_round_trip(self):
        workload = LuleshWorkload()
        plan = full_plan(workload.program())
        noise = GaussianNoise(relative_sigma=0.03)
        contention = LogQuadraticContention(beta=0.05)
        wire = measure_task_to_wire(
            workload, plan, noise, contention, 4, 11, "compiled"
        )
        task = measure_task_from_wire(json.loads(json.dumps(wire)))
        assert task.plan == plan
        assert isinstance(task.plan.mode, InstrumentationMode)
        assert task.noise == noise
        assert repr(task.contention) == repr(contention)
        assert (task.repetitions, task.seed, task.engine) == (4, 11, "compiled")
        rebuilt = task.workload_spec.build()
        assert workload_repr(rebuilt) == workload_repr(workload)

    def test_bad_plan_rejected(self):
        workload = LuleshWorkload()
        plan = full_plan(workload.program())
        wire = measure_task_to_wire(
            workload, plan, GaussianNoise(), LogQuadraticContention(), 1, 0,
            "compiled",
        )
        wire["plan"] = to_wire("nonsense")
        with pytest.raises(ServiceError, match="InstrumentationPlan"):
            measure_task_from_wire(wire)

    def test_configs_round_trip_preserves_floats(self):
        configs = [
            {"p": 27.0, "size": 0.1},
            {"p": 2.0 / 3.0, "size": 1e-12},
        ]
        result = configs_from_wire(
            json.loads(json.dumps(configs_to_wire(configs)))
        )
        assert result == configs


def test_dataclasses_used_on_the_wire_are_frozen():
    # The codec rebuilds dataclasses positionally from field dicts;
    # sanity-check the core wire citizens still are dataclasses.
    from repro.measure.instrumentation import InstrumentationPlan

    assert dataclasses.is_dataclass(InstrumentationPlan)
    assert dataclasses.is_dataclass(ExecConfig)
