"""The durable service journal: hash chains, replay, checkpoints."""

from __future__ import annotations

import json

import pytest

from repro.service.journal import (
    BROKER_NAMESPACE,
    CAMPAIGN_NAMESPACE,
    CampaignHistory,
    ServiceJournal,
)
from repro.service.remote_store import LocalStore


@pytest.fixture()
def store(tmp_path):
    return LocalStore(tmp_path / "store")


def record_lifecycle(journal, campaign_id="C1", fail=False):
    journal.record(
        campaign_id,
        "accepted",
        {"spec": {"app": "lulesh", "seed": 0}, "token": "tok-1"},
    )
    journal.record(
        campaign_id,
        "stage",
        {"stage": "static", "status": "computed", "fingerprint": "f" * 64},
    )
    if fail:
        journal.record(campaign_id, "failed", {"error": "boom"})
    else:
        journal.record(
            campaign_id,
            "done",
            {
                "fingerprints": {"static": "f" * 64, "measure": "a" * 64},
                "profile_executions": 4,
                "stats_line": "campaign: 4 runs",
            },
        )


class TestRecordReplay:
    def test_roundtrip_folds_into_history(self, store):
        journal = ServiceJournal(store)
        record_lifecycle(journal)

        histories = ServiceJournal(store).replay()
        assert set(histories) == {"C1"}
        history = histories["C1"]
        assert history.state == "done"
        assert history.terminal
        assert history.spec == {"app": "lulesh", "seed": 0}
        assert history.token == "tok-1"
        assert history.stage_states == {"static": "computed"}
        assert history.fingerprints == {
            "static": "f" * 64,
            "measure": "a" * 64,
        }
        assert history.profile_executions == 4
        assert history.stats_line == "campaign: 4 runs"
        assert history.restarts == 0

    def test_failed_campaign_history(self, store):
        journal = ServiceJournal(store)
        record_lifecycle(journal, fail=True)
        history = ServiceJournal(store).replay()["C1"]
        assert history.state == "failed"
        assert history.terminal
        assert history.error == "boom"

    def test_unfinished_campaign_is_not_terminal(self, store):
        journal = ServiceJournal(store)
        journal.record("C1", "accepted", {"spec": {"app": "lulesh"}})
        journal.record(
            "C1", "stage", {"stage": "static", "status": "computed"}
        )
        history = ServiceJournal(store).replay()["C1"]
        assert history.state == "running"
        assert not history.terminal

    def test_recovered_events_count_restarts(self, store):
        journal = ServiceJournal(store)
        journal.record("C1", "accepted", {"spec": {}})
        journal.record("C1", "recovered", {"incarnation": 2})
        journal.record("C1", "recovered", {"incarnation": 3})
        assert ServiceJournal(store).replay()["C1"].restarts == 2

    def test_unknown_event_rejected(self, store):
        with pytest.raises(ValueError):
            ServiceJournal(store).record("C1", "exploded", {})

    def test_campaigns_sort_numerically(self, store):
        journal = ServiceJournal(store)
        for campaign_id in ("C10", "C2", "C1"):
            journal.record(campaign_id, "accepted", {"spec": {}})
        assert list(ServiceJournal(store).replay()) == ["C1", "C2", "C10"]

    def test_chain_continues_after_replay(self, store):
        journal = ServiceJournal(store)
        journal.record("C1", "accepted", {"spec": {}})
        journal.record(
            "C1", "stage", {"stage": "static", "status": "computed"}
        )

        # A new journal (a restarted server) appends to the same chain.
        second = ServiceJournal(store)
        second.replay()
        second.record("C1", "recovered", {"incarnation": 2})
        second.record("C1", "done", {"fingerprints": {}})

        history = ServiceJournal(store).replay()["C1"]
        assert history.state == "done"
        assert history.restarts == 1
        assert history.last_seq == 3


class TestTamperDetection:
    def test_tampered_entry_truncates_history(self, store):
        journal = ServiceJournal(store)
        record_lifecycle(journal)

        # Flip the stage event's payload without re-fingerprinting.
        key = "C1-000001"
        raw = json.loads(
            (store.root / CAMPAIGN_NAMESPACE / f"{key}.json").read_text()
        )
        raw["payload"]["data"]["fingerprint"] = "0" * 64
        (store.root / CAMPAIGN_NAMESPACE / f"{key}.json").write_text(
            json.dumps(raw)
        )

        fresh = ServiceJournal(store)
        history = fresh.replay()["C1"]
        # Only the verified prefix (the accepted entry) survives; the
        # tampered entry and everything chained after it are dropped.
        assert history.state == "queued"
        assert history.last_seq == 0
        assert fresh.corrupt_entries >= 1

    def test_missing_sequence_number_breaks_the_chain(self, store):
        journal = ServiceJournal(store)
        record_lifecycle(journal)
        (store.root / CAMPAIGN_NAMESPACE / "C1-000001.json").unlink()

        fresh = ServiceJournal(store)
        history = fresh.replay()["C1"]
        assert history.last_seq == 0
        assert fresh.corrupt_entries >= 1

    def test_append_after_truncated_replay_overwrites_garbage(self, store):
        journal = ServiceJournal(store)
        record_lifecycle(journal)
        (store.root / CAMPAIGN_NAMESPACE / "C1-000001.json").unlink()

        fresh = ServiceJournal(store)
        fresh.replay()
        # The chain resumes right after the last verified entry.
        fresh.record("C1", "failed", {"error": "recovered as failed"})
        history = ServiceJournal(store).replay()["C1"]
        assert history.state == "failed"
        assert history.last_seq == 1


class TestCheckpointsAndIncarnations:
    def test_job_checkpoint_roundtrip(self, store):
        journal = ServiceJournal(store)
        assert journal.job_checkpoint("a" * 64) is None
        journal.checkpoint_job(
            "a" * 64, {"job": "J1", "total": 4, "merged": [0, 2]}
        )
        checkpoint = journal.job_checkpoint("a" * 64)
        assert checkpoint["merged"] == [0, 2]

        journal.clear_job("a" * 64)
        assert journal.job_checkpoint("a" * 64) == {"done": True}
        assert store.has(BROKER_NAMESPACE, "a" * 64)

    def test_incarnation_counter(self, store):
        journal = ServiceJournal(store)
        assert journal.incarnation() == 0
        assert journal.bump_incarnation() == 1
        assert journal.bump_incarnation() == 2
        assert ServiceJournal(store).incarnation() == 2

    def test_histories_expose_apply_for_unit_use(self):
        history = CampaignHistory(campaign_id="C7")
        history.apply(
            {"event": "accepted", "data": {"spec": {"app": "lulesh"}}}
        )
        history.apply({"event": "failed", "data": {"error": "x"}})
        assert history.terminal and history.error == "x"
