"""Capability-aware lease sizing, straggler splits, and telemetry.

The broker sizes every lease to the worker that claims it (capability
claim + measured lanes/sec), re-leases straggler tails, and logs
per-lease timing — all without touching the bit-identity contract:
merged ``Measurements`` equal the serial runner's for every worker mix
and failure schedule.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.apps.synthetic import (
    SyntheticWorkload,
    build_additive_example,
)
from repro.errors import ServiceError
from repro.measure import (
    ExperimentRunner,
    full_factorial,
    full_plan,
    measurements_to_dict,
)
from repro.measure.noise import GaussianNoise
from repro.mpisim.contention import NoContention
from repro.service import (
    Broker,
    BrokerScheduler,
    LocalBrokerTransport,
    Worker,
)
from repro.service.worker import FAULT_ENV, SLOW_ENV


def canonical(measurements) -> str:
    return json.dumps(measurements_to_dict(measurements), sort_keys=True)


def make_workload() -> SyntheticWorkload:
    return SyntheticWorkload(
        builder=build_additive_example,
        parameters=("p", "s"),
        name="additive",
    )


def make_design(n: int) -> list[dict]:
    grid = full_factorial(
        {"p": [2.0, 3.0, 4.0, 5.0], "s": [2.0, 3.0, 4.0, 5.0]}
    )
    return grid[:n]


def submit_job(broker, n=8, engine="vectorized", repetitions=2, seed=1):
    workload = make_workload()
    plan = full_plan(workload.program())
    job_id = broker.submit_measure(
        workload,
        make_design(n),
        plan,
        noise=GaussianNoise(),
        contention=NoContention(),
        repetitions=repetitions,
        seed=seed,
        engine=engine,
    )
    return job_id, workload, plan


def run_fleet(
    design,
    *,
    engine="compiled",
    n_workers=2,
    faults=(),
    batch_flags=(),
    repetitions=2,
    seed=3,
    timeout=60.0,
    **broker_kwargs,
):
    """One distributed run over a mixed-capability in-process fleet.

    *batch_flags* maps worker slots to ``batch=False`` opts; *faults*
    maps slots to fault specs.  Returns (measurements, broker, stats).
    """
    workload = make_workload()
    plan = full_plan(workload.program())
    broker = Broker(workers_hint=n_workers, **broker_kwargs)
    scheduler = BrokerScheduler(broker, timeout=timeout)
    stop = threading.Event()
    workers = [
        Worker(
            LocalBrokerTransport(broker),
            worker_id=f"w{i}",
            poll_interval=0.01,
            fault=dict(faults).get(i),
            batch=dict(batch_flags).get(i, True),
        )
        for i in range(n_workers)
    ]
    stats = [None] * n_workers
    threads = []
    for i, worker in enumerate(workers):
        def run(i=i, worker=worker):
            stats[i] = worker.run(stop)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        threads.append(thread)
    try:
        measurements, _ = scheduler.run_measure(
            workload,
            design,
            plan,
            noise=GaussianNoise(),
            contention=NoContention(),
            repetitions=repetitions,
            seed=seed,
            engine=engine,
        )
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
    return measurements, broker, stats


def serial_reference(design, repetitions=2, seed=3):
    workload = make_workload()
    plan = full_plan(workload.program())
    measurements, _ = ExperimentRunner(
        workload=workload,
        plan=plan,
        noise=GaussianNoise(),
        contention=NoContention(),
        repetitions=repetitions,
        seed=seed,
    ).run(design)
    return measurements


def execute_lease(broker, lease) -> list:
    """Run one claimed lease to wire-ready results (no transport)."""
    worker = Worker(LocalBrokerTransport(broker), worker_id="exec")
    return worker.execute(lease)


class TestAdaptiveLeaseSizing:
    def test_scalar_worker_gets_probe_lease(self):
        broker = Broker(workers_hint=4)
        submit_job(broker, n=8)
        lease = broker.claim("scalar", supports_batch=False)
        assert len(lease["indices"]) == 1

    def test_batch_worker_splits_by_workers_hint(self):
        broker = Broker(workers_hint=4)
        submit_job(broker, n=8)
        lease = broker.claim("batchy", supports_batch=True)
        assert len(lease["indices"]) == 2  # ceil(8 / 4)

    def test_reported_rate_sizes_lease_to_target_seconds(self):
        broker = Broker(workers_hint=4, target_lease_seconds=2.0)
        submit_job(broker, n=8)
        lease = broker.claim("rated", supports_batch=True, lanes_per_sec=2.0)
        assert len(lease["indices"]) == 4  # 2 lanes/s * 2 s

    def test_rate_is_clamped_to_available_work(self):
        broker = Broker(workers_hint=4)
        submit_job(broker, n=8)
        lease = broker.claim("fast", supports_batch=True, lanes_per_sec=1e6)
        assert len(lease["indices"]) == 8

    def test_fixed_chunk_size_overrides_adaptivity(self):
        broker = Broker(workers_hint=4, chunk_size=3)
        submit_job(broker, n=8)
        lease = broker.claim("rated", supports_batch=True, lanes_per_sec=1e6)
        assert len(lease["indices"]) == 3

    def test_scalar_probe_grows_after_measured_completion(self):
        """The broker's own wall-clock EWMA takes over after the first
        completed lease: a fast scalar worker stops getting probes."""
        broker = Broker(workers_hint=4)
        submit_job(broker, n=8)
        probe = broker.claim("scalar", supports_batch=False)
        assert len(probe["indices"]) == 1
        broker.complete(probe["lease"], execute_lease(broker, probe))
        follow_up = broker.claim("scalar", supports_batch=False)
        assert len(follow_up["indices"]) > 1

    def test_rejects_nonpositive_target(self):
        with pytest.raises(ValueError, match="target_lease_seconds"):
            Broker(target_lease_seconds=0.0)


class TestStragglerSplit:
    def drain_pools(self, broker, worker="helper"):
        """Claim until the pending pools are dry (guided self-scheduling
        hands out ceil(available/hint), so chunks shrink as it drains);
        returns the claimed leases."""
        leases = []
        while broker.queue_depth() > 0:
            lease = broker.claim(worker, supports_batch=True)
            assert lease is not None
            leases.append(lease)
        return leases

    def test_tail_of_held_lease_is_ceded_to_idle_worker(self):
        """Pools dry + a long-held lease -> the claimant gets the tail
        half, the holder keeps the head, and the merge is unchanged no
        matter who reports which index first."""
        broker = Broker(workers_hint=2, straggler_grace=0.0)
        submit_job(broker, n=8, seed=3)
        first = broker.claim("holder", supports_batch=True)
        assert len(first["indices"]) == 4  # ceil(8 / 2)
        rest = self.drain_pools(broker)
        split = broker.claim("helper", supports_batch=True)
        assert split is not None
        assert split["indices"] == first["indices"][2:]
        # The holder still reports its full original lease; ceded
        # indices filled by the helper first are dropped, not merged
        # twice.
        broker.complete(split["lease"], execute_lease(broker, split))
        for lease in rest:
            broker.complete(lease["lease"], execute_lease(broker, lease))
        broker.complete(first["lease"], execute_lease(broker, first))
        job_id = first["job"]
        broker.wait(job_id, timeout=10.0)
        stats = broker.job_stats(job_id)
        assert stats.executed == 8

    def test_max_splits_zero_disables_splitting(self):
        broker = Broker(workers_hint=2, straggler_grace=0.0, max_splits=0)
        submit_job(broker, n=8)
        broker.claim("holder", supports_batch=True)
        self.drain_pools(broker)
        assert broker.claim("helper", supports_batch=True) is None

    def test_split_budget_is_bounded(self):
        """With straggler_grace=0 every held lease is a straggler, so
        splitting must terminate on the per-lease budget alone."""
        broker = Broker(workers_hint=2, straggler_grace=0.0, max_splits=1)
        submit_job(broker, n=8)
        broker.claim("holder", supports_batch=True)
        self.drain_pools(broker)
        extra = 0
        while broker.claim("helper", supports_batch=True) is not None:
            extra += 1
            assert extra <= 8, "straggler splitting did not terminate"
        assert extra >= 1
        for record in broker.telemetry()["leases"]:
            assert record["splits"] <= 1

    def test_single_lane_leases_never_split(self):
        broker = Broker(workers_hint=2, straggler_grace=0.0, chunk_size=1)
        submit_job(broker, n=2)
        broker.claim("holder", supports_batch=True)
        broker.claim("helper", supports_batch=True)
        assert broker.claim("helper", supports_batch=True) is None


class TestSlowFault:
    def test_slow_fault_spec_parses(self):
        worker = Worker(object(), fault="slow:2")
        assert worker.fault == ("slow", 2)

    def test_slow_fault_read_from_env(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "slow:3")
        monkeypatch.setenv(SLOW_ENV, "0.25")
        worker = Worker(object())
        assert worker.fault == ("slow", 3)
        assert worker.slow_seconds == 0.25

    def test_invalid_slow_spec_rejected(self):
        with pytest.raises(ServiceError, match="slow:<n>"):
            Worker(object(), fault="slow:0")

    @pytest.mark.parametrize(
        "faults",
        [{0: "slow:1"}, {0: "slow:1", 1: "crash:1"}],
        ids=["slow", "slow+crash"],
    )
    def test_merged_measurements_unchanged_by_stragglers(
        self, faults, monkeypatch
    ):
        """A slow worker (with a tight straggler grace, so its tails are
        re-leased) must not change a bit of the merged output."""
        monkeypatch.setenv(SLOW_ENV, "0.2")
        design = make_design(8)
        measurements, _, _ = run_fleet(
            design,
            n_workers=3,
            faults=faults,
            lease_ttl=5.0,
            straggler_grace=0.02,
        )
        assert canonical(measurements) == canonical(
            serial_reference(design)
        )

    def test_mixed_fleet_with_scalar_worker_bit_identical(self, monkeypatch):
        """Vectorized + scalar-fallback workers, one slow: the broker
        hands them different lease sizes, the merge stays identical."""
        monkeypatch.setenv(SLOW_ENV, "0.15")
        design = make_design(8)
        measurements, broker, _ = run_fleet(
            design,
            engine="vectorized",
            n_workers=3,
            batch_flags={2: False},
            faults={2: "slow:1"},
            straggler_grace=0.02,
        )
        assert canonical(measurements) == canonical(
            serial_reference(design)
        )
        workers = {
            w["worker"]: w for w in broker.telemetry()["workers"]
        }
        assert workers["w2"]["supports_batch"] is False


class TestTelemetry:
    def test_lease_records_have_fixed_field_order(self):
        broker = Broker(workers_hint=2)
        submit_job(broker, n=4)
        lease = broker.claim("w0", supports_batch=True, lanes_per_sec=1.5)
        broker.complete(lease["lease"], execute_lease(broker, lease))
        telemetry = broker.telemetry()
        assert list(telemetry) == ["leases", "workers"]
        for record in telemetry["leases"]:
            assert list(record) == [
                "lease",
                "job",
                "worker",
                "configurations",
                "attempt",
                "status",
                "seconds",
                "splits",
            ]
        for record in telemetry["workers"]:
            assert list(record) == [
                "worker",
                "supports_batch",
                "lanes_per_sec",
                "leases_completed",
                "lanes_completed",
                "failures",
                "quarantined",
            ]

    def test_completed_lease_timing_and_rates_recorded(self):
        broker = Broker(workers_hint=2)
        submit_job(broker, n=4)
        lease = broker.claim("w0", supports_batch=True)
        broker.complete(lease["lease"], execute_lease(broker, lease))
        telemetry = broker.telemetry()
        record = next(
            r for r in telemetry["leases"] if r["lease"] == lease["lease"]
        )
        assert record["status"] == "completed"
        assert record["worker"] == "w0"
        assert record["seconds"] is not None and record["seconds"] >= 0
        worker = next(
            w for w in telemetry["workers"] if w["worker"] == "w0"
        )
        assert worker["leases_completed"] == 1
        assert worker["lanes_completed"] == len(lease["indices"])
        assert worker["lanes_per_sec"] is not None

    def test_leases_sorted_by_id_and_workers_by_name(self):
        broker = Broker(workers_hint=4)
        submit_job(broker, n=8)
        for name in ("zeta", "alpha", "mid"):
            lease = broker.claim(name, supports_batch=True)
            broker.complete(lease["lease"], execute_lease(broker, lease))
        telemetry = broker.telemetry()
        lease_ids = [
            int(str(r["lease"]).lstrip("L")) for r in telemetry["leases"]
        ]
        assert lease_ids == sorted(lease_ids)
        names = [w["worker"] for w in telemetry["workers"]]
        assert names == sorted(names)

    def test_after_fleet_run_every_lease_is_terminal(self):
        design = make_design(6)
        _, broker, _ = run_fleet(design, n_workers=2)
        for record in broker.telemetry()["leases"]:
            assert record["status"] in ("completed", "failed", "reaped")
