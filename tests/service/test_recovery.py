"""Crash recovery: journal replay, restart re-drive, chaos faults.

The central claims under test:

* a campaign service restarted on the same state directory recovers
  every journaled campaign — terminal ones as snapshots, unfinished
  ones re-driven through the stage DAG with store resume (so nothing
  that finished before the crash re-executes);
* a restarted broker re-leases only the unfinished tail of a measure
  job (its journal checkpoint separates its own pre-crash completions
  from ordinary cache hits);
* for ANY kill point and worker count, recovered results are
  bit-identical to a serial run and no configuration is profiled twice
  (the hypothesis property test);
* every HTTP-speaking client path survives injected network faults
  (dropped connections, garbled bodies) through the shared retry
  policy, and dropped completions are idempotent;
* misbehaving pieces degrade instead of looping: corrupt store entries
  are quarantined and surfaced, repeatedly-failing workers are
  quarantined, and workers exit with one diagnostic line on permanent
  errors while reconnecting through transient ones.
"""

from __future__ import annotations

import json
import tempfile
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.synthetic import SyntheticWorkload, build_additive_example
from repro.errors import (
    ProtocolVersionMismatch,
    TransientServiceError,
)
from repro.measure import (
    ExperimentRunner,
    full_factorial,
    full_plan,
    measurements_to_dict,
)
from repro.measure.noise import GaussianNoise
from repro.mpisim.contention import NoContention
from repro.service import (
    Broker,
    CampaignService,
    LocalBrokerTransport,
    LocalStore,
    ServiceClient,
    ServiceJournal,
    Worker,
    serve,
)
from repro.service.remote_store import RUNS_NAMESPACE, STAGE_NAMESPACE

SPEC = {
    "app": "lulesh",
    "mode": "taint",
    "repetitions": 2,
    "seed": 0,
    "parameters": {"p": [8.0, 27.0], "size": [4.0, 6.0]},
}


def canonical(measurements) -> str:
    return json.dumps(measurements_to_dict(measurements), sort_keys=True)


def make_workload() -> SyntheticWorkload:
    return SyntheticWorkload(
        builder=build_additive_example,
        parameters=("p", "s"),
        name="additive",
    )


def submit_job(broker, design, repetitions=2, seed=1):
    workload = make_workload()
    plan = full_plan(workload.program())
    return broker.submit_measure(
        workload,
        design,
        plan,
        noise=GaussianNoise(),
        contention=NoContention(),
        repetitions=repetitions,
        seed=seed,
        engine="vectorized",
    )


def drain_with_worker(broker, **worker_kwargs):
    """Run one in-process worker inline until it stops."""
    worker = Worker(
        LocalBrokerTransport(broker),
        poll_interval=0.01,
        stop_when_idle=True,
        **worker_kwargs,
    )
    return worker.run()


def attach_workers(service, n, stop, **kw):
    for i in range(n):
        worker = Worker(
            LocalBrokerTransport(service.broker),
            worker_id=f"rw{i}",
            poll_interval=0.02,
            **kw,
        )
        threading.Thread(target=worker.run, args=(stop,), daemon=True).start()


def wait_for(predicate, timeout=120.0, poll=0.05):
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll)
    return False


class TestServiceRestartRecovery:
    def test_terminal_campaigns_survive_restart_as_snapshots(self, tmp_path):
        root = tmp_path / "state"
        first = CampaignService(root, chunk_size=2)
        stop = threading.Event()
        attach_workers(first, 2, stop)
        try:
            campaign_id = first.submit(SPEC)
            assert wait_for(
                lambda: first.status(campaign_id)["state"] == "done"
            )
            before = first.status(campaign_id)
        finally:
            stop.set()

        # "kill -9": the first service object is simply abandoned.
        second = CampaignService(root, chunk_size=2)
        after = second.status(campaign_id)
        assert after["state"] == "done"
        assert after["recovered"] is True
        assert after["restarts"] == 0
        assert after["fingerprints"] == before["fingerprints"]
        assert after["profile_executions"] == before["profile_executions"]
        assert after["stats_line"] == before["stats_line"]
        # Artifacts still served, straight from the shared store.
        assert second.artifact(campaign_id, "model") is not None
        assert second.restarts == 1
        telemetry = second.telemetry()
        assert telemetry["service"]["restarts"] == 1
        assert telemetry["service"]["recovered_campaigns"] == [campaign_id]

    def test_unfinished_campaign_is_redriven_bit_identically(self, tmp_path):
        root = tmp_path / "state"
        first = CampaignService(root, chunk_size=1)
        # No workers: the campaign journals its pre-measure stages and
        # then blocks in the measure stage forever.
        campaign_id = first.submit(SPEC)
        assert wait_for(
            lambda: first.status(campaign_id)["stages"]["design"]
            == "computed"
        )

        # Crash. A new service on the same state directory re-drives it.
        second = CampaignService(root, chunk_size=1)
        status = second.status(campaign_id)
        assert status["recovered"] is True
        assert status["restarts"] == 1

        stop = threading.Event()
        attach_workers(second, 2, stop)
        try:
            assert wait_for(
                lambda: second.status(campaign_id)["state"] == "done"
            )
        finally:
            stop.set()
        done = second.status(campaign_id)
        # Every stage that finished pre-crash resumed from the store.
        assert done["stages"]["static"] == "resumed"
        assert done["stages"]["design"] == "resumed"
        assert done["stages"]["measure"] == "computed"
        # 4 unique configurations, none executed before the crash.
        assert done["profile_executions"] == 4
        # Identical spec on a fresh, never-crashed service → identical
        # fingerprints (recovery is invisible in the artifacts).
        pristine = CampaignService(tmp_path / "pristine", chunk_size=1)
        stop2 = threading.Event()
        attach_workers(pristine, 2, stop2)
        try:
            reference_id = pristine.submit(SPEC)
            assert wait_for(
                lambda: pristine.status(reference_id)["state"] == "done"
            )
        finally:
            stop2.set()
        assert (
            done["fingerprints"]
            == pristine.status(reference_id)["fingerprints"]
        )

    def test_mid_measure_crash_executes_remainder_only(self, tmp_path):
        root = tmp_path / "state"
        first = CampaignService(root, chunk_size=1)
        campaign_id = first.submit(SPEC)
        assert wait_for(
            lambda: first.status(campaign_id)["stages"]["design"]
            == "computed"
        )
        # One worker completes exactly one single-configuration lease,
        # then the server "crashes".
        stats = drain_with_worker(first.broker, max_leases=1)
        assert stats.completed == 1

        second = CampaignService(root, chunk_size=1)
        stop = threading.Event()
        attach_workers(second, 2, stop)
        try:
            assert wait_for(
                lambda: second.status(campaign_id)["state"] == "done"
            )
        finally:
            stop.set()
        done = second.status(campaign_id)
        # 4 unique configurations; 1 landed pre-crash and is adopted
        # from the store, only the remaining 3 execute.
        assert done["profile_executions"] == 3
        assert done["recovered"] is True

    def test_submit_token_is_idempotent_across_restart(self, tmp_path):
        root = tmp_path / "state"
        first = CampaignService(root, chunk_size=1)
        campaign_id = first.submit(SPEC, token="tok-42")
        assert first.submit(SPEC, token="tok-42") == campaign_id

        second = CampaignService(root, chunk_size=1)
        # The retried submit lands on the restarted server: same id.
        assert second.submit(SPEC, token="tok-42") == campaign_id

    def test_campaign_ids_continue_after_restart(self, tmp_path):
        root = tmp_path / "state"
        first = CampaignService(root, chunk_size=1)
        first_id = first.submit(SPEC)

        second = CampaignService(root, chunk_size=1)
        next_id = second.submit(dict(SPEC, seed=1))
        assert next_id != first_id
        assert int(next_id.lstrip("C")) > int(first_id.lstrip("C"))

    def test_journal_disabled_means_no_recovery(self, tmp_path):
        root = tmp_path / "state"
        first = CampaignService(root, chunk_size=1, journal=False)
        campaign_id = first.submit(SPEC)
        second = CampaignService(root, chunk_size=1, journal=False)
        with pytest.raises(Exception, match="unknown campaign"):
            second.status(campaign_id)


class TestBrokerCheckpointRecovery:
    def test_restarted_broker_releases_only_the_tail(self, tmp_path):
        store = LocalStore(tmp_path / "store")
        journal = ServiceJournal(store)
        design = full_factorial({"p": [2.0, 3.0], "s": [2.0, 3.0]})

        broker1 = Broker(store=store, journal=journal, chunk_size=1)
        job1 = submit_job(broker1, design)
        stats = drain_with_worker(broker1, max_leases=2)
        assert stats.completed == 2

        # Crash broker1; a fresh broker on the same store + journal
        # adopts the merged prefix as *recovered*, not just cached.
        broker2 = Broker(store=store, journal=journal, chunk_size=1)
        job2 = submit_job(broker2, design)
        assert broker2.job_recovery(job2) == 2
        drain_with_worker(broker2)
        measurements, _ = broker2.wait(job2, timeout=30)
        run_stats = broker2.job_stats(job2)
        assert run_stats.executed == len(design) - 2
        assert run_stats.cached == 2

        # The finished job's checkpoint is tombstoned: a third
        # submission counts the hits as plain cache, not recovery.
        broker3 = Broker(store=store, journal=journal, chunk_size=1)
        job3 = submit_job(broker3, design)
        assert broker3.job_recovery(job3) == 0
        assert broker3.job_stats(job3).cached == len(design)
        _ = job1  # broker1 is abandoned, never waited on

    def test_recovered_results_match_serial(self, tmp_path):
        workload = make_workload()
        design = full_factorial({"p": [2.0, 3.0], "s": [2.0, 3.0]})
        plan = full_plan(workload.program())
        serial, _ = ExperimentRunner(
            workload,
            plan,
            noise=GaussianNoise(),
            contention=NoContention(),
            repetitions=2,
            seed=1,
            engine="vectorized",
        ).run(design)

        store = LocalStore(tmp_path / "store")
        journal = ServiceJournal(store)
        broker1 = Broker(store=store, journal=journal, chunk_size=1)
        submit_job(broker1, design)
        drain_with_worker(broker1, max_leases=1)

        broker2 = Broker(store=store, journal=journal, chunk_size=1)
        job2 = submit_job(broker2, design)
        drain_with_worker(broker2)
        recovered, _ = broker2.wait(job2, timeout=30)
        assert canonical(recovered) == canonical(serial)


class TestKillPointProperty:
    @settings(max_examples=15, deadline=None)
    @given(
        n_configs=st.integers(min_value=2, max_value=6),
        n_workers=st.integers(min_value=1, max_value=3),
        kill_point=st.integers(min_value=0, max_value=6),
        seed=st.integers(min_value=0, max_value=3),
    )
    def test_any_kill_point_is_bit_identical_and_exactly_once(
        self, n_configs, n_workers, kill_point, seed
    ):
        """For random designs, fleet sizes, and kill points: recovery
        is bit-identical to serial and profiles nothing twice."""
        workload = make_workload()
        grid = full_factorial(
            {"p": [2.0, 3.0, 4.0], "s": [2.0, 3.0]}
        )
        design = grid[:n_configs]
        plan = full_plan(workload.program())
        serial, _ = ExperimentRunner(
            workload,
            plan,
            noise=GaussianNoise(),
            contention=NoContention(),
            repetitions=2,
            seed=seed,
            engine="vectorized",
        ).run(design)

        with tempfile.TemporaryDirectory() as root:
            store = LocalStore(root)
            journal = ServiceJournal(store)
            broker1 = Broker(store=store, journal=journal, chunk_size=1)
            job1 = submit_job(broker1, design, seed=seed)
            executed_before = 0
            if kill_point:
                stats = drain_with_worker(broker1, max_leases=kill_point)
                executed_before = broker1.job_stats(job1).executed

            # Kill. Restart. Re-submit the same stage content.
            broker2 = Broker(store=store, journal=journal, chunk_size=1)
            job2 = submit_job(broker2, design, seed=seed)
            if executed_before < len(design):
                # Crashed mid-job: the checkpoint marks the merged
                # prefix as this job's own recovered completions.
                assert broker2.job_recovery(job2) == executed_before
            else:
                # The "crash" landed after the job finished — its
                # checkpoint is tombstoned, hits are plain cache.
                assert broker2.job_recovery(job2) == 0
            for _ in range(n_workers):
                drain_with_worker(broker2)
            recovered, _ = broker2.wait(job2, timeout=60)

            assert canonical(recovered) == canonical(serial)
            # Exactly-once: executions across both incarnations cover
            # the design with no overlap.
            assert (
                executed_before + broker2.job_stats(job2).executed
                == len(design)
            )


class TestIdempotentReports:
    def test_duplicate_completion_is_a_noop(self, tmp_path):
        broker = Broker(chunk_size=2)
        design = full_factorial({"p": [2.0, 3.0], "s": [2.0]})
        job_id = submit_job(broker, design)
        worker = Worker(LocalBrokerTransport(broker))
        lease = broker.claim("w0")
        results = worker.execute(lease)
        broker.complete(lease["lease"], results)
        executed_once = broker.job_stats(job_id).executed
        # The retried (duplicate) completion changes nothing.
        broker.complete(lease["lease"], results)
        assert broker.job_stats(job_id).executed == executed_once

    def test_dropped_completion_response_is_survivable(self, tmp_path):
        """A completion delivered but whose ack was lost: the worker
        retries (transport-level), the broker no-ops, work finishes."""

        class AckDroppingTransport:
            """Delivers, then pretends the response was dropped, then
            retries the (idempotent) delivery — like HttpBrokerTransport
            under a drop:1 fault on the ack."""

            def __init__(self, inner):
                self.inner = inner
                self.dropped = False

            def claim(self, worker, capability=None):
                return self.inner.claim(worker, capability)

            def complete(self, lease_id, results):
                if not self.dropped:
                    self.dropped = True
                    self.inner.complete(lease_id, results)  # delivered
                    raise TransientServiceError("response dropped")
                self.inner.complete(lease_id, results)  # retried: no-op

            def fail(self, lease_id, reason):
                self.inner.fail(lease_id, reason)

        broker = Broker(chunk_size=1)
        design = full_factorial({"p": [2.0, 3.0], "s": [2.0]})
        job_id = submit_job(broker, design)
        worker = Worker(
            AckDroppingTransport(LocalBrokerTransport(broker)),
            poll_interval=0.01,
            stop_when_idle=True,
        )
        stats = worker.run()
        assert stats.reconnects == 1
        drain_with_worker(broker)  # pick up the re-claimed remainder
        broker.wait(job_id, timeout=30)
        assert broker.job_stats(job_id).executed == len(design)


class TestWorkerDegradation:
    def test_transient_claim_failures_reconnect(self):
        broker = Broker(chunk_size=2)
        design = full_factorial({"p": [2.0, 3.0], "s": [2.0]})
        job_id = submit_job(broker, design)

        class FlakyClaimTransport(LocalBrokerTransport):
            def __init__(self, broker, outages):
                super().__init__(broker)
                self.outages = outages

            def claim(self, worker, capability=None):
                if self.outages > 0:
                    self.outages -= 1
                    raise TransientServiceError("connection refused")
                return super().claim(worker, capability)

        worker = Worker(
            FlakyClaimTransport(broker, outages=3),
            poll_interval=0.01,
            stop_when_idle=True,
        )
        stats = worker.run()
        assert stats.reconnects == 3
        assert stats.fatal_error is None
        broker.wait(job_id, timeout=30)

    def test_unreachable_broker_gives_up_after_timeout(self):
        class DeadTransport:
            def claim(self, worker, capability=None):
                raise TransientServiceError("connection refused")

        worker = Worker(
            DeadTransport(),
            poll_interval=0.01,
            reconnect_timeout=0.2,
        )
        stats = worker.run()
        assert stats.fatal_error is not None
        assert "unreachable" in stats.fatal_error
        assert stats.reconnects > 0

    def test_undecodable_lease_is_fatal_not_a_hot_loop(self):
        class BadLeaseTransport:
            """Grants garbage leases forever; a hot-looping worker
            would claim thousands of them."""

            def __init__(self):
                self.claims = 0
                self.failed = []

            def claim(self, worker, capability=None):
                self.claims += 1
                return {
                    "lease": f"L{self.claims}",
                    "job": "J1",
                    "indices": [0],
                    "configs": [[("p", 2.0)]],
                    "task": {"not": "a task"},
                }

            def fail(self, lease_id, reason):
                self.failed.append((lease_id, reason))

        transport = BadLeaseTransport()
        worker = Worker(transport, poll_interval=0.01)
        stats = worker.run()
        # Exactly one claim, one reported failure, one diagnostic.
        assert transport.claims == 1
        assert len(transport.failed) == 1
        assert stats.fatal_error is not None
        assert stats.failed == 1

    def test_version_skew_is_fatal(self):
        class SkewedTransport:
            def __init__(self):
                self.claims = 0

            def claim(self, worker, capability=None):
                self.claims += 1
                raise ProtocolVersionMismatch(99, 1)

            def fail(self, lease_id, reason):
                pass

        transport = SkewedTransport()
        worker = Worker(transport, poll_interval=0.01)
        with pytest.raises(ProtocolVersionMismatch):
            # Version skew at claim time is not a transient transport
            # error: it propagates (the CLI prints it once and exits).
            worker.run()
        assert transport.claims == 1


class TestBrokerQuarantine:
    def test_repeatedly_failing_worker_is_quarantined(self):
        broker = Broker(chunk_size=1, quarantine_after=2)
        design = full_factorial({"p": [2.0, 3.0], "s": [2.0, 3.0]})
        submit_job(broker, design)

        for _ in range(2):
            lease = broker.claim("bad-worker")
            assert lease is not None
            broker.fail(lease["lease"], "simulated executor bug")

        # Quarantined: no more work for this name.
        assert broker.claim("bad-worker") is None
        workers = {
            w["worker"]: w for w in broker.telemetry()["workers"]
        }
        assert workers["bad-worker"]["quarantined"] is True
        assert workers["bad-worker"]["failures"] == 2
        # A healthy worker still gets the re-pooled work.
        assert broker.claim("good-worker") is not None

    def test_completion_resets_the_failure_streak(self):
        broker = Broker(chunk_size=1, quarantine_after=2)
        design = full_factorial({"p": [2.0, 3.0], "s": [2.0, 3.0]})
        submit_job(broker, design)
        worker = Worker(LocalBrokerTransport(broker))

        lease = broker.claim("w0")
        broker.fail(lease["lease"], "hiccup")
        lease = broker.claim("w0")
        broker.complete(lease["lease"], worker.execute(lease))
        lease = broker.claim("w0")
        broker.fail(lease["lease"], "hiccup")
        # fail, complete, fail: never two consecutive — not quarantined.
        assert broker.claim("w0") is not None

    def test_draining_broker_grants_nothing_new(self):
        broker = Broker(chunk_size=1)
        design = full_factorial({"p": [2.0, 3.0], "s": [2.0]})
        submit_job(broker, design)
        lease = broker.claim("w0")
        assert lease is not None

        done = threading.Event()
        result = {}

        def drain():
            result["clean"] = broker.drain(timeout=10.0)
            done.set()

        threading.Thread(target=drain, daemon=True).start()
        assert broker.claim("w1") is None  # draining: no new leases
        # The in-flight lease may still land normally.
        worker = Worker(LocalBrokerTransport(broker))
        broker.complete(lease["lease"], worker.execute(lease))
        assert done.wait(10.0)
        assert result["clean"] is True


class TestStoreQuarantineTelemetry:
    def test_corrupt_entry_is_quarantined_and_surfaced(self, tmp_path):
        service = CampaignService(tmp_path / "state", chunk_size=1)
        store = service.store
        store.put(RUNS_NAMESPACE, "deadbeef", {"x": 1})
        path = store.root / RUNS_NAMESPACE / "deadbeef.json"
        path.write_text('{"version": 1, "key": "deadbeef", "payl')  # torn

        assert store.get(RUNS_NAMESPACE, "deadbeef") is None  # quarantined
        assert store.get(RUNS_NAMESPACE, "deadbeef") is None  # plain miss
        assert not path.exists()
        quarantined = list((store.root / store.CORRUPT_DIR).iterdir())
        assert len(quarantined) == 1

        telemetry = service.telemetry()
        assert telemetry["store"]["corrupt_entries"] == 1
        assert telemetry["store"]["quarantined_keys"] == [
            f"{RUNS_NAMESPACE}/deadbeef"
        ]

    def test_quarantined_entry_reheals_via_put(self, tmp_path):
        store = LocalStore(tmp_path / "store")
        store.put(STAGE_NAMESPACE, "static-abc", {"ok": True})
        (store.root / STAGE_NAMESPACE / "static-abc.json").write_text("}{")
        assert store.get(STAGE_NAMESPACE, "static-abc") is None
        store.put(STAGE_NAMESPACE, "static-abc", {"ok": True})
        assert store.get(STAGE_NAMESPACE, "static-abc") == {"ok": True}


class TestNetworkFaultsOverHttp:
    @pytest.fixture()
    def faulty_server(self, tmp_path, request):
        def start(net_fault):
            httpd = serve(
                tmp_path / "store",
                port=0,
                lease_ttl=2.0,
                net_fault=net_fault,
            )
            threading.Thread(
                target=httpd.serve_forever, daemon=True
            ).start()
            host, port = httpd.server_address[:2]
            request.addfinalizer(httpd.server_close)
            request.addfinalizer(httpd.shutdown)
            return f"http://{host}:{port}"

        return start

    def test_client_survives_dropped_connection(self, faulty_server):
        url = faulty_server("drop:1")
        client = ServiceClient(url)
        # First request is severed mid-flight; the retry layer eats it.
        assert client.health()["status"] == "ok"

    def test_client_survives_garbled_response(self, faulty_server):
        url = faulty_server("garble:1")
        client = ServiceClient(url)
        assert client.health()["status"] == "ok"

    def test_client_survives_delayed_response(
        self, faulty_server, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SERVICE_NET_DELAY_SECONDS", "0.05")
        url = faulty_server("delay:1")
        client = ServiceClient(url)
        assert client.health()["status"] == "ok"

    def test_fault_fires_exactly_once(self, faulty_server):
        url = faulty_server("drop:2")
        client = ServiceClient(url)
        for _ in range(4):
            assert client.health()["status"] == "ok"

    def test_invalid_net_fault_spec_rejected(self, tmp_path):
        with pytest.raises(Exception, match="REPRO_SERVICE_NET_FAULT"):
            serve(tmp_path / "store", port=0, net_fault="explode:1")
