"""Workload structure tests: LULESH and MILC mini-apps."""

import pytest

from repro.apps.lulesh import LuleshWorkload, build_lulesh
from repro.apps.milc import MilcWorkload, build_milc
from repro.core.classify import classify_functions, table3_counts
from repro.interp import Interpreter


class TestLuleshStructure:
    def test_scale_band(self, lulesh_program):
        """Comparable to the paper's Table 2 (356 functions, 275 loops)."""
        assert 250 <= lulesh_program.function_count() <= 450
        assert 120 <= lulesh_program.loop_count() <= 350

    def test_key_kernels_present(self, lulesh_program):
        for name in (
            "CalcQForElems",
            "CalcHourglassControlForElems",
            "IntegrateStressForElems",
            "LagrangeLeapFrog",
            "TimeIncrement",
            "CommSBN",
        ):
            assert name in lulesh_program, name

    def test_runs_and_scales_with_size(self, lulesh_workload):
        prog = lulesh_workload.program()
        small = lulesh_workload.setup({"p": 8, "size": 5})
        large = lulesh_workload.setup({"p": 8, "size": 10})
        t_small = Interpreter(prog, runtime=small.runtime).run(small.args).time
        t_large = Interpreter(prog, runtime=large.runtime).run(large.args).time
        # numElem = size^3: roughly 8x work
        assert t_large > 4 * t_small

    def test_classification_bands(
        self, lulesh_program, lulesh_static, lulesh_taint
    ):
        """Paper: 86.2% of functions constant w.r.t. the parameters."""
        cls = classify_functions(lulesh_program, lulesh_static, lulesh_taint)
        assert 0.82 <= cls.constant_fraction <= 0.95
        assert 20 <= len(cls.kernels) <= 45  # paper: 40
        assert 2 <= len(cls.comm_routines) <= 8  # paper: 2
        assert 5 <= len(cls.mpi_functions) <= 12  # paper: 7

    def test_p_affects_exactly_two_functions(self, lulesh_program, lulesh_taint):
        """Paper Table 3: p directly affects 2 kernels / 2 loops."""
        counts = table3_counts(lulesh_program, lulesh_taint, ["p"])
        assert counts["p"]["functions"] == 2
        assert counts["p"]["loops"] == 2

    def test_size_broadest_coverage(self, lulesh_program, lulesh_taint):
        """size covers the most kernels -> chosen for 2-param modeling."""
        params = ["size", "regions", "balance", "cost", "iters"]
        counts = table3_counts(lulesh_program, lulesh_taint, params)
        best = max(params, key=lambda q: counts[q]["functions"])
        assert best == "size"

    def test_iters_single_instance(self, lulesh_taint):
        """Paper A2: a single instance of iters, in the main loop."""
        assert lulesh_taint.loops_affected_by("iters") == frozenset(
            {("main", 0)}
        )

    def test_calcq_conservative_multiplicative(self, lulesh_taint):
        """CalcQForElems' pack loop (loop 1, after the element loop)
        carries both p and size in one exit condition (paper 5.2:
        conservative multiplicative)."""
        assert lulesh_taint.loop_params("CalcQForElems", 0) == frozenset(
            {"size"}
        )
        assert lulesh_taint.loop_params("CalcQForElems", 1) == frozenset(
            {"p", "size"}
        )

    def test_rank_wrappers_constant(self, lulesh_taint):
        """B1: MPI_Comm_rank wrappers must come out parameter-free."""
        for fn in ("GetMyRank", "LogRank", "DebugRank", "TraceRank"):
            assert lulesh_taint.function_params(fn) == frozenset()

    def test_control_flow_dependence_of_regions(self, lulesh_taint):
        """The section 5.2 regElemSize pattern: the region loop bound
        depends on size only through control flow."""
        params = lulesh_taint.loop_params("CalcMonotonicQRegionForElems", 1)
        assert "size" in params and "regions" in params

    def test_workload_setup_defaults(self, lulesh_workload):
        setup = lulesh_workload.setup({"p": 27, "size": 10})
        assert setup.args["size"] == 10
        assert setup.args["regions"] == 11
        assert setup.runtime.config.ranks == 27

    def test_taint_config_is_small(self, lulesh_workload):
        cfg = lulesh_workload.taint_config()
        assert cfg["size"] <= 8 and cfg["p"] <= 16


class TestMilcStructure:
    def test_scale_band(self, milc_program):
        """Comparable to the paper's Table 2 (629 functions, 874 loops)."""
        assert 500 <= milc_program.function_count() <= 750

    def test_classification_bands(self, milc_program, milc_static, milc_taint):
        """Paper: 87.7% constant; pruned 364 static / 188 dynamic."""
        cls = classify_functions(milc_program, milc_static, milc_taint)
        assert 0.84 <= cls.constant_fraction <= 0.95
        assert 40 <= len(cls.kernels) <= 70  # paper: 56
        assert len(cls.pruned_static) >= 300  # paper: 364
        assert len(cls.pruned_dynamic) >= 150  # paper: 188
        assert len(cls.mpi_functions) == 8  # paper: 8

    def test_lattice_extents_multiplicative_with_p(self, milc_taint):
        """Per-rank site loops carry nx..nt and p in one condition."""
        params = milc_taint.loop_params("dslash_site", 0)
        assert {"nx", "ny", "nz", "nt", "p"} <= params

    def test_mass_beta_pruned(self, milc_program, milc_taint):
        """Paper: identical to the expert ground truth — mass and beta are
        numerical-only parameters with no performance effect."""
        counts = table3_counts(milc_program, milc_taint, ["mass", "beta"])
        assert counts["mass"]["functions"] == 0
        assert counts["beta"]["functions"] == 0

    def test_md_driver_params_detected(self, milc_program, milc_taint):
        counts = table3_counts(
            milc_program, milc_taint,
            ["steps", "niter", "warms", "trajecs", "nrestart"],
        )
        for q in ("steps", "niter", "warms", "trajecs", "nrestart"):
            assert counts[q]["functions"] >= 1, q

    def test_warms_trajecs_single_condition(self, milc_taint):
        """warms + trajecs bound one loop: conservative multiplicative."""
        params = milc_taint.loop_params("main", 0)
        assert {"warms", "trajecs"} <= params

    def test_gather_branch_on_p(self, milc_taint):
        assert milc_taint.branch_params("do_gather", 0) == frozenset({"p"})
        # taint config has p=32 -> tree path only
        assert milc_taint.branch_directions("do_gather", 0) == frozenset(
            {False}
        )

    def test_gather_linear_unexecuted(self, milc_taint):
        assert "gather_linear" not in milc_taint.executed_functions
        assert "gather_tree" in milc_taint.executed_functions

    def test_runs_and_scales_with_size(self, milc_workload):
        prog = milc_workload.program()
        small = milc_workload.setup({"p": 4, "size": 32})
        large = milc_workload.setup({"p": 4, "size": 128})
        t_small = Interpreter(prog, runtime=small.runtime).run(small.args).time
        t_large = Interpreter(prog, runtime=large.runtime).run(large.args).time
        assert t_large > 2 * t_small

    def test_strong_scaling_in_p(self, milc_workload):
        prog = milc_workload.program()
        few = milc_workload.setup({"p": 4, "size": 256})
        many = milc_workload.setup({"p": 64, "size": 256})
        t_few = Interpreter(prog, runtime=few.runtime).run(few.args).time
        t_many = Interpreter(prog, runtime=many.runtime).run(many.args).time
        assert t_many < t_few  # sites/p shrink faster than comm grows


class TestSyntheticExamples:
    def test_foo_prunes_b(self):
        from repro.apps.synthetic import build_foo_example
        from repro.taint import TaintInterpreter

        prog = build_foo_example()
        rep = (
            TaintInterpreter(prog)
            .analyze({"a": 4, "b": 9}, {"a": "a", "b": "b"})
            .report
        )
        assert rep.loop_params("foo", 0) == frozenset({"a"})

    def test_contention_example_kinds(self):
        from repro.apps.synthetic import build_contention_example
        from repro.interp import Interpreter
        from repro.interp.events import CostKind

        prog = build_contention_example()
        res = Interpreter(prog).run({"n": 10})
        assert res.metrics.totals[CostKind.MEMORY] > 0
        assert res.metrics.totals[CostKind.COMPUTE] > 0

    def test_workload_adapter_defaults(self):
        from repro.apps.synthetic import SyntheticWorkload, build_foo_example

        wl = SyntheticWorkload(
            builder=build_foo_example,
            parameters=("a",),
            defaults={"a": 2, "b": 3},
        )
        setup = wl.setup({"a": 7})
        assert setup.args == {"a": 7, "b": 3}
        assert wl.sources() == {"a": "a", "b": "b"}
