"""Library database tests (paper section 5.3)."""

from repro.libdb import (
    IMPLICIT_RANKS_PARAM,
    LibraryDatabase,
    LibraryEntry,
    MPI_DATABASE,
    mpi_database,
)


class TestDatabase:
    def test_register_and_get(self):
        db = LibraryDatabase()
        entry = LibraryEntry("my_routine", implicit_params=frozenset({"q"}))
        db.register(entry)
        assert db.get("my_routine") is entry
        assert db.get("nope") is None

    def test_handles(self):
        db = mpi_database()
        assert db.handles("MPI_Allreduce")
        assert not db.handles("memcpy")

    def test_relevance(self):
        db = mpi_database()
        assert db.is_relevant("MPI_Send")
        assert not db.is_relevant("MPI_Comm_rank")
        assert not db.is_relevant("unknown")

    def test_relevant_routines_excludes_queries(self):
        routines = mpi_database().relevant_routines()
        assert "MPI_Allreduce" in routines
        assert "MPI_Comm_size" not in routines
        assert "MPI_Wtime" not in routines

    def test_user_extension(self):
        db = mpi_database()
        db.register(
            LibraryEntry(
                "cuda_memcpy",
                implicit_params=frozenset({"gpus"}),
                count_args=(0,),
            )
        )
        effect = db.effect("cuda_memcpy", (100,), (frozenset({"size"}),))
        assert effect.dependency_params == frozenset({"gpus", "size"})


class TestMPIEffects:
    def test_comm_size_is_source_of_p(self):
        effect = MPI_DATABASE.effect("MPI_Comm_size", (), ())
        assert effect.return_label_params == frozenset({IMPLICIT_RANKS_PARAM})
        assert effect.dependency_params == frozenset()

    def test_comm_rank_no_effect(self):
        effect = MPI_DATABASE.effect("MPI_Comm_rank", (), ())
        assert effect.return_label_params == frozenset()
        assert effect.dependency_params == frozenset()

    def test_send_depends_on_p_and_count_labels(self):
        effect = MPI_DATABASE.effect(
            "MPI_Send", (64,), (frozenset({"size"}),)
        )
        assert effect.dependency_params == frozenset({"p", "size"})

    def test_send_clean_count(self):
        effect = MPI_DATABASE.effect("MPI_Send", (64,), (frozenset(),))
        assert effect.dependency_params == frozenset({"p"})

    def test_allreduce_count_arg_index(self):
        # (value, count) convention: count labels at index 1.
        effect = MPI_DATABASE.effect(
            "MPI_Allreduce",
            (1.0, 64),
            (frozenset({"x"}), frozenset({"size"})),
        )
        assert effect.dependency_params == frozenset({"p", "size"})

    def test_barrier_only_p(self):
        effect = MPI_DATABASE.effect("MPI_Barrier", (), ())
        assert effect.dependency_params == frozenset({"p"})

    def test_all_runtime_routines_covered(self):
        """Every routine the simulated runtime implements is described in
        the database (no silent taint gaps)."""
        from repro.mpisim import MPIConfig, MPIRuntime

        rt = MPIRuntime(MPIConfig(ranks=2))
        for name in (
            "MPI_Comm_size",
            "MPI_Comm_rank",
            "MPI_Send",
            "MPI_Recv",
            "MPI_Isend",
            "MPI_Irecv",
            "MPI_Wait",
            "MPI_Bcast",
            "MPI_Reduce",
            "MPI_Allreduce",
            "MPI_Allgather",
            "MPI_Gather",
            "MPI_Scatter",
            "MPI_Alltoall",
            "MPI_Barrier",
            "MPI_Wtime",
        ):
            assert rt.handles(name), name
            assert MPI_DATABASE.handles(name), name
