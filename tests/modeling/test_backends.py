"""Model-search backend unit tests.

The ``batched`` backend must make the same accept/reject decisions and
produce the same fits (to float tolerance) as the ``loop`` reference on
every rejection category, plus the closed-form LOOCV must match the
refit loop.  The randomized cross-backend property suite lives in
``test_backend_differential.py``; these tests pin the crafted edge
cases and the satellite regressions (deterministic shortlists, k-fold
degenerate folds, vectorized prediction).
"""

import numpy as np
import pytest

from repro.errors import ModelingError, RegistryError
from repro.modeling import (
    DEFAULT_MODEL_BACKEND,
    Modeler,
    fit_constant,
    fit_hypothesis,
    make_model_backend,
    single_param_term,
)
from repro.modeling.backends import (
    BatchedModelBackend,
    LoopModelBackend,
    refit_loocv_smape,
)
from repro.modeling.crossval import kfold_smape, loocv_smape
from repro.modeling.hypothesis import Model, ModelStats, rank_guard
from repro.modeling.search import _shortlist, best_terms_for_parameter
from repro.modeling.terms import TermSpec, evaluate_term_columns
from repro.registry import MODEL_BACKEND_REGISTRY

X1 = np.array([4.0, 8.0, 16.0, 32.0, 64.0]).reshape(-1, 1)
PARAMS = ("p",)


def _term(i, j=0):
    return single_param_term(0, 1, float(i), int(j))


def _assert_same_fits(loop_fits, batched_fits):
    assert len(loop_fits) == len(batched_fits)
    for lm, bm in zip(loop_fits, batched_fits):
        assert (lm is None) == (bm is None)
        if lm is None:
            continue
        assert lm.terms == bm.terms
        np.testing.assert_allclose(
            lm.coefficients, bm.coefficients, rtol=1e-7, atol=1e-10
        )
        assert lm.stats.rss == pytest.approx(bm.stats.rss, rel=1e-6, abs=1e-9)
        assert lm.stats.smape == pytest.approx(
            bm.stats.smape, rel=1e-6, abs=1e-9
        )
        assert lm.stats.n_coefficients == bm.stats.n_coefficients
        assert lm.stats.n_points == bm.stats.n_points


class TestRegistry:
    def test_backends_registered(self):
        assert "loop" in MODEL_BACKEND_REGISTRY
        assert "batched" in MODEL_BACKEND_REGISTRY
        assert DEFAULT_MODEL_BACKEND == "batched"

    def test_make_model_backend(self):
        assert make_model_backend("loop").name == "loop"
        assert make_model_backend("batched").name == "batched"
        with pytest.raises(RegistryError):
            make_model_backend("vectorized-nope")

    def test_identity_includes_import_path(self):
        identity = MODEL_BACKEND_REGISTRY.identity("batched")
        assert "BatchedModelBackend" in identity


class TestFitBatchEquivalence:
    def fit_both(self, X, y, hypotheses, require_nonnegative=True):
        loop = LoopModelBackend().fit_batch(
            X, y, PARAMS, hypotheses, require_nonnegative
        )
        batched = BatchedModelBackend().fit_batch(
            X, y, PARAMS, hypotheses, require_nonnegative
        )
        _assert_same_fits(loop, batched)
        return loop, batched

    def test_exact_fit(self):
        y = 3 * X1[:, 0] ** 2 + 7
        loop, batched = self.fit_both(X1, y, [(_term(2),)])
        assert batched[0].coefficients == pytest.approx([7.0, 3.0])

    def test_mixed_hypothesis_classes(self):
        """One call spanning k=2 and k=3 classes lands results in order."""
        y = 2 * X1[:, 0] + 5 * np.log2(X1[:, 0]) + 1
        hyps = [
            (_term(1),),
            (_term(0, 1),),
            (_term(1), _term(0, 1)),
            (_term(2),),
        ]
        loop, batched = self.fit_both(X1, y, hyps)
        assert batched[2] is not None
        assert batched[2].stats.rss == pytest.approx(0.0, abs=1e-6)

    def test_underdetermined_class_rejected(self):
        y = X1[:2, 0]
        hyps = [(_term(1), _term(2)), (_term(1),)]
        loop, batched = self.fit_both(X1[:2], y, hyps)
        assert batched[0] is None  # n=2 < k=3
        assert batched[1] is not None

    def test_constant_column_rejected(self):
        X = np.full((5, 1), 9.0)  # every term column is constant
        y = np.arange(5.0) + 1
        loop, batched = self.fit_both(X, y, [(_term(1),), (_term(0, 2),)])
        assert batched == [None, None]

    def test_collinear_pair_rejected(self):
        y = 2 * X1[:, 0] + 1
        loop, batched = self.fit_both(X1, y, [(_term(1), _term(1))])
        assert batched[0] is None  # duplicated term: rank-deficient

    def test_nonnegative_rejection(self):
        y = 100 - 2 * X1[:, 0]
        loop, batched = self.fit_both(X1, y, [(_term(1),)])
        assert batched[0] is None
        loop, batched = self.fit_both(
            X1, y, [(_term(1),)], require_nonnegative=False
        )
        assert batched[0] is not None

    def test_nonfinite_column_rejected(self):
        X = np.array([[-4.0], [2.0], [8.0], [16.0], [32.0]])
        y = np.arange(5.0) + 1
        # x^0.5 on a negative configuration value is NaN.
        loop, batched = self.fit_both(
            X, y, [(_term(0.5),)], require_nonnegative=False
        )
        assert batched[0] is None

    def test_empty_inputs(self):
        assert BatchedModelBackend().fit_batch(X1, X1[:, 0], PARAMS, []) == []

    def test_rhs_reuse_across_functions(self):
        """Same design, new y: cached factorization, same answers."""
        backend = BatchedModelBackend()
        hyps = [(_term(1),), (_term(2),), (_term(1), _term(0, 1))]
        for seed in range(4):
            rng = np.random.default_rng(seed)
            y = 3 * X1[:, 0] + rng.normal(0, 1, len(X1)) + 10
            loop = LoopModelBackend().fit_batch(X1, y, PARAMS, hyps)
            batched = backend.fit_batch(X1, y, PARAMS, hyps)
            _assert_same_fits(loop, batched)
        # One fitter, one prepared class per (k, hypotheses) group.
        assert len(backend._fitters) == 1
        fitter = next(iter(backend._fitters.values()))
        assert len(fitter._classes) == 2

    def test_fitter_cache_bounded(self):
        backend = BatchedModelBackend(max_fitters=2)
        for n in (3, 4, 5, 6):
            X = np.linspace(2, 64, n).reshape(-1, 1)
            backend.fit_batch(X, np.ones(n), PARAMS, [(_term(1),)], False)
        assert len(backend._fitters) == 2


class TestRankGuard:
    def test_single_and_batched_agree(self):
        good = np.column_stack([np.ones(5), X1[:, 0], np.log2(X1[:, 0])])
        bad = np.column_stack([np.ones(5), X1[:, 0], 2 * X1[:, 0]])
        stacked = np.stack([good, bad])
        *_, single_good = rank_guard(good)
        *_, single_bad = rank_guard(bad)
        *_, batched = rank_guard(stacked)
        assert not bool(single_good) and bool(single_bad)
        assert list(batched) == [False, True]

    def test_extreme_scaling_survives(self):
        """Column equilibration keeps huge-magnitude terms fittable."""
        x = np.array([1e4, 2e4, 4e4, 8e4, 1.6e5])
        design = np.column_stack([np.ones(5), x**3])
        *_, deficient = rank_guard(design)
        assert not bool(deficient)

    def test_narrow_range_hypotheses_stay_accepted(self):
        """A parameter swept over a narrow relative range (condition
        number ~1e8 after equilibration) is ill-conditioned but solvable;
        lstsq accepted it before the backends split and the shared guard
        must keep accepting it — fit_hypothesis returns a model and both
        backends agree."""
        x = np.linspace(1000.0, 1001.0, 6).reshape(-1, 1)
        terms = (_term(1.0), _term(1.25))
        y = 2.0 * x[:, 0] + 5.0
        loop = LoopModelBackend().fit_batch(
            x, y, PARAMS, [terms], require_nonnegative=False
        )
        batched = BatchedModelBackend().fit_batch(
            x, y, PARAMS, [terms], require_nonnegative=False
        )
        assert loop[0] is not None and batched[0] is not None
        assert loop[0].terms == batched[0].terms
        # At condition ~1e8 the documented tolerance is ~eps * cond, so
        # coefficients agree loosely while predictions agree tightly.
        np.testing.assert_allclose(
            loop[0].coefficients, batched[0].coefficients, rtol=1e-5,
            atol=1e-8,
        )
        np.testing.assert_allclose(
            loop[0].predict(x), batched[0].predict(x), rtol=1e-9
        )


class TestClosedFormLOOCV:
    def test_matches_refit_on_clean_model(self):
        X = np.array(
            [[p, s] for p in (4, 8, 16, 32, 64) for s in (16, 24, 32, 40, 48)],
            dtype=float,
        )
        rng = np.random.default_rng(5)
        y = 2 * X[:, 0] + 0.5 * X[:, 1] ** 2 + rng.normal(0, 3, len(X)) + 40
        model = Modeler(backend="loop").model(X, y, ("p", "size"))
        loop_cv = loocv_smape(X, y, model, backend=LoopModelBackend())
        fast_cv = loocv_smape(X, y, model, backend=BatchedModelBackend())
        assert fast_cv == pytest.approx(loop_cv, rel=1e-9, abs=1e-12)

    def test_matches_refit_on_constant(self):
        y = np.array([3.0, 4.0, 5.0, 4.0, 3.5])
        model = fit_constant(X1, y, PARAMS)
        loop_cv = loocv_smape(X1, y, model, backend=LoopModelBackend())
        fast_cv = loocv_smape(X1, y, model, backend=BatchedModelBackend())
        assert fast_cv == pytest.approx(loop_cv, rel=1e-12)

    def test_degenerate_full_design_scores_two(self):
        """A rank-deficient term set fails every fold in both backends."""
        term_a, term_b = _term(1), _term(1)
        y = 2 * X1[:, 0] + 1
        model = Model(
            PARAMS,
            (term_a, term_b),
            np.array([1.0, 1.0, 1.0]),
            ModelStats(
                rss=0.0, smape=0.0, r_squared=1.0, n_points=5, n_coefficients=3
            ),
        )
        assert refit_loocv_smape(X1, y, model) == pytest.approx(2.0)
        assert loocv_smape(
            X1, y, model, backend=BatchedModelBackend()
        ) == pytest.approx(2.0)

    def test_unique_point_fold_degenerate_in_both(self):
        """A parameter value seen once has leverage 1: fold unscorable."""
        x = np.array([4.0, 4.0, 4.0, 4.0, 32.0]).reshape(-1, 1)
        y = np.array([1.0, 1.1, 0.9, 1.0, 9.0])
        model = fit_hypothesis(x, y, PARAMS, (_term(1),), False)
        assert model is not None
        loop_cv = loocv_smape(x, y, model, backend=LoopModelBackend())
        fast_cv = loocv_smape(x, y, model, backend=BatchedModelBackend())
        # Both charge the maximal 2.0 for the x=32 fold.
        assert loop_cv == pytest.approx(fast_cv, rel=1e-9)
        assert loop_cv > 2.0 / len(y) - 1e-9

    def test_too_few_points_raises(self):
        model = fit_constant(X1[:1], np.array([1.0]), PARAMS)
        for backend in (LoopModelBackend(), BatchedModelBackend()):
            with pytest.raises(ModelingError):
                loocv_smape(X1[:1], np.array([1.0]), model, backend=backend)


class TestKFoldDegenerateFolds:
    def test_small_training_fold_scores_degenerate(self):
        """Folds whose training set cannot determine the coefficients
        count as maximal error instead of silently vanishing."""
        x = np.array([4.0, 8.0, 16.0]).reshape(-1, 1)
        y = np.array([2.0, 4.0, 8.0])
        model = fit_hypothesis(x, y, PARAMS, (_term(1), _term(2)), False)
        if model is None:
            model = fit_hypothesis(x, y, PARAMS, (_term(1),), False)
        # k=3 folds of one point each: training sets have 2 points,
        # fewer than the 3 coefficients of a two-term model.
        err = kfold_smape(x, y, model, k=3)
        assert err == pytest.approx(2.0)

    def test_healthy_folds_unchanged(self):
        X = np.array(
            [[p, s] for p in (4, 8, 16, 32, 64) for s in (16, 24, 32, 40, 48)],
            dtype=float,
        )
        y = 3 * X[:, 1] ** 2 + 10
        model = Modeler().model(X, y, ("p", "size"))
        assert kfold_smape(X, y, model, k=5) < 0.05


class TestDeterministicShortlist:
    def _tied_models(self, rss=1.0):
        terms = [_term(i) for i in (3.0, 1.0, 2.0)]
        stats = ModelStats(
            rss=rss, smape=0.1, r_squared=0.5, n_points=5, n_coefficients=2
        )
        return [
            (t, Model(PARAMS, (t,), np.array([1.0, 1.0]), stats))
            for t in terms
        ]

    def test_ties_break_by_exponents(self):
        ranked = _shortlist(self._tied_models())
        exps = [t.exponents[0][0] for t in ranked]
        assert exps == sorted(exps)

    def test_order_independent_of_input_order(self):
        fitted = self._tied_models()
        assert _shortlist(fitted) == _shortlist(list(reversed(fitted)))

    def test_best_terms_tie_break_enumeration_independent(self):
        """Exact RSS ties (y == 0 fits every term perfectly) rank by
        exponents, so reversing the candidate enumeration changes
        nothing."""
        from repro.modeling.search import SearchConfig, DEFAULT_I

        x = X1[:, 0]
        y = np.zeros_like(x)
        fwd = SearchConfig(require_nonnegative=False)
        rev = SearchConfig(
            i_set=tuple(reversed(DEFAULT_I)), require_nonnegative=False
        )
        top_fwd = best_terms_for_parameter(x, y, "p", fwd, top_k=5)
        top_rev = best_terms_for_parameter(x, y, "p", rev, top_k=5)
        assert top_fwd == top_rev


class TestVectorizedPredict:
    def test_matches_per_term_evaluation(self):
        X = np.array(
            [[p, s] for p in (4, 8, 16) for s in (16, 32, 64)], dtype=float
        )
        terms = (
            TermSpec(((1.0, 0), (0.0, 1))),
            TermSpec(((0.5, 2), (2.0, 0))),
        )
        coef = np.array([3.0, 0.25, 1e-4])
        stats = ModelStats(
            rss=0.0, smape=0.0, r_squared=1.0, n_points=9, n_coefficients=3
        )
        model = Model(("p", "s"), terms, coef, stats)
        manual = np.full(X.shape[0], coef[0])
        for c, t in zip(coef[1:], terms):
            manual = manual + c * t.evaluate(X)
        np.testing.assert_allclose(model.predict(X), manual, rtol=1e-12)

    def test_constant_model_predict(self):
        model = fit_constant(X1, np.full(5, 42.0), PARAMS)
        np.testing.assert_array_equal(model.predict(X1), np.full(5, 42.0))

    def test_term_columns_deduplicate(self):
        term = TermSpec(((1.0, 1),))
        cols = evaluate_term_columns(X1, (term, term, term))
        assert cols.shape == (5, 3)
        np.testing.assert_array_equal(cols[:, 0], cols[:, 2])
