"""Modeling tests: PMNF terms, fitting, single/multi-parameter search,
priors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelingError
from repro.modeling import (
    DEFAULT_I,
    DEFAULT_J,
    Modeler,
    SearchPrior,
    TermRestrictions,
    TermSpec,
    candidate_terms,
    fit_constant,
    fit_hypothesis,
    product_term,
    search_single_parameter,
    single_param_term,
    smape,
)

X1 = np.array([4.0, 8.0, 16.0, 32.0, 64.0]).reshape(-1, 1)


class TestTerms:
    def test_search_space_matches_paper(self):
        assert len(DEFAULT_I) == 18
        assert DEFAULT_J == (0, 1, 2)
        # per parameter: |I x J| - 1 trivial = 53 candidate terms
        assert len(candidate_terms(1, 0)) == 53

    def test_evaluate_polynomial(self):
        term = single_param_term(0, 1, 2.0, 0)
        np.testing.assert_allclose(term.evaluate(X1), X1[:, 0] ** 2)

    def test_evaluate_log(self):
        term = single_param_term(0, 1, 0.0, 1)
        np.testing.assert_allclose(term.evaluate(X1), np.log2(X1[:, 0]))

    def test_evaluate_poly_log(self):
        term = single_param_term(0, 1, 0.5, 2)
        expected = np.sqrt(X1[:, 0]) * np.log2(X1[:, 0]) ** 2
        np.testing.assert_allclose(term.evaluate(X1), expected)

    def test_multi_param_term(self):
        term = TermSpec(((1.0, 0), (3.0, 0)))
        X = np.array([[2.0, 3.0], [4.0, 5.0]])
        np.testing.assert_allclose(
            term.evaluate(X), X[:, 0] * X[:, 1] ** 3
        )

    def test_product_term_adds_exponents(self):
        a = single_param_term(0, 2, 0.5, 1)
        b = single_param_term(1, 2, 3.0, 0)
        prod = product_term([a, b])
        assert prod.exponents == ((0.5, 1), (3.0, 0))

    def test_uses(self):
        term = TermSpec(((1.0, 0), (0.0, 0), (0.0, 2)))
        assert term.uses() == frozenset({0, 2})

    def test_format(self):
        term = TermSpec(((0.5, 0), (0.0, 1)))
        assert term.format(("p", "s")) == "p^0.5 * log2(s)"
        assert TermSpec(((0.0, 0),)).format(("p",)) == "1"


class TestFitting:
    def test_fit_exact(self):
        term = single_param_term(0, 1, 2.0, 0)
        y = 3 * X1[:, 0] ** 2 + 7
        model = fit_hypothesis(X1, y, ("p",), (term,))
        assert model is not None
        assert model.coefficients[0] == pytest.approx(7.0)
        assert model.coefficients[1] == pytest.approx(3.0)
        assert model.stats.rss == pytest.approx(0.0, abs=1e-6)

    def test_negative_coefficient_rejected(self):
        term = single_param_term(0, 1, 1.0, 0)
        y = 100 - 2 * X1[:, 0]
        assert fit_hypothesis(X1, y, ("p",), (term,)) is None

    def test_negative_allowed_when_requested(self):
        term = single_param_term(0, 1, 1.0, 0)
        y = 100 - 2 * X1[:, 0]
        model = fit_hypothesis(
            X1, y, ("p",), (term,), require_nonnegative=False
        )
        assert model is not None

    def test_underdetermined_rejected(self):
        terms = tuple(
            single_param_term(0, 1, float(i), 0) for i in (1, 2, 3, 4, 5)
        )
        assert fit_hypothesis(X1, X1[:, 0], ("p",), terms) is None

    def test_constant_column_rejected(self):
        term = single_param_term(0, 1, 0.0, 0)  # trivial
        assert (
            fit_hypothesis(X1, X1[:, 0], ("p",), (TermSpec(((0.0, 0),)),))
            is None
        )

    def test_fit_constant(self):
        model = fit_constant(X1, np.full(5, 42.0), ("p",))
        assert model.is_constant
        assert model.predict(X1)[0] == 42.0

    def test_fit_constant_empty_raises(self):
        with pytest.raises(ModelingError):
            fit_constant(np.empty((0, 1)), np.array([]), ("p",))

    def test_smape_bounds(self):
        assert smape(np.array([1.0, 2.0]), np.array([1.0, 2.0])) == 0.0
        assert 0 < smape(np.array([1.0]), np.array([3.0])) <= 2.0

    def test_predict_one(self):
        term = single_param_term(0, 1, 1.0, 0)
        model = fit_hypothesis(X1, 2 * X1[:, 0] + 1, ("p",), (term,))
        assert model.predict_one({"p": 10}) == pytest.approx(21.0)


class TestSingleParameterSearch:
    def recover(self, fn, atol_exp=0.26):
        x = X1[:, 0]
        y = fn(x)
        return search_single_parameter(x, y, "p")

    def test_recovers_linear(self):
        model = self.recover(lambda x: 5 * x + 100)
        assert model.used_parameters() == frozenset({"p"})
        assert model.predict_one({"p": 128}) == pytest.approx(740, rel=0.05)

    def test_recovers_quadratic(self):
        model = self.recover(lambda x: 0.5 * x**2 + 10)
        assert model.predict_one({"p": 128}) == pytest.approx(
            0.5 * 128**2 + 10, rel=0.05
        )

    def test_recovers_log(self):
        model = self.recover(lambda x: 7 * np.log2(x) + 3)
        assert model.predict_one({"p": 1024}) == pytest.approx(73, rel=0.05)

    def test_recovers_nlogn(self):
        model = self.recover(lambda x: 2 * x * np.log2(x))
        assert model.predict_one({"p": 256}) == pytest.approx(
            2 * 256 * 8, rel=0.1
        )

    def test_constant_data_gives_constant(self):
        model = self.recover(lambda x: np.full_like(x, 5.0))
        assert model.is_constant

    @given(
        exponent=st.sampled_from([0.5, 1.0, 1.5, 2.0, 3.0]),
        coef=st.floats(min_value=0.1, max_value=100),
    )
    @settings(max_examples=20, deadline=None)
    def test_extrapolation_property(self, exponent, coef):
        """Fitted models extrapolate cleanly to 4x the largest sample."""
        x = X1[:, 0]
        y = coef * x**exponent + 5
        model = search_single_parameter(x, y, "p")
        true = coef * 256.0**exponent + 5
        assert model.predict_one({"p": 256}) == pytest.approx(true, rel=0.15)


class TestMultiParameterSearch:
    def grid(self):
        from itertools import product

        ps = [4, 8, 16, 32, 64]
        ss = [16, 24, 32, 40, 48]
        return np.array(list(product(ps, ss)), dtype=float)

    def test_recovers_multiplicative(self):
        X = self.grid()
        y = 1e-3 * X[:, 0] ** 0.5 * X[:, 1] ** 3 + 50
        model = Modeler().model(X, y, ("p", "size"))
        assert model.used_parameters() == frozenset({"p", "size"})
        pred = model.predict_one({"p": 128, "size": 64})
        assert pred == pytest.approx(1e-3 * 128**0.5 * 64**3 + 50, rel=0.1)

    def test_recovers_additive(self):
        X = self.grid()
        y = 3 * X[:, 0] + 100 * np.log2(X[:, 1]) + 7
        model = Modeler().model(X, y, ("p", "size"))
        pred = model.predict_one({"p": 128, "size": 96})
        assert pred == pytest.approx(3 * 128 + 100 * np.log2(96) + 7, rel=0.1)

    def test_restriction_excludes_parameter(self):
        X = self.grid()
        rng = np.random.default_rng(3)
        y = 2 * X[:, 1] ** 2 + rng.normal(0, 20, len(X))
        prior = SearchPrior(allowed_params=frozenset({"size"}))
        model = Modeler().model(X, y, ("p", "size"), prior)
        assert "p" not in model.used_parameters()

    def test_restriction_forbids_products(self):
        X = self.grid()
        y = 3 * X[:, 0] + 5 * X[:, 1] + 10
        prior = SearchPrior(
            allowed_params=frozenset({"p", "size"}),
            multiplicative_pairs=frozenset(),
        )
        model = Modeler().model(X, y, ("p", "size"), prior)
        for term in model.terms:
            assert len(term.uses()) <= 1  # no cross terms

    def test_forced_constant(self):
        X = self.grid()
        rng = np.random.default_rng(0)
        y = 100 + rng.normal(0, 10, len(X))
        model = Modeler().model(X, y, ("p", "size"), SearchPrior.constant())
        assert model.is_constant
        assert model.metadata["prior"] == "constant"

    def test_black_box_overfits_noisy_constant(self):
        """The B1 phenomenon: without the prior, noise earns a model."""
        X = self.grid()
        rng = np.random.default_rng(1)
        y = 100 + np.abs(rng.normal(0, 20, len(X)))
        bb = Modeler().model(X, y, ("p", "size"))
        assert bb.used_parameters()  # spurious dependency appears

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ModelingError):
            Modeler().model(X1, np.ones(3), ("p",))
        with pytest.raises(ModelingError):
            Modeler().model(X1, np.ones(5), ("p", "q"))


class TestRestrictions:
    def test_param_allowed(self):
        r = TermRestrictions(allowed_params=frozenset({"a"}))
        assert r.param_allowed("a") and not r.param_allowed("b")

    def test_product_allowed(self):
        r = TermRestrictions(
            multiplicative_pairs=frozenset({frozenset({"a", "b"})})
        )
        assert r.product_allowed(frozenset({"a", "b"}))
        assert not r.product_allowed(frozenset({"a", "c"}))
        assert not r.product_allowed(frozenset({"a", "b", "c"}))

    def test_unrestricted(self):
        r = TermRestrictions()
        assert r.param_allowed("anything")
        assert r.product_allowed(frozenset({"x", "y", "z"}))
