"""Differential suite: loop vs batched model-search backends.

The batched backend's contract is **decision identity**: on every input
it must select the same model — term set, prior metadata, constancy —
as the per-hypothesis ``loop`` oracle, with statistics equal within
float tolerance (QR on the equilibrated design vs lstsq's SVD on the
raw one).  Random designs, noise levels, and priors/restrictions
exercise the property; the three bundled apps exercise it on real
pipeline measurements.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.lulesh import LuleshWorkload
from repro.apps.milc import MilcWorkload
from repro.apps.synthetic import SyntheticWorkload, build_additive_example
from repro.core.pipeline import PerfTaintPipeline
from repro.core.stages import run_model_stage
from repro.measure import InstrumentationMode
from repro.modeling import Modeler, SearchPrior
from repro.modeling.backends import BatchedModelBackend, LoopModelBackend
from repro.modeling.crossval import loocv_smape


def _assert_same_selection(loop_model, batched_model):
    assert loop_model.terms == batched_model.terms
    assert loop_model.metadata == batched_model.metadata
    assert loop_model.is_constant == batched_model.is_constant
    # The documented float tolerance: QR on the equilibrated design vs
    # lstsq's SVD on the raw one diverge by ~eps * condition number, so
    # coefficients of ill-conditioned (but accepted) designs can differ
    # in the 6th digit while the selected structure is identical.
    np.testing.assert_allclose(
        loop_model.coefficients,
        batched_model.coefficients,
        rtol=1e-4,
        atol=1e-8,
    )
    assert loop_model.stats.rss == pytest.approx(
        batched_model.stats.rss, rel=1e-5, abs=1e-8
    )
    assert loop_model.stats.smape == pytest.approx(
        batched_model.stats.smape, rel=1e-5, abs=1e-8
    )


GROUND_TRUTHS = (
    lambda x: np.full(x.shape[0], 50.0),
    lambda x: 5.0 * x[:, 0] + 20.0,
    lambda x: 0.3 * x[:, 0] ** 2 + 10.0,
    lambda x: 4.0 * x[:, 0] * np.log2(x[:, 0]) + 5.0,
    lambda x: 2.0 * np.log2(x[:, 0]) ** 2 + 30.0,
)

GROUND_TRUTHS_2D = (
    lambda x: np.full(x.shape[0], 75.0),
    lambda x: 2.0 * x[:, 0] + 0.5 * x[:, 1] ** 2 + 10.0,
    lambda x: 1e-2 * x[:, 0] * x[:, 1] + 25.0,
    lambda x: 3.0 * np.log2(x[:, 0]) * x[:, 1] + 8.0,
    lambda x: 6.0 * x[:, 1] + 40.0,
)


class TestRandomDesignsDifferential:
    @given(
        truth=st.integers(0, len(GROUND_TRUTHS) - 1),
        sigma=st.sampled_from([0.0, 0.5, 5.0, 25.0]),
        seed=st.integers(0, 2**16),
        n=st.integers(5, 10),
    )
    @settings(max_examples=40, deadline=None)
    def test_single_parameter(self, truth, sigma, seed, n):
        rng = np.random.default_rng(seed)
        x = np.sort(rng.choice(2.0 ** np.arange(1, 11), size=n, replace=False))
        X = x.reshape(-1, 1)
        y = GROUND_TRUTHS[truth](X) + rng.normal(0, sigma, n)
        loop = Modeler(backend="loop").model(X, y, ("p",))
        batched = Modeler(backend="batched").model(X, y, ("p",))
        _assert_same_selection(loop, batched)

    @given(
        truth=st.integers(0, len(GROUND_TRUTHS_2D) - 1),
        sigma=st.sampled_from([0.0, 1.0, 10.0]),
        seed=st.integers(0, 2**16),
        restriction=st.sampled_from(
            ["none", "constant", "p-only", "s-only", "no-products"]
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_multi_parameter_with_priors(
        self, truth, sigma, seed, restriction
    ):
        rng = np.random.default_rng(seed)
        ps = rng.choice([4, 8, 16, 32, 64], size=4, replace=False)
        ss = rng.choice([8, 12, 16, 24, 32, 48], size=4, replace=False)
        X = np.array([[p, s] for p in sorted(ps) for s in sorted(ss)], float)
        y = GROUND_TRUTHS_2D[truth](X) + rng.normal(0, sigma, len(X))
        prior = {
            "none": SearchPrior.black_box(),
            "constant": SearchPrior.constant(),
            "p-only": SearchPrior(allowed_params=frozenset({"p"})),
            "s-only": SearchPrior(allowed_params=frozenset({"s"})),
            "no-products": SearchPrior(
                allowed_params=frozenset({"p", "s"}),
                multiplicative_pairs=frozenset(),
            ),
        }[restriction]
        loop = Modeler(backend="loop").model(X, y, ("p", "s"), prior)
        batched = Modeler(backend="batched").model(X, y, ("p", "s"), prior)
        _assert_same_selection(loop, batched)

    @given(
        truth=st.integers(0, len(GROUND_TRUTHS_2D) - 1),
        sigma=st.sampled_from([0.5, 8.0]),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_loocv_closed_form_equals_refit(self, truth, sigma, seed):
        rng = np.random.default_rng(seed)
        X = np.array(
            [[p, s] for p in (4, 8, 16, 32) for s in (8, 16, 32, 64)], float
        )
        y = GROUND_TRUTHS_2D[truth](X) + rng.normal(0, sigma, len(X))
        model = Modeler(backend="batched").model(X, y, ("p", "s"))
        loop_cv = loocv_smape(X, y, model, backend=LoopModelBackend())
        fast_cv = loocv_smape(X, y, model, backend=BatchedModelBackend())
        # The closed-form/refit identity is exact only in exact
        # arithmetic; when the selected terms span a large dynamic
        # range (e.g. p^3 * log^2 s over this grid) the two float64
        # paths diverge by ~condition * eps, which can reach the 1e-7
        # relative range on accepted-but-ill-conditioned designs.
        assert fast_cv == pytest.approx(loop_cv, rel=1e-6, abs=1e-9)


def _models_for(pipeline, values, backend):
    static, taint, volumes, deps, _ = pipeline.analyze()
    design = pipeline.design(values, taint, deps, volumes)
    plan = pipeline.plan_for(InstrumentationMode.TAINT_FILTER, taint, static)
    meas, _ = pipeline.measure(design.configurations, plan)
    return run_model_stage(
        meas,
        taint,
        volumes,
        modeler=pipeline.modeler,
        compare_black_box=True,
        cov_threshold=None,
        model_backend=backend,
    )


class TestAppsDifferential:
    """All three bundled apps select identical models on both backends."""

    @pytest.mark.parametrize("app", ["synthetic", "lulesh", "milc"])
    def test_pipeline_models_identical(self, app, request):
        if app == "synthetic":
            workload = SyntheticWorkload(
                builder=build_additive_example,
                parameters=("p", "s"),
                defaults={"p": 4, "s": 4},
                name="additive",
            )
            values = {"p": [2, 4, 8, 16], "s": [2, 4, 8, 16]}
        elif app == "lulesh":
            workload = request.getfixturevalue("lulesh_workload")
            values = {"p": [27, 64, 125], "size": [8, 14, 20]}
        else:
            workload = request.getfixturevalue("milc_workload")
            values = {"p": [4, 8, 16], "size": [16, 24, 32]}
        pipeline = PerfTaintPipeline(workload=workload, repetitions=3, seed=9)
        loop_models = _models_for(pipeline, values, "loop")
        batched_models = _models_for(pipeline, values, "batched")
        assert set(loop_models) == set(batched_models)
        assert len(loop_models) > 0
        for fn in loop_models:
            _assert_same_selection(
                loop_models[fn].hybrid, batched_models[fn].hybrid
            )
            assert (loop_models[fn].black_box is None) == (
                batched_models[fn].black_box is None
            )
            if loop_models[fn].black_box is not None:
                _assert_same_selection(
                    loop_models[fn].black_box, batched_models[fn].black_box
                )
