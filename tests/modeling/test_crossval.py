"""Cross-validation tests: CV separates real models from fitted noise."""

import numpy as np
import pytest

from repro.errors import ModelingError
from repro.modeling import Modeler, SearchPrior, fit_constant
from repro.modeling.crossval import compare_models, kfold_smape, loocv_smape

X = np.array(
    [[p, s] for p in (4, 8, 16, 32, 64) for s in (16, 24, 32, 40, 48)],
    dtype=float,
)


class TestLOOCV:
    def test_true_model_low_cv(self):
        y = 2 * X[:, 0] + 100
        model = Modeler().model(X, y, ("p", "size"))
        assert loocv_smape(X, y, model) < 0.02

    def test_constant_on_constant_data(self):
        y = np.full(len(X), 50.0)
        model = fit_constant(X, y, ("p", "size"))
        assert loocv_smape(X, y, model) == pytest.approx(0.0)

    def test_noise_model_worse_than_constant(self):
        """The B1 story in CV form: on noisy constant data, the black-box
        parametric model does not generalize better than the constant."""
        rng = np.random.default_rng(8)
        y = 100 + np.abs(rng.normal(0, 25, len(X)))
        bb = Modeler().model(X, y, ("p", "size"))
        const = Modeler().model(
            X, y, ("p", "size"), SearchPrior.constant()
        )
        if bb.is_constant:
            pytest.skip("black-box already chose constant on this seed")
        result = compare_models(X, y, const, bb)
        # constant's CV error within noise of (or better than) black-box
        assert result["a"] <= result["b"] * 1.25

    def test_too_few_points_rejected(self):
        small = X[:2]
        model = fit_constant(small, np.array([1.0, 2.0]), ("p", "size"))
        with pytest.raises(ModelingError):
            loocv_smape(small[:1], np.array([1.0]), model)


class TestKFold:
    def test_matches_loocv_on_clean_data(self):
        y = 3 * X[:, 1] ** 2 + 10
        model = Modeler().model(X, y, ("p", "size"))
        loo = loocv_smape(X, y, model)
        kf = kfold_smape(X, y, model, k=5)
        assert abs(loo - kf) < 0.05

    def test_k_clamped_to_n(self):
        y = 2 * X[:5, 0] + 1
        model = Modeler().model(X[:5], y, ("p", "size"))
        kfold_smape(X[:5], y, model, k=50)  # must not raise

    def test_k1_rejected(self):
        y = np.ones(1)
        model = fit_constant(X[:1], y, ("p", "size"))
        with pytest.raises(ModelingError):
            kfold_smape(X[:1], y, model, k=1)

    def test_deterministic_given_seed(self):
        y = 2 * X[:, 0] + 5
        model = Modeler().model(X, y, ("p", "size"))
        a = kfold_smape(X, y, model, k=4, seed=3)
        b = kfold_smape(X, y, model, k=4, seed=3)
        assert a == b
