"""SPMD per-rank simulation tests."""

import pytest

from repro.ir import ProgramBuilder, call, eq, lt, mul, var
from repro.libdb import MPI_DATABASE
from repro.mpisim.spmd import SPMDSimulator


def symmetric_program():
    pb = ProgramBuilder()
    with pb.function("main", ["n"]) as f:
        f.assign("p", call("MPI_Comm_size"))
        with f.for_("i", 0, f.var("n")):
            f.work(10)
        f.call("MPI_Barrier")
        f.ret(f.var("p"))
    return pb.build(entry="main")


def skewed_program():
    """Rank 0 does extra master work (load imbalance)."""
    pb = ProgramBuilder()
    with pb.function("main", ["n"]) as f:
        f.assign("rank", call("MPI_Comm_rank"))
        with f.for_("i", 0, f.var("n")):
            f.work(10)
        with f.if_(eq(var("rank"), 0)):
            with f.for_("i", 0, mul(var("n"), 3)):
                f.work(10)
    return pb.build(entry="main")


def rank_branch_program():
    """Low ranks take a parameter-dependent extra loop."""
    pb = ProgramBuilder()
    with pb.function("main", ["n"]) as f:
        f.assign("rank", call("MPI_Comm_rank"))
        with f.if_(lt(var("rank"), 1)):
            with f.for_("i", 0, f.var("n")):
                f.work(5)
    return pb.build(entry="main")


class TestSPMDRun:
    def test_symmetric_ranks_identical(self):
        sim = SPMDSimulator(symmetric_program(), ranks=4)
        result = sim.run({"n": 10})
        assert result.ranks == 4
        times = set(result.per_rank_time.values())
        assert len(times) == 1
        assert result.imbalance == pytest.approx(1.0)

    def test_rank_values_differ(self):
        sim = SPMDSimulator(symmetric_program(), ranks=4)
        result = sim.run({"n": 1})
        # every rank sees the same communicator size
        assert set(result.per_rank_value.values()) == {4}

    def test_critical_path_is_max(self):
        sim = SPMDSimulator(skewed_program(), ranks=4)
        result = sim.run({"n": 20})
        assert result.critical_path == result.per_rank_time[0]
        assert result.slowest_rank() == 0
        assert result.imbalance > 1.3

    def test_rank_subset(self):
        sim = SPMDSimulator(symmetric_program(), ranks=8)
        result = sim.run({"n": 5}, rank_subset=[0])
        assert result.ranks == 1
        assert 0 in result.per_rank_time

    def test_invalid_rank_rejected(self):
        sim = SPMDSimulator(symmetric_program(), ranks=2)
        with pytest.raises(ValueError):
            sim.run({"n": 1}, rank_subset=[5])

    def test_subset_matches_full_for_symmetric(self):
        sim = SPMDSimulator(symmetric_program(), ranks=4)
        full = sim.run({"n": 10})
        sub = sim.run({"n": 10}, rank_subset=[0])
        assert sub.critical_path == pytest.approx(full.critical_path)


class TestSPMDTaint:
    def test_merged_taint_covers_rank_dependent_paths(self):
        """Rank 0's extra loop depends on n; other ranks never execute it.
        The merged report recovers the dependence regardless of which
        ranks took the branch."""
        prog = rank_branch_program()
        sim = SPMDSimulator(prog, ranks=4)
        only_rank3 = sim.taint_merged(
            {"n": 6}, {"n": "n"}, MPI_DATABASE, rank_subset=[3]
        )
        merged = sim.taint_merged({"n": 6}, {"n": "n"}, MPI_DATABASE)
        assert only_rank3.loop_params("main", 0) == frozenset()
        assert merged.loop_params("main", 0) == frozenset({"n"})

    def test_merged_iterations_accumulate(self):
        prog = symmetric_program()
        sim = SPMDSimulator(prog, ranks=3)
        merged = sim.taint_merged({"n": 4}, {"n": "n"}, MPI_DATABASE)
        key = next(
            k for k in merged.loop_records if k[1] == "main"
        )
        assert merged.loop_records[key].iterations == 12  # 4 x 3 ranks

    def test_empty_subset(self):
        sim = SPMDSimulator(symmetric_program(), ranks=2)
        report = sim.taint_merged({"n": 1}, {"n": "n"}, rank_subset=[])
        assert report.loop_records == {}
