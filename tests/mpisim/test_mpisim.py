"""MPI simulation substrate tests: network, collectives, contention,
runtime."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InterpreterError
from repro.interp.events import CostKind
from repro.mpisim import (
    BandwidthSaturationContention,
    LogQuadraticContention,
    MPIConfig,
    MPIRuntime,
    NetworkModel,
    NoContention,
    allgather_cost,
    allreduce_cost,
    alltoall_cost,
    barrier_cost,
    bcast_cost,
    gather_cost,
    reduce_cost,
    sendrecv_cost,
)

NET = NetworkModel(latency=1000.0, byte_cost=0.1, reduce_cost=0.02)


class TestNetworkModel:
    def test_ptp_cost(self):
        assert NET.ptp_cost(0) == 1000.0
        assert NET.ptp_cost(100) == 1000.0 + 100 * 8 * 0.1

    def test_message_bytes(self):
        assert NET.message_bytes(10) == 80.0
        assert NET.message_bytes(-5) == 0.0

    def test_with_latency(self):
        assert NET.with_latency(5.0).latency == 5.0
        assert NET.with_latency(5.0).byte_cost == NET.byte_cost


class TestCollectiveCosts:
    def test_single_rank_free(self):
        for fn in (bcast_cost, reduce_cost, allreduce_cost, allgather_cost,
                   gather_cost, alltoall_cost):
            assert fn(1, 100, NET) == 0.0
        assert barrier_cost(1, NET) == 0.0

    def test_bcast_log_scaling(self):
        c4 = bcast_cost(4, 10, NET)
        c16 = bcast_cost(16, 10, NET)
        assert c16 == pytest.approx(2 * c4)

    def test_allreduce_includes_reduction(self):
        assert allreduce_cost(4, 100, NET) > bcast_cost(4, 100, NET)

    def test_allgather_linear_in_p(self):
        c8 = allgather_cost(8, 10, NET)
        c64 = allgather_cost(64, 10, NET)
        assert c64 > 6 * c8  # (p-1) scaling dominates

    def test_alltoall_most_expensive_large_p(self):
        p, n = 64, 100
        # Ring allgather moves the same total volume as pairwise alltoall
        # under alpha-beta, so >= (equality is the analytic coincidence).
        assert alltoall_cost(p, n, NET) >= allgather_cost(p, n, NET)
        assert alltoall_cost(p, n, NET) > bcast_cost(p, n, NET)

    @given(
        p=st.sampled_from([2, 4, 8, 16, 32, 64, 128]),
        count=st.floats(min_value=0, max_value=1e6),
    )
    @settings(max_examples=50, deadline=None)
    def test_costs_nonnegative_and_finite(self, p, count):
        for fn in (bcast_cost, reduce_cost, allreduce_cost, allgather_cost,
                   gather_cost, alltoall_cost):
            cost = fn(p, count, NET)
            assert cost >= 0 and math.isfinite(cost)

    @given(p=st.integers(min_value=2, max_value=256))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_p(self, p):
        assert barrier_cost(2 * p, NET) >= barrier_cost(p, NET)
        assert allgather_cost(2 * p, 10, NET) >= allgather_cost(p, 10, NET)


class TestContention:
    def test_no_contention(self):
        assert NoContention().factor(64) == 1.0

    def test_logquad_single_rank_free(self):
        assert LogQuadraticContention().factor(1) == 1.0

    def test_logquad_growth(self):
        model = LogQuadraticContention(beta=0.06)
        assert model.factor(18) == pytest.approx(
            1 + 0.06 * math.log2(18) ** 2
        )
        assert model.factor(32) > model.factor(16) > model.factor(2)

    def test_saturation_model(self):
        model = BandwidthSaturationContention(saturation_ranks=4)
        assert model.factor(2) == 1.0
        assert model.factor(4) == 1.0
        assert model.factor(8) == 2.0

    @given(r=st.integers(min_value=1, max_value=256))
    @settings(max_examples=30, deadline=None)
    def test_factors_at_least_one(self, r):
        for model in (NoContention(), LogQuadraticContention(),
                      BandwidthSaturationContention()):
            assert model.factor(r) >= 1.0


class TestMPIRuntime:
    def runtime(self, p=8):
        return MPIRuntime(MPIConfig(ranks=p))

    def test_handles_known(self):
        rt = self.runtime()
        assert rt.handles("MPI_Allreduce")
        assert rt.handles("MPI_Comm_size")
        assert not rt.handles("MPI_Frobnicate")
        assert not rt.handles("printf")

    def test_comm_size_rank(self):
        rt = self.runtime(16)
        assert rt.call("MPI_Comm_size", ()).value == 16
        assert rt.call("MPI_Comm_rank", ()).value == 0

    def test_send_cost(self):
        rt = self.runtime()
        result = rt.call("MPI_Send", (100,))
        assert result.costs[CostKind.COMM] == sendrecv_cost(100, rt.config.network)

    def test_allreduce_returns_value(self):
        rt = self.runtime(4)
        result = rt.call("MPI_Allreduce", (3.5, 10))
        assert result.value == 3.5
        assert result.costs[CostKind.COMM] == allreduce_cost(
            4, 10, rt.config.network
        )

    def test_isend_wait_split(self):
        rt = self.runtime()
        startup = rt.call("MPI_Isend", (100,)).costs[CostKind.COMM]
        transfer = rt.call("MPI_Wait", (100,)).costs[CostKind.COMM]
        assert startup + transfer == pytest.approx(
            sendrecv_cost(100, rt.config.network)
        )

    def test_call_counts_tracked(self):
        rt = self.runtime()
        rt.call("MPI_Barrier", ())
        rt.call("MPI_Barrier", ())
        assert rt.call_counts["MPI_Barrier"] == 2

    def test_nonnumeric_count_rejected(self):
        rt = self.runtime()
        from repro.interp.values import Array

        with pytest.raises(InterpreterError):
            rt.call("MPI_Send", (Array(3),))

    def test_wtime_and_init(self):
        rt = self.runtime()
        assert rt.call("MPI_Wtime", ()).value == 0.0
        assert rt.call("MPI_Init", ()).costs == {}

    def test_barrier_scales_with_p(self):
        c2 = MPIRuntime(MPIConfig(ranks=2)).call("MPI_Barrier", ())
        c64 = MPIRuntime(MPIConfig(ranks=64)).call("MPI_Barrier", ())
        assert c64.costs[CostKind.COMM] > c2.costs[CostKind.COMM]
