"""Parallel execution engine: determinism, caching, specs, shared state.

The headline invariant under test: serial and parallel runs of the same
design produce bit-identical ``Measurements`` regardless of worker count,
submission order, or completion order, because every noise sample's RNG
stream is derived purely from (seed, function, configuration, repetition)
and results are merged in canonical design order.
"""

from __future__ import annotations

import dataclasses
import json
import pickle
import random

import pytest

import repro.measure.experiment as experiment_mod
from repro.apps.lulesh import LuleshWorkload
from repro.apps.synthetic import (
    SyntheticWorkload,
    build_additive_example,
    build_foo_example,
    build_multiplicative_example,
    make_scaling_workload,
)
from repro.errors import DesignError
from repro.interp.config import DEFAULT_CONFIG
from repro.libdb import MPI_DATABASE
from repro.measure import (
    ExperimentRunner,
    ParallelExperimentRunner,
    RunCache,
    WorkloadSpec,
    config_run_result_from_dict,
    config_run_result_to_dict,
    full_factorial,
    full_plan,
    measurements_to_dict,
    profile_from_dict,
    profile_to_dict,
    spec_of,
)
from repro.measure.parallel import _run_task, _ConfigTask
from repro.mpisim.contention import LogQuadraticContention
from repro.mpisim.network import DEFAULT_NETWORK


def canonical(measurements) -> str:
    """Byte-exact canonical form of a measurements container."""
    return json.dumps(measurements_to_dict(measurements), sort_keys=True)


BUILDERS = {
    "foo": (build_foo_example, ("a", "b")),
    "additive": (build_additive_example, ("p", "s")),
    "multiplicative": (build_multiplicative_example, ("p", "s")),
}


def random_design(parameters, rng):
    values = {
        name: sorted(
            rng.sample(range(2, 12), rng.randint(1, 3))
        )
        for name in parameters
    }
    return {k: [float(v) for v in vs] for k, vs in values.items()}


class TestSerialParallelIdentity:
    @pytest.mark.parametrize("case", sorted(BUILDERS))
    @pytest.mark.parametrize("trial", [0, 1])
    def test_random_designs_bit_identical(self, case, trial):
        """Property: serial and pooled runs agree on random designs."""
        builder, parameters = BUILDERS[case]
        rng = random.Random(hash((case, trial)) & 0xFFFF)
        workload = SyntheticWorkload(builder=builder, parameters=parameters)
        plan = full_plan(workload.program())
        design = full_factorial(random_design(parameters, rng))
        seed = rng.randint(0, 1000)
        reps = rng.randint(1, 4)

        serial = ExperimentRunner(
            workload=workload, plan=plan, repetitions=reps, seed=seed
        )
        m_serial, p_serial = serial.run(design)

        parallel = ParallelExperimentRunner(
            workload=workload, plan=plan, repetitions=reps, seed=seed,
            n_jobs=2,
        )
        m_parallel, p_parallel = parallel.run(design)

        assert canonical(m_serial) == canonical(m_parallel)
        assert set(p_serial) == set(p_parallel)
        assert parallel.last_stats.executed == len(design)

    def test_design_order_independent_per_key(self):
        """Each configuration's repetition stream is order-independent."""
        workload = make_scaling_workload()
        plan = full_plan(workload.program())
        design = full_factorial({"p": [2.0, 3.0], "s": [4.0, 5.0]})
        runner = ExperimentRunner(
            workload=workload, plan=plan, repetitions=3, seed=9
        )
        m_fwd, _ = runner.run(design)
        m_rev, _ = runner.run(list(reversed(design)))
        for fn, per_key in m_fwd.data.items():
            for key, values in per_key.items():
                assert m_rev.data[fn][key] == values

    def test_contention_and_repetitions_survive_pool(self):
        workload = make_scaling_workload()
        plan = full_plan(workload.program())
        design = [{"p": 2.0, "s": 4.0}]
        kwargs = dict(
            workload=workload, plan=plan, repetitions=4, seed=5,
            contention=LogQuadraticContention(beta=0.1),
        )
        m1, _ = ExperimentRunner(**kwargs).run(design)
        m2, _ = ParallelExperimentRunner(**kwargs, n_jobs=2).run(design)
        assert canonical(m1) == canonical(m2)

    def test_rejects_nonpositive_jobs(self):
        workload = make_scaling_workload()
        with pytest.raises(ValueError):
            ParallelExperimentRunner(
                workload=workload,
                plan=full_plan(workload.program()),
                n_jobs=0,
            )


class TestRunCache:
    def _runner(self, cache_dir, n_jobs=1, seed=2):
        workload = make_scaling_workload()
        return ParallelExperimentRunner(
            workload=workload,
            plan=full_plan(workload.program()),
            repetitions=3,
            seed=seed,
            n_jobs=n_jobs,
            cache_dir=cache_dir,
        )

    def test_second_run_zero_profile_executions(self, tmp_path, monkeypatch):
        design = full_factorial({"p": [2.0, 4.0], "s": [3.0, 5.0]})
        first = self._runner(tmp_path / "cache")
        m_first, _ = first.run(design)
        assert first.last_stats.executed == len(design)

        # Count actual profile executions underneath the second run.
        calls = {"n": 0}
        real = experiment_mod.profile_run

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(experiment_mod, "profile_run", counting)
        second = self._runner(tmp_path / "cache")
        m_second, _ = second.run(design)
        assert calls["n"] == 0
        assert second.last_stats.executed == 0
        assert second.last_stats.cached == len(design)
        assert canonical(m_second) == canonical(m_first)

    def test_cache_serves_parallel_runs(self, tmp_path):
        design = full_factorial({"p": [2.0, 4.0], "s": [3.0, 5.0]})
        m_cold, _ = self._runner(tmp_path / "c", n_jobs=2).run(design)
        warm = self._runner(tmp_path / "c", n_jobs=2)
        m_warm, _ = warm.run(design)
        assert warm.last_stats.executed == 0
        assert canonical(m_warm) == canonical(m_cold)

    def test_differing_seed_misses(self, tmp_path):
        design = [{"p": 2.0, "s": 3.0}]
        self._runner(tmp_path / "c", seed=1).run(design)
        other = self._runner(tmp_path / "c", seed=2)
        other.run(design)
        assert other.last_stats.executed == 1

    def test_differing_plan_misses(self, tmp_path):
        workload = make_scaling_workload()
        design = [{"p": 2.0, "s": 3.0}]
        a = ParallelExperimentRunner(
            workload=workload, plan=full_plan(workload.program()),
            repetitions=2, cache_dir=tmp_path / "c",
        )
        a.run(design)
        narrowed = dataclasses.replace(
            full_plan(workload.program()), functions=frozenset({"kernel"})
        )
        b = ParallelExperimentRunner(
            workload=workload, plan=narrowed,
            repetitions=2, cache_dir=tmp_path / "c",
        )
        b.run(design)
        assert b.last_stats.executed == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        design = [{"p": 2.0, "s": 3.0}]
        runner = self._runner(tmp_path / "c")
        runner.run(design)
        for entry in (tmp_path / "c").glob("*.json"):
            entry.write_text("{not json")
        again = self._runner(tmp_path / "c")
        again.run(design)
        assert again.last_stats.executed == 1

    def test_run_result_json_round_trip(self, tmp_path):
        workload = make_scaling_workload()
        parameters = tuple(workload.parameters)
        setup = workload.setup({"p": 2.0, "s": 3.0})
        result = experiment_mod.run_configuration(
            workload.program(), setup, full_plan(workload.program()),
            ExperimentRunner.__dataclass_fields__["noise"].default_factory(),
            LogQuadraticContention(), 3, 0, (2.0, 3.0),
        )
        back = config_run_result_from_dict(config_run_result_to_dict(result))
        assert back.key == result.key
        assert back.samples == result.samples
        assert back.calls == result.calls
        assert profile_to_dict(back.profile) == profile_to_dict(result.profile)
        assert profile_to_dict(
            profile_from_dict(profile_to_dict(result.profile))
        ) == profile_to_dict(result.profile)

    def test_cache_len_and_contains(self, tmp_path):
        cache = RunCache(tmp_path / "c")
        assert len(cache) == 0
        assert "deadbeef" not in cache


class TestWorkloadSpec:
    def test_synthetic_spec_round_trip(self):
        workload = make_scaling_workload()
        spec = workload.spec()
        rebuilt = pickle.loads(pickle.dumps(spec)).build()
        assert rebuilt.name == workload.name
        assert rebuilt.parameters == workload.parameters

    def test_lulesh_spec_round_trip(self):
        workload = LuleshWorkload(parameters=("p",))
        rebuilt = pickle.loads(pickle.dumps(workload.spec())).build()
        assert rebuilt.parameters == ("p",)
        assert canonical_program(rebuilt) == canonical_program(workload)

    def test_spec_of_falls_back_to_pickling(self):
        class Plain:
            name = "plain"
            parameters = ("x",)

        spec = spec_of(Plain())
        assert isinstance(spec, WorkloadSpec)
        assert spec.build().name == "plain"

    def test_worker_task_round_trip(self):
        """The worker entry point runs standalone on a pickled task."""
        workload = make_scaling_workload()
        plan = full_plan(workload.program())
        task = _ConfigTask(
            index=0,
            spec_blob=pickle.dumps(workload.spec()),
            config=(("p", 2.0), ("s", 3.0)),
            plan=plan,
            noise=ExperimentRunner.__dataclass_fields__[
                "noise"
            ].default_factory(),
            contention=ExperimentRunner.__dataclass_fields__[
                "contention"
            ].default_factory(),
            repetitions=2,
            seed=0,
            key=(2.0, 3.0),
        )
        index, result = _run_task(pickle.loads(pickle.dumps(task)))
        assert index == 0
        assert result.key == (2.0, 3.0)
        assert len(result.samples) > 0


def canonical_program(workload) -> str:
    from repro.ir.printer import format_program

    return format_program(workload.program())


class TestSharedStateAudit:
    """A run must never mutate state observed by a concurrent run."""

    def test_shared_defaults_are_immutable(self):
        for instance in (DEFAULT_CONFIG, DEFAULT_NETWORK):
            field = dataclasses.fields(instance)[0].name
            with pytest.raises(dataclasses.FrozenInstanceError):
                setattr(instance, field, 123)

    def test_pipeline_library_is_not_shared(self):
        from repro.core.pipeline import PerfTaintPipeline
        from repro.libdb.database import LibraryEntry

        a = PerfTaintPipeline(workload=make_scaling_workload())
        b = PerfTaintPipeline(workload=make_scaling_workload())
        assert a.library is not b.library
        assert a.library is not MPI_DATABASE
        a.library.register(LibraryEntry(name="Fake_routine"))
        assert not b.library.handles("Fake_routine")
        assert not MPI_DATABASE.handles("Fake_routine")

    def test_library_copy_decouples(self):
        copied = MPI_DATABASE.copy()
        assert copied.entries == MPI_DATABASE.entries
        assert copied.entries is not MPI_DATABASE.entries

    def test_runner_defaults_are_per_instance(self):
        workload = make_scaling_workload()
        plan = full_plan(workload.program())
        a = ExperimentRunner(workload=workload, plan=plan)
        b = ExperimentRunner(workload=workload, plan=plan)
        assert a.noise is not b.noise
        assert a.contention is not b.contention


class TestDesignValidation:
    def test_full_factorial_empty_value_list_names_parameter(self):
        with pytest.raises(DesignError, match="'size'"):
            full_factorial({"p": [1.0, 2.0], "size": []})

    def test_one_at_a_time_empty_value_list_names_parameter(self):
        from repro.measure import one_at_a_time

        with pytest.raises(DesignError, match="'p'"):
            one_at_a_time({"p": [], "size": [1.0]})
