"""Batched measurement layer: noise streams, runner identity, routing.

The headline invariant: the batched runner's ``Measurements`` are
bit-identical to the serial runner's for every batch size, worker count,
and engine — because the vectorized engine reproduces per-lane profiles
exactly and every noise sample's RNG stream depends only on
(seed, function, configuration, repetition).
"""

from __future__ import annotations

import json
import random

import numpy as np
import pytest

from repro.apps.lulesh import LuleshWorkload
from repro.apps.synthetic import (
    SyntheticWorkload,
    build_additive_example,
    build_foo_example,
    build_multiplicative_example,
    make_scaling_workload,
)
from repro.errors import RegistryError
from repro.measure import (
    BatchedExperimentRunner,
    ExperimentRunner,
    GaussianNoise,
    NoNoise,
    full_factorial,
    full_plan,
    measurements_to_dict,
    merge_results,
    merge_results_dense,
    perturb_block,
    profile_run,
    profile_run_batch,
    profile_to_dict,
    require_batch_engine,
    rng_for,
    stream_seed,
)
from repro.measure.noise import _seedseq_words


def canonical(measurements) -> str:
    """Byte-exact canonical form of a measurements container."""
    return json.dumps(measurements_to_dict(measurements), sort_keys=True)


# ----------------------------------------------------------------------
# noise streams


class TestVectorizedNoiseStreams:
    def test_seedseq_words_match_numpy(self):
        """The vectorized SeedSequence mixing must reproduce numpy's
        ``generate_state(4, uint64)`` word-for-word across the seed
        range (including the 32/64-bit entropy-splitting boundaries)."""
        rng = random.Random(7)
        seeds = [0, 1, 2**32 - 1, 2**32, 2**63, 2**64 - 1] + [
            rng.randrange(2**64) for _ in range(40)
        ]
        words = _seedseq_words(np.array(seeds, dtype=np.uint64))
        for i, seed in enumerate(seeds):
            ref = np.random.SeedSequence(seed).generate_state(4, np.uint64)
            assert words[i].tolist() == ref.tolist()

    @pytest.mark.parametrize(
        "noise",
        [GaussianNoise(), GaussianNoise(0.1, 5.0), GaussianNoise(0.0, 0.0)],
    )
    @pytest.mark.parametrize("repetitions", [1, 3])
    def test_gaussian_block_matches_scalar_streams(self, noise, repetitions):
        """Property: ``perturb_block`` equals the scalar ``rng_for``
        reference element-for-element over random triples."""
        rng = random.Random(hash((repr(noise), repetitions)) & 0xFFFF)
        items = [
            (
                rng.choice(["main", "kernel", "MPI_Allreduce", "f#42"]),
                (float(rng.randint(1, 64)), float(rng.randint(1, 32))),
                rng.random() * 10.0 ** rng.randint(0, 6),
            )
            for _ in range(50)
        ]
        seed = rng.randint(0, 10_000)
        block = perturb_block(noise, seed, items, repetitions)
        reference = [
            [
                noise.perturb(base, rng_for(seed, function, key, rep))
                for rep in range(repetitions)
            ]
            for function, key, base in items
        ]
        assert block == reference

    def test_generic_noise_model_matches_scalar_streams(self):
        """Noise models outside the built-ins use the generic per-stream
        path — still bit-identical to the scalar derivation."""

        class Lognormal:
            def perturb(self, base, rng):
                return base * float(np.exp(rng.normal(0.0, 0.05)))

        noise = Lognormal()
        items = [("f", (2.0,), 10.0), ("g", (3.0,), 0.5), ("f", (4.0,), 7.0)]
        block = perturb_block(noise, 3, items, 4)
        reference = [
            [
                noise.perturb(base, rng_for(3, function, key, rep))
                for rep in range(4)
            ]
            for function, key, base in items
        ]
        assert block == reference

    def test_no_noise_short_circuits(self):
        items = [("f", (1.0,), 5.0), ("g", (2.0,), 0.25)]
        assert perturb_block(NoNoise(), 0, items, 3) == [
            [5.0, 5.0, 5.0],
            [0.25, 0.25, 0.25],
        ]

    def test_stream_seed_is_the_rng_for_seed(self):
        seed = stream_seed(5, "kernel", (2.0, 3.0), 1)
        a = np.random.default_rng(seed).standard_normal(3)
        b = rng_for(5, "kernel", (2.0, 3.0), 1).standard_normal(3)
        assert a.tolist() == b.tolist()


# ----------------------------------------------------------------------
# merge helpers


class TestMergeDense:
    def test_matches_append_merge_on_unique_keys(self):
        workload = make_scaling_workload()
        plan = full_plan(workload.program())
        design = full_factorial({"p": [2.0, 3.0], "s": [4.0, 5.0]})
        runner = ExperimentRunner(workload=workload, plan=plan, repetitions=2)
        measurements, _ = runner.run(design)
        from repro.measure.experiment import run_configuration, config_key

        parameters = tuple(workload.parameters)
        results = [
            run_configuration(
                workload.program(),
                workload.setup(config),
                plan,
                runner.noise,
                runner.contention,
                runner.repetitions,
                runner.seed,
                config_key(parameters, config),
            )
            for config in design
        ]
        dense = merge_results_dense(parameters, results)
        appended = merge_results(parameters, results)
        assert canonical(dense[0]) == canonical(appended[0])
        assert set(dense[1]) == set(appended[1])
        assert canonical(dense[0]) == canonical(measurements)


# ----------------------------------------------------------------------
# profiles


class TestProfileRunBatch:
    def test_profiles_bit_identical_to_scalar(self):
        workload = LuleshWorkload(parameters=("p", "size"))
        plan = full_plan(workload.program())
        configs = [
            {"p": p, "size": s} for p in (8.0, 27.0) for s in (10.0, 14.0)
        ]
        setups = [workload.setup(c) for c in configs]
        batched = profile_run_batch(
            workload.program(),
            [s.args for s in setups],
            plan,
            runtimes=[s.runtime for s in setups],
            exec_config=setups[0].exec_config,
            entry=setups[0].entry,
        )
        for setup, profile in zip(setups, batched):
            scalar = profile_run(
                workload.program(),
                setup.args,
                plan,
                runtime=setup.runtime,
                exec_config=setup.exec_config,
                entry=setup.entry,
            )
            assert profile_to_dict(profile) == profile_to_dict(scalar)
            assert profile.total_time() == scalar.total_time()


# ----------------------------------------------------------------------
# the runner

BUILDERS = {
    "foo": (build_foo_example, ("a", "b")),
    "additive": (build_additive_example, ("p", "s")),
    "multiplicative": (build_multiplicative_example, ("p", "s")),
}


class TestSerialBatchedIdentity:
    @pytest.mark.parametrize("case", sorted(BUILDERS))
    def test_random_designs_bit_identical(self, case):
        """Property: serial and batched runs agree on random designs."""
        builder, parameters = BUILDERS[case]
        rng = random.Random(hash(case) & 0xFFFF)
        workload = SyntheticWorkload(builder=builder, parameters=parameters)
        plan = full_plan(workload.program())
        design = full_factorial(
            {
                name: sorted(
                    float(v)
                    for v in rng.sample(range(2, 12), rng.randint(2, 3))
                )
                for name in parameters
            }
        )
        seed = rng.randint(0, 1000)
        reps = rng.randint(1, 4)

        serial = ExperimentRunner(
            workload=workload, plan=plan, repetitions=reps, seed=seed
        )
        m_serial, p_serial = serial.run(design)

        batched = BatchedExperimentRunner(
            workload=workload, plan=plan, repetitions=reps, seed=seed
        )
        m_batched, p_batched = batched.run(design)

        assert canonical(m_serial) == canonical(m_batched)
        assert set(p_serial) == set(p_batched)
        for key in p_serial:
            assert profile_to_dict(p_serial[key]) == profile_to_dict(
                p_batched[key]
            )
        assert batched.last_stats.executed == len(design)

    @pytest.mark.parametrize("batch_size", [1, 3, None])
    @pytest.mark.parametrize("n_jobs", [1, 2])
    def test_every_batch_size_and_worker_count(self, batch_size, n_jobs):
        """Serial ≡ batched for any (batch size × worker count) split."""
        workload = make_scaling_workload()
        plan = full_plan(workload.program())
        design = full_factorial({"p": [2.0, 3.0, 4.0], "s": [4.0, 6.0]})
        kwargs = dict(workload=workload, plan=plan, repetitions=3, seed=11)
        m_serial, _ = ExperimentRunner(**kwargs).run(design)
        runner = BatchedExperimentRunner(
            **kwargs, batch_size=batch_size, n_jobs=n_jobs
        )
        m_batched, _ = runner.run(design)
        assert canonical(m_serial) == canonical(m_batched)

    def test_run_cache_round_trip(self, tmp_path):
        workload = make_scaling_workload()
        plan = full_plan(workload.program())
        design = full_factorial({"p": [2.0, 4.0], "s": [3.0, 5.0]})
        kwargs = dict(
            workload=workload,
            plan=plan,
            repetitions=2,
            seed=3,
            cache_dir=tmp_path / "cache",
        )
        cold = BatchedExperimentRunner(**kwargs)
        m_cold, _ = cold.run(design)
        assert cold.last_stats.executed == len(design)
        warm = BatchedExperimentRunner(**kwargs)
        m_warm, _ = warm.run(design)
        assert warm.last_stats.executed == 0
        assert warm.last_stats.cached == len(design)
        assert canonical(m_warm) == canonical(m_cold)

    def test_rejects_scalar_engine(self):
        workload = make_scaling_workload()
        with pytest.raises(RegistryError, match="vectorized"):
            BatchedExperimentRunner(
                workload=workload,
                plan=full_plan(workload.program()),
                engine="compiled",
            )

    def test_rejects_invalid_batch_size_and_jobs(self):
        workload = make_scaling_workload()
        plan = full_plan(workload.program())
        with pytest.raises(ValueError):
            BatchedExperimentRunner(
                workload=workload, plan=plan, batch_size=0
            )
        with pytest.raises(ValueError):
            BatchedExperimentRunner(workload=workload, plan=plan, n_jobs=0)

    def test_require_batch_engine_names_capable_set(self):
        require_batch_engine("vectorized")
        with pytest.raises(RegistryError, match="repro engines"):
            require_batch_engine("tree")


class TestMeasureStageRouting:
    def test_vectorized_engine_routes_to_batched_runner(self):
        """``run_measure_stage`` with a batch-capable engine must produce
        measurements bit-identical to the scalar engines' (and actually
        use the batched runner underneath)."""
        from repro.core.stages import run_measure_stage

        workload = make_scaling_workload()
        plan = full_plan(workload.program())
        design = full_factorial({"p": [2.0, 3.0], "s": [4.0, 5.0]})
        outputs = {
            engine: run_measure_stage(
                workload,
                design,
                plan,
                noise=GaussianNoise(),
                contention=ExperimentRunner.__dataclass_fields__[
                    "contention"
                ].default_factory(),
                repetitions=3,
                seed=4,
                engine=engine,
            )
            for engine in ("compiled", "vectorized")
        }
        assert canonical(outputs["compiled"][0]) == canonical(
            outputs["vectorized"][0]
        )


class TestEnginesCli:
    def test_listing_shows_capability_flags(self, capsys):
        from repro.cli import main

        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        lines = {line.split()[0]: line for line in out.splitlines() if line}
        assert "supports_batch" in lines["vectorized"]
        assert "supports_taint" in lines["compiled"]
        assert "supports_batch" not in lines["compiled"]

    def test_sweep_accepts_vectorized_engine(self, capsys):
        from repro.cli import main

        outputs = []
        for engine in ("compiled", "vectorized"):
            assert (
                main(
                    [
                        "sweep",
                        "synthetic",
                        "--values",
                        "p=2,3",
                        "s=4,5",
                        "--engine",
                        engine,
                    ]
                )
                == 0
            )
            out = capsys.readouterr().out
            outputs.append(out[out.index("collected") :])
        assert outputs[0] == outputs[1]
