"""Measurement substrate tests: noise, instrumentation, profiler,
experiments."""

import numpy as np
import pytest

from repro.errors import DesignError
from repro.interp.events import CostKind
from repro.ir import ProgramBuilder, call, var
from repro.measure import (
    APP_KEY,
    ExperimentRunner,
    GaussianNoise,
    InstrumentationMode,
    NoNoise,
    default_filter_plan,
    full_factorial,
    full_plan,
    none_plan,
    one_at_a_time,
    profile_run,
    rng_for,
    taint_filter_plan,
)
from repro.taint import TaintInterpreter


def sample_program():
    pb = ProgramBuilder()
    with pb.function("tiny", ["i"], kind="accessor") as f:
        f.ret(var("i"))
    with pb.function("wide_const", ["i"]) as f:
        for k in range(10):
            f.assign(f"t{k}", k)
    with pb.function("kernel", ["n"], kind="kernel") as f:
        for k in range(6):
            f.assign(f"c{k}", k)
        with f.for_("i", 0, f.var("n")):
            f.call("tiny", f.var("i"))
            f.work(10)
    with pb.function("main", ["n"]) as f:
        f.call("wide_const", 1)
        f.call("kernel", var("n"))
    return pb.build(entry="main")


class TestNoise:
    def test_no_noise_identity(self):
        rng = np.random.default_rng(0)
        assert NoNoise().perturb(123.0, rng) == 123.0

    def test_gaussian_nonnegative(self):
        noise = GaussianNoise(relative_sigma=0.5, absolute_sigma=100)
        rng = np.random.default_rng(0)
        assert all(noise.perturb(1.0, rng) >= 0 for _ in range(100))

    def test_absolute_floor_dominates_short_functions(self):
        noise = GaussianNoise(relative_sigma=0.02, absolute_sigma=200)
        short = [
            noise.perturb(10.0, rng_for(0, "f", (1.0,), i)) for i in range(50)
        ]
        long_ = [
            noise.perturb(1e7, rng_for(0, "f", (1.0,), i)) for i in range(50)
        ]
        cov_short = np.std(short) / np.mean(short)
        cov_long = np.std(long_) / np.mean(long_)
        assert cov_short > 5 * cov_long

    def test_rng_deterministic(self):
        a = rng_for(1, "f", (2.0, 3.0), 0).normal()
        b = rng_for(1, "f", (2.0, 3.0), 0).normal()
        assert a == b

    def test_rng_streams_independent(self):
        a = rng_for(1, "f", (2.0,), 0).normal()
        b = rng_for(1, "f", (2.0,), 1).normal()
        c = rng_for(1, "g", (2.0,), 0).normal()
        assert len({a, b, c}) == 3


class TestInstrumentationPlans:
    def test_full_covers_everything(self):
        prog = sample_program()
        plan = full_plan(prog)
        assert plan.functions == frozenset(prog.functions)

    def test_default_filter_drops_small(self):
        prog = sample_program()
        plan = default_filter_plan(prog)
        assert "tiny" not in plan.functions
        assert "wide_const" in plan.functions  # big but constant: kept
        assert "kernel" in plan.functions

    def test_taint_filter_keeps_only_relevant(self):
        prog = sample_program()
        taint = TaintInterpreter(prog).analyze({"n": 3}, {"n": "n"}).report
        plan = taint_filter_plan(prog, taint)
        assert plan.functions == frozenset({"kernel"})

    def test_none_plan(self):
        plan = none_plan()
        assert len(plan) == 0 and plan.overhead_per_call == 0.0


class TestProfiler:
    def test_uninstrumented_folds_into_parent(self):
        prog = sample_program()
        taint = TaintInterpreter(prog).analyze({"n": 3}, {"n": "n"}).report
        plan = taint_filter_plan(prog, taint)
        prof = profile_run(prog, {"n": 5}, plan)
        assert prof.visible_functions() == frozenset({"kernel"})
        # tiny's and main's costs fold into kernel / the root.
        assert prof.total_time() > 0

    def test_full_instrumentation_overhead(self):
        prog = sample_program()
        native = profile_run(prog, {"n": 100}, none_plan()).total_time()
        full = profile_run(prog, {"n": 100}, full_plan(prog)).total_time()
        assert full > native  # overhead strictly positive
        prof = profile_run(prog, {"n": 100}, full_plan(prog))
        assert prof.overhead_time() == pytest.approx(full - native)

    def test_overhead_scales_with_call_count(self):
        prog = sample_program()
        p10 = profile_run(prog, {"n": 10}, full_plan(prog))
        p100 = profile_run(prog, {"n": 100}, full_plan(prog))
        assert p100.overhead_time() > p10.overhead_time() * 5

    def test_base_total_excludes_overhead(self):
        prog = sample_program()
        native = profile_run(prog, {"n": 50}, none_plan()).total_time()
        prof = profile_run(prog, {"n": 50}, full_plan(prog))
        assert prof.base_total_time() == pytest.approx(native)

    def test_contention_scales_memory_only(self):
        pb = ProgramBuilder()
        with pb.function("main", ["n"], kind="kernel") as f:
            with f.for_("i", 0, f.var("n")):
                f.mem_work(10)
            with f.for_("i", 0, f.var("n")):
                f.work(10)
        prog = pb.build(entry="main")
        base = profile_run(prog, {"n": 10}, full_plan(prog), contention_factor=1.0)
        slow = profile_run(prog, {"n": 10}, full_plan(prog), contention_factor=2.0)
        node_b = base.flat()["main"]
        node_s = slow.flat()["main"]
        assert node_s.time(2.0) - node_b.time(1.0) == pytest.approx(
            node_b.memory
        )

    def test_mpi_always_visible(self):
        pb = ProgramBuilder()
        with pb.function("main", []) as f:
            f.call("MPI_Barrier")
        prog = pb.build(entry="main")
        from repro.mpisim import MPIConfig, MPIRuntime

        prof = profile_run(
            prog, {}, none_plan(), runtime=MPIRuntime(MPIConfig(ranks=8))
        )
        assert "MPI_Barrier" in prof.visible_functions()

    def test_callpath_nodes(self):
        prog = sample_program()
        prof = profile_run(prog, {"n": 3}, full_plan(prog))
        paths = set(prof.nodes)
        assert ("main",) in paths
        assert ("main", "kernel") in paths
        assert ("main", "kernel", "tiny") in paths

    def test_loop_iterations_recorded(self):
        prog = sample_program()
        prof = profile_run(prog, {"n": 7}, full_plan(prog))
        assert prof.loop_iterations[("kernel", 0)] == 7


class TestDesigns:
    def test_full_factorial(self):
        configs = full_factorial({"a": [1, 2], "b": [3, 4, 5]})
        assert len(configs) == 6
        assert {"a": 1, "b": 3} in configs

    def test_full_factorial_empty_rejected(self):
        with pytest.raises(DesignError):
            full_factorial({})

    def test_one_at_a_time_size(self):
        configs = one_at_a_time({"a": [1, 2, 3], "b": [1, 5, 9]})
        # baseline + 2 extra per parameter = 5 (sum, not product)
        assert len(configs) == 5

    def test_one_at_a_time_holds_base(self):
        configs = one_at_a_time({"a": [1, 2, 3], "b": [1, 5, 9]})
        for cfg in configs:
            assert cfg["a"] == 1 or cfg["b"] == 1


class TestExperimentRunner:
    def make_workload(self):
        from repro.apps.synthetic import SyntheticWorkload, build_foo_example

        return SyntheticWorkload(
            builder=build_foo_example,
            parameters=("a", "b"),
            defaults={"a": 4, "b": 4},
        )

    def test_run_produces_repetitions(self):
        wl = self.make_workload()
        runner = ExperimentRunner(
            workload=wl,
            plan=full_plan(wl.program()),
            noise=NoNoise(),
            repetitions=4,
        )
        meas, profiles = runner.run([{"a": 2, "b": 3}, {"a": 5, "b": 3}])
        assert len(profiles) == 2
        assert len(meas.repetitions("foo", (2.0, 3.0))) == 4
        assert APP_KEY in meas.data

    def test_noise_free_repetitions_identical(self):
        wl = self.make_workload()
        runner = ExperimentRunner(
            workload=wl, plan=full_plan(wl.program()), noise=NoNoise()
        )
        meas, _ = runner.run([{"a": 3, "b": 1}])
        reps = meas.repetitions("foo", (3.0, 1.0))
        assert len(set(reps)) == 1

    def test_points_matrix_shape(self):
        wl = self.make_workload()
        runner = ExperimentRunner(
            workload=wl, plan=full_plan(wl.program()), noise=NoNoise()
        )
        meas, _ = runner.run(full_factorial({"a": [2, 4], "b": [1, 3]}))
        X, y = meas.points("foo")
        assert X.shape == (4, 2)
        assert y.shape == (4,)

    def test_cov_screen(self):
        wl = self.make_workload()
        runner = ExperimentRunner(
            workload=wl,
            plan=full_plan(wl.program()),
            noise=GaussianNoise(relative_sigma=0.01, absolute_sigma=1e7),
            repetitions=5,
        )
        meas, _ = runner.run([{"a": 3, "b": 1}])
        # enormous absolute noise -> everything unreliable
        assert meas.reliable_functions(0.1) == []

    def test_deterministic_across_runs(self):
        wl = self.make_workload()

        def run_once():
            runner = ExperimentRunner(
                workload=wl,
                plan=full_plan(wl.program()),
                noise=GaussianNoise(),
                seed=99,
            )
            meas, _ = runner.run([{"a": 3, "b": 2}])
            return meas.repetitions("foo", (3.0, 2.0))

        assert run_once() == run_once()
