"""Concurrent-writer safety of the content-addressed stores.

The campaign service lets many processes race on the same fingerprint —
two workers finishing identical leases, two campaigns sharing a
workspace, a server and a local run sharing a store directory.  The
contract (temp file + ``os.replace``) is that a racing reader sees
either a complete, valid entry or a miss — never a torn one — and the
worst case of a race is duplicated work, not corruption.

The writers here run in real separate *processes*, hammering the same
key, while the parent reads concurrently.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.apps.synthetic import SyntheticWorkload, build_foo_example
from repro.core.artifacts import ArtifactStore
from repro.measure import (
    ParallelExperimentRunner,
    RunCache,
    full_plan,
    measurements_to_dict,
)
from repro.measure.experiment import run_configuration
from repro.measure.io import config_run_result_to_dict
from repro.measure.noise import GaussianNoise
from repro.mpisim.contention import NoContention
from repro.service.remote_store import LocalStore

WRITES_PER_PROCESS = 40


def make_result():
    workload = SyntheticWorkload(
        builder=build_foo_example, parameters=("a", "b")
    )
    return run_configuration(
        workload.program(),
        workload.setup({"a": 2.0, "b": 3.0}),
        full_plan(workload.program()),
        GaussianNoise(),
        NoContention(),
        3,
        0,
        (2.0, 3.0),
    )


# -- process entry points (module-level so they pickle) -----------------


def hammer_run_cache(root: str) -> int:
    cache = RunCache(root)
    result = make_result()
    for _ in range(WRITES_PER_PROCESS):
        cache.put("racefp", result)
    return WRITES_PER_PROCESS


def hammer_artifact_store(root: str) -> int:
    store = ArtifactStore(root)
    payload = {"data": list(range(200)), "tag": "race"}
    for _ in range(WRITES_PER_PROCESS):
        store.put("measure", "racefp", payload)
    return WRITES_PER_PROCESS


def hammer_local_store(root: str) -> int:
    store = LocalStore(root)
    payload = {"data": list(range(200)), "tag": "race"}
    for _ in range(WRITES_PER_PROCESS):
        store.put("runs", "racefp", payload)
    return WRITES_PER_PROCESS


def race(hammer, root, reader):
    """Two writer processes vs. a concurrently polling parent reader."""
    torn = []
    with ProcessPoolExecutor(max_workers=2) as pool:
        futures = [pool.submit(hammer, str(root)) for _ in range(2)]
        while not all(f.done() for f in futures):
            value = reader()
            # Reads during the race: a miss (None, e.g. corrupt-entry
            # guard) is acceptable only before the first write lands;
            # a torn read would either raise inside reader() or return
            # a mangled value recorded here.
            if value is not None and not value[1]:
                torn.append(value)
        assert all(f.result() == WRITES_PER_PROCESS for f in futures)
    assert not torn


class TestConcurrentWriters:
    def test_run_cache_same_fingerprint(self, tmp_path):
        root = tmp_path / "cache"
        expected = json.dumps(
            config_run_result_to_dict(make_result()), sort_keys=True
        )
        cache = RunCache(root)

        def reader():
            hit = cache.get("racefp")
            if hit is None:
                return None
            got = json.dumps(
                config_run_result_to_dict(hit), sort_keys=True
            )
            return got, got == expected

        race(hammer_run_cache, root, reader)
        final = cache.get("racefp")
        assert final is not None and final.cached
        assert (
            json.dumps(config_run_result_to_dict(final), sort_keys=True)
            == expected
        )

    def test_artifact_store_same_fingerprint(self, tmp_path):
        root = tmp_path / "ws"
        expected = {"data": list(range(200)), "tag": "race"}
        store = ArtifactStore(root)

        def reader():
            hit = store.get("measure", "racefp")
            return None if hit is None else (hit, hit == expected)

        race(hammer_artifact_store, root, reader)
        assert store.get("measure", "racefp") == expected

    def test_local_store_same_fingerprint(self, tmp_path):
        root = tmp_path / "store"
        expected = {"data": list(range(200)), "tag": "race"}
        store = LocalStore(root)

        def reader():
            hit = store.get("runs", "racefp")
            return None if hit is None else (hit, hit == expected)

        race(hammer_local_store, root, reader)
        assert store.get("runs", "racefp") == expected

    def test_local_store_has_many_preserves_order(self, tmp_path):
        store = LocalStore(tmp_path / "store")
        store.put("runs", "fp1", {"v": 1})
        store.put("runs", "fp3", {"v": 3})
        assert store.has_many("runs", ["fp1", "fp2", "fp3", "fp1"]) == [
            True,
            False,
            True,
            True,
        ]
        assert store.has_many("runs", []) == []


def run_sweep(root: str) -> tuple[int, str]:
    """One full cached sweep; returns (executed count, canonical result)."""
    workload = SyntheticWorkload(
        builder=build_foo_example, parameters=("a", "b")
    )
    runner = ParallelExperimentRunner(
        workload=workload,
        plan=full_plan(workload.program()),
        noise=GaussianNoise(),
        contention=NoContention(),
        repetitions=3,
        seed=0,
        cache_dir=root,
    )
    design = [
        {"a": float(a), "b": float(b)}
        for a in (2.0, 3.0)
        for b in (4.0, 5.0)
    ]
    measurements, _ = runner.run(design)
    return (
        runner.last_stats.executed,
        json.dumps(measurements_to_dict(measurements), sort_keys=True),
    )


class TestRacingSweeps:
    def test_two_processes_same_cache_then_free_rerun(self, tmp_path):
        # Two whole sweeps race the same cache directory: both succeed
        # with identical results (worst case: entries computed twice),
        # and a third run afterwards executes nothing.
        root = str(tmp_path / "cache")
        with ProcessPoolExecutor(max_workers=2) as pool:
            outcomes = list(
                pool.map(run_sweep, [root, root])
            )
        (_, canon_a), (_, canon_b) = outcomes
        assert canon_a == canon_b
        executed, canon_after = run_sweep(root)
        assert executed == 0
        assert canon_after == canon_a
