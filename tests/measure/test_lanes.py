"""Lane planning and dedup over the (configuration x repetition) grid.

The dedup contract: lanes whose configuration identity is equal share
one representative engine lane, and the broadcast back to every
duplicate slot is bit-identical to running each slot as its own lane —
noise streams are still drawn per ``(function, key, repetition)``.
Repetitions are pure dedup gain (the engine already runs one lane per
configuration), so a sweep with R repetitions executes ~1/R of its
planned lane grid.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.apps.synthetic import make_scaling_workload
from repro.interp.runtime import NoLibraryRuntime, TableRuntime
from repro.interp.vectorize import lane_signature, plan_unique_lanes
from repro.measure import (
    BatchedExperimentRunner,
    ExperimentRunner,
    GaussianNoise,
    LaneStats,
    batch_chunks,
    config_key,
    full_factorial,
    full_plan,
    measurements_to_dict,
    plan_lanes,
    profile_to_dict,
    run_batch_configurations,
)
from repro.measure.experiment import RunSetup
from repro.mpisim.contention import NoContention
from repro.mpisim.runtime import MPIConfig, MPIRuntime


def canonical(measurements) -> str:
    return json.dumps(measurements_to_dict(measurements), sort_keys=True)


def result_repr(result) -> tuple:
    return (
        result.key,
        profile_to_dict(result.profile),
        dict(result.calls),
        {name: list(values) for name, values in result.samples.items()},
    )


class TestLaneSignature:
    def test_equal_args_equal_signature(self):
        assert lane_signature({"p": 2.0, "s": 4.0}) == lane_signature(
            {"s": 4.0, "p": 2.0}
        )

    def test_value_types_distinguish(self):
        assert lane_signature({"p": 2}) != lane_signature({"p": 2.0})

    def test_opaque_argument_disables_dedup(self):
        assert lane_signature({"p": object()}) is None

    def test_none_argument_is_allowed(self):
        assert lane_signature({"p": None}) == lane_signature({"p": None})

    def test_no_library_runtime_is_stateless(self):
        a = lane_signature({"p": 1.0}, NoLibraryRuntime())
        b = lane_signature({"p": 1.0}, NoLibraryRuntime())
        assert a is not None and a == b

    def test_stateful_runtime_without_config_disables_dedup(self):
        assert lane_signature({"p": 1.0}, TableRuntime()) is None

    def test_runtime_config_participates(self):
        a = lane_signature({"p": 1.0}, MPIRuntime(config=MPIConfig(ranks=2)))
        b = lane_signature({"p": 1.0}, MPIRuntime(config=MPIConfig(ranks=2)))
        c = lane_signature({"p": 1.0}, MPIRuntime(config=MPIConfig(ranks=4)))
        assert a == b
        assert a != c


class TestPlanUniqueLanes:
    def test_duplicates_collapse(self):
        args = [{"p": 2.0}, {"p": 3.0}, {"p": 2.0}, {"p": 3.0}, {"p": 2.0}]
        representatives, slot_to_rep = plan_unique_lanes(args)
        assert representatives == [0, 1]
        assert slot_to_rep == [0, 1, 0, 1, 0]

    def test_opaque_lane_never_shared(self):
        blob = object()
        args = [{"p": blob}, {"p": blob}]
        representatives, slot_to_rep = plan_unique_lanes(args)
        assert representatives == [0, 1]
        assert slot_to_rep == [0, 1]


class TestPlanLanes:
    def _setups(self, configs):
        workload = make_scaling_workload()
        return [workload.setup(dict(c)) for c in configs]

    def test_repetitions_are_pure_dedup_gain(self):
        setups = self._setups([{"p": 2.0, "s": 4.0}, {"p": 3.0, "s": 4.0}])
        reps, slot_to_rep, stats = plan_lanes(setups, repetitions=5)
        assert reps == [0, 1]
        assert slot_to_rep == [0, 1]
        assert stats == LaneStats(planned=10, executed=2)
        assert stats.deduped == 8

    def test_repeated_design_points_share_a_lane(self):
        setups = self._setups(
            [{"p": 2.0, "s": 4.0}, {"p": 2.0, "s": 4.0}, {"p": 3.0, "s": 4.0}]
        )
        reps, slot_to_rep, stats = plan_lanes(setups, repetitions=1)
        assert reps == [0, 2]
        assert slot_to_rep == [0, 0, 1]
        assert stats.executed == 2

    def test_entry_and_exec_config_split_lanes(self):
        setups = self._setups([{"p": 2.0, "s": 4.0}, {"p": 2.0, "s": 4.0}])
        split = RunSetup(
            args=setups[1].args,
            runtime=setups[1].runtime,
            ranks_per_node=setups[1].ranks_per_node,
            exec_config=setups[1].exec_config,
            entry="other",
        )
        reps, slot_to_rep, _ = plan_lanes([setups[0], split])
        assert reps == [0, 1]
        assert slot_to_rep == [0, 1]


class TestDedupBitIdentity:
    def test_duplicated_setups_match_undeduped_run(self):
        """dedup=True broadcast == dedup=False per-slot execution,
        profile values and noise samples alike."""
        workload = make_scaling_workload()
        plan = full_plan(workload.program())
        configs = [
            {"p": 2.0, "s": 4.0},
            {"p": 3.0, "s": 6.0},
            {"p": 2.0, "s": 4.0},
            {"p": 2.0, "s": 4.0},
            {"p": 3.0, "s": 6.0},
        ]
        parameters = tuple(workload.parameters)
        setups = [workload.setup(c) for c in configs]
        keys = [config_key(parameters, c) for c in configs]
        outputs = {
            dedup: run_batch_configurations(
                workload.program(),
                setups,
                keys,
                plan,
                GaussianNoise(),
                NoContention(),
                3,
                17,
                dedup=dedup,
            )
            for dedup in (True, False)
        }
        assert [result_repr(r) for r in outputs[True]] == [
            result_repr(r) for r in outputs[False]
        ]

    @pytest.mark.parametrize("dedup", [True, False])
    def test_runner_is_bit_identical_to_serial(self, dedup):
        workload = make_scaling_workload()
        plan = full_plan(workload.program())
        design = full_factorial({"p": [2.0, 3.0, 4.0], "s": [4.0, 6.0]})
        kwargs = dict(workload=workload, plan=plan, repetitions=4, seed=9)
        m_serial, _ = ExperimentRunner(**kwargs).run(design)
        runner = BatchedExperimentRunner(**kwargs, dedup=dedup)
        m_batched, _ = runner.run(design)
        assert canonical(m_serial) == canonical(m_batched)

    def test_runner_lane_stats_count_the_grid(self):
        workload = make_scaling_workload()
        plan = full_plan(workload.program())
        design = full_factorial({"p": [2.0, 3.0, 4.0], "s": [4.0, 6.0]})
        runner = BatchedExperimentRunner(
            workload=workload, plan=plan, repetitions=5, seed=9
        )
        runner.run(design)
        stats = runner.last_lane_stats
        assert stats.planned == len(design) * 5
        assert stats.executed == len(design)
        assert stats.deduped == len(design) * 4

    def test_lane_stats_invariant_under_sharding(self):
        """Dedup is per chunk, but a unique design plans the same grid
        for every (batch_size, n_jobs) split."""
        workload = make_scaling_workload()
        plan = full_plan(workload.program())
        design = full_factorial({"p": [2.0, 3.0, 4.0], "s": [4.0, 6.0]})
        plans = set()
        for batch_size, n_jobs in [(None, 1), (2, 1), (None, 2), (1, 2)]:
            runner = BatchedExperimentRunner(
                workload=workload,
                plan=plan,
                repetitions=3,
                seed=1,
                batch_size=batch_size,
                n_jobs=n_jobs,
            )
            runner.run(design)
            plans.add(runner.last_lane_stats)
        assert plans == {LaneStats(planned=len(design) * 3, executed=len(design))}


# ----------------------------------------------------------------------
# batch_chunks properties


def _uniform_setups(n: int) -> list[RunSetup]:
    workload = make_scaling_workload()
    return [workload.setup({"p": float(i + 2), "s": 4.0}) for i in range(n)]


class TestBatchChunksProperties:
    @given(
        n=st.integers(min_value=0, max_value=40),
        batch_size=st.one_of(st.none(), st.integers(1, 50)),
        n_jobs=st.one_of(st.none(), st.integers(1, 8)),
    )
    def test_partition_invariants(self, n, batch_size, n_jobs):
        """Chunks are a partition: order-preserving, non-empty, complete."""
        setups = _uniform_setups(n)
        pending = list(range(n))
        chunks = batch_chunks(pending, setups, batch_size, n_jobs)
        assert [i for chunk in chunks for i in chunk] == pending
        assert all(chunk for chunk in chunks)
        if batch_size is not None:
            assert all(len(chunk) <= batch_size for chunk in chunks)

    @given(n=st.integers(1, 40), n_jobs=st.integers(2, 8))
    def test_split_is_balanced(self, n, n_jobs):
        """Worker-hint splits differ by at most one lane and produce one
        chunk per worker (up to the group size) — no idle worker on an
        uneven split."""
        setups = _uniform_setups(n)
        chunks = batch_chunks(list(range(n)), setups, None, n_jobs)
        assert len(chunks) == min(n_jobs, n)
        sizes = [len(chunk) for chunk in chunks]
        assert max(sizes) - min(sizes) <= 1

    def test_empty_design(self):
        assert batch_chunks([], [], None, 4) == []

    def test_batch_size_larger_than_group(self):
        setups = _uniform_setups(3)
        assert batch_chunks([0, 1, 2], setups, 10, None) == [[0, 1, 2]]

    def test_single_lane_groups(self):
        setups = _uniform_setups(1)
        assert batch_chunks([0], setups, None, 8) == [[0]]

    @pytest.mark.parametrize("n_jobs", [None, 1])
    def test_no_worker_hint_keeps_groups_whole(self, n_jobs):
        setups = _uniform_setups(5)
        assert batch_chunks(list(range(5)), setups, None, n_jobs) == [
            [0, 1, 2, 3, 4]
        ]

    def test_uneven_split_has_no_short_chunk_count(self):
        """5 lanes over 4 workers must be 4 chunks [2,1,1,1] — the old
        ceil-division split produced only 3 chunks and idled a worker."""
        setups = _uniform_setups(5)
        chunks = batch_chunks(list(range(5)), setups, None, 4)
        assert [len(c) for c in chunks] == [2, 1, 1, 1]

    def test_groups_split_on_entry_boundaries(self):
        setups = _uniform_setups(4)
        setups[2] = RunSetup(
            args=setups[2].args,
            runtime=setups[2].runtime,
            ranks_per_node=setups[2].ranks_per_node,
            exec_config=setups[2].exec_config,
            entry="other",
        )
        chunks = batch_chunks(list(range(4)), setups, None, 1)
        assert chunks == [[0, 1], [2], [3]]
