"""Run-cache fingerprints must include the execution-engine identity.

Engines are differentially tested to be bit-identical, but a cache entry
must still never be served across engines: an engine bug would otherwise
be masked — or spread — by the cache.  These tests populate a cache with
one engine and prove the other engine re-executes from scratch (and that
the numbers nevertheless agree, as the differential suite demands).
"""

from __future__ import annotations

import json

from repro.apps.synthetic import make_scaling_workload
from repro.measure.instrumentation import full_plan
from repro.measure.io import measurements_to_dict, run_fingerprint
from repro.measure.parallel import ParallelExperimentRunner

DESIGN = [
    {"p": 2.0, "s": 3.0},
    {"p": 2.0, "s": 5.0},
    {"p": 4.0, "s": 3.0},
]


def _runner(engine: str, cache_dir) -> ParallelExperimentRunner:
    workload = make_scaling_workload()
    return ParallelExperimentRunner(
        workload=workload,
        plan=full_plan(workload.program()),
        repetitions=2,
        seed=7,
        cache_dir=cache_dir,
        engine=engine,
    )


class TestEngineCacheIsolation:
    def test_cache_not_shared_across_engines(self, tmp_path):
        cache = tmp_path / "cache"
        compiled = _runner("compiled", cache)
        first, _ = compiled.run(DESIGN)
        assert compiled.last_stats.executed == len(DESIGN)
        assert compiled.last_stats.cached == 0

        # Same cache, other engine: every configuration re-executes.
        tree = _runner("tree", cache)
        second, _ = tree.run(DESIGN)
        assert tree.last_stats.executed == len(DESIGN)
        assert tree.last_stats.cached == 0

        # Same engine again: everything is served from the cache.
        compiled_again = _runner("compiled", cache)
        third, _ = compiled_again.run(DESIGN)
        assert compiled_again.last_stats.executed == 0
        assert compiled_again.last_stats.cached == len(DESIGN)

        # And the engines agree bit-for-bit on the measurements anyway.
        canon = lambda m: json.dumps(measurements_to_dict(m), sort_keys=True)
        assert canon(first) == canon(second) == canon(third)

    def test_run_fingerprint_varies_with_engine(self):
        workload = make_scaling_workload()
        plan = full_plan(workload.program())
        common = dict(
            config={"p": 2.0, "s": 3.0},
            plan=plan,
            exec_repr="exec",
            noise_repr="noise",
            contention_repr="contention",
            repetitions=2,
            seed=7,
        )
        tree = run_fingerprint("digest", engine="tree", **common)
        compiled = run_fingerprint("digest", engine="compiled", **common)
        assert tree != compiled
        # Still deterministic per engine.
        assert tree == run_fingerprint("digest", engine="tree", **common)
