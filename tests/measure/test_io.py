"""Measurement/model serialization round-trip tests."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.measure.experiment import Measurements
from repro.measure.io import (
    load_measurements,
    measurements_from_dict,
    measurements_to_dict,
    model_from_dict,
    model_to_dict,
    save_measurements,
)
from repro.modeling import Modeler, fit_constant


def sample_measurements():
    m = Measurements(parameters=("p", "size"))
    m.add("kernel", (4.0, 10.0), 100.0)
    m.add("kernel", (4.0, 10.0), 102.0)
    m.add("kernel", (8.0, 10.0), 150.0)
    m.add("other", (4.0, 10.0), 7.0)
    m.calls.setdefault("kernel", {})[(4.0, 10.0)] = 3
    return m


class TestMeasurementsRoundTrip:
    def test_dict_round_trip(self):
        original = sample_measurements()
        restored = measurements_from_dict(measurements_to_dict(original))
        assert restored.parameters == original.parameters
        assert restored.data == original.data
        assert restored.calls == original.calls

    def test_file_round_trip(self, tmp_path):
        original = sample_measurements()
        path = tmp_path / "meas.json"
        save_measurements(original, path)
        restored = load_measurements(path)
        assert restored.data == original.data

    def test_points_preserved(self):
        original = sample_measurements()
        restored = measurements_from_dict(measurements_to_dict(original))
        X0, y0 = original.points("kernel")
        X1, y1 = restored.points("kernel")
        np.testing.assert_allclose(X0, X1)
        np.testing.assert_allclose(y0, y1)

    def test_bad_version_rejected(self):
        payload = measurements_to_dict(sample_measurements())
        payload["version"] = 99
        with pytest.raises(MeasurementError):
            measurements_from_dict(payload)

    def test_arity_mismatch_rejected(self):
        payload = measurements_to_dict(sample_measurements())
        payload["data"]["kernel"][0]["config"] = [1.0]
        with pytest.raises(MeasurementError):
            measurements_from_dict(payload)


class TestModelRoundTrip:
    def test_fitted_model_round_trip(self):
        x = np.array([4.0, 8.0, 16.0, 32.0, 64.0]).reshape(-1, 1)
        y = 3 * x[:, 0] ** 2 + 5
        model = Modeler().model(x, y, ("p",))
        restored = model_from_dict(model_to_dict(model))
        assert restored.parameters == model.parameters
        np.testing.assert_allclose(
            restored.predict(x), model.predict(x)
        )
        assert restored.stats.rss == model.stats.rss
        assert restored.format() == model.format()

    def test_constant_model_round_trip(self):
        model = fit_constant(
            np.ones((3, 1)), np.array([4.0, 5.0, 6.0]), ("p",)
        )
        restored = model_from_dict(model_to_dict(model))
        assert restored.is_constant
        assert restored.predict_one({"p": 100}) == pytest.approx(5.0)

    def test_metadata_preserved(self):
        model = fit_constant(np.ones((2, 1)), np.array([1.0, 1.0]), ("p",))
        model.metadata["prior"] = "constant"
        restored = model_from_dict(model_to_dict(model))
        assert restored.metadata == {"prior": "constant"}
