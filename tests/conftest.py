"""Shared fixtures.

Heavy artifacts (the LULESH/MILC programs and their analysis reports) are
session-scoped: they are deterministic and immutable, so every test module
can share them.
"""

from __future__ import annotations

import pytest

from repro.apps.lulesh import LuleshWorkload
from repro.apps.milc import MilcWorkload
from repro.core.pipeline import PerfTaintPipeline


@pytest.fixture(scope="session")
def lulesh_workload() -> LuleshWorkload:
    return LuleshWorkload()


@pytest.fixture(scope="session")
def lulesh_program(lulesh_workload):
    return lulesh_workload.program()


@pytest.fixture(scope="session")
def lulesh_pipeline(lulesh_workload):
    return PerfTaintPipeline(workload=lulesh_workload, repetitions=3, seed=7)


@pytest.fixture(scope="session")
def lulesh_static(lulesh_pipeline):
    return lulesh_pipeline.analyze_static()


@pytest.fixture(scope="session")
def lulesh_taint(lulesh_pipeline):
    return lulesh_pipeline.analyze_taint()


@pytest.fixture(scope="session")
def milc_workload() -> MilcWorkload:
    return MilcWorkload()


@pytest.fixture(scope="session")
def milc_program(milc_workload):
    return milc_workload.program()


@pytest.fixture(scope="session")
def milc_pipeline(milc_workload):
    return PerfTaintPipeline(workload=milc_workload, repetitions=3, seed=7)


@pytest.fixture(scope="session")
def milc_static(milc_pipeline):
    return milc_pipeline.analyze_static()


@pytest.fixture(scope="session")
def milc_taint(milc_pipeline):
    return milc_pipeline.analyze_taint()
