"""Direct tests of the TaintReport container (merged views, mutation)."""

from repro.taint.report import TaintReport


def make_report():
    rep = TaintReport(parameters=("p", "size"))
    rep.record_loop(("main", "k1"), "k1", 0, frozenset({"size"}), 10)
    rep.record_loop(("main", "a", "k1"), "k1", 0, frozenset({"p"}), 5)
    rep.record_loop(("main", "k2"), "k2", 1, frozenset(), 3)
    rep.record_branch(("main",), "main", 0, frozenset({"p"}), True)
    rep.record_branch(("main",), "main", 0, frozenset({"p"}), False)
    rep.record_library(("main", "comm"), "comm", "MPI_Send", frozenset({"p"}))
    rep.record_library(("main", "comm"), "comm", "MPI_Send", frozenset({"size"}))
    rep.executed_functions = frozenset({"main", "k1", "k2", "comm"})
    return rep


class TestLoopViews:
    def test_merged_loop_params(self):
        rep = make_report()
        assert rep.loop_params("k1", 0) == frozenset({"size", "p"})

    def test_loops_by_function(self):
        rep = make_report()
        by_fn = rep.loops_by_function()
        assert by_fn["k1"][0] == frozenset({"size", "p"})
        assert by_fn["k2"][1] == frozenset()

    def test_iterations_accumulate_per_callpath(self):
        rep = make_report()
        recs = [
            r
            for (cp, fn, lid), r in rep.loop_records.items()
            if fn == "k1"
        ]
        assert sorted(r.iterations for r in recs) == [5, 10]

    def test_relevant_loops_exclude_clean(self):
        rep = make_report()
        assert rep.relevant_loops() == frozenset({("k1", 0)})

    def test_loops_affected_by(self):
        rep = make_report()
        assert rep.loops_affected_by("p") == frozenset({("k1", 0)})
        assert rep.loops_affected_by("nothing") == frozenset()


class TestBranchViews:
    def test_directions_merge(self):
        rep = make_report()
        assert rep.branch_directions("main", 0) == frozenset({True, False})

    def test_params(self):
        rep = make_report()
        assert rep.branch_params("main", 0) == frozenset({"p"})
        assert rep.branch_params("main", 99) == frozenset()


class TestLibraryViews:
    def test_caller_params_union(self):
        rep = make_report()
        assert rep.library_params("comm") == frozenset({"p", "size"})
        assert rep.library_params("k1") == frozenset()

    def test_routine_params(self):
        rep = make_report()
        assert rep.routine_params("MPI_Send") == frozenset({"p", "size"})

    def test_routines_called(self):
        rep = make_report()
        assert rep.routines_called() == frozenset({"MPI_Send"})

    def test_call_count_accumulates(self):
        rep = make_report()
        rec = rep.library_records[(("main", "comm"), "MPI_Send")]
        assert rec.calls == 2


class TestFunctionViews:
    def test_function_params_combines_loops_and_library(self):
        rep = make_report()
        assert rep.function_params("k1") == frozenset({"size", "p"})
        assert rep.function_params("comm") == frozenset({"p", "size"})
        assert rep.function_params("k2") == frozenset()

    def test_tainted_functions(self):
        rep = make_report()
        assert rep.tainted_functions() == frozenset({"k1", "comm"})

    def test_functions_affected_by(self):
        rep = make_report()
        assert rep.functions_affected_by("size") == frozenset({"k1", "comm"})


class TestWarningsAndMerge:
    def test_warn_deduplicates(self):
        rep = TaintReport()
        rep.warn("x")
        rep.warn("x")
        assert rep.warnings == ["x"]

    def test_merge_unions_everything(self):
        a = make_report()
        b = TaintReport(parameters=("size", "extra"))
        b.record_loop(("main", "k3"), "k3", 0, frozenset({"extra"}), 7)
        b.warn("w")
        merged = a.merge(b)
        assert merged.parameters == ("p", "size", "extra")
        assert merged.loop_params("k3", 0) == frozenset({"extra"})
        assert merged.loop_params("k1", 0) == frozenset({"size", "p"})
        assert "w" in merged.warnings
