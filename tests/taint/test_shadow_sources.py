"""Shadow state and source-spec tests."""

from repro.interp.values import Array
from repro.taint.label import CLEAN, LabelTable
from repro.taint.shadow import ShadowFrame, ShadowHeap
from repro.taint.sources import (
    LibraryTaintEffect,
    NoLibraryTaint,
    ParameterSource,
    SourceSpec,
)


class TestShadowFrame:
    def test_default_clean(self):
        frame = ShadowFrame()
        assert frame.get("x") == CLEAN

    def test_set_get(self):
        frame = ShadowFrame()
        frame.set("x", 3)
        assert frame.get("x") == 3

    def test_clean_set_removes_entry(self):
        frame = ShadowFrame()
        frame.set("x", 3)
        frame.set("x", CLEAN)
        assert frame.items() == {}

    def test_items_sparse(self):
        frame = ShadowFrame()
        frame.set("a", 1)
        frame.set("b", CLEAN)
        assert frame.items() == {"a": 1}


class TestShadowHeap:
    def test_default_clean(self):
        heap = ShadowHeap()
        arr = Array(4)
        assert heap.load(arr, 0) == CLEAN
        assert heap.summary(arr) == CLEAN

    def test_store_and_load(self):
        table = LabelTable()
        heap = ShadowHeap()
        arr = Array(4)
        a = table.create("a")
        heap.store(arr, 2, a, table.union)
        assert heap.load(arr, 2) == a
        assert heap.load(arr, 0) == CLEAN
        assert heap.summary(arr) == a

    def test_summary_accumulates(self):
        table = LabelTable()
        heap = ShadowHeap()
        arr = Array(4)
        a, b = table.create("a"), table.create("b")
        heap.store(arr, 0, a, table.union)
        heap.store(arr, 1, b, table.union)
        assert table.expand(heap.summary(arr)) == frozenset({"a", "b"})

    def test_clean_store_noop(self):
        heap = ShadowHeap()
        arr = Array(4)
        heap.store(arr, 0, CLEAN, lambda a, b: a)
        assert heap.summary(arr) == CLEAN

    def test_taint_all(self):
        table = LabelTable()
        heap = ShadowHeap()
        arr = Array(3)
        a = table.create("a")
        heap.taint_all(arr, a, table.union)
        assert all(heap.load(arr, i) == a for i in range(3))

    def test_distinct_arrays_independent(self):
        table = LabelTable()
        heap = ShadowHeap()
        arr1, arr2 = Array(2), Array(2)
        heap.store(arr1, 0, table.create("a"), table.union)
        assert heap.load(arr2, 0) == CLEAN


class TestSourceSpec:
    def test_from_dict(self):
        spec = SourceSpec.from_mapping({"nx": "size"})
        assert spec.parameters == [ParameterSource("nx", "size")]
        assert spec.label_names() == ("size",)

    def test_from_list(self):
        spec = SourceSpec.from_mapping(["a", "b"])
        assert spec.label_names() == ("a", "b")

    def test_default_label_is_argument(self):
        assert ParameterSource("n").label_name() == "n"

    def test_no_library_taint(self):
        model = NoLibraryTaint()
        assert not model.handles("MPI_Send")
        assert model.effect("x", (), ()) == LibraryTaintEffect()
