"""Taint-engine semantics: sources, propagation policies, sinks."""

import pytest

from repro.errors import RecursionUnsupportedError
from repro.interp.runtime import TableRuntime
from repro.ir import ProgramBuilder, add, call, load, lt, mod, mul, var
from repro.taint import (
    DATAFLOW_ONLY,
    PropagationPolicy,
    TaintInterpreter,
)
from repro.taint.policy import FULL_POLICY


def analyze(populate, args, sources=None, policy=FULL_POLICY, params=None, **kw):
    pb = ProgramBuilder()
    names = params or sorted(args)
    with pb.function("main", names) as f:
        populate(f)
    prog = pb.build(entry="main")
    engine = TaintInterpreter(prog, policy=policy, **kw)
    return engine.analyze(args, sources or {n: n for n in names}).report


class TestDataFlow:
    def test_loop_bound_direct(self):
        def body(f):
            with f.for_("i", 0, f.var("n")):
                f.work(1)

        rep = analyze(body, {"n": 4})
        assert rep.loop_params("main", 0) == frozenset({"n"})

    def test_loop_bound_via_arithmetic(self):
        def body(f):
            f.assign("m", mul(var("n"), var("n")))
            with f.for_("i", 0, f.var("m")):
                f.work(1)

        rep = analyze(body, {"n": 3})
        assert rep.loop_params("main", 0) == frozenset({"n"})

    def test_untainted_bound(self):
        def body(f):
            f.assign("m", 10)
            with f.for_("i", 0, f.var("m")):
                f.work(1)

        rep = analyze(body, {"n": 3})
        assert rep.loop_params("main", 0) == frozenset()

    def test_strong_update_kills_taint(self):
        def body(f):
            f.assign("m", var("n"))
            f.assign("m", 5)  # overwrite: taint killed
            with f.for_("i", 0, f.var("m")):
                f.work(1)

        rep = analyze(body, {"n": 3})
        assert rep.loop_params("main", 0) == frozenset()

    def test_multiple_labels_in_one_condition(self):
        """The paper's only over-approximation source (5.2)."""

        def body(f):
            f.assign("m", mul(var("a"), var("b")))
            with f.for_("i", 0, f.var("m")):
                f.work(1)

        rep = analyze(body, {"a": 2, "b": 3})
        assert rep.loop_params("main", 0) == frozenset({"a", "b"})

    def test_taint_through_call_return(self):
        pb = ProgramBuilder()
        with pb.function("double", ["x"]) as f:
            f.ret(mul(var("x"), 2))
        with pb.function("main", ["n"]) as f:
            f.assign("m", call("double", var("n")))
            with f.for_("i", 0, f.var("m")):
                f.work(1)
        prog = pb.build(entry="main")
        rep = TaintInterpreter(prog).analyze({"n": 3}, {"n": "n"}).report
        assert rep.loop_params("main", 0) == frozenset({"n"})

    def test_taint_through_array(self):
        def body(f):
            f.alloc("a", 4)
            f.store("a", 0, var("n"))
            f.assign("m", load("a", 0))
            with f.for_("i", 0, f.var("m")):
                f.work(1)

        rep = analyze(body, {"n": 3})
        assert rep.loop_params("main", 0) == frozenset({"n"})

    def test_step_and_start_labels_join_sink(self):
        def body(f):
            with f.for_("i", var("a"), 100, var("b")):
                f.work(1)

        rep = analyze(body, {"a": 0, "b": 5})
        assert rep.loop_params("main", 0) == frozenset({"a", "b"})

    def test_label_renaming(self):
        def body(f):
            with f.for_("i", 0, f.var("n")):
                f.work(1)

        rep = analyze(body, {"n": 4}, sources={"n": "size"})
        assert rep.loop_params("main", 0) == frozenset({"size"})


class TestControlFlow:
    def test_branch_assignment_tainted(self):
        """Paper 3.2: 'if (b) d++; else d--;' — explicit control dep."""

        def body(f):
            f.assign("d", 0)
            with f.if_(var("b")):
                f.assign("d", 1)
            with f.else_():
                f.assign("d", 2)
            with f.for_("i", 0, f.var("d")):
                f.work(1)

        rep = analyze(body, {"b": 1})
        assert rep.loop_params("main", 0) == frozenset({"b"})

    def test_loop_carried_value_tainted(self):
        """Paper 5.2 regElemSize example: accumulation under a tainted
        loop carries the loop-bound label."""

        def body(f):
            f.assign("acc", 0)
            with f.for_("i", 0, f.var("n")):
                f.assign("acc", add(var("acc"), 1))
            with f.for_("j", 0, f.var("acc")):
                f.work(1)

        rep = analyze(body, {"n": 4})
        assert "n" in rep.loop_params("main", 1)

    def test_loop_invariant_assignment_not_tainted(self):
        """A loop-invariant assignment under a tainted loop does NOT pick
        up the loop label (value does not depend on the trip count)."""

        def body(f):
            f.assign("x", 0)
            with f.for_("i", 0, f.var("n")):
                f.assign("x", var("k"))
            with f.for_("j", 0, f.var("x")):
                f.work(1)

        rep = analyze(body, {"n": 4, "k": 2})
        assert rep.loop_params("main", 1) == frozenset({"k"})

    def test_loop_var_derived_value_tainted(self):
        """r = i % regions: reading the induction variable is loop-carried."""

        def body(f):
            f.assign("r", 0)
            with f.for_("i", 0, f.var("n")):
                f.assign("r", mod(var("i"), 3))
            with f.for_("j", 0, f.var("r")):
                f.work(1)

        rep = analyze(body, {"n": 4})
        assert "n" in rep.loop_params("main", 1)

    def test_dataflow_only_misses_control_dep(self):
        """Ablation: without control-flow propagation the regElemSize
        dependence is lost (paper 5.2)."""

        def body(f):
            f.assign("acc", 0)
            with f.for_("i", 0, f.var("n")):
                f.assign("acc", add(var("acc"), 1))
            with f.for_("j", 0, f.var("acc")):
                f.work(1)

        rep = analyze(body, {"n": 4}, policy=DATAFLOW_ONLY)
        assert "n" not in rep.loop_params("main", 1)

    def test_branch_sink_records_direction(self):
        def body(f):
            with f.if_(lt(var("n"), 10)):
                f.work(1)

        rep = analyze(body, {"n": 4})
        assert rep.branch_params("main", 0) == frozenset({"n"})
        assert rep.branch_directions("main", 0) == frozenset({True})

    def test_untainted_branch_recorded_clean(self):
        def body(f):
            f.assign("x", 1)
            with f.if_(var("x")):
                f.work(1)

        rep = analyze(body, {"n": 0})
        assert rep.branch_params("main", 0) == frozenset()


class TestImplicitFlow:
    def test_implicit_flow_taints_untaken_branch(self):
        """Paper 3.2: 'if (c) d = pow(d, 2)' taints d even when not taken."""

        def body(f):
            f.assign("d", 1)
            with f.if_(var("c")):
                f.assign("d", 2)
            with f.for_("i", 0, f.var("d")):
                f.work(1)

        implicit = PropagationPolicy(implicit_flow=True)
        rep = analyze(body, {"c": 0}, policy=implicit)
        assert "c" in rep.loop_params("main", 0)

    def test_explicit_only_misses_untaken_branch(self):
        def body(f):
            f.assign("d", 1)
            with f.if_(var("c")):
                f.assign("d", 2)
            with f.for_("i", 0, f.var("d")):
                f.work(1)

        rep = analyze(body, {"c": 0})  # branch not taken
        assert "c" not in rep.loop_params("main", 0)

    def test_implicit_requires_control(self):
        with pytest.raises(ValueError):
            PropagationPolicy(control_flow=False, implicit_flow=True).validate()


class TestWhileLoops:
    def test_while_condition_sink(self):
        def body(f):
            f.assign("i", 0)
            with f.while_(lt(var("i"), var("n"))):
                f.assign("i", add(var("i"), 1))

        rep = analyze(body, {"n": 4})
        assert rep.loop_params("main", 0) == frozenset({"n"})

    def test_while_condition_label_grows(self):
        """Labels acquired mid-loop join the sink."""

        def body(f):
            f.assign("i", 0)
            f.assign("limit", 10)
            with f.while_(lt(var("i"), var("limit"))):
                f.assign("limit", var("n"))
                f.assign("i", add(var("i"), 1))

        rep = analyze(body, {"n": 2})
        assert "n" in rep.loop_params("main", 0)


class TestLibraryAndRecursion:
    def test_library_source(self):
        from repro.libdb import MPI_DATABASE
        from repro.mpisim import MPIConfig, MPIRuntime

        pb = ProgramBuilder()
        with pb.function("main", []) as f:
            f.assign("p", call("MPI_Comm_size"))
            with f.for_("i", 0, f.var("p")):
                f.work(1)
        prog = pb.build(entry="main")
        engine = TaintInterpreter(
            prog,
            runtime=MPIRuntime(MPIConfig(ranks=4)),
            library_taint=MPI_DATABASE,
        )
        rep = engine.analyze({}, {}).report
        assert rep.loop_params("main", 0) == frozenset({"p"})

    def test_library_dependency_recorded(self):
        from repro.libdb import MPI_DATABASE
        from repro.mpisim import MPIConfig, MPIRuntime

        pb = ProgramBuilder()
        with pb.function("main", ["n"]) as f:
            f.call("MPI_Send", var("n"))
        prog = pb.build(entry="main")
        engine = TaintInterpreter(
            prog,
            runtime=MPIRuntime(MPIConfig(ranks=4)),
            library_taint=MPI_DATABASE,
        )
        rep = engine.analyze({"n": 8}, {"n": "size"}).report
        assert rep.library_params("main") == frozenset({"p", "size"})

    def test_comm_rank_not_relevant(self):
        from repro.libdb import MPI_DATABASE
        from repro.mpisim import MPIConfig, MPIRuntime

        pb = ProgramBuilder()
        with pb.function("main", []) as f:
            f.assign("r", call("MPI_Comm_rank"))
        prog = pb.build(entry="main")
        engine = TaintInterpreter(
            prog,
            runtime=MPIRuntime(MPIConfig(ranks=4)),
            library_taint=MPI_DATABASE,
        )
        rep = engine.analyze({}, {}).report
        assert rep.library_params("main") == frozenset()

    def test_recursion_warns(self):
        pb = ProgramBuilder()
        with pb.function("rec", ["n"]) as f:
            with f.if_(lt(var("n"), 3)):
                f.call("rec", add(var("n"), 1))
        with pb.function("main", ["n"]) as f:
            f.call("rec", var("n"))
        prog = pb.build(entry="main")
        engine = TaintInterpreter(prog)
        result = engine.analyze({"n": 0}, {"n": "n"})
        assert any("recursi" in w for w in result.report.warnings)

    def test_strict_recursion_raises(self):
        pb = ProgramBuilder()
        with pb.function("rec", ["n"]) as f:
            with f.if_(lt(var("n"), 3)):
                f.call("rec", add(var("n"), 1))
        with pb.function("main", ["n"]) as f:
            f.call("rec", var("n"))
        prog = pb.build(entry="main")
        engine = TaintInterpreter(prog, strict_recursion=True)
        with pytest.raises(RecursionUnsupportedError):
            engine.analyze({"n": 0}, {"n": "n"})

    def test_values_match_plain_interpreter(self):
        """Taint execution must not change program semantics."""
        from repro.interp import Interpreter

        pb = ProgramBuilder()
        with pb.function("main", ["n"]) as f:
            f.assign("acc", 0)
            with f.for_("i", 0, f.var("n")):
                with f.if_(lt(var("i"), 3)):
                    f.assign("acc", add(var("acc"), var("i")))
            f.ret(var("acc"))
        prog = pb.build(entry="main")
        plain = Interpreter(prog).run({"n": 10})
        tainted = TaintInterpreter(prog).analyze({"n": 10}, {"n": "n"})
        assert plain.value == tainted.value


class TestReportViews:
    def test_executed_functions(self):
        pb = ProgramBuilder()
        with pb.function("used", []) as f:
            f.work(1)
        with pb.function("unused", []) as f:
            f.work(1)
        with pb.function("main", []) as f:
            f.call("used")
        prog = pb.build(entry="main")
        rep = TaintInterpreter(prog).analyze({}, {}).report
        assert "used" in rep.executed_functions
        assert "unused" not in rep.executed_functions

    def test_callpath_sensitivity(self):
        """The same loop reached via different callers yields distinct
        call-path records (calling-context-aware models, paper 5.2)."""
        pb = ProgramBuilder()
        with pb.function("kernel", ["n"]) as f:
            with f.for_("i", 0, f.var("n")):
                f.work(1)
        with pb.function("a", ["n"]) as f:
            f.call("kernel", var("n"))
        with pb.function("b", []) as f:
            f.call("kernel", 5)
        with pb.function("main", ["n"]) as f:
            f.call("a", var("n"))
            f.call("b")
        prog = pb.build(entry="main")
        rep = TaintInterpreter(prog).analyze({"n": 3}, {"n": "n"}).report
        paths = {
            cp for (cp, fn, lid) in rep.loop_records if fn == "kernel"
        }
        assert len(paths) == 2
        # merged view unions both contexts
        assert rep.loop_params("kernel", 0) == frozenset({"n"})

    def test_merge_reports(self):
        def body(f):
            with f.for_("i", 0, f.var("n")):
                f.work(1)

        rep1 = analyze(body, {"n": 4})
        rep2 = analyze(body, {"n": 8})
        merged = rep1.merge(rep2)
        key = next(iter(merged.loop_records))
        assert merged.loop_records[key].iterations == 12
