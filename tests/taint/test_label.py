"""Label-table tests, including property-based checks of the union algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LabelExhaustionError
from repro.taint.label import CLEAN, MAX_LABELS, LabelTable


class TestBaseLabels:
    def test_clean_is_zero(self):
        assert CLEAN == 0
        table = LabelTable()
        assert table.expand(CLEAN) == frozenset()

    def test_create_is_idempotent(self):
        table = LabelTable()
        a1 = table.create("a")
        a2 = table.create("a")
        assert a1 == a2

    def test_distinct_names_distinct_ids(self):
        table = LabelTable()
        assert table.create("a") != table.create("b")

    def test_expand_base(self):
        table = LabelTable()
        a = table.create("a")
        assert table.expand(a) == frozenset({"a"})

    def test_info(self):
        table = LabelTable()
        a = table.create("a")
        info = table.info(a)
        assert info.is_base and info.name == "a"


class TestUnion:
    def test_union_with_clean(self):
        table = LabelTable()
        a = table.create("a")
        assert table.union(a, CLEAN) == a
        assert table.union(CLEAN, a) == a

    def test_union_idempotent(self):
        table = LabelTable()
        a = table.create("a")
        assert table.union(a, a) == a

    def test_union_expansion(self):
        table = LabelTable()
        a, b = table.create("a"), table.create("b")
        ab = table.union(a, b)
        assert table.expand(ab) == frozenset({"a", "b"})

    def test_union_deduplicated(self):
        """Equivalent combinations reuse the same id (paper 5.2)."""
        table = LabelTable()
        a, b = table.create("a"), table.create("b")
        assert table.union(a, b) == table.union(b, a)

    def test_union_subsumption(self):
        table = LabelTable()
        a, b = table.create("a"), table.create("b")
        ab = table.union(a, b)
        # (a|b) | a == a|b — no new label allocated
        n_before = len(table)
        assert table.union(ab, a) == ab
        assert len(table) == n_before

    def test_same_base_set_reused_across_operand_pairs(self):
        table = LabelTable()
        a, b, c = table.create("a"), table.create("b"), table.create("c")
        abc1 = table.union(table.union(a, b), c)
        abc2 = table.union(a, table.union(b, c))
        assert abc1 == abc2

    def test_union_all(self):
        table = LabelTable()
        labels = [table.create(n) for n in "abc"]
        u = table.union_all(labels)
        assert table.expand(u) == frozenset("abc")
        assert table.union_all([]) == CLEAN

    def test_has(self):
        table = LabelTable()
        a, b = table.create("a"), table.create("b")
        ab = table.union(a, b)
        assert table.has(ab, "a") and table.has(ab, "b")
        assert not table.has(a, "b")


class TestUnionAlgebraProperties:
    @given(st.lists(st.sampled_from("abcdef"), min_size=0, max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_expand_matches_set_semantics(self, names):
        """Folding unions over any label sequence yields exactly the set
        union of the base names."""
        table = LabelTable()
        labels = [table.create(n) for n in names]
        u = table.union_all(labels)
        assert table.expand(u) == frozenset(names)

    @given(
        st.lists(st.sampled_from("abcd"), min_size=1, max_size=6),
        st.lists(st.sampled_from("abcd"), min_size=1, max_size=6),
    )
    @settings(max_examples=50, deadline=None)
    def test_commutativity(self, xs, ys):
        table = LabelTable()
        lx = table.union_all([table.create(n) for n in xs])
        ly = table.union_all([table.create(n) for n in ys])
        assert table.union(lx, ly) == table.union(ly, lx)

    @given(st.lists(st.sampled_from("abcde"), min_size=3, max_size=9))
    @settings(max_examples=50, deadline=None)
    def test_associativity_of_expansion(self, names):
        import random

        table = LabelTable()
        labels = [table.create(n) for n in names]
        # Two different fold orders produce labels with equal expansions.
        left = table.union_all(labels)
        shuffled = list(labels)
        random.Random(42).shuffle(shuffled)
        right = table.union_all(shuffled)
        assert table.expand(left) == table.expand(right)
        # Deduplication means they are the *same* id.
        assert left == right


class TestExhaustion:
    def test_exhaustion_raises(self):
        table = LabelTable()
        table._info = table._info * 1  # keep reference
        # Simulate a nearly full table instead of allocating 65k labels.
        from repro.taint.label import LabelInfo

        table._info = [
            LabelInfo(i, f"x{i}", 0, 0) for i in range(MAX_LABELS)
        ]
        with pytest.raises(LabelExhaustionError):
            table.create("overflow")
