"""The taint stage on the engine registry: selection, errors, caching.

Covers the analysis-domain refactor's pipeline surface: engine choice
threaded from campaign specs and the CLI into ``run_taint_stage``, typed
errors for unusable workloads and non-taint-capable engines, and the
fingerprint separation that keeps cached taint artifacts from crossing
engines.
"""

from __future__ import annotations

import pytest

from repro.core.stages import STAGES, Campaign, run_taint_stage
from repro.errors import (
    CampaignSpecError,
    PipelineError,
    RegistryError,
)
from repro.interp import (
    DEFAULT_TAINT_ENGINE,
    make_engine,
    shadow_capable_engines,
    shadow_engine_identity,
)
from repro.libdb.mpi_models import MPI_DATABASE
from repro.registry import ENGINE_REGISTRY, register_engine
from repro.taint.domain import TaintDomain
from repro.taint.policy import FULL_POLICY


def _spec(**overrides):
    spec = {
        "app": "synthetic",
        "parameters": {"p": [2.0, 4.0], "s": [3.0, 5.0]},
        "repetitions": 2,
    }
    spec.update(overrides)
    return spec


class TestRunTaintStage:
    def test_missing_taint_config_is_typed(self):
        class NoTaintConfig:
            name = "no-taint"

            def program(self):  # pragma: no cover - never reached
                raise AssertionError

        with pytest.raises(PipelineError) as exc:
            run_taint_stage(
                NoTaintConfig(), None, FULL_POLICY, MPI_DATABASE.copy()
            )
        assert exc.value.stage == "taint"
        assert "no-taint" in str(exc.value)
        assert "taint_config" in str(exc.value)

    def test_non_mapping_taint_config_is_typed(self):
        class BadTaintConfig:
            name = "bad-taint"

            def taint_config(self):
                return [1, 2, 3]

        with pytest.raises(PipelineError) as exc:
            run_taint_stage(
                BadTaintConfig(), None, FULL_POLICY, MPI_DATABASE.copy()
            )
        assert exc.value.stage == "taint"
        assert "bad-taint" in str(exc.value)

    def test_engines_produce_identical_reports(self):
        from repro.apps.synthetic import make_scaling_workload

        workload = make_scaling_workload()
        program = workload.program()
        tree = run_taint_stage(
            workload, program, FULL_POLICY, MPI_DATABASE.copy(), engine="tree"
        )
        compiled = run_taint_stage(
            workload,
            program,
            FULL_POLICY,
            MPI_DATABASE.copy(),
            engine="compiled",
        )
        assert tree == compiled


class TestEngineRegistryDomains:
    def test_builtins_declare_taint_support(self):
        assert set(shadow_capable_engines()) >= {"tree", "compiled"}
        for name in ("tree", "compiled"):
            entry = ENGINE_REGISTRY.entry(name)
            assert entry.metadata.get("supports_taint") is True
            assert entry.metadata.get("shadow_factory") is not None

    def test_shadowless_engine_rejects_domains(self):
        from repro.interp.interpreter import Interpreter

        register_engine("shadowless-test", help="no shadow support")(
            Interpreter
        )
        try:
            from repro.apps.synthetic import make_scaling_workload

            program = make_scaling_workload().program()
            with pytest.raises(RegistryError) as exc:
                make_engine(
                    program, "shadowless-test", domain=TaintDomain()
                )
            assert "shadowless-test" in str(exc.value)
            assert "taint" in str(exc.value) or "domain" in str(exc.value)
        finally:
            ENGINE_REGISTRY._entries.pop("shadowless-test", None)

    def test_concrete_domain_uses_concrete_engine(self):
        from repro.apps.synthetic import make_scaling_workload
        from repro.interp import CompiledEngine, ConcreteDomain

        program = make_scaling_workload().program()
        engine = make_engine(program, "compiled", domain=ConcreteDomain())
        assert type(engine) is CompiledEngine

    def test_run_does_not_corrupt_analysis_state(self):
        """TaintEngine.run() is concrete and analysis-free: interleaving
        it with analyze() must leave the report identical to an
        analyze()-only engine (the pre-refactor contract)."""
        from repro.apps.synthetic import make_scaling_workload
        from repro.taint.engine import TaintEngine

        workload = make_scaling_workload()
        program = workload.program()
        args = {"p": 4.0, "s": 6.0}
        for engine in ("tree", "compiled"):
            clean_run = TaintEngine(program, engine=engine)
            baseline = clean_run.analyze(args, workload.sources()).report

            mixed = TaintEngine(program, engine=engine)
            mixed.run(args)  # must not touch the analysis state
            report = mixed.analyze(args, workload.sources()).report
            assert report == baseline
            mixed.run(args)  # nor after the analysis
            assert mixed.report == baseline

    def test_supports_taint_without_factory_is_not_capable(self):
        """Declaring supports_taint without a shadow_factory must not
        make an engine pass validation it would fail at execution."""
        from repro.interp.interpreter import Interpreter

        register_engine(
            "liar-test", help="claims taint support", supports_taint=True
        )(Interpreter)
        try:
            assert "liar-test" not in shadow_capable_engines()
            with pytest.raises(CampaignSpecError):
                Campaign.from_spec(_spec(taint_engine="liar-test"))
        finally:
            ENGINE_REGISTRY._entries.pop("liar-test", None)

    def test_run_fires_domain_hooks_on_both_engines(self):
        """Shadow engines' run() must be domain-observed identically:
        engine choice is invisible to the domain even through the
        concrete-compatible entry point."""
        from repro.apps.synthetic import make_scaling_workload

        workload = make_scaling_workload()
        program = workload.program()
        observations = {}
        for name in ("tree", "compiled"):
            domain = TaintDomain()
            engine = make_engine(program, name, domain=domain)
            result = engine.run({"p": 4.0, "s": 6.0})
            observations[name] = (
                result.value,
                domain.report,
                sorted(domain.executed),
            )
        assert observations["tree"] == observations["compiled"]
        # The run is genuinely observed, not silently concrete.
        assert observations["tree"][1].loop_records
        assert observations["tree"][2]


class TestCampaignTaintEngine:
    def test_spec_default_is_compiled(self):
        campaign = Campaign.from_spec(_spec())
        assert campaign.taint_engine == DEFAULT_TAINT_ENGINE == "compiled"

    def test_spec_accepts_tree(self):
        campaign = Campaign.from_spec(_spec(taint_engine="tree"))
        assert campaign.taint_engine == "tree"

    def test_spec_rejects_unknown_engine(self):
        with pytest.raises(RegistryError):
            Campaign.from_spec(_spec(taint_engine="nonsense"))

    def test_spec_rejects_taint_incapable_engine(self):
        from repro.interp.interpreter import Interpreter

        register_engine("shadowless-test", help="no shadow support")(
            Interpreter
        )
        try:
            with pytest.raises(CampaignSpecError) as exc:
                Campaign.from_spec(_spec(taint_engine="shadowless-test"))
            assert "taint" in str(exc.value)
        finally:
            ENGINE_REGISTRY._entries.pop("shadowless-test", None)

    def test_taint_fingerprint_isolates_engines(self):
        """Cached taint artifacts must never cross engines."""
        stage = STAGES["taint"]
        fingerprints = {}
        for engine in ("tree", "compiled"):
            campaign = Campaign.from_spec(_spec(taint_engine=engine))
            fingerprints[engine] = campaign.stage_fingerprint(stage, {})
        assert fingerprints["tree"] != fingerprints["compiled"]

    def test_taint_fingerprint_tracks_shadow_implementation(self):
        """Re-registering an engine name with a different shadow
        implementation must invalidate cached taint artifacts (the
        concrete factory alone is not the taint stage's identity)."""
        from repro.interp import CompiledEngine
        from repro.interp.shadowtree import ShadowInterpreter

        before = shadow_engine_identity("compiled")
        stage = STAGES["taint"]
        campaign = Campaign.from_spec(_spec(taint_engine="compiled"))
        fp_before = campaign.stage_fingerprint(stage, {})
        original = ENGINE_REGISTRY._entries["compiled"]
        register_engine(
            "compiled",
            help=original.description,
            supports_taint=True,
            shadow_factory=ShadowInterpreter,  # different implementation
        )(CompiledEngine)
        try:
            assert shadow_engine_identity("compiled") != before
            assert campaign.stage_fingerprint(stage, {}) != fp_before
        finally:
            ENGINE_REGISTRY._entries["compiled"] = original

    def test_taint_fingerprint_isolates_policies(self):
        from repro.taint.policy import DATAFLOW_ONLY

        stage = STAGES["taint"]
        base = Campaign.from_spec(_spec())
        ablated = Campaign.from_spec(_spec())
        ablated.policy = DATAFLOW_ONLY
        assert base.stage_fingerprint(stage, {}) != ablated.stage_fingerprint(
            stage, {}
        )

    def test_campaign_runs_identically_on_both_engines(self):
        results = {}
        for engine in ("tree", "compiled"):
            campaign = Campaign.from_spec(_spec(taint_engine=engine))
            result = campaign.run()
            results[engine] = result
        assert results["tree"].taint == results["compiled"].taint
        assert (
            results["tree"].measurements.data
            == results["compiled"].measurements.data
        )


class TestApiExports:
    def test_taint_types_exported(self):
        from repro import api

        assert api.TaintReport is not None
        assert api.PropagationPolicy is not None
        assert api.TaintEngine is not None
        assert api.TaintDomain is not None
        assert api.AnalysisDomain is not None
        for name in (
            "TaintReport",
            "PropagationPolicy",
            "TaintEngine",
            "TaintDomain",
            "AnalysisDomain",
            "make_engine",
        ):
            assert name in api.__all__
