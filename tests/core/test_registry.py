"""Component-registry tests: decorators, lookup errors, extensibility."""

import pytest

from repro.errors import RegistryError, ReproError
from repro.interp import make_engine
from repro.registry import (
    CONTENTION_REGISTRY,
    DESIGN_REGISTRY,
    ENGINE_REGISTRY,
    NOISE_REGISTRY,
    WORKLOAD_REGISTRY,
    Registry,
    load_builtin_components,
)


@pytest.fixture(autouse=True)
def _builtins():
    load_builtin_components()


class TestRegistryBasics:
    def test_register_called_with_name(self):
        reg = Registry("widget")

        @reg.register("frob", help="frobnicates")
        def make_frob():
            return "frob!"

        assert "frob" in reg
        assert reg.create("frob") == "frob!"
        assert reg.entry("frob").description == "frobnicates"

    def test_register_bare_uses_dunder_name(self):
        reg = Registry("widget")

        @reg.register
        def gadget():
            return 1

        assert "gadget" in reg
        assert reg.get("gadget") is gadget

    def test_unknown_name_lists_valid_names(self):
        reg = Registry("widget")
        reg.register("a")(lambda: None)
        reg.register("b")(lambda: None)
        with pytest.raises(RegistryError) as err:
            reg.get("c")
        message = str(err.value)
        assert "unknown widget 'c'" in message
        assert "a" in message and "b" in message

    def test_registry_error_is_repro_and_value_error(self):
        reg = Registry("widget")
        with pytest.raises(ReproError):
            reg.get("missing")
        with pytest.raises(ValueError):
            reg.get("missing")

    def test_latest_registration_wins(self):
        reg = Registry("widget")
        reg.register("x")(lambda: "old")
        reg.register("x")(lambda: "new")
        assert reg.create("x") == "new"

    def test_iteration_is_sorted(self):
        reg = Registry("widget")
        for name in ("zeta", "alpha", "mid"):
            reg.register(name)(lambda: None)
        assert [e.name for e in reg] == ["alpha", "mid", "zeta"]


class TestBuiltinRegistrations:
    def test_bundled_workloads_registered(self):
        for name in ("lulesh", "milc", "synthetic"):
            assert name in WORKLOAD_REGISTRY

    def test_workload_params_metadata(self):
        entry = WORKLOAD_REGISTRY.entry("lulesh")
        assert "size" in entry.metadata["params"]

    def test_bundled_engines_registered(self):
        assert set(ENGINE_REGISTRY.names()) >= {"tree", "compiled"}

    def test_bundled_noise_and_contention(self):
        assert set(NOISE_REGISTRY.names()) >= {"none", "gaussian"}
        assert set(CONTENTION_REGISTRY.names()) >= {
            "none",
            "logquad",
            "bandwidth",
        }

    def test_bundled_designs_registered(self):
        assert set(DESIGN_REGISTRY.names()) >= {
            "reduced",
            "full-factorial",
            "one-at-a-time",
        }

    def test_workload_factories_build(self):
        workload = WORKLOAD_REGISTRY.create("synthetic")
        assert workload.program().entry == "main"


class TestEngineRegistryIntegration:
    def test_make_engine_uses_registry(self, monkeypatch):
        built = []

        class FakeEngine:
            def __init__(self, program, runtime=None, config=None, listener=None):
                built.append(program)

        ENGINE_REGISTRY.register("fake-test-engine")(FakeEngine)
        try:
            workload = WORKLOAD_REGISTRY.create("synthetic")
            engine = make_engine(workload.program(), "fake-test-engine")
            assert isinstance(engine, FakeEngine)
            assert built
        finally:
            ENGINE_REGISTRY._entries.pop("fake-test-engine", None)

    def test_make_engine_unknown_mentions_registered(self):
        workload = WORKLOAD_REGISTRY.create("synthetic")
        with pytest.raises(ValueError) as err:
            make_engine(workload.program(), "no-such-engine")
        assert "compiled" in str(err.value) and "tree" in str(err.value)
