"""Core pipeline unit tests: annotations, classification, design, hybrid
modeling, validation helpers."""

import pytest

from repro.apps.synthetic import (
    SyntheticWorkload,
    build_additive_example,
    build_algorithm_selection_example,
    build_foo_example,
    build_multiplicative_example,
)
from repro.core import (
    classify_functions,
    design_experiments,
    detect_segmented_behavior,
    linear_global_factors,
    poor_fit_functions,
    prune_parameters,
    register_parameters,
    registered_parameters,
)
from repro.errors import IRError
from repro.staticanalysis import analyze_program
from repro.taint import TaintInterpreter
from repro.volume import classify_program, compute_volumes


def taint_of(prog, args, sources=None):
    entry = prog.function(prog.entry)
    sources = sources or {n: n for n in entry.params}
    return TaintInterpreter(prog).analyze(args, sources).report


class TestAnnotations:
    def test_register_and_read(self):
        prog = build_foo_example()
        register_parameters(prog, {"a": "size"})
        assert registered_parameters(prog) == {"a": "size"}

    def test_register_unknown_arg_rejected(self):
        prog = build_foo_example()
        with pytest.raises(IRError):
            register_parameters(prog, {"zz": "zz"})

    def test_register_merges(self):
        prog = build_foo_example()
        register_parameters(prog, {"a": "a"})
        register_parameters(prog, {"b": "b"})
        assert set(registered_parameters(prog)) == {"a", "b"}


class TestClassification:
    def test_foo_example(self):
        prog = build_foo_example()
        static = analyze_program(prog)
        taint = taint_of(prog, {"a": 4, "b": 2})
        cls = classify_functions(prog, static, taint)
        assert "foo" in cls.kernels
        assert "main" in cls.pruned_static
        assert cls.per_function_params["foo"] == frozenset({"a"})

    def test_constant_fraction(self):
        prog = build_foo_example()
        static = analyze_program(prog)
        taint = taint_of(prog, {"a": 4, "b": 2})
        cls = classify_functions(prog, static, taint)
        assert cls.constant_fraction == pytest.approx(0.5)

    def test_table2_row_consistency(self):
        prog = build_additive_example()
        static = analyze_program(prog)
        taint = taint_of(prog, {"p": 2, "s": 3})
        cls = classify_functions(prog, static, taint)
        row = cls.table2_row()
        assert row["functions"] == (
            row["pruned_statically"]
            + row["pruned_dynamically"]
            + row["kernels"]
            + row["comm_routines"]
        )


class TestParameterPruning:
    def test_prune_irrelevant(self):
        prog = build_foo_example()
        taint = taint_of(prog, {"a": 4, "b": 2})
        kept, pruned = prune_parameters(["a", "b"], taint)
        assert kept == ["a"]
        assert pruned == ["b"]


class TestDesign:
    def _artifacts(self, prog, args):
        taint = taint_of(prog, args)
        volumes = compute_volumes(prog, taint)
        deps = classify_program(volumes.inclusive, volumes.program)
        return taint, volumes, deps

    def test_additive_uses_one_at_a_time(self):
        prog = build_additive_example()
        taint, volumes, deps = self._artifacts(prog, {"p": 2, "s": 3})
        decision = design_experiments(
            {"p": [2, 4, 8, 16, 32], "s": [2, 4, 8, 16, 32]},
            taint,
            deps,
            volumes.program,
        )
        assert "one-at-a-time" in decision.strategy
        assert decision.size < decision.naive_size
        assert decision.savings_fraction > 0.5

    def test_multiplicative_uses_factorial(self):
        prog = build_multiplicative_example()
        taint, volumes, deps = self._artifacts(prog, {"p": 2, "s": 3})
        decision = design_experiments(
            {"p": [2, 4, 8], "s": [2, 4, 8]}, taint, deps, volumes.program
        )
        assert decision.strategy == "full-factorial"
        assert decision.size == 9

    def test_irrelevant_parameter_dropped(self):
        prog = build_foo_example()
        taint, volumes, deps = self._artifacts(prog, {"a": 4, "b": 2})
        decision = design_experiments(
            {"a": [2, 4, 8], "b": [1, 2, 3]}, taint, deps, volumes.program
        )
        assert decision.pruned_parameters == ("b",)
        assert decision.size == 3  # only a sweeps; b fixed
        for cfg in decision.configurations:
            assert cfg["b"] == 1

    def test_linear_global_factor_detected(self, lulesh_program, lulesh_taint):
        """The LULESH `iters` corner case (paper A2)."""
        volumes = compute_volumes(lulesh_program, lulesh_taint)
        factors = linear_global_factors(
            volumes.program, ["size", "iters", "regions"], lulesh_taint
        )
        assert factors == ["iters"]

    def test_lulesh_design_collapses_iters(
        self, lulesh_program, lulesh_taint
    ):
        volumes = compute_volumes(lulesh_program, lulesh_taint)
        deps = classify_program(volumes.inclusive, volumes.program)
        decision = design_experiments(
            {
                "p": [8, 27, 64],
                "size": [5, 10, 15],
                "iters": [2, 4, 8],
            },
            lulesh_taint,
            deps,
            volumes.program,
        )
        assert "iters" in decision.collapsed_parameters
        assert decision.size == 9
        assert decision.savings_fraction == pytest.approx(1 - 9 / 27)


class TestSegmentDetection:
    def test_algorithm_selection_flagged(self):
        prog = build_algorithm_selection_example()
        wl = SyntheticWorkload(
            builder=build_algorithm_selection_example, parameters=("a",)
        )
        findings = detect_segmented_behavior(
            prog,
            [{"a": 2}, {"a": 3}, {"a": 8}, {"a": 16}],
            wl.setup,
            {"a": "a"},
        )
        assert len(findings) == 1
        finding = findings[0]
        assert finding.function == "main"
        assert finding.params == frozenset({"a"})
        assert finding.is_segmented
        assert "then" in finding.boundary() and "else" in finding.boundary()

    def test_single_behavior_not_flagged(self):
        prog = build_algorithm_selection_example()
        wl = SyntheticWorkload(
            builder=build_algorithm_selection_example, parameters=("a",)
        )
        findings = detect_segmented_behavior(
            prog, [{"a": 8}, {"a": 16}, {"a": 32}], wl.setup, {"a": "a"}
        )
        assert findings == []

    def test_poor_fit_helper(self):
        from repro.modeling import fit_constant
        import numpy as np

        good = fit_constant(np.ones((3, 1)), np.array([5.0, 5.0, 5.0]), ("x",))
        bad = fit_constant(
            np.ones((3, 1)), np.array([1.0, 100.0, 1.0]), ("x",)
        )
        out = poor_fit_functions({"good": good, "bad": bad}, 0.15)
        assert "bad" in out and "good" not in out
