"""Campaign API tests: equivalence, artifact round trips, resume.

Extends the run-cache patterns of ``tests/measure/test_engine_cache.py``
one level up: stage artifacts must round-trip bit-identically through
JSON, and a resumed campaign must perform **zero** profile executions for
unchanged stages.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.apps.lulesh import LuleshWorkload
from repro.apps.synthetic import SyntheticWorkload, build_additive_example, make_scaling_workload
from repro.core import artifacts as art
from repro.core.pipeline import PerfTaintPipeline
from repro.core.stages import STAGES, Campaign
from repro.errors import CampaignSpecError, RegistryError
from repro.measure.io import measurements_to_dict, profile_to_dict
from repro.measure.noise import GaussianNoise, NoNoise

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"

SYNTH_VALUES = {"p": [2.0, 4.0], "s": [3.0, 5.0]}


def result_canon(result) -> str:
    """Canonical JSON of a full PerfTaintResult, for equality checks."""
    return json.dumps(
        {
            "static": art.static_report_to_dict(result.static),
            "taint": art.taint_report_to_dict(result.taint),
            "volumes": art.volume_report_to_dict(result.volumes),
            "dependencies": art.dependencies_to_dict(result.dependencies),
            "classification": art.classification_to_dict(
                result.classification
            ),
            "design": art.design_to_dict(result.design),
            "plan": art.plan_to_dict(result.plan),
            "measurements": measurements_to_dict(result.measurements),
            "profiles": [
                [list(key), profile_to_dict(profile)]
                for key, profile in sorted(result.profiles.items())
            ],
            "models": art.models_to_dict(result.models),
            "findings": art.findings_to_dict(result.contention_findings),
        },
        sort_keys=True,
    )


def synthetic_campaign(**overrides) -> Campaign:
    defaults = dict(
        workload=make_scaling_workload(("p", "s")),
        parameter_values=SYNTH_VALUES,
        repetitions=2,
        seed=7,
    )
    defaults.update(overrides)
    return Campaign(**defaults)


class TestPipelineCampaignEquivalence:
    def test_synthetic_identical_results(self):
        campaign = synthetic_campaign()
        pipeline = PerfTaintPipeline(
            workload=make_scaling_workload(("p", "s")),
            repetitions=2,
            seed=7,
        )
        assert result_canon(campaign.run()) == result_canon(
            pipeline.run(SYNTH_VALUES)
        )

    def test_lulesh_identical_results(self):
        values = {"p": [27.0, 64.0], "size": [6.0, 9.0]}
        campaign = Campaign(
            workload=LuleshWorkload(parameters=("p", "size")),
            parameter_values=values,
            repetitions=2,
            seed=3,
            compare_black_box=True,
        )
        pipeline = PerfTaintPipeline(
            workload=LuleshWorkload(parameters=("p", "size")),
            repetitions=2,
            seed=3,
        )
        assert result_canon(campaign.run()) == result_canon(
            pipeline.run(values, compare_black_box=True)
        )

    def test_additive_workload_via_campaign(self):
        wl = SyntheticWorkload(
            builder=build_additive_example,
            parameters=("p", "s"),
            defaults={"p": 4, "s": 4},
            name="additive",
        )
        campaign = Campaign(
            workload=wl,
            parameter_values={"p": [2, 4, 8], "s": [2, 4, 8]},
            repetitions=3,
            seed=2,
            noise=NoNoise(),
            cov_threshold=None,
        )
        result = campaign.run()
        assert result.design.strategy.startswith("one-at-a-time")
        assert "foo" in result.models


class TestArtifactRoundTrips:
    @pytest.fixture(scope="class")
    def ran(self):
        campaign = synthetic_campaign()
        campaign.run()
        return campaign

    @pytest.mark.parametrize("stage_name", list(STAGES))
    def test_stage_payload_round_trips_bit_identically(self, ran, stage_name):
        stage = STAGES[stage_name]
        value = ran.artifacts[stage_name]
        payload = stage.to_payload(value)
        text = json.dumps(payload, sort_keys=True)
        reloaded = stage.from_payload(json.loads(text))
        assert (
            json.dumps(stage.to_payload(reloaded), sort_keys=True) == text
        )

    def test_payloads_are_pure_json(self, ran):
        for name, stage in STAGES.items():
            json.dumps(stage.to_payload(ran.artifacts[name]))


class TestWorkspaceResume:
    def _count_profiles(self, monkeypatch):
        from repro.measure import experiment

        counter = {"runs": 0}
        original = experiment.profile_run

        def counting(*args, **kwargs):
            counter["runs"] += 1
            return original(*args, **kwargs)

        monkeypatch.setattr(experiment, "profile_run", counting)
        return counter

    def test_second_run_resumes_everything(self, tmp_path, monkeypatch):
        first = synthetic_campaign(workspace=tmp_path / "ws")
        result_first = first.run()
        assert set(first.computed_stages) == set(STAGES)
        assert first.resumed_stages == ()

        counter = self._count_profiles(monkeypatch)
        second = synthetic_campaign(workspace=tmp_path / "ws")
        result_second = second.run()
        assert set(second.resumed_stages) == set(STAGES)
        assert second.computed_stages == ()
        # Zero profile executions on a full resume...
        assert counter["runs"] == 0
        # ...and the loaded artifacts reproduce the results bit-for-bit.
        assert result_canon(result_first) == result_canon(result_second)

    def test_modeling_change_reuses_measurements(self, tmp_path, monkeypatch):
        ws = tmp_path / "ws"
        synthetic_campaign(workspace=ws).run()

        counter = self._count_profiles(monkeypatch)
        refit = synthetic_campaign(workspace=ws, cov_threshold=None)
        refit.run()
        # Analysis through measurement resumes; only modeling re-runs.
        assert set(refit.resumed_stages) == {
            "static", "taint", "volumes", "classify",
            "design", "plan", "measure",
        }
        assert set(refit.computed_stages) == {"model", "validate"}
        assert counter["runs"] == 0

    def test_measurement_change_invalidates_downstream(self, tmp_path):
        ws = tmp_path / "ws"
        synthetic_campaign(workspace=ws).run()
        rerun = synthetic_campaign(workspace=ws, seed=8)
        rerun.run()
        assert set(rerun.computed_stages) == {
            "measure", "model", "validate",
        }

    def test_noise_model_participates_in_fingerprints(self, tmp_path):
        ws = tmp_path / "ws"
        synthetic_campaign(workspace=ws).run()
        rerun = synthetic_campaign(
            workspace=ws, noise=GaussianNoise(relative_sigma=0.05)
        )
        rerun.run()
        assert "measure" in rerun.computed_stages

    def test_corrupt_artifact_recomputes(self, tmp_path):
        ws = tmp_path / "ws"
        first = synthetic_campaign(workspace=ws)
        first.run()
        for path in ws.glob("measure-*.json"):
            path.write_text("{not json")
        second = synthetic_campaign(workspace=ws)
        result = second.run()
        assert "measure" in second.computed_stages
        assert result_canon(result) == result_canon(first.result())

    def test_jobs_count_does_not_change_fingerprints(self, tmp_path):
        ws = tmp_path / "ws"
        synthetic_campaign(workspace=ws).run()
        rerun = synthetic_campaign(workspace=ws, n_jobs=2)
        rerun.run()
        assert set(rerun.resumed_stages) == set(STAGES)


class TestFingerprintDeterminism:
    def test_library_fingerprint_order_and_process_independent(self):
        from repro.libdb.database import LibraryDatabase, LibraryEntry

        entries = [
            LibraryEntry(
                "Lib_A",
                implicit_params=frozenset({"p", "size", "rank"}),
                source_params=frozenset({"size", "p"}),
            ),
            LibraryEntry("Lib_B", count_args=(0, 2)),
        ]
        forward, backward = LibraryDatabase(), LibraryDatabase()
        for entry in entries:
            forward.register(entry)
        for entry in reversed(entries):
            backward.register(entry)
        assert forward.fingerprint() == backward.fingerprint()
        # No raw set reprs: their element order follows per-process hash
        # randomization, which would break cross-process resume.
        assert "frozenset" not in forward.fingerprint()

    def test_library_fingerprint_stable_across_hash_seeds(self):
        import subprocess
        import sys

        snippet = (
            "from repro.libdb.database import LibraryDatabase, LibraryEntry\n"
            "db = LibraryDatabase()\n"
            "db.register(LibraryEntry('X',"
            " implicit_params=frozenset({'p','size','rank','n'})))\n"
            "print(db.fingerprint())\n"
        )
        outputs = {
            subprocess.run(
                [sys.executable, "-c", snippet],
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": seed},
                capture_output=True,
                text=True,
                cwd=EXAMPLES.parent,
                check=True,
            ).stdout
            for seed in ("0", "1", "424242")
        }
        assert len(outputs) == 1

    def test_component_override_invalidates_fingerprint(self, tmp_path):
        """Re-registering a strategy name must not resume artifacts the
        previous implementation produced."""
        from repro.registry import DESIGN_REGISTRY, register_design
        from repro.core.experiment_design import full_factorial_design

        ws = tmp_path / "ws"
        synthetic_campaign(workspace=ws).run()
        original = DESIGN_REGISTRY.get("reduced")

        def custom_reduced(values, taint, deps, program_volume):
            return full_factorial_design(values, taint, deps, program_volume)

        register_design("reduced")(custom_reduced)
        try:
            rerun = synthetic_campaign(workspace=ws)
            rerun.run()
            assert "design" in rerun.computed_stages
            assert rerun.artifacts["design"].strategy == "full-factorial"
        finally:
            register_design("reduced")(original)

    def test_pipeline_campaign_shares_program_memo(self):
        pipeline = PerfTaintPipeline(
            workload=make_scaling_workload(("p", "s")), repetitions=2
        )
        campaign = pipeline.campaign(SYNTH_VALUES)
        assert campaign.program() is pipeline.program()


class TestCampaignSpec:
    def base_spec(self) -> dict:
        return {
            "app": "synthetic",
            "parameters": {"p": [2, 4], "s": [3, 5]},
            "repetitions": 2,
            "seed": 7,
        }

    def test_from_spec_equivalent_to_constructor(self):
        from_spec = Campaign.from_spec(self.base_spec())
        constructed = synthetic_campaign()
        assert result_canon(from_spec.run()) == result_canon(
            constructed.run()
        )

    def test_spec_defaults(self):
        campaign = Campaign.from_spec(self.base_spec())
        assert campaign.design_strategy == "reduced"
        assert campaign.engine == "compiled"
        assert campaign.n_jobs == 1
        assert campaign.cov_threshold == 0.1

    def test_noise_and_contention_tables(self):
        spec = self.base_spec()
        spec["noise"] = {"model": "gaussian", "relative_sigma": 0.05}
        spec["contention"] = {"model": "logquad", "beta": 0.1}
        campaign = Campaign.from_spec(spec)
        assert campaign.noise.relative_sigma == 0.05
        assert campaign.contention.beta == 0.1

    def test_cov_threshold_none_string(self):
        spec = self.base_spec()
        spec["cov_threshold"] = "none"
        assert Campaign.from_spec(spec).cov_threshold is None

    def test_unknown_key_rejected(self):
        spec = self.base_spec()
        spec["typo_key"] = 1
        with pytest.raises(CampaignSpecError) as err:
            Campaign.from_spec(spec)
        assert "typo_key" in str(err.value)

    def test_unknown_app_lists_registered(self):
        spec = self.base_spec()
        spec["app"] = "notanapp"
        with pytest.raises(RegistryError) as err:
            Campaign.from_spec(spec)
        assert "lulesh" in str(err.value)
        assert "synthetic" in str(err.value)

    def test_missing_parameters_rejected(self):
        with pytest.raises(CampaignSpecError):
            Campaign.from_spec({"app": "synthetic"})

    def test_non_numeric_values_rejected(self):
        spec = self.base_spec()
        spec["parameters"] = {"p": ["big"]}
        with pytest.raises(CampaignSpecError):
            Campaign.from_spec(spec)

    def test_unknown_component_names_rejected(self):
        for key, value in (
            ("noise", "fancy"),
            ("contention", "fancy"),
            ("engine", "fancy"),
            ("design", "fancy"),
            ("mode", "fancy"),
        ):
            spec = self.base_spec()
            spec[key] = value
            with pytest.raises((CampaignSpecError, RegistryError)):
                Campaign.from_spec(spec)

    def test_non_integer_scalars_typed_error(self):
        for key, value in (
            ("repetitions", "three"),
            ("repetitions", 0),
            ("jobs", True),
            ("seed", [1]),
            ("cov_threshold", [0.1]),
        ):
            spec = self.base_spec()
            spec[key] = value
            with pytest.raises(CampaignSpecError) as err:
                Campaign.from_spec(spec)
            assert key in str(err.value)

    def test_bad_component_arguments_rejected(self):
        spec = self.base_spec()
        spec["noise"] = {"model": "gaussian", "sigma_typo": 1.0}
        with pytest.raises(CampaignSpecError) as err:
            Campaign.from_spec(spec)
        assert "gaussian" in str(err.value)

    def test_example_spec_file_runs(self, tmp_path):
        campaign = Campaign.from_toml(
            EXAMPLES / "synthetic_campaign.toml",
            workspace=tmp_path / "ws",
        )
        result = campaign.run()
        assert result.models
        again = Campaign.from_toml(
            EXAMPLES / "synthetic_campaign.toml",
            workspace=tmp_path / "ws",
        )
        again.run()
        assert set(again.resumed_stages) == set(STAGES)

    def test_missing_spec_file_is_spec_error(self, tmp_path):
        with pytest.raises(CampaignSpecError):
            Campaign.from_toml(tmp_path / "nope.toml")


class TestModelBackendThreading:
    """The model-search backend choice: spec key, fingerprints, resume."""

    def base_spec(self) -> dict:
        return {
            "app": "synthetic",
            "parameters": {"p": [2, 4], "s": [3, 5]},
            "repetitions": 2,
            "seed": 7,
        }

    def test_spec_key_accepted(self):
        spec = self.base_spec()
        spec["model_backend"] = "loop"
        campaign = Campaign.from_spec(spec)
        assert campaign.model_backend == "loop"

    def test_spec_default_is_none(self):
        assert Campaign.from_spec(self.base_spec()).model_backend is None

    def test_unknown_backend_rejected_with_valid_names(self):
        spec = self.base_spec()
        spec["model_backend"] = "gpu"
        with pytest.raises(RegistryError) as err:
            Campaign.from_spec(spec)
        assert "batched" in str(err.value) and "loop" in str(err.value)

    def test_backends_select_identical_models(self):
        loop = synthetic_campaign(model_backend="loop").run()
        batched = synthetic_campaign(model_backend="batched").run()
        assert set(loop.models) == set(batched.models)
        for fn in loop.models:
            assert (
                loop.models[fn].hybrid.terms
                == batched.models[fn].hybrid.terms
            )
            assert (
                loop.models[fn].hybrid.metadata
                == batched.models[fn].hybrid.metadata
            )

    def test_backend_participates_in_model_fingerprint(self, tmp_path):
        a = synthetic_campaign(workspace=tmp_path / "ws")
        a.run()
        b = synthetic_campaign(
            workspace=tmp_path / "ws", model_backend="loop"
        )
        b.run()
        # Same measurements, different search backend: everything up to
        # the model stage resumes, the model fit (and its dependents)
        # recompute under the new backend identity.
        assert "measure" in b.resumed_stages
        assert "model" in b.computed_stages
        assert a.fingerprints["model"] != b.fingerprints["model"]
        assert a.fingerprints["measure"] == b.fingerprints["measure"]

    def test_modeler_backend_field_in_fingerprint(self, tmp_path):
        from repro.modeling import Modeler

        a = synthetic_campaign()
        b = synthetic_campaign(modeler=Modeler(backend="loop"))
        a.run()
        b.run()
        assert a.fingerprints["model"] != b.fingerprints["model"]
