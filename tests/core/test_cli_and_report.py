"""CLI and report-rendering tests."""

import numpy as np
import pytest

from repro.cli import _parse_values, build_parser, main
from repro.core.report import format_table, render_models
from repro.core.hybrid import ModelComparison
from repro.modeling import Modeler, SearchPrior, fit_constant


class TestFormatTable:
    def test_alignment(self):
        text = format_table(("a", "bb"), [(1, 22), (333, 4)])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equal width

    def test_empty_rows(self):
        text = format_table(("x",), [])
        assert "x" in text


class TestRenderModels:
    def _comparison(self):
        X = np.arange(1, 6, dtype=float).reshape(-1, 1)
        hybrid = fit_constant(X, np.full(5, 3.0), ("p",))
        bb = Modeler().model(X, 2 * X[:, 0] + 1, ("p",))
        return ModelComparison("fn", hybrid, bb, SearchPrior.constant())

    def test_renders_both_columns(self):
        text = render_models({"fn": self._comparison()})
        assert "hybrid model" in text and "black-box model" in text
        assert "fn" in text

    def test_max_rows(self):
        comps = {f"f{i}": self._comparison() for i in range(10)}
        text = render_models(comps, max_rows=3)
        assert text.count("\n") <= 6

    def test_false_dependencies_property(self):
        cmp = self._comparison()
        assert cmp.false_dependencies == frozenset({"p"})


class TestCLIParsing:
    def test_parse_values(self):
        out = _parse_values(["p=1,2,3", "size=10,20"])
        assert out == {"p": [1.0, 2.0, 3.0], "size": [10.0, 20.0]}

    def test_parse_values_rejects_missing_eq(self):
        with pytest.raises(SystemExit):
            _parse_values(["oops"])

    def test_parse_values_rejects_empty(self):
        with pytest.raises(SystemExit):
            _parse_values(["p="])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["analyze", "notanapp"])


class TestCLICommands:
    def test_analyze_lulesh(self, capsys):
        assert main(["analyze", "lulesh"]) == 0
        out = capsys.readouterr().out
        assert "Functions" in out
        assert "parameter coverage" in out

    def test_segments_milc(self, capsys):
        assert main(["segments", "milc", "--p", "4,32"]) == 0
        out = capsys.readouterr().out
        assert "do_gather" in out

    def test_taint_fingerprint_identical_across_engines(self, capsys):
        """`repro taint` prints the same report fingerprint for both
        built-in engines (bit-identical TaintReports)."""
        fingerprints = {}
        for engine in ("tree", "compiled"):
            assert (
                main(["taint", "--app", "lulesh", "--taint-engine", engine])
                == 0
            )
            out = capsys.readouterr().out
            assert f"engine: {engine}" in out
            line = next(
                l for l in out.splitlines() if "report fingerprint" in l
            )
            fingerprints[engine] = line.split(":", 1)[1].strip()
        assert fingerprints["tree"] == fingerprints["compiled"]

    def test_taint_rejects_unknown_app(self):
        with pytest.raises(SystemExit):
            main(["taint", "--app", "notanapp"])

    def test_model_small(self, capsys):
        rc = main(
            [
                "model",
                "lulesh",
                "--values", "p=27,64,125", "size=6,9,12",
                "--repetitions", "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "hybrid model" in out

    def test_model_search_backend_flag(self, capsys):
        """--search-backend loop|batched: both run and agree on output."""
        outputs = []
        for backend in ("loop", "batched"):
            rc = main(
                [
                    "model",
                    "synthetic",
                    "--values", "p=2,4", "s=3,5",
                    "--repetitions", "2",
                    "--search-backend", backend,
                ]
            )
            assert rc == 0
            outputs.append(capsys.readouterr().out)
        # Decision identity surfaces in the CLI: identical model report.
        assert outputs[0] == outputs[1]

    def test_model_rejects_unknown_search_backend(self, capsys):
        with pytest.raises(SystemExit):
            main(
                [
                    "model",
                    "synthetic",
                    "--values", "p=2,4", "s=3,5",
                    "--search-backend", "gpu",
                ]
            )
        assert "loop" in capsys.readouterr().err

    def test_contention_small(self, capsys):
        rc = main(
            [
                "contention",
                "lulesh",
                "--r", "2,4,8",
                "--size", "10",
                "--repetitions", "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "application model over r" in out


class TestCLISweepAndParallel:
    def test_sweep_synthetic_parallel(self, capsys):
        rc = main(
            [
                "sweep", "synthetic",
                "--values", "p=2,4", "s=3,5",
                "--jobs", "2",
                "--repetitions", "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "swept 4 configurations" in out
        assert "4 executed" in out

    def test_sweep_cache_reuse(self, capsys, tmp_path):
        argv = [
            "sweep", "synthetic",
            "--values", "p=2,4", "s=3,5",
            "--cache-dir", str(tmp_path / "cache"),
            "--repetitions", "2",
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 executed, 4 from cache" in out

    def test_sweep_unknown_app_one_line_error(self):
        with pytest.raises(SystemExit) as exc:
            main(["sweep", "notanapp", "--values", "p=1,2"])
        message = str(exc.value)
        assert "unknown app 'notanapp'" in message
        assert "lulesh" in message and "milc" in message
        assert "\n" not in message

    def test_sweep_writes_measurements(self, tmp_path, capsys):
        out_file = tmp_path / "meas.json"
        rc = main(
            [
                "sweep", "synthetic",
                "--values", "p=2", "s=3",
                "--repetitions", "2",
                "--output", str(out_file),
            ]
        )
        assert rc == 0
        from repro.measure import load_measurements

        meas = load_measurements(out_file)
        assert meas.parameters == ("p", "s")
        assert meas.functions()

    def test_model_accepts_jobs_and_cache(self, capsys, tmp_path):
        rc = main(
            [
                "model", "lulesh",
                "--values", "p=27,64", "size=6,9",
                "--repetitions", "2",
                "--jobs", "2",
                "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        assert rc == 0
        assert "hybrid model" in capsys.readouterr().out
        # The cache was populated: a rerun hits it for every configuration.
        rc = main(
            [
                "model", "lulesh",
                "--values", "p=27,64", "size=6,9",
                "--repetitions", "2",
                "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        assert rc == 0

    def test_sweep_rejects_nonpositive_jobs_and_repetitions(self, capsys):
        for argv in (
            ["sweep", "synthetic", "--values", "p=2", "s=3", "--jobs", "0"],
            ["sweep", "synthetic", "--values", "p=2", "s=3",
             "--repetitions", "0"],
        ):
            with pytest.raises(SystemExit) as exc:
                main(argv)
            assert exc.value.code == 2  # argparse usage error
        err = capsys.readouterr().err
        assert "must be >= 1" in err


class TestCLIRegistryCommands:
    def test_apps_lists_registered_workloads(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        for name in ("lulesh", "milc", "synthetic"):
            assert name in out

    def test_stages_lists_the_graph(self, capsys):
        assert main(["stages"]) == 0
        out = capsys.readouterr().out
        for name in (
            "static", "taint", "volumes", "classify", "design",
            "plan", "measure", "model", "validate",
        ):
            assert name in out
        assert "measure" in out and "design" in out

    def test_unknown_app_shows_user_registered_apps(self, capsys):
        """The app list is the live registry, not a frozen literal."""
        from repro.registry import WORKLOAD_REGISTRY, register_workload
        from repro.apps.synthetic import make_scaling_workload

        register_workload("userapp-test")(make_scaling_workload)
        try:
            with pytest.raises(SystemExit) as exc:
                main(["model", "badname", "--values", "p=1,2"])
            message = str(exc.value)
            assert "unknown app 'badname'" in message
            assert "userapp-test" in message
            assert "lulesh" in message
            assert "\n" not in message
        finally:
            WORKLOAD_REGISTRY._entries.pop("userapp-test", None)

    def test_unsupported_app_one_line_error_not_traceback(self):
        """Commands whose hard-coded inputs an app lacks must exit with a
        one-line error, not a raw KeyError."""
        for argv in (
            ["contention", "synthetic", "--r", "2,4"],
            ["segments", "synthetic", "--p", "4,8"],
            ["model", "synthetic", "--values", "p=2,4"],  # missing s
            ["sweep", "synthetic", "--values", "p=2,4"],
        ):
            with pytest.raises(SystemExit) as exc:
                main(argv)
            message = str(exc.value)
            assert "does not support this command" in message
            assert "\n" not in message

    def test_user_registered_app_is_runnable(self, capsys):
        from repro.registry import WORKLOAD_REGISTRY, register_workload
        from repro.apps.synthetic import make_scaling_workload

        register_workload("userapp-test")(make_scaling_workload)
        try:
            rc = main(
                [
                    "sweep", "userapp-test",
                    "--values", "p=2", "s=3",
                    "--repetitions", "2",
                ]
            )
            assert rc == 0
            assert "swept 1 configurations" in capsys.readouterr().out
        finally:
            WORKLOAD_REGISTRY._entries.pop("userapp-test", None)


class TestCLICampaignRun:
    SPEC = """
app = "synthetic"
repetitions = 2
seed = 7

[parameters]
p = [2, 4]
s = [3, 5]
"""

    def _spec_file(self, tmp_path):
        spec = tmp_path / "campaign.toml"
        spec.write_text(self.SPEC)
        return spec

    def test_run_and_resume(self, capsys, tmp_path):
        spec = self._spec_file(tmp_path)
        argv = ["run", str(spec), "--workspace", str(tmp_path / "ws")]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "9 computed, 0 resumed" in out
        assert "hybrid model" in out

        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 computed, 9 resumed" in out

    def test_run_without_workspace(self, capsys, tmp_path):
        spec = self._spec_file(tmp_path)
        assert main(["run", str(spec)]) == 0
        out = capsys.readouterr().out
        assert "9 computed" in out
        assert "workspace:" not in out

    def test_run_missing_spec_one_line_error(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["run", str(tmp_path / "nope.toml")])
        assert "cannot read spec file" in str(exc.value)

    def test_run_bad_spec_one_line_error(self, tmp_path):
        spec = tmp_path / "bad.toml"
        spec.write_text('app = "synthetic"\nbogus_key = 1\n'
                        "[parameters]\np = [2]\n")
        with pytest.raises(SystemExit) as exc:
            main(["run", str(spec)])
        assert "bogus_key" in str(exc.value)
