"""Pipeline stage-by-stage tests (the granular API of PerfTaintPipeline)."""

import pytest

from repro.apps.synthetic import SyntheticWorkload, build_additive_example
from repro.core.pipeline import PerfTaintPipeline, core_hours
from repro.errors import PipelineError, ReproError
from repro.measure import APP_KEY, InstrumentationMode
from repro.measure.noise import NoNoise
from repro.volume import classify_program, compute_volumes


@pytest.fixture()
def pipeline():
    wl = SyntheticWorkload(
        builder=build_additive_example,
        parameters=("p", "s"),
        defaults={"p": 4, "s": 4},
        name="additive",
    )
    return PerfTaintPipeline(workload=wl, repetitions=3, seed=2, noise=NoNoise())


class TestStages:
    def test_analyze_returns_all_artifacts(self, pipeline):
        static, taint, volumes, deps, cls = pipeline.analyze()
        assert static.functions
        assert taint.loop_records
        assert volumes.program.params == frozenset({"p", "s"})
        assert deps.program is not None and deps.program.additive_only
        assert cls.total_functions == 4

    def test_plan_modes(self, pipeline):
        static, taint, *_ = pipeline.analyze()[:2], None
        static, taint = pipeline.analyze_static(), pipeline.analyze_taint()
        prog = pipeline.workload.program()
        full = pipeline.plan_for(InstrumentationMode.FULL)
        default = pipeline.plan_for(InstrumentationMode.DEFAULT_FILTER)
        none = pipeline.plan_for(InstrumentationMode.NONE)
        tf = pipeline.plan_for(InstrumentationMode.TAINT_FILTER, taint, static)
        assert len(full) == prog.function_count()
        assert len(none) == 0
        assert tf.functions == frozenset({"foo"})
        assert len(default) <= len(full)

    def test_taint_filter_without_report_raises(self, pipeline):
        with pytest.raises(PipelineError) as err:
            pipeline.plan_for(InstrumentationMode.TAINT_FILTER)
        assert err.value.stage == "plan"
        assert err.value.missing_artifact == "taint"
        assert "taint" in str(err.value)
        # Typed errors stay catchable at the library boundary.
        assert isinstance(err.value, ReproError)

    def test_program_memoized_per_pipeline(self, pipeline):
        builds = []

        def counting():
            builds.append(1)
            return build_additive_example()

        # A workload without its own memoization: every program() call
        # rebuilds.  The pipeline must hit it exactly once regardless of
        # how many stages ask for the program.
        pipeline.workload.program = counting
        pipeline._program = None
        pipeline.analyze_static()
        pipeline.plan_for(InstrumentationMode.FULL)
        pipeline.plan_for(InstrumentationMode.DEFAULT_FILTER)
        assert pipeline.program() is pipeline.program()
        assert len(builds) == 1

    def test_design_additive(self, pipeline):
        static, taint, volumes, deps, _ = pipeline.analyze()
        decision = pipeline.design(
            {"p": [2, 4, 8], "s": [2, 4, 8]}, taint, deps, volumes
        )
        assert decision.size == 5  # one-at-a-time

    def test_measure_and_model(self, pipeline):
        static, taint, volumes, deps, _ = pipeline.analyze()
        design = pipeline.design(
            {"p": [2, 4, 8, 16], "s": [2, 4, 8, 16]}, taint, deps, volumes
        )
        plan = pipeline.plan_for(
            InstrumentationMode.TAINT_FILTER, taint, static
        )
        meas, profiles = pipeline.measure(design.configurations, plan)
        assert len(profiles) == design.size
        models = pipeline.model(
            meas, taint, volumes, compare_black_box=False, cov_threshold=None
        )
        assert "foo" in models
        used = models["foo"].hybrid.used_parameters()
        assert used <= {"p", "s"}

    def test_run_end_to_end_no_noise(self, pipeline):
        result = pipeline.run(
            {"p": [2, 4, 8, 16], "s": [2, 4, 8, 16]},
            cov_threshold=None,
        )
        assert result.design.strategy.startswith("one-at-a-time")
        assert APP_KEY in result.models
        assert result.contention_findings == []

    def test_core_hours_aggregation(self, pipeline):
        static, taint, volumes, deps, _ = pipeline.analyze()
        design = pipeline.design(
            {"p": [2, 4], "s": [2, 4]}, taint, deps, volumes
        )
        plan = pipeline.plan_for(InstrumentationMode.FULL)
        _, profiles = pipeline.measure(design.configurations, plan)
        ch = core_hours(profiles, ("p", "s"), ranks_param="p")
        assert ch > 0
        # weighting by ranks: doubling p doubles that run's contribution
        ch_no_ranks = core_hours(profiles, ("p", "s"), ranks_param="absent")
        assert ch > ch_no_ranks
