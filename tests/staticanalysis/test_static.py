"""Static-analysis phase tests: SCEV-lite and pruning."""

import pytest

from repro.ir import ProgramBuilder, add, call, mul, var
from repro.ir.expr import Const
from repro.ir.stmt import For
from repro.staticanalysis import (
    analyze_program,
    default_relevant_library,
    fold_const,
    static_trip_count,
)


class TestFoldConst:
    def test_literal(self):
        assert fold_const(Const(7)) == 7.0

    def test_arithmetic(self):
        assert fold_const(mul(add(2, 3), 4)) == 20.0

    def test_variable_blocks(self):
        assert fold_const(var("x")) is None
        assert fold_const(add(var("x"), 1)) is None

    def test_intrinsics(self):
        from repro.ir import log2, sqrt

        assert fold_const(log2(8)) == 3.0
        assert fold_const(sqrt(16)) == 4.0

    def test_division_by_zero_blocks(self):
        from repro.ir import div

        assert fold_const(div(1, 0)) is None

    def test_comparison_folds(self):
        from repro.ir import lt

        assert fold_const(lt(1, 2)) == 1.0


class TestStaticTripCount:
    def make_loop(self, start, stop, step, body=()):
        from repro.ir.builder import as_expr

        return For("i", as_expr(start), as_expr(stop), as_expr(step), list(body))

    def test_constant_bounds(self):
        assert static_trip_count(self.make_loop(0, 10, 1)) == 10

    def test_stepped(self):
        assert static_trip_count(self.make_loop(0, 10, 3)) == 4

    def test_empty_range(self):
        assert static_trip_count(self.make_loop(5, 5, 1)) == 0
        assert static_trip_count(self.make_loop(9, 3, 1)) == 0

    def test_variable_bound_unresolvable(self):
        assert static_trip_count(self.make_loop(0, var("n"), 1)) is None

    def test_folded_bound(self):
        assert static_trip_count(self.make_loop(0, mul(4, 2), 1)) == 8

    def test_loop_var_reassigned_blocks(self):
        from repro.ir.stmt import Assign

        loop = self.make_loop(0, 10, 1, [Assign("i", Const(0))])
        assert static_trip_count(loop) is None

    def test_while_never_static(self):
        from repro.ir.stmt import While

        assert static_trip_count(While(Const(0), [])) is None


class TestPruning:
    def build(self):
        pb = ProgramBuilder()
        with pb.function("const_loop", []) as f:
            with f.for_("i", 0, 8):
                f.work(1)
        with pb.function("no_loop", ["x"]) as f:
            f.ret(var("x"))
        with pb.function("dyn_loop", ["n"]) as f:
            with f.for_("i", 0, f.var("n")):
                f.work(1)
        with pb.function("comm", []) as f:
            f.call("MPI_Barrier")
        with pb.function("rank_query", []) as f:
            f.assign("r", call("MPI_Comm_rank"))
        with pb.function("main", ["n"]) as f:
            f.call("const_loop")
            f.call("no_loop", 1)
            f.call("dyn_loop", var("n"))
            f.call("comm")
            f.call("rank_query")
        return pb.build(entry="main")

    def test_constant_functions_pruned(self):
        report = analyze_program(self.build())
        pruned = report.pruned_functions()
        assert "const_loop" in pruned
        assert "no_loop" in pruned
        # main has no own loops and no direct MPI-relevant calls: its
        # *exclusive* model is constant, so static pruning applies.
        assert "main" in pruned

    def test_dynamic_loop_survives(self):
        report = analyze_program(self.build())
        assert "dyn_loop" in report.surviving_functions()

    def test_mpi_caller_survives(self):
        report = analyze_program(self.build())
        assert "comm" in report.surviving_functions()

    def test_rank_query_pruned(self):
        """MPI_Comm_rank is not performance-relevant (B1)."""
        report = analyze_program(self.build())
        assert "rank_query" in report.pruned_functions()

    def test_loop_counters(self):
        report = analyze_program(self.build())
        assert report.total_loops() == 2
        assert report.pruned_loops() == 1

    def test_summary_keys(self):
        summary = analyze_program(self.build()).summary()
        assert summary["functions"] == 6
        assert summary["loops_pruned_statically"] == 1

    def test_relevant_library_default(self):
        assert default_relevant_library("MPI_Allreduce")
        assert not default_relevant_library("MPI_Comm_rank")
        assert not default_relevant_library("printf")

    def test_recursion_warning(self):
        pb = ProgramBuilder()
        with pb.function("f", ["n"]) as f:
            f.call("f", var("n"))
        report = analyze_program(pb.build(entry="f"))
        assert any("recursive" in w for w in report.warnings)
        assert report.functions["f"].is_recursive

    def test_lulesh_static_counts(self, lulesh_static, lulesh_program):
        summary = lulesh_static.summary()
        # Most functions are constant helpers (paper: 296 of 356).
        assert summary["functions_pruned_statically"] > 0.75 * summary["functions"]
