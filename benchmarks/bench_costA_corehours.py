"""Section A3 — experiment cost in core-hours.

Paper: "the costs of the experiment decreased from 20483 to 547 hours for
LULESH (97.3%), and from 364 to 321 hours for MILC (13.4%), when switching
from a full to taint-based instrumentation", while the taint analysis
itself costs 1 / 16 core-hours — "the savings from reduced overhead
significantly outweigh the costs of an additional analysis".

We run the modeling design under both instrumentation modes and aggregate
simulated core-hours (time x ranks).  LULESH's accessor-dominated profile
makes the taint savings large; MILC's is more moderate — the same split as
the paper.
"""

import time

from conftest import report

from repro.core.pipeline import PerfTaintPipeline, core_hours
from repro.core.report import format_table
from repro.measure import full_plan, taint_filter_plan

LULESH_DESIGN = {"p": [27, 64, 125], "size": [10, 15, 20]}
MILC_DESIGN = {"p": [4, 16, 64], "size": [64, 128, 256]}


def _measure_costs(workload, design_values):
    pipe = PerfTaintPipeline(workload=workload, repetitions=1)
    t0 = time.perf_counter()
    static, taint, volumes, deps, _ = pipe.analyze()
    analysis_wall = time.perf_counter() - t0

    design = pipe.design(design_values, taint, deps, volumes)
    prog = workload.program()

    _, full_profiles = pipe.measure(design.configurations, full_plan(prog))
    _, taint_profiles = pipe.measure(
        design.configurations, taint_filter_plan(prog, taint, static)
    )
    full_ch = core_hours(full_profiles, workload.parameters)
    taint_ch = core_hours(taint_profiles, workload.parameters)
    return full_ch, taint_ch, analysis_wall


def test_costA_corehours(benchmark, lulesh_workload, milc_workload):
    results = benchmark.pedantic(
        lambda: {
            "LULESH": _measure_costs(lulesh_workload, LULESH_DESIGN),
            "MILC": _measure_costs(milc_workload, MILC_DESIGN),
        },
        rounds=1,
        iterations=1,
    )

    rows = []
    savings = {}
    for app, (full_ch, taint_ch, wall) in results.items():
        saved = 1 - taint_ch / full_ch
        savings[app] = saved
        paper = "97.3%" if app == "LULESH" else "13.4%"
        rows.append(
            (
                app,
                f"{full_ch:.3e}",
                f"{taint_ch:.3e}",
                f"{saved * 100:.1f}%",
                paper,
                f"{wall:.2f}s",
            )
        )
    report(
        "costA_corehours",
        format_table(
            (
                "app",
                "full core-h",
                "taint core-h",
                "saved",
                "paper saved",
                "taint-analysis wall",
            ),
            rows,
        ),
        data={
            app: {
                "full_core_hours": full_ch,
                "taint_core_hours": taint_ch,
                "saved_fraction": savings[app],
                "analysis_wall_seconds": wall,
            }
            for app, (full_ch, taint_ch, wall) in results.items()
        },
    )

    # Shape: LULESH saves the overwhelming majority; MILC saves a more
    # moderate share; both save something, and LULESH >> MILC.
    assert savings["LULESH"] > 0.80
    assert 0.02 < savings["MILC"] < savings["LULESH"]
