"""Model-stage speedup of the batched search backend over the loop oracle.

The model search is the stage the paper's pipeline exists to accelerate
("with as few as three parameters, the model search space contains more
than 10^14 candidates", section 4.5).  The ``batched`` backend evaluates
each unique candidate term once into a shared column cache, solves every
hypothesis class with one stacked-LAPACK QR call, and reuses the factors
across the functions fitted at the same configuration matrix; the
``loop`` backend is the original one-``lstsq``-per-hypothesis reference.

This benchmark times the full model stage (CoV screening, per-function
prior assembly, hybrid + black-box searches) on a paper-style LULESH
5x5 experiment under full instrumentation — hundreds of measured
functions, like the B1 study — and asserts both the speedup and
**decision identity**: the two backends must select bit-identical term
sets with identical prior metadata for every function.

Run with ``pytest benchmarks/bench_model_speedup.py -s``.

Environment knobs:

* ``REPRO_BENCH_MODEL_MIN_SPEEDUP`` — the assertion bar (default 5.0 on
  a real host; the CI smoke job lowers it to 1.0, i.e. "batched must
  never be slower than the loop oracle").

Caveat: the ``loop`` baseline includes the shared ``rank_guard``
conditioning test (a small extra QR per hypothesis) that decision
identity requires of both backends, so it is slightly slower than the
pre-backend-split implementation it stands in for; the bar accounts for
that headroom.
"""

from __future__ import annotations

import os
import time

from repro.apps.lulesh import LuleshWorkload
from repro.core.pipeline import PerfTaintPipeline
from repro.core.stages import run_model_stage
from repro.measure import full_plan
from repro.modeling import Modeler

from conftest import report

DESIGN = {"p": [27, 64, 125, 216, 343], "size": [8, 11, 14, 17, 20]}


def _time_model_stage(meas, taint, volumes, backend: str, rounds: int = 3):
    """Best-of-*rounds* wall time of the model stage plus its models.

    A fresh Modeler per round: the batched backend's term-column and
    factorization caches live on the modeler, so every round pays the
    full cold-start cost production pays.
    """
    best = float("inf")
    models = None
    for _ in range(rounds):
        modeler = Modeler(backend=backend)
        started = time.perf_counter()
        models = run_model_stage(
            meas,
            taint,
            volumes,
            modeler=modeler,
            compare_black_box=True,
            cov_threshold=0.1,
        )
        best = min(best, time.perf_counter() - started)
    return best, models


def _selection_fingerprint(models):
    """The decision content of a model stage run: per function, the
    selected term sets and prior metadata of both model variants."""
    out = {}
    for fn, cmp in sorted(models.items()):
        out[fn] = (
            cmp.hybrid.terms,
            tuple(sorted(cmp.hybrid.metadata.items())),
            cmp.hybrid.is_constant,
            cmp.black_box.terms if cmp.black_box is not None else None,
        )
    return out


def test_model_search_speedup(lulesh_workload):
    min_speedup = float(
        os.environ.get("REPRO_BENCH_MODEL_MIN_SPEEDUP", "5.0")
    )
    pipe = PerfTaintPipeline(workload=lulesh_workload, repetitions=5, seed=3)
    static, taint, volumes, deps, _ = pipe.analyze()
    design = pipe.design(DESIGN, taint, deps, volumes)
    meas, _ = pipe.measure(
        design.configurations, full_plan(lulesh_workload.program())
    )

    loop_time, loop_models = _time_model_stage(meas, taint, volumes, "loop")
    batched_time, batched_models = _time_model_stage(
        meas, taint, volumes, "batched"
    )
    speedup = loop_time / batched_time

    # The speedup must never cost a single diverging decision: same
    # functions, same term sets, same prior metadata, same constancy.
    loop_sel = _selection_fingerprint(loop_models)
    batched_sel = _selection_fingerprint(batched_models)
    assert loop_sel == batched_sel

    n_functions = len(loop_models)
    n_parametric = sum(
        1 for cmp in loop_models.values() if not cmp.hybrid.is_constant
    )
    lines = [
        f"LULESH model stage ({len(design.configurations)} configurations, "
        f"full instrumentation, hybrid + black-box fits)",
        f"functions modeled: {n_functions} "
        f"({n_parametric} parametric hybrids)",
        "",
        f"{'backend':>10}  {'time [s]':>9}",
        f"{'loop':>10}  {loop_time:>9.3f}",
        f"{'batched':>10}  {batched_time:>9.3f}",
        "",
        f"model-stage speedup: {speedup:.2f}x (bar: {min_speedup:.1f}x)",
        "selected models identical: yes "
        f"({n_functions} functions x 2 variants)",
    ]
    report(
        "model_speedup",
        "\n".join(lines),
        data={
            "loop_seconds": loop_time,
            "batched_seconds": batched_time,
            "speedup": speedup,
            "min_speedup_bar": min_speedup,
            "functions_modeled": n_functions,
            "parametric_hybrids": n_parametric,
            "decisions_identical": True,
        },
    )

    assert speedup >= min_speedup, (
        f"batched model-search speedup {speedup:.2f}x below the "
        f"{min_speedup:.1f}x bar (loop {loop_time:.3f}s vs "
        f"batched {batched_time:.3f}s)"
    )
