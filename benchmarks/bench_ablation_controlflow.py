"""Ablation — control-flow taint propagation (paper section 5.2).

"We extended DataFlowSanitizer with instrumentation for explicit
control-flow tainting since it is necessary to capture all dependencies in
real-world applications."  The LULESH ``regElemSize`` example: the region
sizes acquire their ``size`` dependence only through the number of loop
iterations, invisible to pure data-flow tracking.

We run the LULESH taint analysis under both policies and count the
dependencies data-flow-only tracking loses.
"""

from conftest import report

from repro.core.pipeline import PerfTaintPipeline
from repro.core.report import format_table
from repro.taint.policy import DATAFLOW_ONLY, FULL_POLICY


def test_ablation_controlflow(benchmark, lulesh_workload):
    def run():
        full = PerfTaintPipeline(
            workload=lulesh_workload, policy=FULL_POLICY
        ).analyze_taint()
        dataflow = PerfTaintPipeline(
            workload=lulesh_workload, policy=DATAFLOW_ONLY
        ).analyze_taint()
        return full, dataflow

    full, dataflow = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    missing_total = 0
    for (key, rec) in sorted(full.loop_records.items()):
        _, fn, lid = key
        lost = rec.params - dataflow.loop_params(fn, lid)
        if lost:
            missing_total += 1
            rows.append((fn, lid, ",".join(sorted(rec.params)),
                         ",".join(sorted(lost))))
    text = format_table(
        ("function", "loop", "full policy", "lost without control flow"),
        rows,
    )
    report(
        "ablation_controlflow",
        text,
        data={
            "loops_losing_deps_without_controlflow": missing_total,
            "full_policy_relevant_loops": len(full.relevant_loops()),
            "dataflow_only_relevant_loops": len(dataflow.relevant_loops()),
        },
    )

    # The regElemSize pattern loses its size dependence (paper 5.2).
    full_params = full.loop_params("CalcMonotonicQRegionForElems", 1)
    df_params = dataflow.loop_params("CalcMonotonicQRegionForElems", 1)
    assert "size" in full_params
    assert "size" not in df_params
    assert missing_total >= 1
    # Direct data-flow dependencies are unaffected by the ablation.
    assert dataflow.loop_params("IntegrateStressForElems", 0) == frozenset(
        {"size"}
    )
