"""Table 2 — two-phase function/loop pruning overview.

Paper values for reference (LULESH / MILC): functions 356 / 629, pruned
statically 296 / 364, pruned dynamically 11 / 188, kernels 40 / 56, comm
routines 2 / 13, MPI functions 7 / 8; constant fractions 86.2% / 87.7%.
The reproduction asserts the *shape*: same pruning structure, constant
fraction in the 82–95% band, MPI counts within a couple of routines.
"""

from conftest import report

from repro.core.pipeline import PerfTaintPipeline
from repro.core.report import format_table


def _classify(workload):
    pipe = PerfTaintPipeline(workload=workload)
    static, taint, volumes, deps, classification = pipe.analyze()
    return classification


def test_table2_overview(benchmark, lulesh_workload, milc_workload):
    rows_by_app = benchmark.pedantic(
        lambda: {
            "LULESH": _classify(lulesh_workload),
            "MILC": _classify(milc_workload),
        },
        rounds=1,
        iterations=1,
    )

    paper = {
        "LULESH": dict(
            functions=356, pruned_statically=296, pruned_dynamically=11,
            kernels=40, comm_routines=2, mpi_functions=7, loops=275,
            loops_pruned_statically=52, loops_relevant=78,
        ),
        "MILC": dict(
            functions=629, pruned_statically=364, pruned_dynamically=188,
            kernels=56, comm_routines=13, mpi_functions=8, loops=874,
            loops_pruned_statically=96, loops_relevant=196,
        ),
    }

    table_rows = []
    for app, cls in rows_by_app.items():
        row = cls.table2_row()
        for metric, measured in row.items():
            table_rows.append(
                (app, metric, paper[app].get(metric, "-"), measured)
            )
        table_rows.append(
            (
                app,
                "constant_fraction",
                "86.2%" if app == "LULESH" else "87.7%",
                f"{cls.constant_fraction * 100:.1f}%",
            )
        )
    report(
        "table2_overview",
        format_table(("app", "metric", "paper", "measured"), table_rows),
        data={
            app: dict(
                cls.table2_row(), constant_fraction=cls.constant_fraction
            )
            for app, cls in rows_by_app.items()
        },
    )

    lulesh, milc = rows_by_app["LULESH"], rows_by_app["MILC"]
    # Headline shape assertions.
    assert 0.82 <= lulesh.constant_fraction <= 0.95
    assert 0.84 <= milc.constant_fraction <= 0.95
    assert lulesh.table2_row()["pruned_statically"] > 0.75 * lulesh.total_functions
    assert milc.table2_row()["pruned_dynamically"] >= 150
    assert 5 <= lulesh.table2_row()["mpi_functions"] <= 12
    assert milc.table2_row()["mpi_functions"] == 8
