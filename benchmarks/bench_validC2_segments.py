"""Section C2 — validating the experiment design.

Paper: MILC's internal gather behaves qualitatively differently "between
execution on 4, 8, 16 and larger numbers of ranks", so one PMNF fit over
the whole domain models neither regime.  The extended taint analysis
reports branch directions of parameter-dependent branches, "empowering the
user to appropriately design his experiments to ensure there is only one
behavior present in the data".

We run branch-direction taint probes across the modeling sweep, show the
gather switch and the resulting advice, and confirm splitting the domain
removes the flag.
"""

from conftest import report

from repro.core.validation import detect_segmented_behavior
from repro.libdb import MPI_DATABASE

SWEEP = [{"p": p, "size": 16} for p in (4, 8, 16, 32, 64)]
LOW = [{"p": p, "size": 16} for p in (4,)]
HIGH = [{"p": p, "size": 16} for p in (8, 16, 32, 64)]


def test_validC2_segmented_behavior(benchmark, milc_workload):
    program = milc_workload.program()

    def run():
        whole = detect_segmented_behavior(
            program, SWEEP, milc_workload.setup, milc_workload.sources(),
            library_taint=MPI_DATABASE,
        )
        low = detect_segmented_behavior(
            program, LOW, milc_workload.setup, milc_workload.sources(),
            library_taint=MPI_DATABASE,
        )
        high = detect_segmented_behavior(
            program, HIGH, milc_workload.setup, milc_workload.sources(),
            library_taint=MPI_DATABASE,
        )
        return whole, low, high

    whole, low, high = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Full sweep p in {4..64}:"]
    for f in whole:
        lines.append(
            f"  ! {f.function} branch {f.branch_id} on "
            f"{sorted(f.params)}: {f.boundary()}"
        )
    lines.append(f"Split domains: low={len(low)} high={len(high)} findings")
    report(
        "validC2_segments",
        "\n".join(lines),
        data={
            "full_sweep_findings": len(whole),
            "low_domain_findings": len(low),
            "high_domain_findings": len(high),
            "segmented_functions": sorted({f.function for f in whole}),
        },
    )

    gather = [f for f in whole if f.function == "do_gather"]
    assert len(gather) == 1
    assert gather[0].params == frozenset({"p"})
    # The boundary sits between p=4 and p=8 (the algorithm switch).
    directions = dict(gather[0].directions)
    assert directions[(("p", 4.0), ("size", 16.0))] == frozenset({True})
    assert directions[(("p", 8.0), ("size", 16.0))] == frozenset({False})
    # Splitting the experiment removes the qualitative change.
    assert all(f.function != "do_gather" for f in low)
    assert all(f.function != "do_gather" for f in high)
