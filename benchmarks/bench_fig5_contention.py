"""Figure 5 + section C1 — detecting hardware contention.

The paper fixes p=64 and size=30, sweeps MPI ranks per node r from 2 to 18,
and observes: the application slows down ~50% (model 2.86*log2(r)^2 + 127s),
and 31 of 73 functions with statistically sound measurements acquire
increasing models although taint proves they cannot depend on r — the
white-box contradiction that exposes memory contention.

We regenerate the relative-increase series for the figure's functions and
run the contention detector.
"""

import numpy as np
from conftest import report

from repro.apps.lulesh import LuleshWorkload
from repro.core.pipeline import PerfTaintPipeline
from repro.core.report import format_table
from repro.measure import APP_KEY, InstrumentationMode
from repro.mpisim.contention import LogQuadraticContention

R_VALUES = (2, 4, 6, 8, 12, 16, 18)
FIG5_FUNCTIONS = (
    APP_KEY,
    "CalcForceForNodes",
    "IntegrateStressForElems",
    "CalcHourglassControlForElems",
)


def test_fig5_contention(benchmark):
    workload = LuleshWorkload(parameters=("r",))
    pipe = PerfTaintPipeline(
        workload=workload,
        repetitions=5,
        seed=13,
        contention=LogQuadraticContention(beta=0.06),
    )

    def run():
        static, taint, volumes, deps, _ = pipe.analyze()
        plan = pipe.plan_for(InstrumentationMode.TAINT_FILTER, taint, static)
        design = [{"r": r, "p": 64, "size": 20} for r in R_VALUES]
        meas, _profiles = pipe.measure(design, plan)
        models = pipe.model(meas, taint, volumes, compare_black_box=True)
        findings = pipe.validate(meas, models, taint)
        return meas, models, findings

    meas, models, findings = benchmark.pedantic(run, rounds=1, iterations=1)

    # Relative time increase series (the figure's y axis).
    rows = []
    for fn in FIG5_FUNCTIONS:
        base = np.mean(meas.repetitions(fn, (float(R_VALUES[0]),)))
        series = [
            np.mean(meas.repetitions(fn, (float(r),))) / base
            for r in R_VALUES
        ]
        label = "main (whole app)" if fn == APP_KEY else fn
        rows.append(
            (label,)
            + tuple(f"{v:.3f}" for v in series)
            + ((models[fn].black_box or models[fn].hybrid).format(),)
        )
    header = ("function",) + tuple(f"r={r}" for r in R_VALUES) + ("model",)
    flagged = {f.function for f in findings}
    lines = [format_table(header, rows), "", "Contention findings:"]
    lines += [f"  ! {f}" for f in findings]
    report(
        "fig5_contention",
        "\n".join(lines),
        data={
            "findings": len(findings),
            "flagged_functions": sorted(flagged),
            "r_values": list(R_VALUES),
        },
    )
    # Figure 5's kernels are flagged, with increasing log-family models.
    assert "CalcHourglassControlForElems" in flagged
    assert APP_KEY in flagged
    assert len(findings) >= 5
    # Whole-app slowdown is significant (paper: ~50%).
    base = np.mean(meas.repetitions(APP_KEY, (2.0,)))
    peak = np.mean(meas.repetitions(APP_KEY, (18.0,)))
    assert peak / base > 1.2
    # The fitted app model is in the log2(r) family.
    app_model = (models[APP_KEY].black_box or models[APP_KEY].hybrid).format()
    assert "log2(r)" in app_model or "r^" in app_model
