"""Aggregate machine-readable benchmark records into BENCH_SUMMARY.json.

Every benchmark writes a ``benchmarks/out/BENCH_<name>.json`` record (see
``benchmarks/conftest.report``).  This script collects them into one
committed top-level ``BENCH_SUMMARY.json``, so the repository's
performance trajectory — engine, taint, and model-search speedups,
overhead ratios, design sizes — is visible at the repo root and
comparable across commits without re-running anything.

Usage::

    PYTHONPATH=src python benchmarks/aggregate.py            # write
    PYTHONPATH=src python benchmarks/aggregate.py --check    # verify only

The output is deterministic (sorted keys, no timestamps): rerunning the
script on unchanged records produces a byte-identical file, so diffs of
BENCH_SUMMARY.json always mean a benchmark's metrics actually moved.
``--check`` exits non-zero when the committed summary is stale.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

OUT_DIR = pathlib.Path(__file__).parent / "out"
REPO_ROOT = pathlib.Path(__file__).parent.parent
SUMMARY_PATH = REPO_ROOT / "BENCH_SUMMARY.json"

#: Headline metrics surfaced at the top of the summary when present,
#: keyed by benchmark name (the rest of each record stays under
#: ``benchmarks``).
HEADLINE_KEYS = {
    "engine_speedup": "speedup",
    "taint_speedup": "speedup",
    "model_speedup": "speedup",
    "parallel_scaling": "speedup",
}


def collect(out_dir: pathlib.Path = OUT_DIR) -> dict:
    """Merge every BENCH_*.json record into one summary mapping."""
    benchmarks: dict[str, dict] = {}
    for path in sorted(out_dir.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"warning: skipping unreadable {path.name}: {exc}")
            continue
        name = str(payload.get("benchmark") or path.stem[len("BENCH_"):])
        benchmarks[name] = payload.get("metrics", {})
    headline = {
        f"{name}_{key}": benchmarks[name][key]
        for name, key in sorted(HEADLINE_KEYS.items())
        if name in benchmarks and key in benchmarks[name]
    }
    return {
        "record_count": len(benchmarks),
        "speedups": headline,
        "benchmarks": benchmarks,
    }


def render(summary: dict) -> str:
    return json.dumps(summary, indent=2, sort_keys=True, default=str) + "\n"


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify the committed summary matches the records; write "
        "nothing",
    )
    args = parser.parse_args(argv)
    if not OUT_DIR.is_dir():
        print(f"error: no benchmark records at {OUT_DIR}", file=sys.stderr)
        return 1
    text = render(collect())
    if args.check:
        current = SUMMARY_PATH.read_text() if SUMMARY_PATH.exists() else ""
        if current != text:
            print(
                f"{SUMMARY_PATH.name} is stale: rerun "
                "'python benchmarks/aggregate.py'",
                file=sys.stderr,
            )
            return 1
        print(f"{SUMMARY_PATH.name} is up to date")
        return 0
    SUMMARY_PATH.write_text(text)
    summary = json.loads(text)
    print(
        f"wrote {SUMMARY_PATH} "
        f"({summary['record_count']} benchmark records)"
    )
    for key, value in summary["speedups"].items():
        print(f"  {key}: {float(value):.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
