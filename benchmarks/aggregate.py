"""Aggregate machine-readable benchmark records into BENCH_SUMMARY.json.

Every benchmark writes a ``benchmarks/out/BENCH_<name>.json`` record (see
``benchmarks/conftest.report``).  This script collects them into one
committed top-level ``BENCH_SUMMARY.json``, so the repository's
performance trajectory — engine, taint, and model-search speedups,
overhead ratios, design sizes — is visible at the repo root and
comparable across commits without re-running anything.

Usage::

    PYTHONPATH=src python benchmarks/aggregate.py            # write
    PYTHONPATH=src python benchmarks/aggregate.py --check    # verify only

The output is deterministic (sorted keys, no timestamps): rerunning the
script on unchanged records produces a byte-identical file, so diffs of
BENCH_SUMMARY.json always mean a benchmark's metrics actually moved.
``--check`` exits non-zero when the committed summary is stale.

Headline speedups also carry a ``history`` trajectory: each run appends
the current value only when it changed, so the committed summary records
how every speedup moved PR over PR.  ``--check`` additionally fails when
a headline speedup regressed below ``REPRO_BENCH_HISTORY_MIN_RATIO``
(default 0.5) times its previously recorded value — a halved speedup
never slips through unnoticed, while ordinary machine-to-machine timing
jitter does not trip the gate.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

OUT_DIR = pathlib.Path(__file__).parent / "out"
REPO_ROOT = pathlib.Path(__file__).parent.parent
SUMMARY_PATH = REPO_ROOT / "BENCH_SUMMARY.json"

#: Headline metrics surfaced at the top of the summary when present,
#: keyed by benchmark name (the rest of each record stays under
#: ``benchmarks``).
HEADLINE_KEYS = {
    "engine_speedup": "speedup",
    "taint_speedup": "speedup",
    "model_speedup": "speedup",
    "parallel_scaling": "speedup",
    "batch_speedup": "speedup",
    "service": "speedup",
    "sched_throughput": "speedup",
}

#: ``--check`` fails when a headline speedup drops below this fraction
#: of its previously recorded value (env: REPRO_BENCH_HISTORY_MIN_RATIO).
DEFAULT_MIN_RATIO = 0.5


def collect(
    out_dir: pathlib.Path = OUT_DIR, previous: "dict | None" = None
) -> dict:
    """Merge every BENCH_*.json record into one summary mapping.

    *previous* is the committed summary (when one exists): each headline
    speedup's ``history`` trajectory is carried over and the current
    value appended only when it differs from the last recorded point, so
    unchanged records keep the file byte-identical.
    """
    benchmarks: dict[str, dict] = {}
    for path in sorted(out_dir.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"warning: skipping unreadable {path.name}: {exc}")
            continue
        name = str(payload.get("benchmark") or path.stem[len("BENCH_"):])
        benchmarks[name] = payload.get("metrics", {})
    headline = {
        f"{name}_{key}": benchmarks[name][key]
        for name, key in sorted(HEADLINE_KEYS.items())
        if name in benchmarks and key in benchmarks[name]
    }
    history: dict[str, list] = {
        name: list(trail)
        for name, trail in ((previous or {}).get("history") or {}).items()
    }
    for name, value in headline.items():
        trail = history.setdefault(name, [])
        if not trail or trail[-1] != value:
            trail.append(value)
    return {
        "record_count": len(benchmarks),
        "speedups": headline,
        "history": history,
        "benchmarks": benchmarks,
    }


def regressions(summary: dict, min_ratio: float) -> list[str]:
    """Headline speedups whose newest history point fell below
    *min_ratio* times the previously recorded one."""
    found = []
    for name, trail in sorted(summary.get("history", {}).items()):
        if len(trail) < 2:
            continue
        prev, cur = float(trail[-2]), float(trail[-1])
        if cur < prev * min_ratio:
            found.append(
                f"{name} regressed: {cur:.2f}x is below "
                f"{min_ratio:.2f} * previous {prev:.2f}x"
            )
    return found


def render(summary: dict) -> str:
    return json.dumps(summary, indent=2, sort_keys=True, default=str) + "\n"


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify the committed summary matches the records; write "
        "nothing",
    )
    args = parser.parse_args(argv)
    if not OUT_DIR.is_dir():
        print(f"error: no benchmark records at {OUT_DIR}", file=sys.stderr)
        return 1
    previous = None
    if SUMMARY_PATH.exists():
        try:
            previous = json.loads(SUMMARY_PATH.read_text())
        except json.JSONDecodeError:
            previous = None
    min_ratio = float(
        os.environ.get("REPRO_BENCH_HISTORY_MIN_RATIO", DEFAULT_MIN_RATIO)
    )
    summary = collect(previous=previous)
    text = render(summary)
    regressed = regressions(summary, min_ratio)
    if args.check:
        current = SUMMARY_PATH.read_text() if SUMMARY_PATH.exists() else ""
        failed = False
        if current != text:
            print(
                f"{SUMMARY_PATH.name} is stale: rerun "
                "'python benchmarks/aggregate.py'",
                file=sys.stderr,
            )
            failed = True
        for message in regressed:
            print(f"error: {message}", file=sys.stderr)
            failed = True
        if failed:
            return 1
        print(f"{SUMMARY_PATH.name} is up to date")
        return 0
    for message in regressed:
        print(f"warning: {message}")
    SUMMARY_PATH.write_text(text)
    summary = json.loads(text)
    print(
        f"wrote {SUMMARY_PATH} "
        f"({summary['record_count']} benchmark records)"
    )
    for key, value in summary["speedups"].items():
        print(f"  {key}: {float(value):.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
