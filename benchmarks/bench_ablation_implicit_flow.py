"""Ablation — optional implicit-flow propagation (paper section 3.2).

The paper's taxonomy distinguishes *explicit* control dependencies (code
that runs under a tainted branch) from *implicit* ones (the not-taken
branch would have changed a value: ``if (c) d = pow(d, 2)`` taints ``d``
through ``c`` "even if the second branch is not taken").  DFSan and the
Perf-Taint prototype track explicit control flow; this reproduction also
implements the implicit mode as an opt-in extension.

The ablation measures what each policy recovers on a program whose loop
bound is only implicitly dependent, and confirms the implicit mode does
not perturb the LULESH results (no over-tainting on the paper workload).
"""

from conftest import report

from repro.apps.synthetic import SyntheticWorkload
from repro.core.pipeline import PerfTaintPipeline
from repro.core.report import format_table
from repro.ir import ProgramBuilder, var
from repro.taint import TaintInterpreter
from repro.taint.policy import DATAFLOW_ONLY, FULL_POLICY, PropagationPolicy

IMPLICIT = PropagationPolicy(implicit_flow=True)


def implicit_dep_program():
    """Loop bound depends on c only through the NOT-taken branch."""
    pb = ProgramBuilder()
    with pb.function("main", ["c", "n"]) as f:
        f.assign("d", var("n"))
        with f.if_(var("c")):
            f.assign("d", 2)
        with f.for_("i", 0, f.var("d")):
            f.work(5)
    return pb.build(entry="main")


def test_ablation_implicit_flow(benchmark, lulesh_workload):
    prog = implicit_dep_program()

    def run():
        per_policy = {}
        for name, policy in (
            ("data-flow only", DATAFLOW_ONLY),
            ("explicit control (paper)", FULL_POLICY),
            ("implicit (extension)", IMPLICIT),
        ):
            # c=0: the branch is NOT taken, so only implicit tracking can
            # see the dependence of d (and the loop) on c.
            rep = TaintInterpreter(prog, policy=policy).analyze(
                {"c": 0, "n": 6}, {"c": "c", "n": "n"}
            ).report
            per_policy[name] = rep.loop_params("main", 0)
        # Sanity on the real workload: implicit mode yields the same
        # relevant-loop count as the paper's explicit mode on LULESH.
        explicit_taint = PerfTaintPipeline(
            workload=lulesh_workload, policy=FULL_POLICY
        ).analyze_taint()
        implicit_taint = PerfTaintPipeline(
            workload=lulesh_workload, policy=IMPLICIT
        ).analyze_taint()
        return per_policy, explicit_taint, implicit_taint

    per_policy, explicit_taint, implicit_taint = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    rows = [
        (name, ",".join(sorted(params)) or "(none)")
        for name, params in per_policy.items()
    ]
    rows.append(
        (
            "LULESH relevant loops",
            f"explicit={len(explicit_taint.relevant_loops())} "
            f"implicit={len(implicit_taint.relevant_loops())}",
        )
    )
    report(
        "ablation_implicit_flow",
        format_table(("policy", "loop parameters found"), rows),
        data={
            "loop_params_by_policy": {
                name: sorted(params) for name, params in per_policy.items()
            },
            "lulesh_relevant_loops_explicit": len(
                explicit_taint.relevant_loops()
            ),
            "lulesh_relevant_loops_implicit": len(
                implicit_taint.relevant_loops()
            ),
        },
    )

    assert per_policy["data-flow only"] == frozenset({"n"})
    assert per_policy["explicit control (paper)"] == frozenset({"n"})
    assert per_policy["implicit (extension)"] == frozenset({"c", "n"})
    # On LULESH, implicit mode changes nothing: all branch-assigned values
    # are already covered by explicit tracking (no over-tainting).
    assert len(implicit_taint.relevant_loops()) == len(
        explicit_taint.relevant_loops()
    )
