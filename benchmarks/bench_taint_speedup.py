"""Taint-stage speedup of the compiled shadow engine over the tree-walker.

Since the analysis-domain refactor, taint is just another analysis
domain both engines can execute: the tree-walking ``ShadowInterpreter``
pays per-node ``isinstance`` dispatch and per-name dict lookups, while
the ``CompiledShadowEngine`` propagates labels through the same
pre-resolved frame slots the values use.  This benchmark times the full
taint stage (engine construction included — a taint run builds a fresh
engine, so the compiled engine's one-time lowering cost is part of what
production pays) on the LULESH workload at its paper-style
representative configuration, and asserts the compiled engine's speedup.

Run with ``pytest benchmarks/bench_taint_speedup.py -s``.

Environment knobs:

* ``REPRO_BENCH_TAINT_MIN_SPEEDUP`` — the assertion bar (default 2.0 on
  a real host; the CI smoke job lowers it to 1.0, i.e. "compiled taint
  must never be slower than the tree-walker").
"""

from __future__ import annotations

import os
import time

from repro.core.artifacts import artifact_fingerprint, taint_report_to_dict
from repro.core.stages import run_taint_stage
from repro.libdb.mpi_models import MPI_DATABASE
from repro.taint.policy import FULL_POLICY

from conftest import report


def _time_taint_stage(workload, program, engine: str, rounds: int = 3):
    """Best-of-*rounds* wall time of the taint stage plus its report."""
    best = float("inf")
    taint = None
    for _ in range(rounds):
        library = MPI_DATABASE.copy()
        started = time.perf_counter()
        taint = run_taint_stage(
            workload, program, FULL_POLICY, library, engine=engine
        )
        best = min(best, time.perf_counter() - started)
    return best, taint


def test_taint_speedup(lulesh_workload):
    min_speedup = float(
        os.environ.get("REPRO_BENCH_TAINT_MIN_SPEEDUP", "2.0")
    )
    program = lulesh_workload.program()

    tree_time, tree_report = _time_taint_stage(
        lulesh_workload, program, "tree"
    )
    compiled_time, compiled_report = _time_taint_stage(
        lulesh_workload, program, "compiled"
    )
    speedup = tree_time / compiled_time

    # The speedup must never come at the cost of a single diverging bit:
    # same records, same parameter sets, same canonical payload.
    assert tree_report == compiled_report
    tree_fp = artifact_fingerprint(taint_report_to_dict(tree_report))
    compiled_fp = artifact_fingerprint(taint_report_to_dict(compiled_report))
    assert tree_fp == compiled_fp

    lines = [
        "LULESH taint stage (representative config "
        f"{lulesh_workload.taint_config()}, full policy)",
        f"loop records: {len(tree_report.loop_records)}, "
        f"library records: {len(tree_report.library_records)}",
        "",
        f"{'engine':>10}  {'time [s]':>9}",
        f"{'tree':>10}  {tree_time:>9.3f}",
        f"{'compiled':>10}  {compiled_time:>9.3f}",
        "",
        f"taint-stage speedup: {speedup:.2f}x (bar: {min_speedup:.1f}x)",
        f"reports bit-identical: yes ({compiled_fp[:16]}...)",
    ]
    report(
        "taint_speedup",
        "\n".join(lines),
        data={
            "tree_seconds": tree_time,
            "compiled_seconds": compiled_time,
            "speedup": speedup,
            "min_speedup_bar": min_speedup,
            "loop_records": len(tree_report.loop_records),
            "report_fingerprint": compiled_fp,
            "reports_identical": True,
        },
    )

    assert speedup >= min_speedup, (
        f"compiled taint speedup {speedup:.2f}x below the "
        f"{min_speedup:.1f}x bar (tree {tree_time:.3f}s vs "
        f"compiled {compiled_time:.3f}s)"
    )
