"""Table 3 — per-parameter kernel/loop coverage (section A1).

Paper (LULESH): p 2/2, size 40/78, regions 13/27, iters 4/4, balance 9/20,
cost 2/2, combined 40/78 — p directly touches only two regions while size
covers nearly everything, which is why (p, size) is the chosen
two-parameter model.  MILC: every lattice extent plus p covers ~50 kernels
(one multiplicative site loop), the MD driver parameters a handful each,
mass/beta none.
"""

from conftest import report

from repro.core.classify import table3_counts
from repro.core.report import format_table

LULESH_PARAMS = ["p", "size", "regions", "balance", "cost", "iters"]
MILC_PARAMS = [
    "p", "nx", "ny", "nz", "nt",
    "steps", "niter", "warms", "trajecs", "nrestart", "mass", "beta",
]


def test_table3_param_pruning(
    benchmark, lulesh_workload, milc_workload, lulesh_analysis, milc_analysis
):
    _, lulesh_taint, _, _, _ = lulesh_analysis
    _, milc_taint, _, _, _ = milc_analysis

    def compute():
        return (
            table3_counts(lulesh_workload.program(), lulesh_taint, LULESH_PARAMS),
            table3_counts(milc_workload.program(), milc_taint, MILC_PARAMS),
        )

    lulesh_counts, milc_counts = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )

    rows = []
    for app, counts in (("LULESH", lulesh_counts), ("MILC", milc_counts)):
        for param, c in counts.items():
            rows.append((app, param, c["functions"], c["loops"]))
    report(
        "table3_param_pruning",
        format_table(("app", "parameter", "functions", "loops"), rows),
        data={
            "LULESH": {p: dict(c) for p, c in lulesh_counts.items()},
            "MILC": {p: dict(c) for p, c in milc_counts.items()},
        },
    )

    # LULESH shape: p touches exactly 2 regions; size has the broadest
    # coverage; iters is a single instance (paper A2).
    assert lulesh_counts["p"]["functions"] == 2
    assert lulesh_counts["p"]["loops"] == 2
    assert lulesh_counts["size"]["functions"] == max(
        lulesh_counts[q]["functions"] for q in LULESH_PARAMS
    )
    assert lulesh_counts["iters"]["loops"] == 1
    # combined != sum of columns (regions shared between parameters)
    assert lulesh_counts["combined"]["functions"] < sum(
        lulesh_counts[q]["functions"] for q in LULESH_PARAMS
    )

    # MILC shape: extents and p cover ~all kernels; mass/beta pruned —
    # "our findings are identical with the ground truth established by
    # experts" (section A1).
    for ext in ("nx", "ny", "nz", "nt", "p"):
        assert milc_counts[ext]["functions"] >= 40
    assert milc_counts["mass"]["functions"] == 0
    assert milc_counts["beta"]["functions"] == 0
    for md in ("steps", "niter", "warms", "trajecs"):
        assert milc_counts[md]["functions"] >= 1
