"""Section B1 — noise resilience of hybrid vs black-box modeling.

Paper setup: 5x5 configurations x 5 repetitions (125 measurements); models
compared against ground truth for functions passing the CoV<=0.1 screen.
Results: hybrid models "nearly always exactly matching the ground truth";
constant functions (e.g. four MPI_Comm_rank wrappers) that black-box
modeling gave parametric models are corrected; on MILC "this corrects 77%
[of] models previously indicating performance effects".

Here: run the LULESH 5x5x5 experiment under full instrumentation (so
constant functions are measured at all), model every reliable function
both ways, and count false dependencies.
"""

from conftest import report

from repro.core.hybrid import HybridModeler
from repro.core.pipeline import PerfTaintPipeline
from repro.core.report import format_table
from repro.measure import APP_KEY, full_plan

DESIGN = {"p": [27, 64, 125, 216, 343], "size": [8, 11, 14, 17, 20]}


def test_qualB1_noise_resilience(benchmark, lulesh_workload):
    pipe = PerfTaintPipeline(workload=lulesh_workload, repetitions=5, seed=3)

    def run():
        static, taint, volumes, deps, _ = pipe.analyze()
        design = pipe.design(DESIGN, taint, deps, volumes)
        meas, _ = pipe.measure(
            design.configurations, full_plan(lulesh_workload.program())
        )
        models = pipe.model(
            meas, taint, volumes, compare_black_box=True, cov_threshold=0.1
        )
        return taint, meas, models

    taint, meas, models = benchmark.pedantic(run, rounds=1, iterations=1)

    false_deps = HybridModeler.false_dependency_report(models)
    reliable = [fn for fn in models if fn != APP_KEY]
    bb_parametric = [
        fn
        for fn in reliable
        if models[fn].black_box is not None
        and models[fn].black_box.used_parameters()
    ]
    constant_truth = [
        fn for fn in reliable if not taint.function_params(fn)
    ]
    corrected = [fn for fn in constant_truth if fn in false_deps]

    rank_wrappers = ["GetMyRank", "LogRank", "DebugRank", "TraceRank"]
    wrapper_rows = []
    for fn in rank_wrappers:
        cmp = models.get(fn)
        if cmp is None:
            continue
        wrapper_rows.append(
            (
                fn,
                cmp.black_box.format() if cmp.black_box else "-",
                cmp.hybrid.format(),
            )
        )

    lines = [
        f"reliable functions modeled: {len(reliable)}",
        f"black-box parametric models: {len(bb_parametric)}",
        f"taint-proven constant functions measured: {len(constant_truth)}",
        f"false dependencies corrected by the prior: {len(corrected)}",
        "",
        "MPI_Comm_rank wrappers (paper: 4 corrected to constant):",
        format_table(("function", "black-box model", "hybrid model"),
                     wrapper_rows),
    ]
    report(
        "qualB1_noise",
        "\n".join(lines),
        data={
            "reliable_functions": len(reliable),
            "black_box_parametric_models": len(bb_parametric),
            "taint_constant_functions": len(constant_truth),
            "false_dependencies_corrected": len(corrected),
            "rank_wrappers_corrected": len(wrapper_rows),
        },
    )

    # Shape assertions: noise earns several spurious black-box models on
    # constant functions, and the prior corrects every one of them.
    assert len(corrected) >= 4
    for fn in constant_truth:
        assert models[fn].hybrid.is_constant, fn
    # The four rank wrappers specifically (the paper's B1 example).
    for fn, _bb, hybrid_text in wrapper_rows:
        assert "p" not in hybrid_text and "size" not in hybrid_text
    assert len(wrapper_rows) == 4
    # Kernels keep correct dependencies under the prior.
    for fn in ("IntegrateStressForElems", "CalcPressureForElems"):
        if fn in models:
            assert models[fn].hybrid.used_parameters() <= {"size"}
