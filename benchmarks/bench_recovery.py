"""Crash recovery: kill -9 the campaign server mid-measure, restart, finish.

The crash-safety contract of the campaign service is exactly-once
execution across server incarnations: every completed lane lands in the
content-addressed run store and the broker's journal checkpoint before
the lease is acknowledged, so a server that dies without warning loses
*intent* (re-read from the journal) but never *results*.  This benchmark
exercises the whole contract over real processes and real sockets:

1. start ``repro serve --state-dir`` as a subprocess plus two
   ``repro worker`` subprocesses;
2. submit a nine-configuration LULESH sweep over HTTP;
3. ``SIGKILL`` the server the moment at least two lanes are durable in
   the on-disk run store (no drain, no atexit — the hard crash);
4. restart the server on the same state directory and wait for the
   campaign to finish, the *same* worker processes reconnecting through
   their retry/backoff policy.

Assertions (always enforced, not just reported):

* the restarted server recovers the campaign (``recovered: true``,
  exactly one restart) and re-drives it to ``done``;
* every stage computed before the crash is ``resumed``, never re-run;
* exactly-once measurement: lanes executed after the restart equal the
  design size minus the lanes already durable at kill time — nothing is
  profiled twice and nothing is lost;
* the run store holds exactly one record per configuration at the end.

Reported metrics: lanes durable at the kill, lanes re-executed after
restart, and the recovery wall-clock (restart exec to campaign done).

Run with ``pytest benchmarks/bench_recovery.py -s``.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import time

from repro.errors import ServiceError
from repro.service import ServiceClient

from conftest import report

WORKERS = 2
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SPEC = {
    "app": "lulesh",
    "mode": "taint",
    "repetitions": 2,
    "seed": 0,
    "parameters": {"p": [8.0, 27.0, 64.0], "size": [4.0, 6.0, 8.0]},
}
N_CONFIGS = 9

#: Durable lanes required in the run store before the SIGKILL lands —
#: low enough that seven lanes remain to recover, high enough to prove
#: pre-crash progress survives.
KILL_AFTER_LANES = 2


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return env


def _spawn_server(state_dir, port: int) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--state-dir",
            str(state_dir),
            "--port",
            str(port),
            "--lease-ttl",
            "30",
            "--chunk-size",
            "1",
        ],
        env=_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _spawn_workers(url: str, n: int) -> list:
    return [
        subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "worker",
                "--server",
                url,
                "--id",
                f"chaos{i}",
                "--poll-interval",
                "0.02",
            ],
            env=_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        for i in range(n)
    ]


def _wait_healthy(client: ServiceClient, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while True:
        try:
            if client.health()["status"] == "ok":
                return
        except ServiceError:
            pass
        if time.monotonic() > deadline:
            raise AssertionError("server did not come up in time")
        time.sleep(0.05)


def _durable_lanes(state_dir) -> int:
    """Measured lanes already fsynced into the on-disk run store."""
    runs = state_dir / "runs"
    if not runs.is_dir():
        return 0
    return sum(1 for p in runs.iterdir() if p.suffix == ".json")


def test_crash_recovery(tmp_path):
    state_dir = tmp_path / "state"
    port = _free_port()
    url = f"http://127.0.0.1:{port}"
    client = ServiceClient(url)

    server = _spawn_server(state_dir, port)
    workers = []
    second = None
    try:
        _wait_healthy(client)
        workers = _spawn_workers(url, WORKERS)

        campaign_id = client.submit(SPEC)

        # Wait until enough lanes are durable on disk, then deliver the
        # crash.  Reading the store directly (not the HTTP telemetry)
        # makes the pre-crash count exact: whatever lands between the
        # check and the SIGKILL is still on disk and still counted.
        deadline = time.monotonic() + 300
        while _durable_lanes(state_dir) < KILL_AFTER_LANES:
            assert time.monotonic() < deadline, "no mid-measure progress"
            assert server.poll() is None, "server died on its own"
            time.sleep(0.005)
        server.send_signal(signal.SIGKILL)
        server.wait(timeout=10)
        lanes_before = _durable_lanes(state_dir)
        assert KILL_AFTER_LANES <= lanes_before < N_CONFIGS

        # Restart on the same state directory.  The same two worker
        # processes are still running; their transports must ride out
        # the dead-server window on retry/backoff and reconnect.
        restarted = time.perf_counter()
        second = _spawn_server(state_dir, port)
        _wait_healthy(client)
        status = client.wait(campaign_id, timeout=300)
        recovery_seconds = time.perf_counter() - restarted

        assert status["state"] == "done"
        assert status["recovered"] is True
        assert status["restarts"] == 1

        # Stages finished before the crash resume from the store.  The
        # status dict lists stages in DAG order: everything ahead of the
        # interrupted measure stage was durable and must be "resumed";
        # measure and its downstream stages compute for the first time.
        stages = status["stages"]
        assert stages["measure"] == "computed"
        names = list(stages)
        pre_crash = names[: names.index("measure")]
        assert pre_crash, "campaign must have pre-measure stages"
        assert {stages[name] for name in pre_crash} == {"resumed"}

        lanes_after = status["profile_executions"]
        assert lanes_after == N_CONFIGS - lanes_before, (
            f"exactly-once violated: {lanes_before} lanes were durable "
            f"at the kill but the restarted server executed {lanes_after} "
            f"of {N_CONFIGS}"
        )
        assert _durable_lanes(state_dir) == N_CONFIGS

        telemetry = client.telemetry()
        assert telemetry["service"]["restarts"] == 1
        assert campaign_id in telemetry["service"]["recovered_campaigns"]
        assert telemetry["store"]["corrupt_entries"] == 0
    finally:
        for proc in workers:
            proc.terminate()
        for proc in workers:
            proc.wait(timeout=10)
        for proc in (server, second):
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

    lines = [
        f"LULESH sweep: {N_CONFIGS} configurations x "
        f"{SPEC['repetitions']} repetitions, {WORKERS} worker processes",
        f"SIGKILL delivered with {lanes_before}/{N_CONFIGS} lanes durable",
        "",
        f"lanes recovered from store: {lanes_before}",
        f"lanes re-executed after restart: {lanes_after}",
        f"recovery wall-clock: {recovery_seconds:.3f} s "
        "(restart exec to campaign done)",
        "",
        "pre-crash stages resumed, exactly-once execution held",
    ]
    report(
        "recovery",
        "\n".join(lines),
        data={
            "configurations": N_CONFIGS,
            "repetitions": SPEC["repetitions"],
            "workers": WORKERS,
            "lanes_durable_at_kill": lanes_before,
            "lanes_reexecuted": lanes_after,
            "lanes_lost": N_CONFIGS - lanes_before - lanes_after,
            "recovery_seconds": recovery_seconds,
            "restarts": 1,
            "exactly_once": True,
        },
    )
