"""Section B1 on MILC — the "77% corrected" headline.

Paper (section 6): "the taint analysis identifies 87.7% of the functions
as constant relative to these two parameters.  This corrects 77% [of]
models previously indicating performance effects."  And B1: "there are
four MPI_Comm_Rank functions which we correctly detect as constant where
measurement noise previously caused incorrect models to be generated."

We run a (p, size) experiment on MILC under full instrumentation (so the
constant SU(3) helpers are measured), model every reliable function both
black-box and hybrid, and report what fraction of the parametric black-box
models the taint prior corrects.
"""

from conftest import report

from repro.core.pipeline import PerfTaintPipeline
from repro.measure import APP_KEY, full_plan

DESIGN = {"p": [4, 16, 64], "size": [64, 160, 256]}


def test_qualB1_milc_correction_rate(benchmark, milc_workload):
    pipe = PerfTaintPipeline(workload=milc_workload, repetitions=3, seed=17)

    def run():
        static, taint, volumes, deps, _ = pipe.analyze()
        design = pipe.design(DESIGN, taint, deps, volumes)
        meas, _ = pipe.measure(
            design.configurations, full_plan(milc_workload.program())
        )
        models = pipe.model(
            meas, taint, volumes, compare_black_box=True, cov_threshold=0.1
        )
        return taint, models

    taint, models = benchmark.pedantic(run, rounds=1, iterations=1)

    reliable = [fn for fn in models if fn != APP_KEY]
    constant_truth = [
        fn for fn in reliable if not taint.function_params(fn)
    ]
    bb_wrong = [
        fn
        for fn in constant_truth
        if models[fn].black_box is not None
        and models[fn].black_box.used_parameters()
    ]
    hybrid_fixed = [
        fn for fn in bb_wrong if models[fn].hybrid.is_constant
    ]
    bb_parametric = [
        fn
        for fn in reliable
        if models[fn].black_box is not None
        and models[fn].black_box.used_parameters()
    ]
    corrected_fraction = (
        len(bb_wrong) / len(bb_parametric) if bb_parametric else 0.0
    )

    lines = [
        f"reliable functions modeled: {len(reliable)}",
        f"taint-proven constant among them: {len(constant_truth)}",
        f"black-box parametric models: {len(bb_parametric)}",
        f"  of which on constant functions (wrong): {len(bb_wrong)}",
        f"  hybrid corrects: {len(hybrid_fixed)} "
        f"({100 * corrected_fraction:.0f}% of parametric models; "
        "paper: 77%)",
    ]
    report(
        "qualB1_milc",
        "\n".join(lines),
        data={
            "reliable_functions": len(reliable),
            "taint_constant_functions": len(constant_truth),
            "black_box_parametric_models": len(bb_parametric),
            "wrong_parametric_models": len(bb_wrong),
            "hybrid_corrected": len(hybrid_fixed),
            "corrected_fraction": corrected_fraction,
        },
    )

    # Shape: a majority of the black-box parametric models are on
    # functions taint proves constant, and the prior fixes every one.
    assert len(bb_wrong) >= 10
    assert corrected_fraction > 0.5
    assert hybrid_fixed == bb_wrong
