"""Whole-sweep batched measurement speedup over the scalar serial runner.

The batched runner executes an entire design as one tensor pass per
batch (``vectorized`` engine) and samples every noise stream through the
vectorized ``perturb_block`` — versus the serial runner's one compiled
interpreter run per configuration and ~20us of RNG stream setup per
sample.  This benchmark times both runners end-to-end (profiling + noise
sampling + merging) on the LULESH three-parameter sweep and asserts the
batched runner's speedup *and* bit-identical ``Measurements``.

Run with ``pytest benchmarks/bench_batch_speedup.py -s``.

Environment knobs:

* ``REPRO_BENCH_BATCH_MIN_SPEEDUP`` — the assertion bar (default 5.0 on
  a real host; the CI smoke job lowers it to 1.0, i.e. "the batched
  runner must never be slower than the serial runner").
"""

from __future__ import annotations

import json
import os
import time

from repro.apps.lulesh import LuleshWorkload
from repro.measure import (
    BatchedExperimentRunner,
    ExperimentRunner,
    full_factorial,
    full_plan,
    measurements_to_dict,
    profile_to_dict,
)

from conftest import report


def _canonical(measurements) -> str:
    return json.dumps(measurements_to_dict(measurements), sort_keys=True)


def _time_runner(runner, design, rounds: int = 3):
    """Best-of-*rounds* wall time of a full design run plus its output."""
    best = float("inf")
    output = None
    for _ in range(rounds):
        started = time.perf_counter()
        output = runner.run(design)
        best = min(best, time.perf_counter() - started)
    return best, output


def test_batch_speedup():
    min_speedup = float(
        os.environ.get("REPRO_BENCH_BATCH_MIN_SPEEDUP", "5.0")
    )
    # The paper-style three-parameter LULESH sweep: every swept name is a
    # workload parameter, so configuration keys are unique (the canonical
    # design the dense merge requires).
    workload = LuleshWorkload(parameters=("p", "size", "iters"))
    plan = full_plan(workload.program())
    design = full_factorial(
        {
            "p": [8.0, 27.0, 64.0],
            "size": [10.0, 14.0, 18.0, 22.0],
            "iters": [1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        }
    )
    repetitions = 5
    kwargs = dict(workload=workload, plan=plan, repetitions=repetitions, seed=0)

    serial_time, (m_serial, p_serial) = _time_runner(
        ExperimentRunner(**kwargs), design
    )
    batched_runner = BatchedExperimentRunner(**kwargs)
    batched_time, (m_batched, p_batched) = _time_runner(
        batched_runner, design
    )
    speedup = serial_time / batched_time

    # Lane accounting: the planned grid is (configurations x repetitions)
    # but repetitions are pure dedup gain — the engine must execute one
    # representative lane per configuration, i.e. <= 1/R of the grid.
    lanes = batched_runner.last_lane_stats
    assert lanes.planned == len(design) * repetitions
    assert lanes.executed == len(design)
    assert lanes.executed * repetitions <= lanes.planned

    # The speedup must never come at the cost of a single diverging bit:
    # same samples, same call counts, same per-configuration profiles.
    identical = _canonical(m_serial) == _canonical(m_batched)
    assert identical
    assert set(p_serial) == set(p_batched)
    for key in p_serial:
        assert profile_to_dict(p_serial[key]) == profile_to_dict(
            p_batched[key]
        )

    samples = sum(
        len(values)
        for per_fn in m_serial.data.values()
        for values in per_fn.values()
    )
    lines = [
        f"LULESH 3-parameter sweep: {len(design)} configurations x "
        f"{repetitions} repetitions ({samples} samples)",
        "",
        f"{'runner':>10}  {'time [s]':>9}",
        f"{'serial':>10}  {serial_time:>9.3f}",
        f"{'batched':>10}  {batched_time:>9.3f}",
        "",
        f"batched-runner speedup: {speedup:.2f}x (bar: {min_speedup:.1f}x)",
        f"lanes: {lanes.planned} planned, {lanes.executed} executed "
        f"({lanes.deduped} deduplicated — 1/{repetitions} of the grid)",
        "measurements bit-identical: yes",
    ]
    report(
        "batch_speedup",
        "\n".join(lines),
        data={
            "configurations": len(design),
            "repetitions": repetitions,
            "samples": samples,
            "serial_seconds": serial_time,
            "batched_seconds": batched_time,
            "speedup": speedup,
            "min_speedup_bar": min_speedup,
            "measurements_identical": identical,
            "lanes_planned": lanes.planned,
            "lanes_executed": lanes.executed,
            "lanes_deduped": lanes.deduped,
        },
    )

    assert speedup >= min_speedup, (
        f"batched runner speedup {speedup:.2f}x below the "
        f"{min_speedup:.1f}x bar (serial {serial_time:.3f}s vs "
        f"batched {batched_time:.3f}s)"
    )
