"""Figure 4 — MILC Score-P instrumentation overhead.

Paper: "the geometric mean of overheads are 1.6% for selective
instrumentation and 23% for full and default instrumentation.  The default
instrumentation provides little to no benefit" — MILC's SU(3) helpers are
medium-sized straight-line functions the size heuristic keeps.
"""

import math

from conftest import report

from repro.core.report import format_table
from repro.measure import (
    default_filter_plan,
    full_plan,
    none_plan,
    profile_run,
    taint_filter_plan,
)

RANKS = (4, 8, 16, 32, 64)
SIZES = (32, 64, 128, 256, 512)


def _geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def test_fig4_milc_overhead(benchmark, milc_workload, milc_analysis):
    static, taint, _, _, _ = milc_analysis
    prog = milc_workload.program()
    plans = {
        "native": none_plan(),
        "taint": taint_filter_plan(prog, taint, static),
        "default": default_filter_plan(prog),
        "full": full_plan(prog),
    }

    def sweep():
        rows = []
        series = {m: [] for m in ("taint", "default", "full")}
        large_taint = []
        for p in RANKS:
          for size in SIZES:
            setup = milc_workload.setup({"p": p, "size": size})
            times = {
                name: profile_run(
                    prog, setup.args, plan, runtime=setup.runtime
                ).total_time()
                for name, plan in plans.items()
            }
            native = times["native"]
            rows.append(
                (p, size)
                + tuple(
                    f"{(times[m] / native - 1) * 100:+.1f}%"
                    for m in ("taint", "default", "full")
                )
            )
            for mode in series:
                series[mode].append(times[mode] / native)
            if size == max(SIZES):
                large_taint.append(times["taint"] / native)
        return rows, series, large_taint

    rows, series, large_taint = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    gm = {m: _geomean(v) for m, v in series.items()}
    rows.append(
        ("geo", "mean")
        + tuple(f"{(gm[m] - 1) * 100:+.1f}%" for m in ("taint", "default", "full"))
    )
    report(
        "fig4_milc_overhead",
        format_table(
            ("ranks", "size", "taint-filter", "default-filter", "full"), rows
        ),
        data={
            "geomean_overhead_ratio": gm,
            "largest_size_taint_overhead_ratio": large_taint,
        },
    )

    # Paper shapes: taint filter cheap (geometric mean 1.6% in the paper),
    # negligible on the largest problem sizes; default ~ full.
    assert gm["taint"] - 1 < 0.10
    assert all(v - 1 < 0.05 for v in large_taint)
    assert gm["full"] - 1 > 1.0
    # "default provides little to no benefit": within 15% of full.
    assert gm["default"] > 0.85 * gm["full"]
