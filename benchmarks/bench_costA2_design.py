"""Section A2 — parameter dependencies and reduced experiment designs.

Three cases from the paper:

* the schematic example: two sequenced loops (p, s additive) need only
  single-parameter sweeps (9 instead of 25 configurations for 5x5 values),
  while nesting (multiplicative) requires the full factorial;
* LULESH's ``iters``: "a single instance ... in the main loop" that is
  multiplicative with all other parameters — its dimension is collapsed;
* parameters with no performance effect are dropped outright (A1).
"""

from conftest import report

from repro.apps.synthetic import (
    build_additive_example,
    build_foo_example,
    build_multiplicative_example,
)
from repro.core.experiment_design import design_experiments
from repro.core.pipeline import PerfTaintPipeline
from repro.core.report import format_table
from repro.taint import TaintInterpreter
from repro.volume import classify_program, compute_volumes

FIVE = [2, 4, 8, 16, 32]


def _design_for(program, args, values):
    entry = program.function(program.entry)
    sources = {n: n for n in entry.params}
    taint = TaintInterpreter(program).analyze(args, sources).report
    volumes = compute_volumes(program, taint)
    deps = classify_program(volumes.inclusive, volumes.program)
    return design_experiments(values, taint, deps, volumes.program)


def test_costA2_design_reduction(benchmark, lulesh_workload):
    def run():
        additive = _design_for(
            build_additive_example(), {"p": 3, "s": 4}, {"p": FIVE, "s": FIVE}
        )
        mult = _design_for(
            build_multiplicative_example(),
            {"p": 3, "s": 4},
            {"p": FIVE, "s": FIVE},
        )
        pruned = _design_for(
            build_foo_example(), {"a": 4, "b": 5}, {"a": FIVE, "b": FIVE}
        )
        pipe = PerfTaintPipeline(workload=lulesh_workload)
        static, taint, volumes, deps, _ = pipe.analyze()
        lulesh = design_experiments(
            {"p": [8, 27, 64], "size": [5, 10, 15], "iters": [2, 4, 8]},
            taint,
            deps,
            volumes.program,
        )
        return additive, mult, pruned, lulesh

    additive, mult, pruned, lulesh = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    rows = [
        ("additive p+s (paper: 9 vs 25)", additive.naive_size, additive.size,
         additive.strategy),
        ("multiplicative p*s", mult.naive_size, mult.size, mult.strategy),
        ("irrelevant param pruned (foo)", pruned.naive_size, pruned.size,
         f"pruned: {','.join(pruned.pruned_parameters)}"),
        ("LULESH iters collapse", lulesh.naive_size, lulesh.size,
         f"collapsed: {','.join(lulesh.collapsed_parameters)}"),
    ]
    report(
        "costA2_design",
        format_table(("case", "naive", "reduced", "how"), rows),
        data={
            "additive": {"naive": additive.naive_size, "reduced": additive.size},
            "multiplicative": {"naive": mult.naive_size, "reduced": mult.size},
            "pruned": {
                "naive": pruned.naive_size,
                "reduced": pruned.size,
                "pruned_parameters": list(pruned.pruned_parameters),
            },
            "lulesh": {
                "naive": lulesh.naive_size,
                "reduced": lulesh.size,
                "collapsed_parameters": list(lulesh.collapsed_parameters),
            },
        },
    )

    # The paper's schematic: additive -> 9 experiments instead of 25.
    assert additive.size == 9 and additive.naive_size == 25
    assert mult.size == 25  # multiplicative needs the full factorial
    assert pruned.pruned_parameters == ("b",)
    assert pruned.size == 5
    assert lulesh.collapsed_parameters == ("iters",)
    assert lulesh.size == 9 and lulesh.naive_size == 27
