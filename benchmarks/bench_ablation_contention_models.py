"""Ablation — contention detection is agnostic to the contention law.

DESIGN.md substitutes the paper's physical memory system with an analytic
contention model.  The detection mechanism (section C1) only relies on
"measurements contradict taint-proven independence", so it must fire under
*any* slowdown law.  We compare the default log-quadratic law against a
first-principles bandwidth-saturation law, and confirm a no-contention
control produces no findings.
"""

from conftest import report

from repro.apps.lulesh import LuleshWorkload
from repro.core.pipeline import PerfTaintPipeline
from repro.core.report import format_table
from repro.measure import InstrumentationMode
from repro.mpisim.contention import (
    BandwidthSaturationContention,
    LogQuadraticContention,
    NoContention,
)

R_VALUES = (2, 4, 8, 12, 16)


def _findings_under(model, seed):
    workload = LuleshWorkload(parameters=("r",))
    pipe = PerfTaintPipeline(
        workload=workload, repetitions=3, seed=seed, contention=model
    )
    static, taint, volumes, deps, _ = pipe.analyze()
    plan = pipe.plan_for(InstrumentationMode.TAINT_FILTER, taint, static)
    design = [{"r": r, "p": 64, "size": 14} for r in R_VALUES]
    meas, _ = pipe.measure(design, plan)
    models = pipe.model(meas, taint, volumes, compare_black_box=True)
    return pipe.validate(meas, models, taint)


def test_ablation_contention_models(benchmark):
    results = benchmark.pedantic(
        lambda: {
            "log-quadratic": _findings_under(
                LogQuadraticContention(beta=0.06), 21
            ),
            "bandwidth-saturation": _findings_under(
                BandwidthSaturationContention(saturation_ranks=4), 22
            ),
            "none (control)": _findings_under(NoContention(), 23),
        },
        rounds=1,
        iterations=1,
    )

    rows = [
        (name, len(findings)) for name, findings in results.items()
    ]
    report(
        "ablation_contention_models",
        format_table(("contention law", "functions flagged"), rows),
        data={
            "functions_flagged": {
                name: len(findings) for name, findings in results.items()
            }
        },
    )

    assert len(results["log-quadratic"]) >= 5
    assert len(results["bandwidth-saturation"]) >= 5
    assert len(results["none (control)"]) == 0
