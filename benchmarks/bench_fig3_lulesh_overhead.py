"""Figure 3 — LULESH Score-P instrumentation overhead.

Three panels in the paper: taint-based filter (within 5.5% of native),
default Score-P filter (moderate), full program instrumentation (up to 45x
on C++ accessor-heavy code).  We sweep ranks x size and print the overhead
relative to the native (uninstrumented) run for each mode.
"""

from conftest import report

from repro.core.report import format_table
from repro.measure import (
    default_filter_plan,
    full_plan,
    none_plan,
    profile_run,
    taint_filter_plan,
)

RANKS = (8, 27, 64)
SIZES = (15, 20, 25, 30)


def _sweep(workload, plans):
    prog = workload.program()
    rows = []
    series = {}
    for p in RANKS:
        for size in SIZES:
            setup = workload.setup({"p": p, "size": size})
            times = {
                name: profile_run(
                    prog, setup.args, plan, runtime=setup.runtime
                ).total_time()
                for name, plan in plans.items()
            }
            native = times["native"]
            row = (p, size) + tuple(
                f"{(times[m] / native - 1) * 100:+.1f}%"
                for m in ("taint", "default", "full")
            )
            rows.append(row)
            for mode in ("taint", "default", "full"):
                series.setdefault(mode, []).append(times[mode] / native)
    return rows, series


def test_fig3_lulesh_overhead(benchmark, lulesh_workload, lulesh_analysis):
    static, taint, _, _, _ = lulesh_analysis
    prog = lulesh_workload.program()
    plans = {
        "native": none_plan(),
        "taint": taint_filter_plan(prog, taint, static),
        "default": default_filter_plan(prog),
        "full": full_plan(prog),
    }

    rows, series = benchmark.pedantic(
        lambda: _sweep(lulesh_workload, plans), rounds=1, iterations=1
    )
    report(
        "fig3_lulesh_overhead",
        format_table(
            ("ranks", "size", "taint-filter", "default-filter", "full"),
            rows,
        ),
        data={
            "max_overhead_ratio": {m: max(v) for m, v in series.items()},
            "min_overhead_ratio": {m: min(v) for m, v in series.items()},
        },
    )

    # Paper shapes: taint filter within a few percent everywhere; full
    # instrumentation an order of magnitude slower; default in between.
    assert max(series["taint"]) < 1.055  # "differ by at most 5.5%"
    assert min(series["full"]) > 8.0
    assert all(
        t <= d <= f
        for t, d, f in zip(series["taint"], series["default"], series["full"])
    )
