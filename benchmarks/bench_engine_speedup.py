"""Dispatch speedup of the compiled engine over the tree-walker.

The workload is deliberately hostile to every shortcut the execution
substrate has: a stateful loop nest whose body mutates an accumulator and
an array each iteration, so the O(1) loop fast path is ineligible and
both engines must genuinely execute every statement.  What remains is
pure dispatch — the cost the IR→closure compiler exists to remove.

Run with ``pytest benchmarks/bench_engine_speedup.py -s``.

Environment knobs:

* ``REPRO_BENCH_ENGINE_N`` — loop-nest extent (default 300; the nest
  executes ~4*N^2 statements).  The CI smoke job uses a tiny grid.
* ``REPRO_BENCH_MIN_SPEEDUP`` — the assertion bar (default 3.0 for a
  real grid; the CI smoke job lowers it to 1.0, i.e. "compiled must
  never be slower").
"""

from __future__ import annotations

import os
import time

from repro.interp import make_engine
from repro.ir.builder import ProgramBuilder, add, load, mod, mul, sub, var

from conftest import report


def _engine_bench_program():
    """A fastpath-ineligible stateful loop nest (accumulator + array)."""
    pb = ProgramBuilder()
    with pb.function("main", ["n"]) as f:
        f.alloc("a", var("n"))
        f.assign("acc", 0.0)
        with f.for_("i", 0, var("n")):
            with f.for_("j", 0, var("n")):
                # Bounded feedback (mod keeps magnitudes finite) so the
                # value comparison below stays exact over any extent.
                f.assign("acc", mod(add(var("acc"), mul(var("i"), var("j"))), 9973.0))
                f.assign("k", mod(add(var("i"), var("j")), var("n")))
                f.store("a", var("k"), add(load("a", var("k")), var("acc")))
                f.assign(
                    "acc",
                    mod(sub(var("acc"), load("a", mod(var("j"), var("n")))), 9973.0),
                )
        f.ret(var("acc"))
    return pb.build(entry="main")


def _time_engine(program, engine: str, n: int, rounds: int = 3):
    """Best-of-*rounds* wall time plus the run result for identity checks.

    Engine construction sits inside the timed region: the measurement
    layer builds a fresh engine per profiled run, so the compiled
    engine's one-time lowering cost is part of what production pays and
    must not be hidden from the gate.
    """
    best = float("inf")
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = make_engine(program, engine).run({"n": n})
        best = min(best, time.perf_counter() - started)
    return best, result


def test_engine_speedup():
    n = int(os.environ.get("REPRO_BENCH_ENGINE_N", "300"))
    min_speedup = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "3.0"))
    program = _engine_bench_program()

    tree_time, tree_result = _time_engine(program, "tree", n)
    compiled_time, compiled_result = _time_engine(program, "compiled", n)
    speedup = tree_time / compiled_time

    # The speedup must never come at the cost of a single diverging bit.
    assert tree_result.value == compiled_result.value
    assert tree_result.steps == compiled_result.steps
    assert tree_result.metrics.totals == compiled_result.metrics.totals
    assert (
        tree_result.metrics.loop_iterations
        == compiled_result.metrics.loop_iterations
    )

    statements = tree_result.steps
    lines = [
        f"stateful loop nest, n={n} "
        f"({statements} interpreter steps, fast path ineligible)",
        "",
        f"{'engine':>10}  {'time [s]':>9}  {'Msteps/s':>9}",
        f"{'tree':>10}  {tree_time:>9.3f}  {statements / tree_time / 1e6:>9.2f}",
        f"{'compiled':>10}  {compiled_time:>9.3f}  "
        f"{statements / compiled_time / 1e6:>9.2f}",
        "",
        f"dispatch speedup: {speedup:.2f}x (bar: {min_speedup:.1f}x)",
        "results bit-identical: yes",
    ]
    report(
        "engine_speedup",
        "\n".join(lines),
        data={
            "n": n,
            "steps": statements,
            "tree_seconds": tree_time,
            "compiled_seconds": compiled_time,
            "speedup": speedup,
            "min_speedup_bar": min_speedup,
            "results_identical": True,
        },
    )

    assert speedup >= min_speedup, (
        f"compiled engine speedup {speedup:.2f}x below the "
        f"{min_speedup:.1f}x bar (tree {tree_time:.3f}s vs "
        f"compiled {compiled_time:.3f}s at n={n})"
    )
