"""Capability-aware lease scheduling speedup on a heterogeneous fleet.

A mixed fleet — two batch-capable workers and two ``--no-batch`` scalar
fallback workers — runs the same LULESH sweep under two brokers:

* uniform — fixed ``chunk_size = ceil(N / workers)``, the pre-adaptive
  scheduling: every worker gets the same lease size, so the fleet
  finishes at the scalar stragglers' pace;
* adaptive — no fixed chunk: scalar workers are probed with one lane
  and then sized by their measured lanes/sec, batch workers get big
  tensor chunks, and straggler tails are re-leased (bounded splits).

Both runs attach real ``python -m repro worker`` subprocesses over HTTP
and must be bit-identical to the serial scalar runner.  A third, untimed
run injects a crashing and a slow worker (``REPRO_SERVICE_FAULT``) and
asserts the merge still does not move by a bit.

Run with ``pytest benchmarks/bench_sched_throughput.py -s``.

Environment knobs:

* ``REPRO_BENCH_SCHED_MIN_SPEEDUP`` — the assertion bar (default 1.5 on
  a real host; the CI smoke job lowers it to 1.0, i.e. "adaptive
  scheduling must never be slower than uniform chunking").

As in ``bench_service_throughput.py``, the speedup bar only applies
where the host has the cores to actually run the four-worker fleet; the
bit-identity assertions always apply.
"""

from __future__ import annotations

import json
import math
import os
import subprocess
import sys
import threading
import time

from repro.apps.lulesh import LuleshWorkload
from repro.interp.config import ExecConfig
from repro.measure import (
    ExperimentRunner,
    full_factorial,
    full_plan,
    measurements_to_dict,
)
from repro.measure.noise import GaussianNoise
from repro.mpisim.contention import NoContention
from repro.service import BrokerScheduler, serve

from conftest import report

WORKERS = 4
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _canonical(measurements) -> str:
    return json.dumps(measurements_to_dict(measurements), sort_keys=True)


def _spawn_fleet(url: str, specs: list[dict]) -> list[subprocess.Popen]:
    """One worker subprocess per spec: {"id", "no_batch", "fault", "slow"}."""
    procs = []
    for spec in specs:
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        if spec.get("fault"):
            env["REPRO_SERVICE_FAULT"] = spec["fault"]
        if spec.get("slow") is not None:
            env["REPRO_SERVICE_SLOW_SECONDS"] = str(spec["slow"])
        argv = [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--server",
            url,
            "--id",
            spec["id"],
            "--poll-interval",
            "0.02",
        ]
        if spec.get("no_batch"):
            argv.append("--no-batch")
        procs.append(
            subprocess.Popen(
                argv,
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
        )
    return procs


def _stop_fleet(procs: list[subprocess.Popen]) -> None:
    for proc in procs:
        proc.terminate()
    for proc in procs:
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=10)


def _mixed_fleet_specs(**extra) -> list[dict]:
    """2 batch-capable + 2 scalar-fallback workers."""
    return [
        {"id": "vec0", **extra},
        {"id": "vec1", **extra},
        {"id": "sca0", "no_batch": True, **extra},
        {"id": "sca1", "no_batch": True, **extra},
    ]


def _run_distributed(broker, workload, design, plan, kw, timeout=600.0):
    scheduler = BrokerScheduler(broker, timeout=timeout)
    started = time.perf_counter()
    measurements, _ = scheduler.run_measure(
        workload, design, plan, engine="vectorized", **kw
    )
    elapsed = time.perf_counter() - started
    return elapsed, measurements, scheduler


def test_sched_throughput(tmp_path):
    min_speedup = float(
        os.environ.get("REPRO_BENCH_SCHED_MIN_SPEEDUP", "1.5")
    )
    # fast_loops=False: each lane is ~1 s of interpreter work on the
    # scalar path, so lease sizing (not HTTP overhead) dominates.
    workload = LuleshWorkload(exec_config=ExecConfig(fast_loops=False))
    plan = full_plan(workload.program())
    design = full_factorial(
        {"p": [8.0, 27.0, 64.0, 125.0], "size": [10.0, 12.0]}
    )
    # Warm-up design: same cost profile, disjoint fingerprints — it
    # teaches the brokers realistic per-worker lanes/sec before any
    # clock runs (and absorbs worker-process start-up).
    warmup = full_factorial({"p": [343.0], "size": [10.0, 12.0]})
    kw = dict(
        noise=GaussianNoise(),
        contention=NoContention(),
        repetitions=3,
        seed=0,
    )
    uniform_chunk = math.ceil(len(design) / WORKERS)

    serial, _ = ExperimentRunner(workload=workload, plan=plan, **kw).run(
        design
    )
    reference = _canonical(serial)

    results = {}
    for mode, serve_kwargs in (
        ("uniform", {"chunk_size": uniform_chunk}),
        ("adaptive", {"target_lease_seconds": 1.0}),
    ):
        httpd = serve(
            tmp_path / f"store-{mode}",
            port=0,
            lease_ttl=120.0,
            **serve_kwargs,
        )
        threading.Thread(target=httpd.serve_forever, daemon=True).start()
        host, port = httpd.server_address[:2]
        fleet = _spawn_fleet(
            f"http://{host}:{port}", _mixed_fleet_specs()
        )
        try:
            time.sleep(1.0)
            _run_distributed(
                httpd.service.broker, workload, warmup, plan, kw
            )
            elapsed, measurements, scheduler = _run_distributed(
                httpd.service.broker, workload, design, plan, kw
            )
            assert _canonical(measurements) == reference
            assert scheduler.last_stats.executed == len(design)
            results[mode] = elapsed
        finally:
            _stop_fleet(fleet)
            httpd.shutdown()
            httpd.server_close()

    # Fault schedule (untimed): a crashing batch worker and a slow
    # scalar worker on a fresh store — recovery and straggler re-leasing
    # must not move the merge by a bit.  Runs on the fast-loops workload
    # so lease execution stays well inside the short recovery TTL.
    fault_workload = LuleshWorkload()
    fault_plan = full_plan(fault_workload.program())
    fault_serial, _ = ExperimentRunner(
        workload=fault_workload, plan=fault_plan, **kw
    ).run(design)
    httpd = serve(tmp_path / "store-faults", port=0, lease_ttl=5.0)
    threading.Thread(target=httpd.serve_forever, daemon=True).start()
    host, port = httpd.server_address[:2]
    fleet = _spawn_fleet(
        f"http://{host}:{port}",
        [
            {"id": "vec0"},
            {"id": "vec1", "fault": "crash:1"},
            {"id": "sca0", "no_batch": True, "fault": "slow:1", "slow": 0.5},
        ],
    )
    try:
        time.sleep(1.0)
        _, faulted, scheduler = _run_distributed(
            httpd.service.broker, fault_workload, design, fault_plan, kw
        )
        faults_identical = _canonical(faulted) == _canonical(fault_serial)
        assert faults_identical
        assert scheduler.last_stats.executed == len(design)
    finally:
        _stop_fleet(fleet)
        httpd.shutdown()
        httpd.server_close()

    speedup = results["uniform"] / results["adaptive"]
    lines = [
        f"LULESH sweep (fast_loops off): {len(design)} configurations, "
        f"{WORKERS}-worker fleet (2 batch + 2 --no-batch scalar)",
        f"host cores: {os.cpu_count()}",
        "",
        f"{'scheduling':>22}  {'time [s]':>9}",
        f"{f'uniform (chunk={uniform_chunk})':>22}  "
        f"{results['uniform']:>9.3f}",
        f"{'adaptive':>22}  {results['adaptive']:>9.3f}",
        "",
        f"capability-aware speedup: {speedup:.2f}x "
        f"(bar: {min_speedup:.1f}x)",
        "measurements bit-identical: yes (uniform, adaptive, and under "
        "crash+slow faults)",
    ]
    report(
        "sched_throughput",
        "\n".join(lines),
        data={
            "configurations": len(design),
            "workers": WORKERS,
            "host_cores": os.cpu_count(),
            "uniform_chunk": uniform_chunk,
            "uniform_seconds": results["uniform"],
            "adaptive_seconds": results["adaptive"],
            "speedup": speedup,
            "min_speedup_bar": min_speedup,
            "measurements_identical": True,
            "faults_identical": faults_identical,
        },
    )

    # The bar applies only where the four-worker fleet can truly overlap.
    if (os.cpu_count() or 1) >= WORKERS:
        assert speedup >= min_speedup, (
            f"expected >= {min_speedup:.1f}x speedup from "
            f"capability-aware leases, got {speedup:.2f}x "
            f"(uniform {results['uniform']:.3f}s vs "
            f"adaptive {results['adaptive']:.3f}s)"
        )
