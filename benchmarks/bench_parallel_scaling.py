"""Serial-vs-parallel scaling of the experiment execution engine.

Fans the synthetic app sweep out over worker processes and records the
speedup over the serial runner, the bit-identity of the results, and the
effect of the on-disk run cache (a second sweep performs zero profile
executions).  The paper's measurement campaigns (5x5 grids, 5
repetitions) are embarrassingly parallel across configurations; this
benchmark shows the engine exploits that without changing a single
measured bit.

Run with ``pytest benchmarks/bench_parallel_scaling.py -s``.
"""

from __future__ import annotations

import json
import os
import time

from repro.apps.synthetic import SyntheticWorkload, build_multiplicative_example
from repro.interp.config import ExecConfig
from repro.measure import (
    ParallelExperimentRunner,
    full_factorial,
    full_plan,
    measurements_to_dict,
)

from conftest import report

#: The synthetic app sweep: a 5x5 grid like the paper's designs, with the
#: interpreter's O(1) loop fast path disabled so every configuration does
#: real, size-dependent work.
PARAMETER_VALUES = {
    "p": [40.0, 60.0, 80.0, 100.0, 120.0],
    "s": [40.0, 60.0, 80.0, 100.0, 120.0],
}


def _workload() -> SyntheticWorkload:
    return SyntheticWorkload(
        builder=build_multiplicative_example,
        parameters=("p", "s"),
        name="scaling-synthetic",
        exec_config=ExecConfig(fast_loops=False),
    )


def _canonical(measurements) -> str:
    return json.dumps(measurements_to_dict(measurements), sort_keys=True)


def test_parallel_scaling(tmp_path, bench_jobs):
    job_counts = tuple(sorted({1, 2, bench_jobs}))
    workload = _workload()
    plan = full_plan(workload.program())
    design = full_factorial(PARAMETER_VALUES)

    timings: dict[int, float] = {}
    digests: dict[int, str] = {}
    for jobs in job_counts:
        runner = ParallelExperimentRunner(
            workload=workload, plan=plan, repetitions=5, seed=3, n_jobs=jobs
        )
        started = time.perf_counter()
        measurements, _ = runner.run(design)
        timings[jobs] = time.perf_counter() - started
        digests[jobs] = _canonical(measurements)
        assert runner.last_stats.executed == len(design)

    # The headline invariant: identical bits for every worker count.
    assert len(set(digests.values())) == 1

    # Cached rerun: zero profile executions the second time around.
    cache_dir = tmp_path / "run-cache"
    cold = ParallelExperimentRunner(
        workload=workload, plan=plan, repetitions=5, seed=3,
        n_jobs=job_counts[-1], cache_dir=cache_dir,
    )
    started = time.perf_counter()
    cold_measurements, _ = cold.run(design)
    cold_time = time.perf_counter() - started
    warm = ParallelExperimentRunner(
        workload=workload, plan=plan, repetitions=5, seed=3,
        n_jobs=job_counts[-1], cache_dir=cache_dir,
    )
    started = time.perf_counter()
    warm_measurements, _ = warm.run(design)
    warm_time = time.perf_counter() - started
    assert warm.last_stats.executed == 0
    assert warm.last_stats.cached == len(design)
    assert _canonical(warm_measurements) == _canonical(cold_measurements)
    assert _canonical(warm_measurements) == digests[1]

    lines = [
        f"synthetic app sweep: {len(design)} configurations x 5 repetitions",
        f"host cores: {os.cpu_count()}",
        "",
        f"{'jobs':>6}  {'time [s]':>9}  {'speedup':>8}  identical",
    ]
    for jobs in job_counts:
        lines.append(
            f"{jobs:>6}  {timings[jobs]:>9.3f}  "
            f"{timings[1] / timings[jobs]:>7.2f}x  "
            f"{'yes' if digests[jobs] == digests[1] else 'NO'}"
        )
    lines += [
        "",
        f"cache cold ({job_counts[-1]} jobs): {cold_time:.3f}s "
        f"({cold.last_stats.executed} executed)",
        f"cache warm ({job_counts[-1]} jobs): {warm_time:.3f}s "
        f"({warm.last_stats.cached} from cache, 0 executed, "
        f"{cold_time / max(warm_time, 1e-9):.0f}x faster)",
    ]
    report(
        "parallel_scaling",
        "\n".join(lines),
        data={
            "configurations": len(design),
            "host_cores": os.cpu_count(),
            "seconds_by_jobs": {str(j): timings[j] for j in job_counts},
            "speedup_at_top_jobs": timings[1] / timings[job_counts[-1]],
            "cache_cold_seconds": cold_time,
            "cache_warm_seconds": warm_time,
            "bit_identical": len(set(digests.values())) == 1,
        },
    )

    # Process-level parallelism only helps when the host has the cores;
    # the speedup bar applies where the top worker count can actually run.
    top = job_counts[-1]
    if (os.cpu_count() or 1) >= top >= 4:
        assert timings[1] / timings[top] >= 1.5, (
            f"expected >= 1.5x speedup at {top} jobs, got "
            f"{timings[1] / timings[top]:.2f}x"
        )
