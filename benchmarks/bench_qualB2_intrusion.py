"""Section B2 — instrumentation intrusion changes models qualitatively.

Paper: under full instrumentation "nearly all runtimes are almost two
orders of magnitude bigger", and CalcQForElems' model changes shape —
additive (3e-3*p^0.5 + 1e-5*size^3) under full instrumentation vs the
validated multiplicative 2.4e-8 * p^0.25 * size^3 under the taint filter.
The default Score-P filter does not instrument the function at all (false
negative).

We model CalcQForElems from measurements under both instrumentation modes
and show the filtered model keeps the multiplicative (p, size) structure
while the fully-instrumented one is distorted by per-call overhead.
"""

from conftest import report

from repro.core.pipeline import PerfTaintPipeline
from repro.core.report import format_table
from repro.measure import default_filter_plan, full_plan, taint_filter_plan

DESIGN = {"p": [27, 64, 125, 216, 343], "size": [8, 11, 14, 17, 20]}
FN = "CalcQForElems"


def test_qualB2_intrusion(benchmark, lulesh_workload):
    pipe = PerfTaintPipeline(workload=lulesh_workload, repetitions=5, seed=4)
    prog = lulesh_workload.program()

    def run():
        static, taint, volumes, deps, _ = pipe.analyze()
        design = pipe.design(DESIGN, taint, deps, volumes)
        filt_plan = taint_filter_plan(prog, taint, static)
        meas_full, prof_full = pipe.measure(design.configurations, full_plan(prog))
        meas_filt, prof_filt = pipe.measure(design.configurations, filt_plan)
        models_full = pipe.model(meas_full, taint, volumes)
        models_filt = pipe.model(meas_filt, taint, volumes)
        return taint, meas_full, meas_filt, models_full, models_filt, prof_full, prof_filt

    (taint, meas_full, meas_filt, models_full, models_filt,
     prof_full, prof_filt) = benchmark.pedantic(run, rounds=1, iterations=1)

    full_model = models_full[FN].hybrid
    filt_model = models_filt[FN].hybrid

    key = next(iter(prof_full))
    app_ratio = prof_full[key].total_time() / prof_filt[key].total_time()

    rows = [
        ("taint-filtered", filt_model.format(),
         "paper: 2.4e-8 * p^0.25 * size^3"),
        ("fully instrumented", full_model.format(),
         "paper: 3e-3 * p^0.5 + 1e-5 * size^3"),
    ]
    lines = [
        format_table(("mode", f"model of {FN}", "paper analogue"), rows),
        "",
        f"whole-app time ratio full/filtered at {key}: {app_ratio:.1f}x",
        f"default filter instruments {FN}: "
        f"{default_filter_plan(prog).is_instrumented(FN)} (paper: False)",
    ]
    report(
        "qualB2_intrusion",
        "\n".join(lines),
        data={
            "app_time_ratio_full_over_filtered": app_ratio,
            "filtered_model": filt_model.format(),
            "full_model": full_model.format(),
        },
    )

    # The filtered model keeps a multiplicative (p, size) product term.
    assert any(len(t.uses()) == 2 for t in filt_model.terms), filt_model
    # Full instrumentation inflates the application substantially.
    assert app_ratio > 5
    # ...and distorts the measured times of the kernel itself: measured
    # magnitudes differ by a large factor at the same configuration.
    cfg = next(iter(meas_full.data[FN]))
    import numpy as np

    t_full = np.mean(meas_full.repetitions(FN, cfg))
    t_filt = np.mean(meas_filt.repetitions(FN, cfg))
    assert t_full > 2 * t_filt
    # The two models disagree qualitatively: their prediction ratio drifts
    # across the domain instead of being a constant offset.
    r_small = full_model.predict_one(
        {"p": 27, "size": 8}
    ) / filt_model.predict_one({"p": 27, "size": 8})
    r_large = full_model.predict_one(
        {"p": 343, "size": 20}
    ) / filt_model.predict_one({"p": 343, "size": 20})
    assert abs(r_large - r_small) / max(r_small, r_large) > 0.15
    # Default filter misses the kernel entirely (false negative).
    assert not default_filter_plan(prog).is_instrumented(FN)
