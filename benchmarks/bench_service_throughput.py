"""Distributed campaign-service sweep speedup over the serial runner.

The campaign service spreads a measure-stage design over worker
*processes* behind the lease broker — this benchmark measures what that
buys end to end.  It starts the real stdlib HTTP campaign server on an
ephemeral port, attaches four ``python -m repro worker`` subprocesses
(started and polling before any clock runs), and times the same LULESH
sweep twice:

* serial — ``ExperimentRunner.run(design)`` in this process;
* distributed — ``BrokerScheduler.run_measure(...)`` through the
  broker, every byte crossing a real socket.

The sweep uses ``ExecConfig(fast_loops=False)`` so each configuration
carries real interpreter work (~1 s) rather than being dominated by
lease/HTTP overhead — the regime the service exists for.

Beyond the speedup the benchmark asserts the service's two core
guarantees: the distributed ``Measurements`` are *bit-identical* to the
serial runner's, and a second distributed submission of the same sweep
is served entirely from the shared run store (zero executions).

Run with ``pytest benchmarks/bench_service_throughput.py -s``.

Environment knobs:

* ``REPRO_BENCH_SERVICE_MIN_SPEEDUP`` — the assertion bar (default 2.0
  with four local workers; the CI smoke job lowers it to 1.0, i.e.
  "distributing must never be slower than staying serial").

As in ``bench_parallel_scaling.py``, the speedup bar only applies where
the host actually has the cores to run four workers — on smaller hosts
the benchmark reports the (lack of) speedup without asserting on it;
the bit-identity and zero-execution-resume assertions always apply.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time

from repro.apps.lulesh import LuleshWorkload
from repro.interp.config import ExecConfig
from repro.measure import (
    ExperimentRunner,
    full_factorial,
    full_plan,
    measurements_to_dict,
    profile_to_dict,
)
from repro.measure.noise import GaussianNoise
from repro.mpisim.contention import NoContention
from repro.service import BrokerScheduler, serve

from conftest import report

WORKERS = 4
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _canonical(measurements) -> str:
    return json.dumps(measurements_to_dict(measurements), sort_keys=True)


def _spawn_workers(url: str, n: int) -> list[subprocess.Popen]:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return [
        subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "worker",
                "--server",
                url,
                "--id",
                f"bench{i}",
                "--poll-interval",
                "0.02",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        for i in range(n)
    ]


def test_service_throughput(tmp_path):
    min_speedup = float(
        os.environ.get("REPRO_BENCH_SERVICE_MIN_SPEEDUP", "2.0")
    )
    # fast_loops=False makes each configuration ~1 s of real interpreter
    # work, so the comparison measures distribution, not lease overhead.
    workload = LuleshWorkload(exec_config=ExecConfig(fast_loops=False))
    plan = full_plan(workload.program())
    design = full_factorial(
        {"p": [8.0, 27.0, 64.0], "size": [10.0, 12.0, 14.0]}
    )
    noise = GaussianNoise()
    contention = NoContention()
    repetitions = 3

    httpd = serve(tmp_path / "store", port=0, lease_ttl=120.0, chunk_size=1)
    threading.Thread(target=httpd.serve_forever, daemon=True).start()
    host, port = httpd.server_address[:2]
    url = f"http://{host}:{port}"
    workers = _spawn_workers(url, WORKERS)
    try:
        # Let every worker come up and start polling, then push one
        # cheap warm-up job through the fleet before any clock runs —
        # the benchmark times steady-state throughput, not Python
        # start-up or first-lease code paths.
        time.sleep(1.0)
        BrokerScheduler(httpd.service.broker).run_measure(
            workload,
            full_factorial({"p": [8.0, 27.0, 64.0, 125.0], "size": [4.0]}),
            plan,
            noise=noise,
            contention=contention,
            repetitions=repetitions,
            seed=0,
            engine="compiled",
        )

        started = time.perf_counter()
        m_serial, p_serial = ExperimentRunner(
            workload=workload,
            plan=plan,
            noise=noise,
            contention=contention,
            repetitions=repetitions,
            seed=0,
        ).run(design)
        serial_time = time.perf_counter() - started

        scheduler = BrokerScheduler(httpd.service.broker)
        started = time.perf_counter()
        m_dist, p_dist = scheduler.run_measure(
            workload,
            design,
            plan,
            noise=noise,
            contention=contention,
            repetitions=repetitions,
            seed=0,
            engine="compiled",
        )
        distributed_time = time.perf_counter() - started
        speedup = serial_time / distributed_time
        executed = scheduler.last_stats.executed

        # Distribution must not move a single bit: same samples, same
        # per-configuration profiles, regardless of which worker ran
        # which lease.
        identical = _canonical(m_serial) == _canonical(m_dist)
        assert identical
        assert set(p_serial) == set(p_dist)
        for key in p_serial:
            assert profile_to_dict(p_serial[key]) == profile_to_dict(
                p_dist[key]
            )
        assert executed == len(design)

        # The shared run store makes repeats free fleet-wide: a second
        # identical submission executes nothing.
        warm = BrokerScheduler(httpd.service.broker)
        started = time.perf_counter()
        m_warm, _ = warm.run_measure(
            workload,
            design,
            plan,
            noise=noise,
            contention=contention,
            repetitions=repetitions,
            seed=0,
            engine="compiled",
        )
        warm_time = time.perf_counter() - started
        assert warm.last_stats.executed == 0
        assert warm.last_stats.cached == len(design)
        assert _canonical(m_warm) == _canonical(m_serial)
    finally:
        for proc in workers:
            proc.terminate()
        for proc in workers:
            proc.wait(timeout=10)
        httpd.shutdown()
        httpd.server_close()

    lines = [
        f"LULESH sweep (fast_loops off): {len(design)} configurations x "
        f"{repetitions} repetitions, {WORKERS} worker processes",
        f"host cores: {os.cpu_count()}",
        "",
        f"{'mode':>22}  {'time [s]':>9}",
        f"{'serial':>22}  {serial_time:>9.3f}",
        f"{f'distributed ({WORKERS}w)':>22}  {distributed_time:>9.3f}",
        f"{'distributed (warm)':>22}  {warm_time:>9.3f}",
        "",
        f"service speedup: {speedup:.2f}x (bar: {min_speedup:.1f}x)",
        "measurements bit-identical: yes",
        "second submission executed: 0 (all from shared store)",
    ]
    report(
        "service",
        "\n".join(lines),
        data={
            "configurations": len(design),
            "repetitions": repetitions,
            "workers": WORKERS,
            "host_cores": os.cpu_count(),
            "serial_seconds": serial_time,
            "distributed_seconds": distributed_time,
            "warm_seconds": warm_time,
            "speedup": speedup,
            "min_speedup_bar": min_speedup,
            "measurements_identical": identical,
            "warm_executed": 0,
        },
    )

    # Worker processes only overlap when the host has the cores; the
    # speedup bar applies where the four-worker fleet can actually run.
    if (os.cpu_count() or 1) >= WORKERS:
        assert speedup >= min_speedup, (
            f"expected >= {min_speedup:.1f}x speedup with {WORKERS} "
            f"workers, got {speedup:.2f}x"
        )
