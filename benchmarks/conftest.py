"""Shared benchmark fixtures and reporting helpers.

Every benchmark regenerates one table or figure of the paper and prints the
corresponding rows/series (run with ``pytest benchmarks/ --benchmark-only
-s`` to see them).  Results are persisted twice under ``benchmarks/out/``:
a human-readable ``<name>.txt`` and a machine-readable
``BENCH_<name>.json`` carrying the benchmark's key metrics, so the repo's
performance trajectory can be tracked run over run (compare the JSON
files across commits or feed them to a dashboard).

Benchmarks opt into the parallel execution engine through the
``bench_jobs`` fixture (``REPRO_BENCH_JOBS`` overrides the top worker
count used by ``bench_parallel_scaling.py``).
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.apps.lulesh import LuleshWorkload
from repro.apps.milc import MilcWorkload
from repro.core.pipeline import PerfTaintPipeline

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def bench_jobs() -> int:
    """Top worker count for parallel benchmarks (env: REPRO_BENCH_JOBS).

    Defaults to 4 — matching the paper-style "speedup at 4 jobs" figure
    — even on smaller hosts, where the benchmark reports the (lack of)
    speedup without asserting on it.
    """
    value = os.environ.get("REPRO_BENCH_JOBS")
    if value:
        return max(1, int(value))
    return 4


def report(name: str, text: str, data: "dict | None" = None) -> None:
    """Print a result block and persist it under benchmarks/out/.

    *text* is the human-readable table/series; *data* is the benchmark's
    machine-readable metrics, written to ``BENCH_<name>.json`` (always
    emitted — an empty metrics object when a benchmark passes none, so
    every ``bench_*`` run leaves a trackable artifact).
    """
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    payload = {"benchmark": name, "metrics": data or {}}
    (OUT_DIR / f"BENCH_{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n"
    )


@pytest.fixture(scope="session")
def lulesh_workload():
    return LuleshWorkload()


@pytest.fixture(scope="session")
def milc_workload():
    return MilcWorkload()


@pytest.fixture(scope="session")
def lulesh_analysis(lulesh_workload):
    """(static, taint, volumes, deps, classification) for LULESH."""
    return PerfTaintPipeline(workload=lulesh_workload).analyze()


@pytest.fixture(scope="session")
def milc_analysis(milc_workload):
    return PerfTaintPipeline(workload=milc_workload).analyze()
