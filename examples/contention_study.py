#!/usr/bin/env python
"""Detecting hardware contention with white-box knowledge (paper C1/Fig 5).

Holds p=64 and size=20 constant and sweeps the number of MPI ranks per
node.  The taint analysis proves the computational kernels cannot depend
on co-location, yet memory-bound kernels slow down measurably — the
contradiction the Perf-Taint validity check surfaces as "systemic
interference", something a black-box modeler can only misattribute.

Run:  python examples/contention_study.py
"""

import numpy as np

from repro import InstrumentationMode, LuleshWorkload, PerfTaintPipeline
from repro.measure import APP_KEY
from repro.mpisim.contention import LogQuadraticContention

R_VALUES = (2, 4, 6, 8, 12, 16, 18)


def main() -> None:
    workload = LuleshWorkload(parameters=("r",))
    pipeline = PerfTaintPipeline(
        workload=workload,
        repetitions=5,
        seed=99,
        contention=LogQuadraticContention(beta=0.06),
    )

    static, taint, volumes, deps, _ = pipeline.analyze()
    plan = pipeline.plan_for(InstrumentationMode.TAINT_FILTER, taint, static)
    design = [{"r": r, "p": 64, "size": 20} for r in R_VALUES]

    print(f"Sweeping ranks/node r in {R_VALUES} at fixed p=64, size=20 ...")
    measurements, _profiles = pipeline.measure(design, plan)
    models = pipeline.model(
        measurements, taint, volumes, compare_black_box=True
    )
    findings = pipeline.validate(measurements, models, taint)

    base = np.mean(measurements.repetitions(APP_KEY, (float(R_VALUES[0]),)))
    print()
    print("Relative application slowdown (paper: ~50% at r=18):")
    for r in R_VALUES:
        t = np.mean(measurements.repetitions(APP_KEY, (float(r),)))
        bar = "#" * int((t / base - 1) * 80)
        print(f"  r={r:>2}: {t / base:5.3f}x {bar}")

    app_model = models[APP_KEY].black_box or models[APP_KEY].hybrid
    print()
    print(f"Fitted application model: {app_model.format()}")
    print("  (paper: 2.86 * log2(r)^2 + 127 seconds)")

    print()
    print(f"Contention findings ({len(findings)} functions):")
    for finding in findings:
        print(f"  ! {finding}")

    print()
    print(
        "Interpretation: these kernels are taint-proven independent of "
        "rank placement, so the increasing models expose memory-bandwidth "
        "contention from co-located ranks — run modeling experiments at "
        "a fixed, low node saturation."
    )


if __name__ == "__main__":
    main()
