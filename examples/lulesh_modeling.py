#!/usr/bin/env python
"""Two-parameter performance modeling of the LULESH mini-app.

Reproduces the paper's main LULESH workflow (sections 6, A, B):

1. static analysis + a cheap taint run (size=5 on 8 ranks);
2. Table 2/3-style classification and parameter coverage;
3. a taint-filtered 5x5 (p, size) experiment with 5 repetitions;
4. hybrid vs black-box models for the key kernels, including the
   corrected false dependencies.

Run:  python examples/lulesh_modeling.py
"""

from repro import InstrumentationMode, LuleshWorkload, PerfTaintPipeline
from repro.core import render_table2, render_table3, table3_counts
from repro.core.hybrid import HybridModeler
from repro.measure import APP_KEY

PARAM_VALUES = {
    "p": [27, 64, 125, 216, 343],
    "size": [8, 11, 14, 17, 20],
}

SPOTLIGHT = (
    "IntegrateStressForElems",
    "CalcHourglassControlForElems",
    "CalcQForElems",
    "CalcPressureForElems",
    APP_KEY,
)


def main() -> None:
    workload = LuleshWorkload()
    pipeline = PerfTaintPipeline(workload=workload, repetitions=5, seed=42)

    print("== Analysis phase (static + taint on size=5, p=8) ==")
    result = pipeline.run(
        PARAM_VALUES,
        mode=InstrumentationMode.TAINT_FILTER,
        compare_black_box=True,
    )

    print(render_table2("LULESH", result.classification))
    print()
    counts = table3_counts(
        workload.program(),
        result.taint,
        ["p", "size", "regions", "balance", "cost", "iters"],
    )
    print(render_table3("LULESH", counts))

    print()
    print(
        f"Instrumented {len(result.plan)} of "
        f"{workload.program().function_count()} functions "
        f"({result.plan.mode.value} filter)."
    )
    print(f"Design: {result.design.strategy}, {result.design.size} configs.")

    print()
    print("== Models (hybrid | black-box) ==")
    for name in SPOTLIGHT:
        cmp = result.models.get(name)
        if cmp is None:
            continue
        label = "whole application" if name == APP_KEY else name
        print(f"  {label}:")
        print(f"    hybrid:    {cmp.hybrid.format()}")
        if cmp.black_box is not None:
            print(f"    black-box: {cmp.black_box.format()}")

    false_deps = HybridModeler.false_dependency_report(result.models)
    print()
    print(
        f"Black-box models with taint-refuted dependencies: "
        f"{len(false_deps)} (all corrected by the hybrid prior)"
    )
    for fn, params in sorted(false_deps.items())[:8]:
        print(f"  - {fn}: {sorted(params)}")

    extrapolation = {"p": 1000, "size": 45}
    app = result.models[APP_KEY].hybrid
    print()
    print(
        f"Extrapolated application time at p=1000, size=45: "
        f"{app.predict_one(extrapolation):.3e} cost units"
    )


if __name__ == "__main__":
    main()
