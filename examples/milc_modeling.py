#!/usr/bin/env python
"""MILC su3_rmd: parameter identification and design validation.

Reproduces the paper's MILC workflow: the taint analysis identifies the
performance-relevant parameters (the four lattice extents, the MD driver
counters, and the implicit ``p``) and prunes the numerical inputs
``mass``/``beta`` — "identical with the ground truth established by
experts".  It then probes the modeling sweep for qualitative behavior
changes (section C2) and finds the internal gather's algorithm switch
around p=8, advising a split experiment design.

Run:  python examples/milc_modeling.py
"""

from repro import MilcWorkload, PerfTaintPipeline
from repro.core import render_table2, render_table3, table3_counts
from repro.core.validation import detect_segmented_behavior
from repro.libdb import MPI_DATABASE

ALL_PARAMS = [
    "p", "nx", "ny", "nz", "nt",
    "steps", "niter", "warms", "trajecs", "nrestart", "mass", "beta",
]


def main() -> None:
    workload = MilcWorkload()
    pipeline = PerfTaintPipeline(workload=workload, repetitions=3, seed=7)

    print("== Analysis phase (taint on size=128, p=32) ==")
    static, taint, volumes, deps, classification = pipeline.analyze()

    print(render_table2("MILC su3_rmd", classification))
    print()
    counts = table3_counts(workload.program(), taint, ALL_PARAMS)
    print(render_table3("MILC su3_rmd", counts))

    relevant = [q for q in ALL_PARAMS if counts[q]["functions"] > 0]
    pruned = [q for q in ALL_PARAMS if counts[q]["functions"] == 0]
    print()
    print(f"Performance-relevant parameters: {', '.join(relevant)}")
    print(f"Pruned (numerical-only): {', '.join(pruned)}")

    print()
    print("== Experiment-design validation (paper C2) ==")
    sweep = [{"p": p, "size": 16} for p in (4, 8, 16, 32, 64)]
    findings = detect_segmented_behavior(
        workload.program(),
        sweep,
        workload.setup,
        workload.sources(),
        library_taint=MPI_DATABASE,
    )
    if not findings:
        print("  no qualitative behavior changes across the sweep")
    for finding in findings:
        print(
            f"  ! {finding.function} (branch {finding.branch_id}, "
            f"depends on {sorted(finding.params)}):"
        )
        print(f"      {finding.boundary()}")
        print(
            "      -> split the experiment at the boundary so each regime "
            "is modeled separately"
        )

    if taint.warnings:
        print()
        print("Taint warnings:")
        for w in taint.warnings:
            print(f"  * {w}")


if __name__ == "__main__":
    main()
