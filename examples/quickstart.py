#!/usr/bin/env python
"""Quickstart: tainted performance modeling of a small program.

Builds the paper's running example (section A1)::

    int foo(int a, int b, int &result) {
        for (int i = 0; i < a; ++i) result += b * i;
    }

marks both inputs as potential performance parameters, and walks the whole
Perf-Taint pipeline: the taint analysis proves only ``a`` can affect the
loop, the experiment design drops ``b``, and the hybrid modeler produces a
clean single-parameter model while the black-box baseline happily fits
noise to ``b``.

Run:  python examples/quickstart.py
"""

from repro import InstrumentationMode, PerfTaintPipeline, SyntheticWorkload
from repro.apps.synthetic import build_foo_example
from repro.core import render_summary


def main() -> None:
    workload = SyntheticWorkload(
        builder=build_foo_example,
        parameters=("a", "b"),
        defaults={"a": 4, "b": 4},
        name="foo",
    )
    pipeline = PerfTaintPipeline(workload=workload, repetitions=5, seed=1)

    result = pipeline.run(
        {"a": [4, 8, 16, 32, 64], "b": [4, 8, 16, 32, 64]},
        mode=InstrumentationMode.TAINT_FILTER,
        compare_black_box=True,
    )

    print(render_summary("foo example (paper A1)", result))
    print()
    print("What the taint analysis decided:")
    print(f"  parameters kept:    {result.design.kept_parameters}")
    print(f"  parameters pruned:  {result.design.pruned_parameters}")
    print(
        f"  experiments run:    {result.design.size} "
        f"(naive design: {result.design.naive_size})"
    )
    foo = result.models["foo"]
    print()
    print(f"  hybrid model of foo:    {foo.hybrid.format()}")
    if foo.black_box is not None:
        print(f"  black-box model of foo: {foo.black_box.format()}")
    print()
    print(
        "  prediction at a=256:",
        f"{foo.hybrid.predict_one({'a': 256, 'b': 4}):.0f} cost units",
    )


if __name__ == "__main__":
    main()
