"""Vectorized execution engine: one tensor pass over a batch of lanes.

The measurement layer executes the same program once per (configuration,
repetition).  This engine lowers a finalized program into closures that
operate on a leading **batch axis**: every frame slot holds either a
*uniform* Python scalar (identical in all lanes, exact Python semantics
preserved) or a ``(B,)`` float64 vector with one value per lane, and
every statement executes once per batch instead of once per lane —
following the batched-evaluation architecture of CGP++ / ``cgp-vec``
(whole-population tensor phenotype passes) cited in PAPERS.md.

Bit-identity contract
---------------------

Per lane, results are **bit-identical** to the tree-walking and compiled
engines: same ``RunResult`` (value, steps, totals, per-function metrics,
loop iterations), same listener event stream, same errors.  The engine
earns this with three mechanisms:

* **Eligibility classification** (per function): straight-line
  arithmetic, ``If`` branches, counted ``For`` loops (including the
  shared O(1) fast-path plans), intrinsics and calls vectorize; a
  function containing ``While``, ``Break``/``Continue``, or a ``Return``
  below the top statement level is value-dependent control flow and is
  not vectorizable.
* **Exactness guards** on every vector operation: lanes hold float64,
  so any intermediate whose magnitude reaches 2**53 (where Python-int
  exactness and float64 diverge), any non-finite result, any zero
  divisor, and any other hazard triggers a fallback instead of a
  silently different bit.
* **Whole-batch fallback**: on any hazard — including a lane that would
  raise — the partially executed batch is discarded and every lane is
  re-run on the compiled engine (:class:`VectorFallback` carries the
  reason).  The fallback is the semantics; the tensor pass is only an
  optimization.

Divergent control flow *within* eligible functions is executed SIMT
style: a non-uniform ``If`` splits the active lane set and runs both
bodies on disjoint index sets; a ``For`` whose trip count differs by
lane iterates on a shrinking active set.  Each lane still observes its
own events in its own program order, so per-lane streams replay exactly.
"""

from __future__ import annotations

import math

import numpy as np

from ..ir.expr import BinOp, Call, Const, Expr, Intrinsic, Load, UnOp, Var
from ..ir.stmt import (
    Assign,
    Break,
    Continue,
    ExprStmt,
    For,
    If,
    Return,
    Stmt,
    Store,
    While,
)
from .config import DEFAULT_CONFIG, ExecConfig
from .events import CostKind, NullListener
from .fastpath import FastPathPlanner, LoopPlan, _pure_arith
from .metrics import FunctionMetrics, MetricsCollector, RunResult
from .runtime import LibraryRuntime, NoLibraryRuntime
from .semantics import (
    ALLOC_COST_PER_ELEMENT,
    BINOP_FUNCS,
    MATH_INTRINSICS,
    resolve_entry_args,
)
from .values import Array, truthy

#: Largest magnitude at which every integer is exactly representable in
#: float64.  Any vector value at or beyond this may diverge from the
#: scalar engines' exact Python-int arithmetic, so it forces a fallback.
_EXACT = float(2**53)

_UNDEF = object()


class VectorFallback(Exception):
    """The batch cannot be (or can no longer be) executed vectorized.

    Raised internally on any hazard; :meth:`VectorizedEngine.run_batch`
    converts it into a per-lane rerun on the compiled engine unless the
    caller supplied listeners the engine cannot replicate per lane
    (``vector_listeners``), in which case it propagates for the caller
    to fall back itself.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


def _bail(reason: str):
    raise VectorFallback(reason)


def _is_vec(value) -> bool:
    return type(value) is np.ndarray


class BatchedArray:
    """The batched sibling of :class:`~repro.interp.values.Array`.

    One ``(B, n)`` float64 matrix; row *l* is lane *l*'s array.  Like
    ``Array``, it has reference (aliasing) semantics: two frame slots
    holding the same ``BatchedArray`` see each other's stores, exactly
    as the scalar engines share one ``Array`` object.
    """

    __slots__ = ("data",)

    def __init__(self, batch: int, size: int) -> None:
        self.data = np.zeros((batch, size), dtype=np.float64)

    def lane(self, lane: int) -> Array:
        arr = Array(self.data.shape[1])
        arr.data = [float(v) for v in self.data[lane]]
        return arr


class PartialCell:
    """A frame slot assigned under a divergent branch: defined only on
    the lanes of ``mask``.  Reading it on any undefined lane falls back
    (the scalar engine would raise ``undefined_variable`` there)."""

    __slots__ = ("vec", "mask")

    def __init__(self, vec: np.ndarray, mask: np.ndarray) -> None:
        self.vec = vec
        self.mask = mask


class _UniformOverlay:
    """A frame slot partially written with a *uniform* value.

    ``value`` holds the exact Python object for the lanes of ``idx``
    (an index-array object, compared by identity); ``backing`` is the
    previous slot content for every other lane.  Reads under the same
    lane-set object return the exact Python value — so a divergent
    loop whose variable and body temporaries stay uniform never
    materializes per-iteration vectors — and any other access flushes
    into the copy-on-write vector form first.
    """

    __slots__ = ("value", "idx", "backing")

    def __init__(self, value, idx, backing) -> None:
        self.value = value
        self.idx = idx
        self.backing = backing


class _Frame:
    """One call frame: name -> value plus the lane set it was created
    under (writes covering all frame lanes fully define a slot)."""

    __slots__ = ("vars", "lanes")

    def __init__(self, vars: dict, lanes) -> None:
        self.vars = vars
        self.lanes = lanes


def _uniform_float(value) -> float:
    """Exact float64 image of a uniform scalar (fallback if inexact)."""
    if type(value) is float:
        return value
    out = float(value)  # TypeError (Array/None) propagates -> fallback
    if abs(out) >= _EXACT or out != value:
        _bail("uniform value not exactly representable in float64")
    return out


def _plan_val(value):
    """A fast-path plan operand: compressed vector or exact uniform.

    ``TypeError``/``ValueError`` from the conversion propagate — the
    caller maps them to plan-invalid lanes exactly like the scalar
    planner's ``float()`` conversion failure.
    """
    return value if _is_vec(value) else _uniform_float(value)


# ----------------------------------------------------------------------
# batched event sinks
#
# Sinks receive (…, idx) where idx is None (all lanes) or a sorted int64
# index array.  Amounts/counts are Python scalars (uniform) or arrays
# *compressed to the idx lane set* (full ``(B,)`` when idx is None).
# The engine guarantees the per-lane subsequence of sink calls equals
# the scalar engine's event order for that lane.


class BatchedMetrics:
    """Batched sibling of :class:`~repro.interp.metrics.MetricsCollector`.

    Same attribution rules (innermost stack frame, aggregate calls)
    with all accumulators carrying a batch axis; :meth:`lane` slices one
    lane back out as a plain :class:`MetricsCollector`.
    """

    def __init__(self, batch: int) -> None:
        self.batch = batch
        self.totals = {kind: np.zeros(batch) for kind in CostKind}
        # name -> [calls (B,)int64, compute, memory, comm]
        self.functions: dict[str, list[np.ndarray]] = {}
        self.loop_iterations: dict[tuple[str, int], np.ndarray] = {}
        self._stack: list[str] = []

    def _fn(self, name: str) -> list[np.ndarray]:
        entry = self.functions.get(name)
        if entry is None:
            entry = [
                np.zeros(self.batch, dtype=np.int64),
                np.zeros(self.batch),
                np.zeros(self.batch),
                np.zeros(self.batch),
            ]
            self.functions[name] = entry
        return entry

    @staticmethod
    def _add(target: np.ndarray, amount, idx) -> None:
        if idx is None:
            target += amount
        else:
            target[idx] += amount  # amount: scalar or compressed to idx

    def on_enter(self, function: str, idx) -> None:
        self._stack.append(function)
        self._add(self._fn(function)[0], 1, idx)

    def on_exit(self, function: str, idx) -> None:
        if self._stack and self._stack[-1] == function:
            self._stack.pop()

    def on_cost(self, kind: CostKind, amount, idx) -> None:
        self._add(self.totals[kind], amount, idx)
        if self._stack:
            entry = self._fn(self._stack[-1])
            if kind is CostKind.COMPUTE:
                self._add(entry[1], amount, idx)
            elif kind is CostKind.MEMORY:
                self._add(entry[2], amount, idx)
            else:
                self._add(entry[3], amount, idx)

    def on_loop_iterations(self, function, loop_id, count, idx) -> None:
        key = (function, loop_id)
        target = self.loop_iterations.get(key)
        if target is None:
            target = self.loop_iterations[key] = np.zeros(
                self.batch, dtype=np.int64
            )
        self._add(target, count, idx)

    def on_aggregate_calls(self, callee, count, unit_compute, unit_memory, idx):
        entry = self._fn(callee)
        self._add(entry[0], count, idx)
        if _is_vec(count):
            self._add(entry[1], count * unit_compute, idx)
            self._add(entry[2], count * unit_memory, idx)
            self._add(self.totals[CostKind.COMPUTE], count * unit_compute, idx)
            self._add(self.totals[CostKind.MEMORY], count * unit_memory, idx)
        else:
            self._add(entry[1], count * unit_compute, idx)
            self._add(entry[2], count * unit_memory, idx)
            self._add(self.totals[CostKind.COMPUTE], count * unit_compute, idx)
            self._add(self.totals[CostKind.MEMORY], count * unit_memory, idx)

    def lane(self, lane: int) -> MetricsCollector:
        """Lane *lane*'s metrics as a plain scalar collector."""
        out = MetricsCollector()
        for kind in CostKind:
            out.totals[kind] = float(self.totals[kind][lane])
        for name, (calls, compute, memory, comm) in self.functions.items():
            if calls[lane] > 0:
                fm = FunctionMetrics(
                    calls=int(calls[lane]),
                    compute=float(compute[lane]),
                    memory=float(memory[lane]),
                    comm=float(comm[lane]),
                )
                out.functions[name] = fm
        for key, counts in self.loop_iterations.items():
            if counts[lane] > 0:
                out.loop_iterations[key] = int(counts[lane])
        return out


class EventRecorder:
    """Buffers the batched event stream for exact per-lane replay.

    Events are delivered to the real per-lane listeners only after the
    whole batch succeeds (on fallback the buffer is discarded and the
    compiled rerun drives the listeners directly), so listeners never
    observe a partially executed vector attempt.
    """

    def __init__(self, batch: int) -> None:
        self.batch = batch
        self.events: list[tuple] = []

    def on_enter(self, function, idx) -> None:
        self.events.append(("enter", idx, function))

    def on_exit(self, function, idx) -> None:
        self.events.append(("exit", idx, function))

    def on_cost(self, kind, amount, idx) -> None:
        self.events.append(("cost", idx, kind, amount))

    def on_loop_iterations(self, function, loop_id, count, idx) -> None:
        self.events.append(("iters", idx, function, loop_id, count))

    def on_aggregate_calls(self, callee, count, uc, um, idx) -> None:
        self.events.append(("agg", idx, callee, count, uc, um))

    def replay(self, lane: int, listener) -> None:
        """Deliver lane *lane*'s event subsequence to *listener*.

        Lane sets are sorted index arrays, so the lane's compressed
        position (for vector amounts) is a binary search away.
        """
        for event in self.events:
            idx = event[1]
            if idx is None:
                pos = lane
            else:
                k = int(np.searchsorted(idx, lane))
                if k >= len(idx) or idx[k] != lane:
                    continue
                pos = k
            kind = event[0]
            if kind == "cost":
                amount = event[3]
                listener.on_cost(
                    event[2],
                    float(amount[pos]) if _is_vec(amount) else amount,
                )
            elif kind == "enter":
                listener.on_enter(event[2])
            elif kind == "exit":
                listener.on_exit(event[2])
            elif kind == "iters":
                count = event[4]
                listener.on_loop_iterations(
                    event[2],
                    event[3],
                    int(count[pos]) if _is_vec(count) else count,
                )
            else:
                count = event[3]
                listener.on_aggregate_calls(
                    event[2],
                    int(count[pos]) if _is_vec(count) else count,
                    event[4],
                    event[5],
                )


# ----------------------------------------------------------------------
# eligibility classification


def classify_function(fn) -> bool:
    """True when *fn* is batch-eligible (see module docstring).

    ``While`` loops and ``Break``/``Continue`` make control flow
    value-dependent per lane; a ``Return`` below the top statement level
    would require per-lane flow masks.  Everything else — straight-line
    arithmetic, ``If``, counted ``For`` nests, intrinsics, calls — maps
    onto the batch axis.
    """
    for top in fn.body:
        for stmt in top.walk():
            if isinstance(stmt, (While, Break, Continue)):
                return False
            if isinstance(stmt, Return) and stmt is not top:
                return False
    return True


# ----------------------------------------------------------------------
# lowering: IR -> closures over (frame, idx)
#
# Every closure takes ``(frame, idx)``: *frame* is the current
# :class:`_Frame`, *idx* the active lane set (None = all lanes).
# Expression closures return uniform scalars, vectors **compressed to
# the active lane set** (length ``len(idx)``; full ``(B,)`` when idx is
# None), :class:`BatchedArray`, or None; statement closures return None.
# Frame slots always hold *full-width* values — reads gather, writes
# scatter — so divergent sub-contexts compute on dense arrays with no
# per-op fancy indexing.
# Uniform × uniform operations run in plain Python (exact scalar
# semantics, including big-int arithmetic); anything touching a vector
# goes through the engine's guarded numpy kernels.


class _PlanAcc:
    """Per-lane accumulators for the vectorized fast-path mirror
    (compressed to the context's lane count ``n``)."""

    __slots__ = ("compute", "memory", "iters", "calls")

    def __init__(self, n: int) -> None:
        self.compute = np.zeros(n)
        self.memory = np.zeros(n)
        self.iters: dict[tuple[str, int], np.ndarray] = {}
        self.calls: dict[str, list] = {}  # callee -> [counts (n,), LeafCost]


def _collect_plan_exprs(plan: LoopPlan, out: list) -> None:
    out.extend((plan.loop.start, plan.loop.stop, plan.loop.step))
    out.extend(arg for _, arg in plan.intrinsics)
    for sub in plan.nested:
        _collect_plan_exprs(sub, out)


class _VecFunction:
    """One program function lowered for batched execution."""

    __slots__ = ("name", "params", "vectorizable", "engine", "_top")

    def __init__(self, engine: "VectorizedEngine", fn) -> None:
        self.name = fn.name
        self.params = tuple(fn.params)
        self.vectorizable = classify_function(fn)
        self.engine = engine
        self._top = None  # compiled lazily on first call

    def call(self, args: list, idx):
        engine = self.engine
        if not self.vectorizable:
            _bail(f"function {self.name!r} has value-dependent control flow")
        if len(args) != len(self.params):
            _bail(f"arity mismatch calling {self.name!r}")
        if engine._depth >= engine.config.max_call_depth:
            _bail("call depth limit")
        if self._top is None:
            self._top = _VecCompiler(engine, engine.program.function(self.name)).compile_top()
        if idx is None:
            slots = dict(zip(self.params, args))
        else:  # frame slots are full-width; widen compressed vector args
            slots = {
                p: engine._widen(a, idx) for p, a in zip(self.params, args)
            }
        frame = _Frame(slots, idx)
        engine._depth += 1
        engine._enter(self.name, idx)
        try:
            ret = None
            for closure, is_return in self._top:
                if is_return:
                    ret = closure(frame, idx)
                    break
                closure(frame, idx)
            return ret
        finally:
            engine._exit(self.name, idx)
            engine._depth -= 1


class _VecCompiler:
    """Lowers one function body to batched closures (mirrors the scalar
    closure compiler in :mod:`.compile` statement for statement)."""

    def __init__(self, engine: "VectorizedEngine", fn) -> None:
        self.engine = engine
        self.fn = fn
        self.fn_name = fn.name

    def compile_top(self):
        """Top-level body as (closure, is_return) pairs."""
        out = []
        for stmt in self.fn.body:
            if isinstance(stmt, Return):
                value = (
                    self._compile_expr(stmt.value)
                    if stmt.value is not None
                    else None
                )
                engine = self.engine

                def ret(frame, idx, _value=value):
                    engine._step(idx)
                    return _value(frame, idx) if _value is not None else None

                out.append((ret, True))
                break  # statements after a top-level return are dead
            out.append((self._compile_stmt(stmt), False))
        return tuple(out)

    # -- statements ----------------------------------------------------

    def _compile_block(self, body):
        closures = tuple(self._compile_stmt(s) for s in body)

        def block(frame, idx):
            for closure in closures:
                closure(frame, idx)

        return block

    def _compile_stmt(self, stmt: Stmt):
        engine = self.engine
        if isinstance(stmt, Assign):
            value = self._compile_expr(stmt.value)
            name = stmt.name

            def assign(frame, idx):
                engine._step(idx)
                engine._charge_stmt(idx)
                engine._assign(frame, name, value(frame, idx), idx)

            return assign
        if isinstance(stmt, ExprStmt):
            value = self._compile_expr(stmt.expr)

            def expr_stmt(frame, idx):
                engine._step(idx)
                engine._charge_stmt(idx)
                value(frame, idx)

            return expr_stmt
        if isinstance(stmt, Store):
            index = self._compile_expr(stmt.index)
            value = self._compile_expr(stmt.value)
            name = stmt.array

            def store(frame, idx):
                engine._step(idx)
                engine._charge_stmt(idx)
                arr = frame.vars.get(name, _UNDEF)
                if not isinstance(arr, BatchedArray):
                    _bail(f"store into non-batched array {name!r}")
                iv = index(frame, idx)
                vv = value(frame, idx)
                data = arr.data
                ncols = data.shape[1]
                vals = vv if _is_vec(vv) else _uniform_float(vv)
                if not _is_vec(iv):
                    col = int(iv)  # TypeError/ValueError -> fallback
                    if not 0 <= col < ncols:
                        _bail("store index out of bounds")
                    if idx is None:
                        data[:, col] = vals
                    else:
                        data[idx, col] = vals
                    return
                cols = iv.astype(np.int64)
                if cols.min() < 0 or cols.max() >= ncols:
                    _bail("store index out of bounds")
                base = idx if idx is not None else engine._all
                data[base, cols] = vals

            return store
        if isinstance(stmt, If):
            cond = self._compile_expr(stmt.cond)
            then_block = self._compile_block(stmt.then_body)
            else_block = (
                self._compile_block(stmt.else_body)
                if stmt.else_body
                else None
            )

            def run_if(frame, idx):
                engine._step(idx)
                c = cond(frame, idx)
                if not _is_vec(c):
                    # truthy() mirrors scalar condition semantics exactly
                    # (raises on Array/None -> broad catch -> fallback).
                    if truthy(c):
                        then_block(frame, idx)
                    elif else_block is not None:
                        else_block(frame, idx)
                    return
                mask = c != 0
                if mask.all():
                    then_block(frame, idx)
                elif not mask.any():
                    if else_block is not None:
                        else_block(frame, idx)
                else:
                    base = idx if idx is not None else engine._all
                    then_block(frame, base[mask])
                    if else_block is not None:
                        else_block(frame, base[~mask])

            return run_if
        if isinstance(stmt, For):
            return self._compile_for(stmt)
        # While / Break / Continue / nested Return never compile: the
        # classifier rejects functions containing them and the caller
        # bails before reaching this body.  Defensive fallback anyway.

        def unsupported(frame, idx):
            _bail(f"unsupported statement {type(stmt).__name__}")

        return unsupported

    def _compile_for(self, stmt: For):
        engine = self.engine
        fn_name = self.fn_name
        var = stmt.var
        loop_id = stmt.loop_id
        start_c = self._compile_expr(stmt.start)
        stop_c = self._compile_expr(stmt.stop)
        step_c = self._compile_expr(stmt.step)
        body = self._compile_block(stmt.body)
        iter_cost = engine.config.loop_iter_cost
        # The genuine loop can track a uniform loop variable as an exact
        # Python value (no per-iteration vectors) only when the body
        # never rebinds it.
        body_writes_var = any(
            (isinstance(s, Assign) and s.name == var)
            or (isinstance(s, For) and s.var == var)
            for top in stmt.body
            for s in top.walk()
        )
        # Same gate as the scalar engines: with fast loops disabled the
        # loop must run genuinely (per-iteration events), not via the
        # O(1) aggregate plan — event streams are part of bit-identity.
        plan = (
            engine._planner.plan(fn_name, stmt)
            if engine.config.fast_loops
            else None
        )
        tbl = None
        if plan is not None:
            exprs: list[Expr] = []
            _collect_plan_exprs(plan, exprs)
            tbl = {id(e): self._compile_expr(e) for e in exprs}

        def run_genuine(frame, idx):
            start = start_c(frame, idx)
            stop = stop_c(frame, idx)
            step = step_c(frame, idx)
            if not _is_vec(step):
                if not isinstance(step, (int, float)) or step <= 0:
                    _bail("bad loop step")  # scalar raises bad_loop_step
            elif (step <= 0).any():
                _bail("bad loop step")
            engine._assign(frame, var, start, idx)
            # Bounds were evaluated compressed to idx; keep full-width
            # images so a shrinking active set can regather them.
            stop_f = engine._widen(stop, idx)
            step_f = engine._widen(step, idx)
            # Uniform-variable mode: with a uniform start/step and a
            # body that never rebinds the variable, the loop variable is
            # the same exact Python number on every active lane forever.
            # Track it locally and refresh the frame overlay to the
            # current active set, so divergence transitions (lanes
            # exiting) never force the variable — and everything
            # computed from it — onto the vector path.
            uniform_var = (
                not body_writes_var
                and not _is_vec(start)
                and not _is_vec(step_f)
            )
            cur_u = start if uniform_var else None
            active = idx
            iters = np.zeros(engine._batch, dtype=np.int64)
            while True:
                var_v = cur_u if uniform_var else engine._read(
                    frame, var, active
                )
                if not _is_vec(var_v) and not _is_vec(stop_f):
                    if not (var_v < stop_f):
                        break
                    cont = active
                else:
                    base = active if active is not None else engine._all
                    vv = var_v if _is_vec(var_v) else _uniform_float(var_v)
                    sv = (
                        stop_f[base]
                        if _is_vec(stop_f)
                        else _uniform_float(stop_f)
                    )
                    mask = vv < sv
                    if not mask.any():
                        break
                    cont = active if mask.all() else base[mask]
                engine._step(cont)
                engine._charge(CostKind.COMPUTE, iter_cost, cont)
                if cont is None:
                    iters += 1
                else:
                    iters[cont] += 1
                if uniform_var:
                    if cont is not active:
                        # re-anchor the overlay to the new active set
                        engine._assign(frame, var, cur_u, cont)
                    body(frame, cont)
                    cur_u = cur_u + step_f  # exact Python arithmetic
                    engine._assign(frame, var, cur_u, cont)
                else:
                    body(frame, cont)
                    cur = engine._read(frame, var, cont)
                    if not _is_vec(cur) and not _is_vec(step_f):
                        nxt = cur + step_f  # exact Python arithmetic
                    else:
                        cbase = cont if cont is not None else engine._all
                        sp = step_f[cbase] if _is_vec(step_f) else step_f
                        nxt = engine._vec_add(cur, sp)
                    engine._assign(frame, var, nxt, cont)
                active = cont
            if iters.any():
                lanes = np.nonzero(iters)[0]
                if len(lanes) == engine._batch:
                    engine._iters(fn_name, loop_id, iters, None)
                else:
                    engine._iters(fn_name, loop_id, iters[lanes], lanes)

        def run_for(frame, idx):
            engine._step(idx)
            if plan is None:
                run_genuine(frame, idx)
                return
            outcome = engine._plan_exec(plan, tbl, frame, idx, var)
            if outcome is None:  # conversion failure: all lanes invalid
                run_genuine(frame, idx)
                return
            valid = outcome
            if valid.all():
                return
            base = idx if idx is not None else engine._all
            if not valid.any():
                run_genuine(frame, idx)
            else:
                run_genuine(frame, base[~valid])

        return run_for

    # -- expressions ---------------------------------------------------

    def _compile_expr(self, expr: Expr):
        engine = self.engine
        if isinstance(expr, Const):
            value = expr.value
            return lambda frame, idx: value
        if isinstance(expr, Var):
            name = expr.name

            def read(frame, idx):
                return engine._read(frame, name, idx)

            return read
        if isinstance(expr, BinOp):
            return self._compile_binop(expr)
        if isinstance(expr, UnOp):
            operand = self._compile_expr(expr.operand)
            if expr.op == "not":

                def not_(frame, idx):
                    v = operand(frame, idx)
                    if not _is_vec(v):
                        return not v  # exact scalar semantics
                    return (v == 0).astype(np.float64)

                return not_

            def neg(frame, idx):
                v = operand(frame, idx)
                if not _is_vec(v):
                    return -v  # TypeError on Array -> fallback
                return -v  # negation is exact; inactive lanes unread

            return neg
        if isinstance(expr, Load):
            index = self._compile_expr(expr.index)
            name = expr.array

            def load(frame, idx):
                arr = frame.vars.get(name, _UNDEF)
                if not isinstance(arr, BatchedArray):
                    _bail(f"load from non-batched array {name!r}")
                iv = index(frame, idx)
                data = arr.data
                ncols = data.shape[1]
                if not _is_vec(iv):
                    col = int(iv)  # TypeError/ValueError -> fallback
                    if not 0 <= col < ncols:
                        _bail("load index out of bounds")
                    if idx is None:
                        return data[:, col].copy()
                    return data[idx, col]
                cols = iv.astype(np.int64)
                if cols.min() < 0 or cols.max() >= ncols:
                    _bail("load index out of bounds")
                base = idx if idx is not None else engine._all
                return data[base, cols]

            return load
        if isinstance(expr, Intrinsic):
            return self._compile_intrinsic(expr)
        if isinstance(expr, Call):
            return self._compile_call(expr)
        _bail(f"cannot vectorize {type(expr).__name__}")

    def _compile_binop(self, expr: BinOp):
        engine = self.engine
        op = expr.op
        lhs = self._compile_expr(expr.lhs)
        rhs = self._compile_expr(expr.rhs)
        if op in ("and", "or"):
            is_and = op == "and"
            rhs_pure = _pure_arith(expr.rhs)

            def bool_op(frame, idx):
                left = lhs(frame, idx)
                if not _is_vec(left):
                    t = truthy(left)  # raises on Array/None -> fallback
                    if is_and:
                        return rhs(frame, idx) if t else left
                    return left if t else rhs(frame, idx)
                take_rhs = (left != 0) if is_and else (left == 0)
                if take_rhs.all():
                    return rhs(frame, idx)
                if not take_rhs.any():
                    return left
                if not rhs_pure:
                    _bail("divergent short-circuit with impure operand")
                base = idx if idx is not None else engine._all
                sub = base[take_rhs]
                right = rhs(frame, sub)
                out = left.copy()
                out[take_rhs] = (
                    right if _is_vec(right) else _uniform_float(right)
                )
                return out

            return bool_op
        pyfn = BINOP_FUNCS.get(op)
        if pyfn is None:
            _bail(f"unknown operator {op!r}")

        def binop(frame, idx):
            left = lhs(frame, idx)
            right = rhs(frame, idx)
            if not (_is_vec(left) or _is_vec(right)):
                return pyfn(left, right)  # exact Python, incl. big ints
            return engine._vec_binop(op, left, right)

        return binop

    def _compile_intrinsic(self, expr: Intrinsic):
        engine = self.engine
        name = expr.name
        arg = self._compile_expr(expr.args[0]) if expr.args else None
        if name in ("work", "mem_work"):
            kind = CostKind.COMPUTE if name == "work" else CostKind.MEMORY
            if expr.args and isinstance(expr.args[0], Const):
                const_amount = float(expr.args[0].value)
                if const_amount >= 0:

                    def work_const(frame, idx):
                        engine._charge(kind, const_amount, idx)
                        return const_amount

                    return work_const
            if arg is None:
                return lambda frame, idx: _bail("cost intrinsic without arg")

            def work(frame, idx):
                v = arg(frame, idx)
                if not _is_vec(v):
                    amount = float(v)  # TypeError -> fallback
                    if amount < 0:
                        _bail("negative work amount")  # scalar raises
                    engine._charge(kind, amount, idx)
                    return amount
                if (v < 0).any():
                    _bail("negative work amount")
                engine._charge(kind, v, idx)
                return v

            return work
        if name == "alloc":
            if arg is None:
                return lambda frame, idx: _bail("alloc without arg")

            def alloc(frame, idx):
                v = arg(frame, idx)
                if _is_vec(v):
                    _bail("per-lane alloc sizes diverge")
                n = int(v)  # TypeError/ValueError -> fallback
                if n < 0:
                    _bail("negative alloc size")
                arr = BatchedArray(engine._batch, n)
                engine._charge(
                    CostKind.MEMORY, float(n) * ALLOC_COST_PER_ELEMENT, idx
                )
                return arr

            return alloc
        if arg is None:
            return lambda frame, idx: _bail(f"intrinsic {name!r} without arg")
        if name == "log2":

            def log2(frame, idx):
                v = arg(frame, idx)
                if not _is_vec(v):
                    return MATH_INTRINSICS["log2"](v)
                # per-lane libm log2: numpy's SIMD log2 may differ from
                # math.log2 in the last ulp, which would break bit-identity
                out = np.empty(len(v))
                for k, x in enumerate(v):
                    out[k] = math.log2(x) if x > 0 else 0.0
                return out

            return log2
        if name == "sqrt":

            def sqrt(frame, idx):
                v = arg(frame, idx)
                if not _is_vec(v):
                    return math.sqrt(v)  # ValueError/TypeError -> fallback
                if (v < 0).any():
                    _bail("sqrt of negative value")
                return np.sqrt(v)

            return sqrt
        if name == "abs":

            def abs_(frame, idx):
                v = arg(frame, idx)
                if not _is_vec(v):
                    return abs(v)
                return np.abs(v)  # inactive lanes unread

            return abs_
        if name == "int":

            def int_(frame, idx):
                v = arg(frame, idx)
                if not _is_vec(v):
                    return int(v)  # exact scalar semantics
                return np.trunc(v)  # int() truncates toward zero

            return int_
        return lambda frame, idx: _bail(f"unknown intrinsic {name!r}")

    def _compile_call(self, expr: Call):
        engine = self.engine
        arg_closures = tuple(self._compile_expr(a) for a in expr.args)
        callee = expr.callee
        call_cost = engine.config.call_cost
        if callee in engine.program:

            def call_fn(frame, idx):
                args = [c(frame, idx) for c in arg_closures]
                engine._charge(CostKind.COMPUTE, call_cost, idx)
                return engine._vec_fn(callee).call(args, idx)

            return call_fn

        def call_external(frame, idx):
            args = [c(frame, idx) for c in arg_closures]
            engine._charge(CostKind.COMPUTE, call_cost, idx)
            return engine._call_library(callee, args, idx)

        return call_external



# ----------------------------------------------------------------------
# the engine


class VectorizedEngine:
    """Executes a whole batch of lanes in one tensor pass.

    Same constructor and :meth:`run` contract as the tree and compiled
    engines; :meth:`run_batch` is the batched entry point the measure
    layer uses.  Per lane, results/events/errors are bit-identical to
    the compiled engine (see module docstring for how).
    """

    def __init__(
        self,
        program,
        runtime: LibraryRuntime | None = None,
        config: ExecConfig = DEFAULT_CONFIG,
        listener=None,
    ) -> None:
        self.program = program
        self.runtime: LibraryRuntime = runtime or NoLibraryRuntime()
        self.config = config
        self.listener = listener or NullListener()
        self.metrics = MetricsCollector()
        self._planner = FastPathPlanner(program, config)
        self._fns: dict[str, _VecFunction] = {}
        # per-run state (reset by _run_vector)
        self._batch = 0
        self._all = None
        self._steps = None
        self._hi = 0
        self._depth = 0
        self._sinks: tuple = ()
        self._on_cost_hooks: tuple = ()
        self._on_enter_hooks: tuple = ()
        self._on_exit_hooks: tuple = ()
        self._on_iters_hooks: tuple = ()
        self._on_agg_hooks: tuple = ()
        self._runtimes: list = []

    # -- public API ----------------------------------------------------

    def run(self, args=(), entry: str | None = None) -> RunResult:
        """Scalar-compatible single run (a batch of width one)."""
        result = self.run_batch(
            [args], entry=entry, lane_listeners=[self.listener]
        )[0]
        self.metrics = result.metrics
        return result

    def run_batch(
        self,
        args_list,
        entry: str | None = None,
        *,
        lane_runtimes=None,
        lane_listeners=None,
        vector_listeners=None,
        collect_errors: bool = False,
        collect_metrics: bool = True,
    ):
        """Execute every lane of *args_list* and return per-lane results.

        ``lane_runtimes``/``lane_listeners`` give lane *l* its own
        library runtime / listener (default: the engine's own for every
        lane).  Listener events are buffered and replayed per lane after
        the batch succeeds.  ``vector_listeners`` instead receive the
        raw batched events (the profiler's batched listener); with
        vector listeners a fallback raises :class:`VectorFallback` for
        the caller to handle, because the engine cannot split such a
        listener per lane.  With ``collect_errors`` a lane whose scalar
        execution raises :class:`Exception` yields the exception object
        in its slot instead of aborting the whole batch.
        ``collect_metrics=False`` drops the engine's own metrics sink
        (results carry empty collectors) — for callers that consume the
        vector event stream themselves and shouldn't pay twice.
        """
        if vector_listeners and lane_listeners:
            raise ValueError(
                "lane_listeners and vector_listeners are mutually exclusive"
            )
        if not args_list:
            return []
        try:
            return self._run_vector(
                args_list, entry, lane_runtimes, lane_listeners,
                vector_listeners, collect_metrics,
            )
        except VectorFallback:
            if vector_listeners:
                raise
            return self._run_scalar(
                args_list, entry, lane_runtimes, lane_listeners,
                collect_errors,
            )

    # -- vector attempt ------------------------------------------------

    def _run_vector(
        self, args_list, entry, lane_runtimes, lane_listeners,
        vector_listeners, collect_metrics=True,
    ):
        batch = len(args_list)
        self._batch = batch
        self._all = np.arange(batch)
        self._steps = np.zeros(batch, dtype=np.int64)
        self._hi = 0
        self._depth = 0
        self._runtimes = (
            list(lane_runtimes) if lane_runtimes else [self.runtime] * batch
        )
        metrics = BatchedMetrics(batch) if collect_metrics else None
        # Record only when some lane has a real listener: exact NullListener
        # instances (the default) are event sinks that drop everything, so
        # buffering for them would tax listener-free batches for nothing.
        # The check is by exact type — listener subclasses override hooks.
        record = lane_listeners is not None and any(
            lst is not None and type(lst) is not NullListener
            for lst in lane_listeners
        )
        recorder = EventRecorder(batch) if record else None
        sinks = []
        if metrics is not None:
            sinks.append(metrics)
        if recorder is not None:
            sinks.append(recorder)
        if vector_listeners:
            sinks.extend(vector_listeners)
        self._sinks = tuple(sinks)
        # Pre-bound per-event hook lists: the emit helpers below run once
        # per vector event, so the sink-attribute lookups are hoisted.
        self._on_cost_hooks = tuple(s.on_cost for s in sinks)
        self._on_enter_hooks = tuple(s.on_enter for s in sinks)
        self._on_exit_hooks = tuple(s.on_exit for s in sinks)
        self._on_iters_hooks = tuple(s.on_loop_iterations for s in sinks)
        self._on_agg_hooks = tuple(s.on_aggregate_calls for s in sinks)
        try:
            with np.errstate(all="ignore"):
                name = None
                lane_args = []
                for args in args_list:
                    n, _fn, argvals = resolve_entry_args(
                        self.program, args, entry
                    )
                    name = n
                    lane_args.append(argvals)
                entry_args = [
                    self._batch_value([la[i] for la in lane_args])
                    for i in range(len(lane_args[0]))
                ]
                value = self._vec_fn(name).call(entry_args, None)
        except VectorFallback:
            raise
        except Exception as exc:  # any scalar-side error -> per-lane rerun
            raise VectorFallback(f"{type(exc).__name__}: {exc}") from exc
        results = []
        for lane in range(batch):
            results.append(
                RunResult(
                    value=self._lane_value(value, lane),
                    metrics=(
                        metrics.lane(lane)
                        if metrics is not None
                        else MetricsCollector()
                    ),
                    steps=int(self._steps[lane]),
                )
            )
        if recorder is not None:
            for lane, listener in enumerate(lane_listeners):
                if listener is not None and type(listener) is not NullListener:
                    recorder.replay(lane, listener)
        return results

    def _run_scalar(
        self, args_list, entry, lane_runtimes, lane_listeners, collect_errors
    ):
        from .compile import CompiledEngine

        runtimes = (
            list(lane_runtimes)
            if lane_runtimes
            else [self.runtime] * len(args_list)
        )
        out = []
        for lane, args in enumerate(args_list):
            listener = lane_listeners[lane] if lane_listeners else None
            engine = CompiledEngine(
                self.program,
                runtime=runtimes[lane],
                config=self.config,
                listener=listener,
            )
            try:
                out.append(engine.run(args, entry=entry))
            except Exception as exc:
                if not collect_errors:
                    raise
                out.append(exc)
        return out

    # -- per-lane value plumbing ---------------------------------------

    def _batch_value(self, column):
        first = column[0]
        if all(type(v) is type(first) and v == first for v in column):
            return first  # uniform: keep the exact Python object
        vec = np.empty(len(column))
        for lane, v in enumerate(column):
            vec[lane] = _uniform_float(v)  # non-numeric/inexact -> fallback
        return vec

    @staticmethod
    def _lane_value(value, lane: int):
        if _is_vec(value):
            return float(value[lane])
        if isinstance(value, BatchedArray):
            return value.lane(lane)
        if type(value) is PartialCell:
            _bail("partially defined return value")
        return value

    def _lane_arg(self, value, pos: int):
        """Library-call argument for compressed position *pos*."""
        if _is_vec(value):
            return float(value[pos])
        if isinstance(value, (BatchedArray, PartialCell)):
            _bail("array/partial value passed to library call")
        return value  # uniform: pass the exact Python object

    # -- frame access --------------------------------------------------

    def _read(self, frame: _Frame, name: str, idx):
        value = frame.vars.get(name, _UNDEF)
        if value is _UNDEF:
            _bail(f"undefined variable {name!r}")  # scalar raises
        if type(value) is _UniformOverlay:
            if idx is value.idx:
                return value.value  # exact Python object, no vector
            value = self._flush_overlay(frame, name, value)
        if type(value) is PartialCell:
            mask = value.mask if idx is None else value.mask[idx]
            if not mask.all():
                _bail(f"variable {name!r} undefined on some lanes")
            return value.vec if idx is None else value.vec[idx]
        if idx is not None and _is_vec(value):
            return value[idx]  # compress to the active lane set
        return value

    def _assign(self, frame: _Frame, name: str, value, idx) -> None:
        lanes = frame.lanes
        if idx is None:
            frame.vars[name] = value
            return
        if lanes is idx or (
            lanes is not None and len(idx) == len(lanes)
        ) or (lanes is None and len(idx) == self._batch):
            # Full-cover write: widen the compressed value to full width
            # (frame slots are always full-width).
            frame.vars[name] = self._widen(value, idx)
            return
        # Partial (divergent) write.
        old = frame.vars.get(name, _UNDEF)
        if type(old) is _UniformOverlay:
            if idx is old.idx:
                if not _is_vec(value):
                    old.value = value  # same region: overwrite in place
                    return
                old = old.backing  # same region overwritten wholesale
            else:
                old = self._flush_overlay(frame, name, old)
        if not _is_vec(value):
            # Defer vector materialization: the common case (a loop
            # variable or body temporary rewritten every iteration on
            # the same active set) never needs it.
            frame.vars[name] = _UniformOverlay(value, idx, old)
            return
        frame.vars[name] = self._vec_partial(old, value, idx, lanes, name)

    def _flush_overlay(self, frame: _Frame, name: str, cell):
        """Materialize a uniform overlay into vector form."""
        flushed = self._vec_partial(
            cell.backing,
            _uniform_float(cell.value),
            cell.idx,
            frame.lanes,
            name,
        )
        frame.vars[name] = flushed
        return flushed

    def _vec_partial(self, old, vals, idx, lanes, name: str):
        """Copy-on-write partial vector write (frame slots share vector
        objects by reference — like scalar ``Array`` refs — so mutating
        in place would leak into aliases)."""
        if type(old) is PartialCell:
            vec = old.vec.copy()
            mask = old.mask.copy()
        elif old is _UNDEF:
            vec = np.empty(self._batch)
            mask = np.zeros(self._batch, dtype=bool)
        elif _is_vec(old):
            vec = old.copy()
            mask = np.ones(self._batch, dtype=bool)
        elif isinstance(old, (bool, int, float)):
            vec = np.full(self._batch, _uniform_float(old))
            mask = np.ones(self._batch, dtype=bool)
        else:
            _bail(f"divergent write over non-numeric slot {name!r}")
        vec[idx] = vals
        mask[idx] = True
        covered = mask.all() if lanes is None else mask[lanes].all()
        return vec if covered else PartialCell(vec, mask)

    def _widen(self, value, idx):
        """Full-width image of a context-compressed value."""
        if idx is None or not _is_vec(value):
            return value
        out = np.empty(self._batch)
        out[idx] = value
        return out

    # -- metering ------------------------------------------------------

    def _step(self, idx) -> None:
        steps = self._steps
        if idx is None:
            steps += 1
        else:
            steps[idx] += 1
        self._hi += 1
        if self._hi > self.config.step_limit:
            real = int(steps.max())
            if real > self.config.step_limit:
                _bail("step limit exceeded")  # scalar raises per lane
            self._hi = real

    def _charge(self, kind, amount, idx) -> None:
        for hook in self._on_cost_hooks:
            hook(kind, amount, idx)

    def _charge_stmt(self, idx) -> None:
        for hook in self._on_cost_hooks:
            hook(CostKind.COMPUTE, self.config.stmt_cost, idx)

    def _enter(self, function: str, idx) -> None:
        for hook in self._on_enter_hooks:
            hook(function, idx)

    def _exit(self, function: str, idx) -> None:
        for hook in self._on_exit_hooks:
            hook(function, idx)

    def _iters(self, function: str, loop_id: int, count, idx) -> None:
        for hook in self._on_iters_hooks:
            hook(function, loop_id, count, idx)

    def _agg(self, callee: str, count, uc: float, um: float, idx) -> None:
        for hook in self._on_agg_hooks:
            hook(callee, count, uc, um, idx)

    # -- functions and library calls -----------------------------------

    def _vec_fn(self, name: str) -> _VecFunction:
        fn = self._fns.get(name)
        if fn is None:
            fn = self._fns[name] = _VecFunction(
                self, self.program.function(name)
            )
        return fn

    def _call_library(self, name: str, args, idx):
        lanes = idx if idx is not None else self._all
        runtimes = self._runtimes
        if not all(runtimes[int(l)].handles(name) for l in lanes):
            _bail(f"library function {name!r} not handled on all lanes")
        values = []
        for k in range(len(lanes)):
            lane = int(lanes[k])
            largs = [self._lane_arg(a, k) for a in args]
            result = runtimes[lane].call(name, largs)
            one = lanes[k : k + 1]
            self._enter(name, one)
            for kind, amount in result.costs.items():
                self._charge(kind, float(amount), one)
            self._exit(name, one)
            values.append(result.value)
        first = values[0]
        if all(v is None for v in values):
            return None
        if isinstance(first, Array):
            _bail(f"library call {name!r} returned an array")
        if all(type(v) is type(first) and v == first for v in values):
            return first  # uniform
        vec = np.empty(len(lanes))
        for k, v in enumerate(values):
            vec[k] = _uniform_float(v)
        return vec

    # -- guarded vector arithmetic -------------------------------------

    @staticmethod
    def _guard_exact(res):
        # max-abs catches non-finite too: NaN fails the comparison, inf
        # exceeds the bound
        if not np.abs(res).max() < _EXACT:
            _bail("vector result outside exact float64 range")
        return res

    def _vec_add(self, left, right):
        lc = left if _is_vec(left) else _uniform_float(left)
        rc = right if _is_vec(right) else _uniform_float(right)
        return self._guard_exact(lc + rc)

    def _vec_binop(self, op, left, right):
        lc = left if _is_vec(left) else _uniform_float(left)
        rc = right if _is_vec(right) else _uniform_float(right)
        if op == "+":
            return self._guard_exact(lc + rc)
        if op == "-":
            return self._guard_exact(lc - rc)
        if op == "*":
            return self._guard_exact(lc * rc)
        if op == "/":
            if np.any(rc == 0):
                _bail("zero divisor")  # scalar raises ZeroDivisionError
            res = lc / rc
            if not np.isfinite(res).all():
                _bail("non-finite quotient")
            return res
        if op == "//":
            if np.any(rc == 0):
                _bail("zero divisor")
            return self._guard_exact(np.floor_divide(lc, rc))
        if op == "%":
            if np.any(rc == 0):
                _bail("zero divisor")
            return self._guard_exact(np.mod(lc, rc))
        if op == "min":
            return np.minimum(lc, rc)
        if op == "max":
            return np.maximum(lc, rc)
        if op in ("<", "<=", ">", ">=", "==", "!="):
            if op == "<":
                res = lc < rc
            elif op == "<=":
                res = lc <= rc
            elif op == ">":
                res = lc > rc
            elif op == ">=":
                res = lc >= rc
            elif op == "==":
                res = lc == rc
            else:
                res = lc != rc
            # immediately leave numpy-bool land: True + True must be 2,
            # not True, downstream
            return res.astype(np.float64)
        if op == "**":
            return self._vec_pow(lc, rc)
        _bail(f"unknown vector operator {op!r}")

    def _vec_pow(self, lc, rc):
        n = len(lc) if _is_vec(lc) else len(rc)
        out = np.empty(n)
        for k in range(n):
            lv = float(lc[k]) if _is_vec(lc) else lc
            rv = float(rc[k]) if _is_vec(rc) else rc
            v = lv**rv  # ValueError/OverflowError -> fallback
            if not math.isfinite(v) or abs(v) >= _EXACT:
                _bail("pow outside exact float64 range")
            # When both operands are integral the scalar engine may have
            # computed an exact big-int pow; verify float pow agrees.
            if float(lv).is_integer() and float(rv).is_integer():
                ri = int(rv)
                if ri >= 0 and int(lv) ** ri != v:
                    _bail("inexact integral pow")
            out[k] = v
        return out

    # -- fast-path mirror ----------------------------------------------

    def _plan_exec(self, plan: LoopPlan, tbl, frame: _Frame, idx, var: str):
        """Vector mirror of ``FastPathPlanner.execute`` + the compiled
        engine's plan-result application.

        Returns the per-lane validity mask over the context lanes (all
        emission for valid lanes is done here), or None when bound
        conversion failed uniformly (caller runs the genuine loop)."""
        n = self._batch if idx is None else len(idx)
        acc = _PlanAcc(n)
        valid = np.ones(n, dtype=bool)
        ok = self._plan_into(
            plan, tbl, frame, idx, acc, np.ones(n), valid
        )
        if ok is None and not valid.any():
            return None
        if not valid.any():
            return valid
        lanes = idx if idx is not None else self._all
        all_valid = valid.all()
        # Emission order mirrors the scalar plan application exactly:
        # compute charge, memory charge, loop iterations, aggregate
        # calls, loop-variable assignment — each only where nonzero.
        emit = valid & (acc.compute != 0)
        if emit.any():
            if emit.all():
                self._charge(CostKind.COMPUTE, acc.compute, idx)
            else:
                self._charge(
                    CostKind.COMPUTE, acc.compute[emit], lanes[emit]
                )
        emit = valid & (acc.memory != 0)
        if emit.any():
            if emit.all():
                self._charge(CostKind.MEMORY, acc.memory, idx)
            else:
                self._charge(CostKind.MEMORY, acc.memory[emit], lanes[emit])
        for (fn_name, loop_id), counts in acc.iters.items():
            emit = valid & (counts > 0)
            if emit.any():
                if emit.all():
                    self._iters(
                        fn_name, loop_id, counts.astype(np.int64), idx
                    )
                else:
                    self._iters(
                        fn_name,
                        loop_id,
                        counts[emit].astype(np.int64),
                        lanes[emit],
                    )
        for callee, (counts, unit) in acc.calls.items():
            emit = valid & (counts > 0)
            if emit.any():
                if emit.all():
                    self._agg(
                        callee,
                        counts.astype(np.int64),
                        unit.compute,
                        unit.memory,
                        idx,
                    )
                else:
                    self._agg(
                        callee,
                        counts[emit].astype(np.int64),
                        unit.compute,
                        unit.memory,
                        lanes[emit],
                    )
        # frame[var] = start + trips * step (re-evaluated, pure)
        key = (plan.function, plan.loop.loop_id)
        trips = acc.iters.get(key)
        start_v = tbl[id(plan.loop.start)](frame, idx)
        step_v = tbl[id(plan.loop.step)](frame, idx)
        vlanes = idx if all_valid else lanes[valid]
        if (
            not _is_vec(start_v)
            and not _is_vec(step_v)
            and (trips is None or (trips == trips[0]).all())
        ):
            t = 0 if trips is None else int(trips[0])
            value = start_v + t * step_v  # exact Python arithmetic
            self._assign(frame, var, value, vlanes)
        else:
            sc = start_v if _is_vec(start_v) else _uniform_float(start_v)
            pc = step_v if _is_vec(step_v) else _uniform_float(step_v)
            tc = np.zeros(n) if trips is None else trips
            vals = self._guard_exact(sc + tc * pc)
            self._assign(
                frame, var, vals if all_valid else vals[valid], vlanes
            )
        return valid

    def _plan_into(
        self, plan: LoopPlan, tbl, frame, idx, acc: _PlanAcc, multiplier,
        valid,
    ):
        """Accumulate one nest level; mirrors ``_execute_into`` per lane.

        Lanes with ``multiplier == 0`` never reach this level in the
        scalar engine and stay valid/uncharged regardless of this
        level's bounds."""
        cfg = self.config
        loop = plan.loop
        live = multiplier > 0
        try:
            start = _plan_val(tbl[id(loop.start)](frame, idx))
            stop = _plan_val(tbl[id(loop.stop)](frame, idx))
            step = _plan_val(tbl[id(loop.step)](frame, idx))
        except VectorFallback:
            raise
        except (TypeError, ValueError):
            # scalar: float() failed -> plan invalid (live lanes only)
            valid &= ~live
            return None
        n = len(multiplier)
        step_ok = np.broadcast_to(np.asarray(step) > 0, (n,))
        valid &= step_ok | ~live
        live = live & step_ok
        if not live.any():
            return True
        startb = np.broadcast_to(np.asarray(start, dtype=np.float64), (n,))
        stopb = np.broadcast_to(np.asarray(stop, dtype=np.float64), (n,))
        stepb = np.broadcast_to(np.asarray(step, dtype=np.float64), (n,))
        trip = np.where(
            stopb > startb,
            np.maximum(0.0, np.ceil((stopb - startb) / stepb)),
            0.0,
        )
        total = trip * multiplier
        checked = total[live]
        if not np.isfinite(checked).all() or (checked >= _EXACT).any():
            _bail("trip count outside exact float64 range")
        active = live & (total > 0)
        if active.any():
            key = (plan.function, loop.loop_id)
            counts = acc.iters.get(key)
            if counts is None:
                counts = acc.iters[key] = np.zeros(n)
            counts += np.where(active, total, 0.0)
            per_compute = np.full(
                n, cfg.loop_iter_cost + plan.stmt_count * cfg.stmt_cost
            )
            per_memory = np.zeros(n)
            for iname, iarg in plan.intrinsics:
                amount = _plan_val(tbl[id(iarg)](frame, idx))
                if iname == "work":
                    per_compute = per_compute + amount
                else:
                    per_memory = per_memory + amount
            for callee, unit in plan.calls:
                per_compute = per_compute + cfg.call_cost
                entry = acc.calls.get(callee)
                if entry is None:
                    entry = acc.calls[callee] = [np.zeros(n), unit]
                entry[0] += np.where(active, total, 0.0)
            acc.compute += np.where(active, total * per_compute, 0.0)
            acc.memory += np.where(active, total * per_memory, 0.0)
        sub_mult = np.where(active, total, 0.0)
        for sub in plan.nested:
            self._plan_into(sub, tbl, frame, idx, acc, sub_mult, valid)
        return True


# ----------------------------------------------------------------------
# lane identity (dedup support for the measurement layer)

#: Entry-argument types whose repr is a complete value identity.  An
#: ``Array`` (or any other object) may alias or mutate, so lanes holding
#: one never dedup.
_SIGNATURE_TYPES = (bool, int, float, str)


def lane_signature(args, runtime=None) -> "str | None":
    """Stable identity of one batch lane, or ``None`` when unprovable.

    Two lanes with equal signatures are guaranteed to execute
    identically: engine runs are deterministic functions of the entry
    arguments and the library runtime, so equal inputs yield bit-equal
    :class:`~repro.interp.metrics.RunResult`/profile outcomes.  The
    runtime participates the same way it does in the run-cache
    fingerprint (``repr`` of its ``config``); a runtime type carrying
    state outside a ``config`` attribute cannot prove identity and
    disables dedup for its lane (``None``), as does any non-scalar
    entry argument.
    """
    parts: list[str] = []
    items = (
        sorted(args.items()) if hasattr(args, "items") else enumerate(args)
    )
    for name, value in items:
        if value is not None and type(value) not in _SIGNATURE_TYPES:
            return None
        parts.append(f"{name}={type(value).__name__}:{value!r}")
    if runtime is None:
        rt = "none"
    elif hasattr(runtime, "config"):
        rt = f"{type(runtime).__name__}:{runtime.config!r}"
    elif type(runtime) is NoLibraryRuntime:
        rt = "NoLibraryRuntime"
    else:
        return None  # stateful runtime without a declared config
    return f"args({', '.join(parts)}) runtime({rt})"


def plan_unique_lanes(
    args_list, runtimes=None
) -> "tuple[list[int], list[int]]":
    """Collapse duplicate lanes of a planned batch.

    Returns ``(representatives, slot_to_rep)``: ``representatives`` are
    the original slot indices to actually execute (in first-occurrence
    order), and ``slot_to_rep[slot]`` maps every original slot to its
    position in ``representatives``.  Lanes whose
    :func:`lane_signature` is ``None`` always represent themselves.
    """
    if runtimes is None:
        runtimes = [None] * len(args_list)
    representatives: list[int] = []
    slot_to_rep: list[int] = []
    seen: dict[str, int] = {}
    for slot, (args, runtime) in enumerate(zip(args_list, runtimes)):
        signature = lane_signature(args, runtime)
        rep = seen.get(signature) if signature is not None else None
        if rep is None:
            rep = len(representatives)
            representatives.append(slot)
            if signature is not None:
                seen[signature] = rep
        slot_to_rep.append(rep)
    return representatives, slot_to_rep
