"""Compiled shadow engine: the closure compiler × an analysis domain.

``CompiledShadowEngine`` brings the IR-to-closure compilation strategy of
:class:`~repro.interp.compile.CompiledEngine` to shadow-tracking
analyses.  Shadows travel through the same pre-resolved frame slots the
values use — every call frame is a pair of parallel slot lists, one for
values and one for shadows — so shadow propagation pays slot indexing
instead of the per-node ``isinstance`` dispatch and per-name dict
lookups of the tree-walking :class:`~repro.interp.shadowtree.ShadowInterpreter`.

Domain hooks are pre-bound into the closures' cells at compile time
(joins, policy gates, control regions, sinks), and analysis-constant
facts — the ``free_vars`` read sets of assignments, the assigned-name
sets of loop bodies and skipped branches — are computed once during
lowering instead of on every execution.

Loop fast-path plans are never consulted: shadow sinks (taint's
loop-count analysis) need genuine per-iteration execution, which is also
what the tree-walking shadow engine does — the two are bit-identical by
construction and by the differential tests in
``tests/interp/test_compiled_differential.py``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from ..errors import ArityError, InterpreterError, UndefinedFunctionError
from ..ir.expr import BinOp, Call, Const, Expr, Intrinsic, Load, UnOp, Var
from ..ir.program import Function, Program
from ..ir.stmt import (
    Assign,
    Break,
    Continue,
    ExprStmt,
    For,
    If,
    Return,
    Stmt,
    Store,
    While,
    assigned_names,
)
from .compile import _UNDEF, CompiledEngine
from .config import DEFAULT_CONFIG, ExecConfig
from .domain import AnalysisDomain
from .events import CostKind, ExecutionListener
from .runtime import LibraryRuntime
from .metrics import RunResult
from .semantics import (
    BINOP_FUNCS,
    FLOW_BREAK,
    FLOW_CONTINUE,
    FLOW_NORMAL,
    FLOW_RETURN,
    MATH_INTRINSICS,
    alloc_array,
    bad_loop_step,
    call_depth_exceeded,
    check_work_amount,
    execute_shadow_library_call,
    require_array,
    resolve_entry_args,
    step_limit_exceeded,
    undefined_variable,
)
from .values import Array, Value, truthy


class CompiledShadowFunction:
    """One program function lowered to shadow-propagating closures.

    ``call`` mirrors ``ShadowInterpreter.call_shadow`` exactly: arity
    check, recursion hook, depth check, fresh value+shadow frames,
    enter/exit events around the body, control attachment on the
    returned shadow.
    """

    __slots__ = (
        "name",
        "nparams",
        "engine",
        "max_depth",
        "_template",
        "_shadow_template",
        "_body",
    )

    def __init__(self, engine: "CompiledShadowEngine", fn: Function) -> None:
        self.name = fn.name
        self.nparams = len(fn.params)
        self.engine = engine
        self.max_depth = engine.config.max_call_depth
        # Filled in by _ShadowFunctionCompiler.compile (two-phase, so
        # recursive and mutually recursive calls bind their targets).
        self._template: list[Value] = []
        self._shadow_template: list = []
        self._body = None

    def call(self, args: Sequence[Value], arg_shadows: Sequence) -> tuple:
        """Invoke this function; returns ``(value, shadow)``."""
        if len(args) != self.nparams:
            raise ArityError(self.name, self.nparams, len(args))
        engine = self.engine
        domain = engine.domain
        stack = engine._fn_stack
        if self.name in stack:
            domain.on_recursive_call(self.name)
        if engine._depth >= self.max_depth:
            raise call_depth_exceeded(self.name, self.max_depth)
        n = self.nparams
        frame = self._template.copy()
        frame[:n] = args
        shadow = self._shadow_template.copy()
        shadow[:n] = arg_shadows
        engine._depth += 1
        stack.append(self.name)
        domain.on_function_entered(self.name)
        engine._on_enter(self.name)
        try:
            result = self._body(frame, shadow)
            if result[0] == FLOW_RETURN:
                return result[1], domain.with_control(result[2])
            return None, domain.clean  # void call
        finally:
            engine._on_exit(self.name)
            stack.pop()
            engine._depth -= 1


class _ShadowFunctionCompiler:
    """Lowers one :class:`Function` into value+shadow slot closures."""

    def __init__(self, engine: "CompiledShadowEngine", fn: Function) -> None:
        self.engine = engine
        self.fn = fn
        self.fn_name = fn.name
        self.domain = engine.domain
        self.slots: dict[str, int] = {}
        for param in fn.params:
            self._slot(param)
        # Shared flow singletons (domain-specific clean element).
        clean = self.domain.clean
        self._normal = (FLOW_NORMAL, None, clean)
        self._break = (FLOW_BREAK, None, clean)
        self._continue = (FLOW_CONTINUE, None, clean)
        self._return_none = (FLOW_RETURN, None, clean)

    def _slot(self, name: str) -> int:
        idx = self.slots.get(name)
        if idx is None:
            idx = len(self.slots)
            self.slots[name] = idx
        return idx

    def compile(self, target: CompiledShadowFunction) -> None:
        """Compile the function body into *target*."""
        target._body = self._compile_block(self.fn.body)
        target._template = [_UNDEF] * len(self.slots)
        target._shadow_template = [self.domain.clean] * len(self.slots)

    # ------------------------------------------------------------------
    # expressions: closures (frame, shadow) -> (value, value_shadow)

    def _compile_expr(self, expr: Expr):
        domain = self.domain
        clean = domain.clean
        if isinstance(expr, Const):
            pair = (expr.value, clean)

            def const(frame, shadow):
                return pair

            const._const = expr.value
            return const
        if isinstance(expr, Var):
            idx = self._slot(expr.name)
            name = expr.name
            fn_name = self.fn_name

            def read(frame, shadow):
                value = frame[idx]
                if value is _UNDEF:
                    raise undefined_variable(name, fn_name)
                return value, shadow[idx]

            # Fusion metadata: parent nodes (binops) inline slot reads
            # and constants instead of paying a nested call + tuple.
            read._slot = idx
            read._vname = name
            return read
        if isinstance(expr, BinOp):
            return self._compile_binop(expr)
        if isinstance(expr, UnOp):
            operand = self._compile_expr(expr.operand)
            data = domain.data
            if expr.op == "not":

                def not_(frame, shadow):
                    value, s = operand(frame, shadow)
                    return (not value), (clean if s == clean else data(s))

                return not_

            def neg(frame, shadow):
                value, s = operand(frame, shadow)
                return -value, (clean if s == clean else data(s))

            return neg
        if isinstance(expr, Load):
            aidx = self._slot(expr.array)
            index = self._compile_expr(expr.index)
            name = expr.array
            fn_name = self.fn_name
            data_join = domain.data_join
            load_element = domain.load_element

            def load(frame, shadow):
                arr = frame[aidx]
                if not isinstance(arr, Array):
                    if arr is _UNDEF:
                        raise undefined_variable(name, fn_name)
                    require_array(arr, name, fn_name)  # raises
                idx, idx_shadow = index(frame, shadow)
                i = int(idx)
                es = load_element(arr, i)
                if es == clean and idx_shadow == clean:
                    return arr.load(i), clean
                return arr.load(i), data_join(es, idx_shadow)

            return load
        if isinstance(expr, Intrinsic):
            return self._compile_intrinsic(expr)
        if isinstance(expr, Call):
            return self._compile_call(expr)
        raise InterpreterError(f"cannot evaluate {type(expr).__name__}")

    def _compile_binop(self, expr: BinOp):
        domain = self.domain
        clean = domain.clean
        op = expr.op
        lhs = self._compile_expr(expr.lhs)
        rhs = self._compile_expr(expr.rhs)
        data_join = domain.data_join
        if op == "and":

            def and_(frame, shadow):
                left, ls = lhs(frame, shadow)
                if truthy(left):
                    right, rs = rhs(frame, shadow)
                    if ls == clean and rs == clean:
                        return right, clean
                    return right, data_join(ls, rs)
                return left, ls

            return and_
        if op == "or":

            def or_(frame, shadow):
                left, ls = lhs(frame, shadow)
                if truthy(left):
                    return left, ls
                right, rs = rhs(frame, shadow)
                if ls == clean and rs == clean:
                    return right, clean
                return right, data_join(ls, rs)

            return or_
        fn = BINOP_FUNCS.get(op)
        if fn is None:
            raise InterpreterError(f"unknown operator {op!r}")
        # Operand fusion (mirroring the concrete compiler): when an
        # operand is a slot read or a constant, inline the access and
        # shadow lookup.  Evaluation order and undefined-variable errors
        # are preserved exactly; the all-clean shadow case skips the
        # domain join entirely (sound by the bottom laws).
        fn_name = self.fn_name
        lslot = getattr(lhs, "_slot", None)
        rslot = getattr(rhs, "_slot", None)
        lconst = getattr(lhs, "_const", _UNDEF)
        rconst = getattr(rhs, "_const", _UNDEF)
        if lslot is not None:
            lname = lhs._vname
            if rslot is not None:
                rname = rhs._vname

                def var_var(frame, shadow):
                    left = frame[lslot]
                    if left is _UNDEF:
                        raise undefined_variable(lname, fn_name)
                    right = frame[rslot]
                    if right is _UNDEF:
                        raise undefined_variable(rname, fn_name)
                    ls = shadow[lslot]
                    rs = shadow[rslot]
                    if ls == clean and rs == clean:
                        return fn(left, right), clean
                    return fn(left, right), data_join(ls, rs)

                return var_var
            if rconst is not _UNDEF:

                def var_const(frame, shadow):
                    left = frame[lslot]
                    if left is _UNDEF:
                        raise undefined_variable(lname, fn_name)
                    ls = shadow[lslot]
                    if ls == clean:
                        return fn(left, rconst), clean
                    return fn(left, rconst), data_join(ls, clean)

                return var_const
        elif lconst is not _UNDEF and rslot is not None:
            rname = rhs._vname

            def const_var(frame, shadow):
                right = frame[rslot]
                if right is _UNDEF:
                    raise undefined_variable(rname, fn_name)
                rs = shadow[rslot]
                if rs == clean:
                    return fn(lconst, right), clean
                return fn(lconst, right), data_join(clean, rs)

            return const_var

        def binop(frame, shadow):
            left, ls = lhs(frame, shadow)
            right, rs = rhs(frame, shadow)
            if ls == clean and rs == clean:
                return fn(left, right), clean
            return fn(left, right), data_join(ls, rs)

        return binop

    def _compile_intrinsic(self, expr: Intrinsic):
        domain = self.domain
        clean = domain.clean
        data = domain.data
        name = expr.name
        arg = self._compile_expr(expr.args[0]) if expr.args else None
        if name == "work" or name == "mem_work":
            kind = CostKind.COMPUTE if name == "work" else CostKind.MEMORY
            charge = self.engine._charge

            def work(frame, shadow):
                amount, s = arg(frame, shadow)
                amount = check_work_amount(float(amount))
                charge(kind, amount)
                return amount, (clean if s == clean else data(s))

            return work
        if name == "alloc":
            charge = self.engine._charge
            memory = CostKind.MEMORY

            def alloc(frame, shadow):
                size, _s = arg(frame, shadow)
                arr, cost = alloc_array(size)
                charge(memory, cost)
                return arr, clean

            return alloc
        fn = MATH_INTRINSICS.get(name)
        if fn is None:
            raise InterpreterError(f"unknown intrinsic {name!r}")

        def math(frame, shadow):
            value, s = arg(frame, shadow)
            return fn(value), (clean if s == clean else data(s))

        return math

    def _compile_call(self, expr: Call):
        domain = self.domain
        clean = domain.clean
        arg_closures = tuple(self._compile_expr(a) for a in expr.args)
        callee = expr.callee
        engine = self.engine
        charge = engine._charge
        call_cost = engine.config.call_cost
        compute = CostKind.COMPUTE
        data = domain.data
        if callee in engine.program:
            # Pre-resolved program call: bind the target's call method once.
            target_call = engine._functions[callee].call

            def call_fn(frame, shadow):
                values = []
                shadows = []
                for c in arg_closures:
                    v, s = c(frame, shadow)
                    values.append(v)
                    shadows.append(clean if s == clean else data(s))
                charge(compute, call_cost)
                return target_call(values, shadows)

            return call_fn

        runtime = engine.runtime
        library = engine._call_library_shadow

        def call_external(frame, shadow):
            values = []
            shadows = []
            for c in arg_closures:
                v, s = c(frame, shadow)
                values.append(v)
                shadows.append(clean if s == clean else data(s))
            charge(compute, call_cost)
            if runtime.handles(callee):
                return library(callee, values, shadows)
            raise UndefinedFunctionError(callee)

        return call_external

    # ------------------------------------------------------------------
    # statements: closures (frame, shadow) -> (flow, value, value_shadow)

    def _compile_block(self, body: Sequence[Stmt]):
        closures = tuple(self._compile_stmt(s) for s in body)
        normal = self._normal
        if not closures:
            return lambda frame, shadow: normal
        if len(closures) == 1:
            return closures[0]

        def block(frame, shadow):
            for closure in closures:
                result = closure(frame, shadow)
                if result[0]:
                    return result
            return normal

        return block

    def _compile_stmt(self, stmt: Stmt):
        engine = self.engine
        domain = self.domain
        state = engine._steps_cell
        limit = engine.config.step_limit
        charge = engine._charge
        stmt_cost = engine.config.stmt_cost
        compute = CostKind.COMPUTE
        fn_name = self.fn_name
        normal = self._normal

        if isinstance(stmt, Assign):
            idx = self._slot(stmt.name)
            value_c = self._compile_expr(stmt.value)
            # The read set is an analysis-time constant: resolve it here
            # instead of recomputing free_vars() per execution.
            reads = stmt.value.free_vars()
            with_control = domain.with_control

            def assign(frame, shadow):
                state[0] = n = state[0] + 1
                if n > limit:
                    raise step_limit_exceeded(fn_name, limit)
                charge(compute, stmt_cost)
                value, s = value_c(frame, shadow)
                frame[idx] = value
                shadow[idx] = with_control(s, reads)
                return normal

            return assign

        if isinstance(stmt, ExprStmt):
            expr_c = self._compile_expr(stmt.expr)

            def expr_stmt(frame, shadow):
                state[0] = n = state[0] + 1
                if n > limit:
                    raise step_limit_exceeded(fn_name, limit)
                charge(compute, stmt_cost)
                expr_c(frame, shadow)
                return normal

            return expr_stmt

        if isinstance(stmt, Store):
            aidx = self._slot(stmt.array)
            index_c = self._compile_expr(stmt.index)
            value_c = self._compile_expr(stmt.value)
            array_name = stmt.array
            reads = stmt.index.free_vars() | stmt.value.free_vars()
            clean = domain.clean
            join = domain.join
            with_control = domain.with_control
            store_element = domain.store_element

            def store(frame, shadow):
                state[0] = n = state[0] + 1
                if n > limit:
                    raise step_limit_exceeded(fn_name, limit)
                charge(compute, stmt_cost)
                arr = frame[aidx]
                if not isinstance(arr, Array):
                    if arr is _UNDEF:
                        raise undefined_variable(array_name, fn_name)
                    require_array(arr, array_name, fn_name)  # raises
                idx, idx_shadow = index_c(frame, shadow)
                val, val_shadow = value_c(frame, shadow)
                i = int(idx)
                arr.store(i, float(val))
                # A shadowed index makes the written value's location
                # depend on the analysis facts: both shadows reach the
                # element.
                if val_shadow == clean and idx_shadow == clean:
                    merged = clean
                else:
                    merged = join(val_shadow, idx_shadow)
                store_element(arr, i, with_control(merged, reads))
                return normal

            return store

        if isinstance(stmt, Return):
            if stmt.value is None:
                return_none = self._return_none

                def return_void(frame, shadow):
                    state[0] = n = state[0] + 1
                    if n > limit:
                        raise step_limit_exceeded(fn_name, limit)
                    return return_none

                return return_void
            value_c = self._compile_expr(stmt.value)

            def return_value(frame, shadow):
                state[0] = n = state[0] + 1
                if n > limit:
                    raise step_limit_exceeded(fn_name, limit)
                value, s = value_c(frame, shadow)
                return (FLOW_RETURN, value, s)

            return return_value

        if isinstance(stmt, Break):
            brk = self._break

            def break_(frame, shadow):
                state[0] = n = state[0] + 1
                if n > limit:
                    raise step_limit_exceeded(fn_name, limit)
                return brk

            return break_

        if isinstance(stmt, Continue):
            cont = self._continue

            def continue_(frame, shadow):
                state[0] = n = state[0] + 1
                if n > limit:
                    raise step_limit_exceeded(fn_name, limit)
                return cont

            return continue_

        if isinstance(stmt, If):
            return self._compile_if(stmt)
        if isinstance(stmt, For):
            return self._compile_for(stmt)
        if isinstance(stmt, While):
            return self._compile_while(stmt)
        raise InterpreterError(f"cannot execute {type(stmt).__name__}")

    def _compile_if(self, stmt: If):
        engine = self.engine
        domain = self.domain
        state = engine._steps_cell
        limit = engine.config.step_limit
        fn_name = self.fn_name
        stack = engine._fn_stack
        clean = domain.clean

        cond_c = self._compile_expr(stmt.cond)
        then_b = self._compile_block(stmt.then_body)
        else_b = self._compile_block(stmt.else_body)
        branch_id = stmt.branch_id
        on_branch = domain.on_branch
        tracks_control = domain.tracks_control
        tracks_implicit = domain.tracks_implicit
        push_branch = domain.push_branch
        pop_control = domain.pop_control
        on_implicit = domain.on_implicit_flow
        # Assigned-name slots of each side, for implicit-flow reporting
        # on the *skipped* side (analysis-time constants).
        then_slots = tuple(
            self._slot(name) for name in sorted(assigned_names(stmt.then_body))
        )
        else_slots = tuple(
            self._slot(name) for name in sorted(assigned_names(stmt.else_body))
        )

        def if_(frame, shadow):
            state[0] = n = state[0] + 1
            if n > limit:
                raise step_limit_exceeded(fn_name, limit)
            cond, cs = cond_c(frame, shadow)
            taken = truthy(cond)
            on_branch(tuple(stack), fn_name, branch_id, cs, taken)
            if tracks_implicit and cs != clean:
                for idx in (else_slots if taken else then_slots):
                    if frame[idx] is not _UNDEF:
                        shadow[idx] = on_implicit(cs, shadow[idx])
            body = then_b if taken else else_b
            if tracks_control and cs != clean:
                push_branch(cs)
                try:
                    return body(frame, shadow)
                finally:
                    pop_control()
            return body(frame, shadow)

        return if_

    def _compile_for(self, stmt: For):
        engine = self.engine
        domain = self.domain
        state = engine._steps_cell
        limit = engine.config.step_limit
        charge = engine._charge
        iter_cost = engine.config.loop_iter_cost
        compute = CostKind.COMPUTE
        fn_name = self.fn_name
        stack = engine._fn_stack
        on_iters = engine._on_loop_iterations
        clean = domain.clean
        normal = self._normal

        start_c = self._compile_expr(stmt.start)
        stop_c = self._compile_expr(stmt.stop)
        step_c = self._compile_expr(stmt.step)
        body_b = self._compile_block(stmt.body)
        var_idx = self._slot(stmt.var)
        loop_id = stmt.loop_id
        assigned = frozenset(assigned_names(stmt.body)) | {stmt.var}
        join = domain.join
        join_all = domain.join_all
        with_control = domain.with_control
        tracks_control = domain.tracks_control
        push_loop = domain.push_loop
        pop_control = domain.pop_control
        on_loop = domain.on_loop

        # No fast-path plan: shadow sinks need genuine iterations (the
        # tree-walking shadow engine iterates genuinely too).

        def for_(frame, shadow):
            state[0] = n = state[0] + 1
            if n > limit:
                raise step_limit_exceeded(fn_name, limit)
            start, start_s = start_c(frame, shadow)
            stop, stop_s = stop_c(frame, shadow)
            step, step_s = step_c(frame, shadow)
            if not isinstance(step, (int, float)) or step <= 0:
                raise bad_loop_step(step, fn_name)
            # The loop exit condition is ``var < stop`` with var derived
            # from start and step: its shadow joins all three (the sink
            # of the loop-count analysis, paper 4.1).
            if start_s == clean and stop_s == clean and step_s == clean:
                cond_shadow = clean
                var_s = clean
            else:
                cond_shadow = join_all((start_s, stop_s, step_s))
                var_s = join(start_s, step_s)
            frame[var_idx] = start
            shadow[var_idx] = with_control(var_s)
            iters = 0
            result = normal
            push = tracks_control and cond_shadow != clean
            if push:
                push_loop(cond_shadow, assigned)
            try:
                while frame[var_idx] < stop:
                    state[0] = n = state[0] + 1
                    if n > limit:
                        raise step_limit_exceeded(fn_name, limit)
                    charge(compute, iter_cost)
                    iters += 1
                    result = body_b(frame, shadow)
                    flow = result[0]
                    if flow:
                        if flow == FLOW_BREAK:
                            result = normal
                            break
                        if flow == FLOW_RETURN:
                            break
                        result = normal  # FLOW_CONTINUE: resume iteration
                    frame[var_idx] = frame[var_idx] + step
                    # Body assignments to the loop variable feed the exit
                    # condition: fold its current shadow into the sink
                    # (a no-op join skipped while the variable is clean).
                    vs = shadow[var_idx]
                    if vs != clean:
                        cond_shadow = join(cond_shadow, vs)
            finally:
                if push:
                    pop_control()
            on_loop(tuple(stack), fn_name, loop_id, cond_shadow, iters)
            if iters:
                on_iters(fn_name, loop_id, iters)
            return result

        return for_

    def _compile_while(self, stmt: While):
        engine = self.engine
        domain = self.domain
        state = engine._steps_cell
        limit = engine.config.step_limit
        charge = engine._charge
        iter_cost = engine.config.loop_iter_cost
        compute = CostKind.COMPUTE
        fn_name = self.fn_name
        stack = engine._fn_stack
        on_iters = engine._on_loop_iterations
        clean = domain.clean
        normal = self._normal

        cond_c = self._compile_expr(stmt.cond)
        body_b = self._compile_block(stmt.body)
        loop_id = stmt.loop_id
        assigned = frozenset(assigned_names(stmt.body))
        join = domain.join
        tracks_control = domain.tracks_control
        push_loop = domain.push_loop
        pop_control = domain.pop_control
        on_loop = domain.on_loop

        def while_(frame, shadow):
            state[0] = n = state[0] + 1
            if n > limit:
                raise step_limit_exceeded(fn_name, limit)
            iters = 0
            result = normal
            sink_shadow = clean
            while True:
                cond, cond_shadow = cond_c(frame, shadow)
                if cond_shadow != clean:
                    sink_shadow = join(sink_shadow, cond_shadow)
                if not truthy(cond):
                    break
                state[0] = n = state[0] + 1
                if n > limit:
                    raise step_limit_exceeded(fn_name, limit)
                charge(compute, iter_cost)
                iters += 1
                push = tracks_control and cond_shadow != clean
                if push:
                    push_loop(cond_shadow, assigned)
                try:
                    result = body_b(frame, shadow)
                finally:
                    if push:
                        pop_control()
                flow = result[0]
                if flow:
                    if flow == FLOW_BREAK:
                        result = normal
                        break
                    if flow == FLOW_RETURN:
                        break
                    result = normal  # FLOW_CONTINUE: resume iteration
            on_loop(tuple(stack), fn_name, loop_id, sink_shadow, iters)
            if iters:
                on_iters(fn_name, loop_id, iters)
            return result

        return while_


class CompiledShadowEngine(CompiledEngine):
    """Closure-compiled execution under a shadow-tracking domain.

    Drop-in shadow sibling of :class:`~repro.interp.compile.CompiledEngine`:
    same constructor plus *domain*, same metering, plus ``call_shadow``
    mirroring :meth:`ShadowInterpreter.call_shadow
    <repro.interp.shadowtree.ShadowInterpreter.call_shadow>`.
    """

    def __init__(
        self,
        program: Program,
        runtime: LibraryRuntime | None = None,
        config: ExecConfig = DEFAULT_CONFIG,
        listener: ExecutionListener | None = None,
        domain: AnalysisDomain | None = None,
    ) -> None:
        self.domain = domain or AnalysisDomain()
        if config.fast_loops and not self.domain.supports_fastpath:
            config = replace(config, fast_loops=False)
        # Call-stack names, for the call paths the domain sinks record.
        self._fn_stack: list[str] = []
        super().__init__(
            program, runtime=runtime, config=config, listener=listener
        )

    def _compile_functions(self) -> None:
        program = self.program
        self._functions: dict[str, CompiledShadowFunction] = {
            name: CompiledShadowFunction(self, fn)
            for name, fn in program.functions.items()
        }
        for name, fn in program.functions.items():
            _ShadowFunctionCompiler(self, fn).compile(self._functions[name])

    # ------------------------------------------------------------------
    # entry points

    def call_shadow(
        self, name: str, args: Sequence[Value], arg_shadows: Sequence
    ) -> tuple:
        """Invoke program function *name* with shadowed arguments."""
        self.program.function(name)  # typed error for unknown entries
        return self._functions[name].call(args, arg_shadows)

    def run(self, args=(), entry=None) -> RunResult:
        """Concrete-compatible run: every argument enters clean."""
        name, _fn, argvals = resolve_entry_args(self.program, args, entry)
        clean = self.domain.clean
        value, _shadow = self._functions[name].call(
            argvals, [clean] * len(argvals)
        )
        return RunResult(
            value=value, metrics=self.metrics, steps=self._steps_cell[0]
        )

    # ------------------------------------------------------------------
    # library calls

    def _call_library_shadow(
        self, name: str, args: Sequence[Value], arg_shadows: Sequence
    ) -> tuple:
        return execute_shadow_library_call(
            self.domain,
            self.runtime,
            name,
            args,
            arg_shadows,
            self.metrics,
            self.listener,
            self._charge,
            tuple(self._fn_stack),
        )


__all__ = ["CompiledShadowEngine", "CompiledShadowFunction"]
