"""Execution event protocol.

Interpreters emit events; listeners (the simulated Score-P profiler in
:mod:`repro.measure.profiler`, test doubles, ...) consume them.  Events are
the boundary between the execution substrate and the measurement substrate,
mirroring how the original Perf-Taint pipeline layers Score-P on top of the
compiled binary.

``CostKind`` distinguishes compute-bound, memory-bound (contention-
sensitive, paper section C1) and communication cost.
"""

from __future__ import annotations

from enum import Enum
from typing import Protocol


class CostKind(str, Enum):
    """What kind of simulated time a cost event represents."""

    COMPUTE = "compute"
    MEMORY = "memory"
    COMM = "comm"


class ExecutionListener(Protocol):
    """Hook interface for observing a program execution.

    All methods have default no-op semantics in :class:`NullListener`;
    implementors may override any subset.
    """

    def on_enter(self, function: str) -> None:
        """A call to *function* begins (program or library function)."""

    def on_exit(self, function: str) -> None:
        """The current call to *function* returns."""

    def on_cost(self, kind: CostKind, amount: float) -> None:
        """*amount* simulated cost units accrue in the current function."""

    def on_loop_iterations(self, function: str, loop_id: int, count: int) -> None:
        """Loop *loop_id* of *function* performed *count* (more) iterations."""

    def on_aggregate_calls(
        self,
        callee: str,
        count: int,
        unit_compute: float,
        unit_memory: float,
    ) -> None:
        """The loop fast path executed *count* calls to leaf function
        *callee*, each costing (*unit_compute*, *unit_memory*) units.

        Semantically equivalent to *count* ``on_enter``/``on_cost``/
        ``on_exit`` triples; reported in aggregate so O(1) loop execution
        stays O(1) in the listener too.
        """


class NullListener:
    """Listener that ignores every event."""

    def on_enter(self, function: str) -> None:  # noqa: D102
        pass

    def on_exit(self, function: str) -> None:  # noqa: D102
        pass

    def on_cost(self, kind: CostKind, amount: float) -> None:  # noqa: D102
        pass

    def on_loop_iterations(  # noqa: D102
        self, function: str, loop_id: int, count: int
    ) -> None:
        pass

    def on_aggregate_calls(  # noqa: D102
        self, callee: str, count: int, unit_compute: float, unit_memory: float
    ) -> None:
        pass


class MultiListener(NullListener):
    """Fan-out listener broadcasting events to several children."""

    def __init__(self, *listeners: ExecutionListener) -> None:
        self.listeners = list(listeners)

    def on_enter(self, function: str) -> None:
        for lst in self.listeners:
            lst.on_enter(function)

    def on_exit(self, function: str) -> None:
        for lst in self.listeners:
            lst.on_exit(function)

    def on_cost(self, kind: CostKind, amount: float) -> None:
        for lst in self.listeners:
            lst.on_cost(kind, amount)

    def on_loop_iterations(self, function: str, loop_id: int, count: int) -> None:
        for lst in self.listeners:
            lst.on_loop_iterations(function, loop_id, count)

    def on_aggregate_calls(
        self, callee: str, count: int, unit_compute: float, unit_memory: float
    ) -> None:
        for lst in self.listeners:
            lst.on_aggregate_calls(callee, count, unit_compute, unit_memory)
