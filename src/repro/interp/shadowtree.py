"""Tree-walking shadow engine: the value semantics × an analysis domain.

``ShadowInterpreter`` executes a program exactly like the plain
:class:`~repro.interp.interpreter.Interpreter` (same costs, same step
accounting, same errors) while tracking one shadow per live value and
invoking the :class:`~repro.interp.domain.AnalysisDomain` hooks at fixed
program points — branch/loop sinks, control-region entry/exit, heap
stores, library calls.  The compiled counterpart
(:mod:`repro.interp.shadowjit`) calls the identical hooks at the
identical points, which is what makes engine choice invisible to any
domain.

This module knows nothing about taint: labels, policies and reports are
the domain's business (see :mod:`repro.taint.domain`).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from ..errors import (
    ArityError,
    InterpreterError,
    UndefinedFunctionError,
)
from ..ir.expr import BinOp, Call, Const, Expr, Intrinsic, Load, UnOp, Var
from ..ir.program import Program
from ..ir.stmt import (
    Assign,
    Break,
    Continue,
    ExprStmt,
    For,
    If,
    Return,
    Stmt,
    Store,
    While,
    assigned_names,
)
from .config import DEFAULT_CONFIG, ExecConfig
from .domain import AnalysisDomain
from .events import CostKind, ExecutionListener
from .interpreter import Interpreter
from .metrics import RunResult
from .runtime import LibraryRuntime
from .semantics import (
    FLOW_BREAK,
    FLOW_CONTINUE,
    FLOW_NORMAL,
    FLOW_RETURN,
    MATH_INTRINSICS,
    alloc_array,
    apply_binop,
    apply_unop,
    bad_loop_step,
    call_depth_exceeded,
    check_work_amount,
    execute_shadow_library_call,
    require_array,
    resolve_entry_args,
)
from .values import Value, truthy


class ShadowInterpreter(Interpreter):
    """Interpreter threading an analysis domain's shadows through a run.

    Construction mirrors :class:`Interpreter` plus the *domain*.  Loop
    fast paths are disabled unless the domain declares them sound
    (``domain.supports_fastpath``); shadow domains that need genuine
    iteration therefore execute every trip regardless of
    ``ExecConfig.fast_loops``.
    """

    def __init__(
        self,
        program: Program,
        runtime: LibraryRuntime | None = None,
        config: ExecConfig = DEFAULT_CONFIG,
        listener: ExecutionListener | None = None,
        domain: AnalysisDomain | None = None,
    ) -> None:
        domain = domain or AnalysisDomain()
        if config.fast_loops and not domain.supports_fastpath:
            config = replace(config, fast_loops=False)
        super().__init__(
            program, runtime=runtime, config=config, listener=listener
        )
        self.domain = domain
        self._shadow: list[dict[str, object]] = []

    def run(
        self,
        args: "dict | Sequence[Value]" = (),
        entry: str | None = None,
    ) -> RunResult:
        """Concrete-compatible run: every argument enters clean.

        Overrides :meth:`Interpreter.run` so the domain observes the run
        (sinks, control regions) exactly as it would on the compiled
        shadow engine — engine choice must be invisible to any domain.
        """
        name, _fn, argvals = resolve_entry_args(self.program, args, entry)
        clean = self.domain.clean
        value, _shadow = self.call_shadow(
            name, argvals, [clean] * len(argvals)
        )
        return RunResult(value=value, metrics=self.metrics, steps=self._steps)

    # ------------------------------------------------------------------
    # shadow frame helpers

    @property
    def _frame(self) -> dict[str, object]:
        return self._shadow[-1]

    def _get_shadow(self, name: str):
        return self._frame.get(name, self.domain.clean)

    def _set_shadow(self, name: str, shadow) -> None:
        # Keep the dict sparse: most values stay clean.
        if shadow == self.domain.clean:
            self._frame.pop(name, None)
        else:
            self._frame[name] = shadow

    # ------------------------------------------------------------------
    # calls

    def call_shadow(
        self, name: str, args: Sequence[Value], arg_shadows: Sequence
    ) -> tuple:
        """Invoke program function *name* with shadowed arguments.

        Returns ``(value, shadow)`` of the call's result; the shadow of a
        void call is clean.  This is the shadow engines' entry point —
        analysis drivers (e.g. :class:`repro.taint.engine.TaintEngine`)
        resolve entry arguments and source shadows, then call this.
        """
        domain = self.domain
        fn = self.program.function(name)
        if len(args) != len(fn.params):
            raise ArityError(name, len(fn.params), len(args))
        if name in self._fn_stack:
            domain.on_recursive_call(name)
        if self._depth >= self.config.max_call_depth:
            raise call_depth_exceeded(name, self.config.max_call_depth)
        env: dict[str, Value] = dict(zip(fn.params, args))
        frame: dict[str, object] = {}
        clean = domain.clean
        for pname, pshadow in zip(fn.params, arg_shadows):
            if pshadow != clean:
                frame[pname] = pshadow
        self._depth += 1
        self._fn_stack.append(name)
        self._shadow.append(frame)
        domain.on_function_entered(name)
        self.metrics.on_enter(name)
        self.listener.on_enter(name)
        try:
            flow, value, shadow = self._sexec_block(fn.body, env)
            if flow == FLOW_RETURN:
                return value, domain.with_control(shadow)
            return None, clean  # void call
        finally:
            self.metrics.on_exit(name)
            self.listener.on_exit(name)
            self._shadow.pop()
            self._fn_stack.pop()
            self._depth -= 1

    def _call_library_shadow(
        self, name: str, args: Sequence[Value], arg_shadows: Sequence
    ) -> tuple:
        return execute_shadow_library_call(
            self.domain,
            self.runtime,
            name,
            args,
            arg_shadows,
            self.metrics,
            self.listener,
            self._charge,
            tuple(self._fn_stack),
        )

    # ------------------------------------------------------------------
    # statements

    def _sexec_block(
        self, body: Sequence[Stmt], env: dict[str, Value]
    ) -> tuple:
        for stmt in body:
            flow, value, shadow = self._sexec_stmt(stmt, env)
            if flow != FLOW_NORMAL:
                return flow, value, shadow
        return FLOW_NORMAL, None, self.domain.clean

    def _sexec_stmt(self, stmt: Stmt, env: dict[str, Value]) -> tuple:
        self._step()
        clean = self.domain.clean
        if isinstance(stmt, Assign):
            self._charge(CostKind.COMPUTE, self.config.stmt_cost)
            value, shadow = self._seval(stmt.value, env)
            env[stmt.name] = value
            self._set_shadow(
                stmt.name,
                self.domain.with_control(shadow, stmt.value.free_vars()),
            )
            return FLOW_NORMAL, None, clean
        if isinstance(stmt, ExprStmt):
            self._charge(CostKind.COMPUTE, self.config.stmt_cost)
            self._seval(stmt.expr, env)
            return FLOW_NORMAL, None, clean
        if isinstance(stmt, Store):
            self._charge(CostKind.COMPUTE, self.config.stmt_cost)
            arr = require_array(
                self._lookup(stmt.array, env), stmt.array, self.current_function
            )
            idx, idx_shadow = self._seval(stmt.index, env)
            val, val_shadow = self._seval(stmt.value, env)
            arr.store(int(idx), float(val))
            # A shadowed index makes the written value's location depend
            # on the analysis facts: both shadows reach the element.
            reads = stmt.index.free_vars() | stmt.value.free_vars()
            shadow = self.domain.with_control(
                self.domain.join(val_shadow, idx_shadow), reads
            )
            self.domain.store_element(arr, int(idx), shadow)
            return FLOW_NORMAL, None, clean
        if isinstance(stmt, Return):
            if stmt.value is None:
                return FLOW_RETURN, None, clean
            value, shadow = self._seval(stmt.value, env)
            return FLOW_RETURN, value, shadow
        if isinstance(stmt, Break):
            return FLOW_BREAK, None, clean
        if isinstance(stmt, Continue):
            return FLOW_CONTINUE, None, clean
        if isinstance(stmt, If):
            return self._sexec_if(stmt, env)
        if isinstance(stmt, For):
            return self._sexec_for(stmt, env)
        if isinstance(stmt, While):
            return self._sexec_while(stmt, env)
        raise InterpreterError(f"cannot execute {type(stmt).__name__}")

    def _sexec_if(self, stmt: If, env: dict[str, Value]) -> tuple:
        domain = self.domain
        cond, cond_shadow = self._seval(stmt.cond, env)
        taken = truthy(cond)
        domain.on_branch(
            tuple(self._fn_stack),
            self.current_function,
            stmt.branch_id,
            cond_shadow,
            taken,
        )
        clean = domain.clean
        if domain.tracks_implicit and cond_shadow != clean:
            skipped = stmt.else_body if taken else stmt.then_body
            for name in assigned_names(skipped):
                if name in env:
                    self._set_shadow(
                        name,
                        domain.on_implicit_flow(
                            cond_shadow, self._get_shadow(name)
                        ),
                    )
        body = stmt.then_body if taken else stmt.else_body
        if domain.tracks_control and cond_shadow != clean:
            domain.push_branch(cond_shadow)
            try:
                return self._sexec_block(body, env)
            finally:
                domain.pop_control()
        return self._sexec_block(body, env)

    def _sexec_for(self, stmt: For, env: dict[str, Value]) -> tuple:
        domain = self.domain
        clean = domain.clean
        start, start_shadow = self._seval(stmt.start, env)
        stop, stop_shadow = self._seval(stmt.stop, env)
        step, step_shadow = self._seval(stmt.step, env)
        if not isinstance(step, (int, float)) or step <= 0:
            raise bad_loop_step(step, self.current_function)
        # The loop exit condition is ``var < stop`` with var derived from
        # start and step: its shadow is the join of all three (the sink of
        # the loop-count analysis, paper 4.1).
        cond_shadow = domain.join_all(
            [start_shadow, stop_shadow, step_shadow]
        )
        fn = self.current_function

        env[stmt.var] = start
        var_shadow = domain.with_control(
            domain.join(start_shadow, step_shadow)
        )
        self._set_shadow(stmt.var, var_shadow)  # reads nothing loop-carried

        iters = 0
        flow: int = FLOW_NORMAL
        value: Value = None
        shadow = clean
        push_control = domain.tracks_control and cond_shadow != clean
        if push_control:
            domain.push_loop(
                cond_shadow, assigned_names(stmt.body) | {stmt.var}
            )
        try:
            while env[stmt.var] < stop:
                self._step()
                self._charge(CostKind.COMPUTE, self.config.loop_iter_cost)
                iters += 1
                flow, value, shadow = self._sexec_block(stmt.body, env)
                if flow == FLOW_BREAK:
                    flow = FLOW_NORMAL
                    break
                if flow == FLOW_RETURN:
                    break
                env[stmt.var] = env[stmt.var] + step
                # Body assignments to the loop variable feed the exit
                # condition: fold its current shadow into the sink.
                cond_shadow = domain.join(
                    cond_shadow, self._get_shadow(stmt.var)
                )
        finally:
            if push_control:
                domain.pop_control()

        domain.on_loop(
            tuple(self._fn_stack), fn, stmt.loop_id, cond_shadow, iters
        )
        if iters:
            self.metrics.on_loop_iterations(fn, stmt.loop_id, iters)
            self.listener.on_loop_iterations(fn, stmt.loop_id, iters)
        if flow == FLOW_RETURN:
            return flow, value, shadow
        return FLOW_NORMAL, None, clean

    def _sexec_while(self, stmt: While, env: dict[str, Value]) -> tuple:
        domain = self.domain
        clean = domain.clean
        fn = self.current_function
        iters = 0
        flow: int = FLOW_NORMAL
        value: Value = None
        shadow = clean
        sink_shadow = clean
        while True:
            cond, cond_shadow = self._seval(stmt.cond, env)
            sink_shadow = domain.join(sink_shadow, cond_shadow)
            if not truthy(cond):
                break
            self._step()
            self._charge(CostKind.COMPUTE, self.config.loop_iter_cost)
            iters += 1
            push_control = domain.tracks_control and cond_shadow != clean
            if push_control:
                domain.push_loop(cond_shadow, assigned_names(stmt.body))
            try:
                flow, value, shadow = self._sexec_block(stmt.body, env)
            finally:
                if push_control:
                    domain.pop_control()
            if flow == FLOW_BREAK:
                flow = FLOW_NORMAL
                break
            if flow == FLOW_RETURN:
                break
        domain.on_loop(
            tuple(self._fn_stack), fn, stmt.loop_id, sink_shadow, iters
        )
        if iters:
            self.metrics.on_loop_iterations(fn, stmt.loop_id, iters)
            self.listener.on_loop_iterations(fn, stmt.loop_id, iters)
        if flow == FLOW_RETURN:
            return flow, value, shadow
        return FLOW_NORMAL, None, clean

    # ------------------------------------------------------------------
    # expressions

    def _seval(self, expr: Expr, env: dict[str, Value]) -> tuple:
        domain = self.domain
        if isinstance(expr, Const):
            return expr.value, domain.clean
        if isinstance(expr, Var):
            return self._lookup(expr.name, env), self._get_shadow(expr.name)
        if isinstance(expr, BinOp):
            op = expr.op
            if op in ("and", "or"):
                lhs, lshadow = self._seval(expr.lhs, env)
                take_rhs = truthy(lhs) if op == "and" else not truthy(lhs)
                if take_rhs:
                    rhs, rshadow = self._seval(expr.rhs, env)
                    return rhs, domain.data_join(lshadow, rshadow)
                return lhs, lshadow
            lhs, lshadow = self._seval(expr.lhs, env)
            rhs, rshadow = self._seval(expr.rhs, env)
            return apply_binop(op, lhs, rhs), domain.data_join(lshadow, rshadow)
        if isinstance(expr, UnOp):
            operand, shadow = self._seval(expr.operand, env)
            return apply_unop(expr.op, operand), domain.data(shadow)
        if isinstance(expr, Load):
            arr = require_array(
                self._lookup(expr.array, env), expr.array, self.current_function
            )
            idx, idx_shadow = self._seval(expr.index, env)
            value = arr.load(int(idx))
            elem_shadow = domain.load_element(arr, int(idx))
            return value, domain.data_join(elem_shadow, idx_shadow)
        if isinstance(expr, Intrinsic):
            return self._seval_intrinsic(expr, env)
        if isinstance(expr, Call):
            values: list[Value] = []
            shadows: list = []
            for a in expr.args:
                v, s = self._seval(a, env)
                values.append(v)
                shadows.append(domain.data(s))
            self._charge(CostKind.COMPUTE, self.config.call_cost)
            if expr.callee in self.program:
                return self.call_shadow(expr.callee, values, shadows)
            if self.runtime.handles(expr.callee):
                return self._call_library_shadow(expr.callee, values, shadows)
            raise UndefinedFunctionError(expr.callee)
        raise InterpreterError(f"cannot evaluate {type(expr).__name__}")

    def _seval_intrinsic(self, expr: Intrinsic, env: dict[str, Value]) -> tuple:
        domain = self.domain
        name = expr.name
        if name in ("work", "mem_work"):
            amount, shadow = self._seval(expr.args[0], env)
            amount = check_work_amount(float(amount))
            kind = CostKind.COMPUTE if name == "work" else CostKind.MEMORY
            self._charge(kind, amount)
            return amount, domain.data(shadow)
        if name == "alloc":
            size, _shadow = self._seval(expr.args[0], env)
            arr, cost = alloc_array(size)
            self._charge(CostKind.MEMORY, cost)
            return arr, domain.clean
        value, shadow = self._seval(expr.args[0], env)
        fn = MATH_INTRINSICS.get(name)
        if fn is None:
            raise InterpreterError(f"unknown intrinsic {name!r}")
        return fn(value), domain.data(shadow)


__all__ = ["ShadowInterpreter"]
