"""IR-to-closure compiler: the measurement hot path's execution engine.

The tree-walking :class:`~repro.interp.interpreter.Interpreter` re-branches
on node type, re-resolves variable names, and re-dispatches operator
strings for every one of the millions of statements a measurement campaign
executes.  This module removes that dispatch cost by lowering a finalized
:class:`~repro.ir.program.Program` **once** into nested Python closures:

* one closure per :class:`~repro.ir.expr.Expr` / :class:`~repro.ir.stmt.Stmt`
  node, built at compile time, so no ``isinstance`` chains run on the hot
  path;
* constants, operator functions, cost amounts and intrinsic handlers are
  pre-resolved into the closures' cells;
* locals live in flat per-call frames (Python lists) addressed by
  pre-computed slots instead of dict lookups;
* loop fast-path plans (:class:`~repro.interp.fastpath.FastPathPlanner`)
  are resolved at compile time and consulted with pre-compiled pure
  bound/argument evaluators.

:class:`CompiledEngine` executes those closures under the exact same
:class:`~repro.interp.config.ExecConfig` limits,
:class:`~repro.interp.events.ExecutionListener` events,
:class:`~repro.interp.runtime.LibraryRuntime` resolution and
:class:`~repro.interp.metrics.RunResult` metrics as the tree-walker —
bit-identical by the shared :mod:`~repro.interp.semantics` core and
enforced by the differential property tests in
``tests/interp/test_compiled_differential.py``.  Measurement runs default
to this engine (see :func:`repro.interp.make_engine`); shadow-tracking
analyses (taint) use its domain-parameterized sibling
:class:`~repro.interp.shadowjit.CompiledShadowEngine`, which reuses this
module's compilation strategy with shadows in parallel frame slots.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..errors import ArityError, InterpreterError, UndefinedFunctionError
from ..ir.expr import BinOp, Call, Const, Expr, Intrinsic, Load, UnOp, Var
from ..ir.program import Function, Program
from ..ir.stmt import (
    Assign,
    Break,
    Continue,
    ExprStmt,
    For,
    If,
    Return,
    Stmt,
    Store,
    While,
)
from .config import DEFAULT_CONFIG, ExecConfig
from .events import CostKind, ExecutionListener, NullListener
from .fastpath import FastPathPlanner, LoopPlan
from .metrics import MetricsCollector, RunResult
from .runtime import LibraryRuntime, NoLibraryRuntime
from .semantics import (
    BINOP_FUNCS,
    FLOW_BREAK,
    FLOW_CONTINUE,
    FLOW_NORMAL,
    FLOW_RETURN,
    MATH_INTRINSICS,
    alloc_array,
    bad_loop_step,
    call_depth_exceeded,
    check_work_amount,
    execute_library_call,
    require_array,
    resolve_entry_args,
    step_limit_exceeded,
    undefined_variable,
)
from .values import Array, Value, truthy


class _Undefined:
    """Sentinel marking a not-yet-assigned frame slot."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<undefined>"


_UNDEF = _Undefined()

#: Shared flow tuples: statement closures return ``(flow, value)`` and
#: normal flow is by far the common case, so it is a singleton.
_NORMAL: tuple[int, Value] = (FLOW_NORMAL, None)
_BREAK: tuple[int, Value] = (FLOW_BREAK, None)
_CONTINUE: tuple[int, Value] = (FLOW_CONTINUE, None)
_RETURN_NONE: tuple[int, Value] = (FLOW_RETURN, None)


class CompiledFunction:
    """One program function lowered to a closure tree.

    ``call`` mirrors ``Interpreter._call_function`` exactly: arity check,
    depth check, fresh frame, enter/exit events around the body.
    """

    __slots__ = (
        "name",
        "nparams",
        "engine",
        "max_depth",
        "_template",
        "_body",
    )

    def __init__(self, engine: "CompiledEngine", fn: Function) -> None:
        self.name = fn.name
        self.nparams = len(fn.params)
        self.engine = engine
        self.max_depth = engine.config.max_call_depth
        # Filled in by _FunctionCompiler.compile (two-phase, so recursive
        # and mutually recursive calls can bind their targets up front).
        self._template: list[Value] = []
        self._body = None

    def call(self, args: Sequence[Value]) -> Value:
        """Invoke this function with evaluated *args*."""
        if len(args) != self.nparams:
            raise ArityError(self.name, self.nparams, len(args))
        engine = self.engine
        if engine._depth >= self.max_depth:
            raise call_depth_exceeded(self.name, self.max_depth)
        frame = self._template.copy()
        frame[: self.nparams] = args
        engine._depth += 1
        engine._on_enter(self.name)
        try:
            result = self._body(frame)
            return result[1] if result[0] == FLOW_RETURN else None
        finally:
            engine._on_exit(self.name)
            engine._depth -= 1


class _FunctionCompiler:
    """Lowers one :class:`Function` into closures over a slot frame."""

    def __init__(self, engine: "CompiledEngine", fn: Function) -> None:
        self.engine = engine
        self.fn = fn
        self.fn_name = fn.name
        self.slots: dict[str, int] = {}
        # Parameters occupy the first slots, in declaration order, so
        # CompiledFunction.call can splice argument values in directly.
        # Every other name gets its slot lazily as compilation reaches it;
        # the frame template is sized once the whole body is lowered.
        for param in fn.params:
            self._slot(param)

    def _slot(self, name: str) -> int:
        idx = self.slots.get(name)
        if idx is None:
            idx = len(self.slots)
            self.slots[name] = idx
        return idx

    def compile(self, target: CompiledFunction) -> None:
        """Compile the function body into *target*."""
        target._body = self._compile_block(self.fn.body)
        target._template = [_UNDEF] * len(self.slots)

    # ------------------------------------------------------------------
    # expressions

    def _compile_var(self, name: str):
        idx = self._slot(name)
        fn_name = self.fn_name

        def read(frame):
            value = frame[idx]
            if value is _UNDEF:
                raise undefined_variable(name, fn_name)
            return value

        # Fusion metadata: closures for slot reads and constants carry
        # enough information for parent nodes (binops, intrinsics) to
        # inline the access instead of paying a nested call.
        read._slot = idx
        read._vname = name
        return read

    def _compile_expr(self, expr: Expr):
        if isinstance(expr, Const):
            value = expr.value

            def const(frame):
                return value

            const._const = value
            return const
        if isinstance(expr, Var):
            return self._compile_var(expr.name)
        if isinstance(expr, BinOp):
            return self._compile_binop(expr)
        if isinstance(expr, UnOp):
            operand = self._compile_expr(expr.operand)
            if expr.op == "not":
                return lambda frame: not operand(frame)
            return lambda frame: -operand(frame)
        if isinstance(expr, Load):
            aidx = self._slot(expr.array)
            index = self._compile_expr(expr.index)
            name = expr.array
            fn_name = self.fn_name
            islot = getattr(index, "_slot", None)
            if islot is not None:
                iname = index._vname

                def load_var(frame):
                    arr = frame[aidx]
                    if isinstance(arr, Array):
                        idx = frame[islot]
                        if idx is _UNDEF:
                            raise undefined_variable(iname, fn_name)
                        return arr.load(int(idx))
                    if arr is _UNDEF:
                        raise undefined_variable(name, fn_name)
                    require_array(arr, name, fn_name)  # raises

                return load_var

            def load(frame):
                arr = frame[aidx]
                if isinstance(arr, Array):
                    return arr.load(int(index(frame)))
                if arr is _UNDEF:
                    raise undefined_variable(name, fn_name)
                require_array(arr, name, fn_name)  # raises

            return load
        if isinstance(expr, Intrinsic):
            return self._compile_intrinsic(expr)
        if isinstance(expr, Call):
            return self._compile_call(expr)
        raise InterpreterError(f"cannot evaluate {type(expr).__name__}")

    def _compile_binop(self, expr: BinOp):
        op = expr.op
        lhs = self._compile_expr(expr.lhs)
        rhs = self._compile_expr(expr.rhs)
        if op == "and":

            def and_(frame):
                left = lhs(frame)
                return rhs(frame) if truthy(left) else left

            return and_
        if op == "or":

            def or_(frame):
                left = lhs(frame)
                return left if truthy(left) else rhs(frame)

            return or_
        fn = BINOP_FUNCS.get(op)
        if fn is None:
            raise InterpreterError(f"unknown operator {op!r}")
        # Operand fusion: when an operand is a slot read or a constant,
        # inline the access into this closure instead of paying a nested
        # call per evaluation.  Evaluation order (lhs before rhs) and the
        # undefined-variable errors are preserved exactly.
        fn_name = self.fn_name
        lslot = getattr(lhs, "_slot", None)
        rslot = getattr(rhs, "_slot", None)
        lconst = getattr(lhs, "_const", _UNDEF)
        rconst = getattr(rhs, "_const", _UNDEF)
        if lslot is not None:
            lname = lhs._vname
            if rslot is not None:
                rname = rhs._vname

                def var_var(frame):
                    left = frame[lslot]
                    if left is _UNDEF:
                        raise undefined_variable(lname, fn_name)
                    right = frame[rslot]
                    if right is _UNDEF:
                        raise undefined_variable(rname, fn_name)
                    return fn(left, right)

                return var_var
            if rconst is not _UNDEF:

                def var_const(frame):
                    left = frame[lslot]
                    if left is _UNDEF:
                        raise undefined_variable(lname, fn_name)
                    return fn(left, rconst)

                return var_const

            def var_any(frame):
                left = frame[lslot]
                if left is _UNDEF:
                    raise undefined_variable(lname, fn_name)
                return fn(left, rhs(frame))

            return var_any
        if rslot is not None:
            rname = rhs._vname

            def any_var(frame):
                left = lhs(frame)
                right = frame[rslot]
                if right is _UNDEF:
                    raise undefined_variable(rname, fn_name)
                return fn(left, right)

            return any_var
        if lconst is not _UNDEF:
            return lambda frame: fn(lconst, rhs(frame))
        if rconst is not _UNDEF:
            return lambda frame: fn(lhs(frame), rconst)
        return lambda frame: fn(lhs(frame), rhs(frame))

    def _compile_intrinsic(self, expr: Intrinsic):
        name = expr.name
        arg = self._compile_expr(expr.args[0]) if expr.args else None
        if name == "work" or name == "mem_work":
            kind = CostKind.COMPUTE if name == "work" else CostKind.MEMORY
            charge = self.engine._charge
            if expr.args and isinstance(expr.args[0], Const):
                # Pre-resolved constant charge (the common shape in
                # generated kernels); negative literals keep the generic
                # path so the error still fires at execution time.
                const_amount = float(expr.args[0].value)
                if const_amount >= 0:

                    def work_const(frame):
                        charge(kind, const_amount)
                        return const_amount

                    return work_const

            def work(frame):
                amount = float(arg(frame))
                if amount < 0:
                    check_work_amount(amount)  # raises
                charge(kind, amount)
                return amount

            return work
        if name == "alloc":
            charge = self.engine._charge
            memory = CostKind.MEMORY

            def alloc(frame):
                arr, cost = alloc_array(arg(frame))
                charge(memory, cost)
                return arr

            return alloc
        fn = MATH_INTRINSICS.get(name)
        if fn is None:
            raise InterpreterError(f"unknown intrinsic {name!r}")
        return lambda frame: fn(arg(frame))

    def _compile_call(self, expr: Call):
        arg_closures = tuple(self._compile_expr(a) for a in expr.args)
        callee = expr.callee
        engine = self.engine
        charge = engine._charge
        call_cost = engine.config.call_cost
        compute = CostKind.COMPUTE
        if callee in engine.program:
            # Pre-resolved program call: bind the target's call method once.
            target_call = engine._functions[callee].call

            def call_fn(frame):
                args = [c(frame) for c in arg_closures]
                charge(compute, call_cost)
                return target_call(args)

            return call_fn

        runtime = engine.runtime

        def call_external(frame):
            args = [c(frame) for c in arg_closures]
            charge(compute, call_cost)
            if runtime.handles(callee):
                return engine._call_library(callee, args)
            raise UndefinedFunctionError(callee)

        return call_external

    # ------------------------------------------------------------------
    # statements

    def _compile_block(self, body: Sequence[Stmt]):
        closures = tuple(self._compile_stmt(s) for s in body)
        if not closures:
            return lambda frame: _NORMAL
        if len(closures) == 1:
            return closures[0]

        def block(frame):
            for closure in closures:
                result = closure(frame)
                if result[0]:
                    return result
            return _NORMAL

        return block

    def _compile_stmt(self, stmt: Stmt):
        engine = self.engine
        state = engine._steps_cell
        limit = engine.config.step_limit
        charge = engine._charge
        stmt_cost = engine.config.stmt_cost
        compute = CostKind.COMPUTE
        fn_name = self.fn_name

        if isinstance(stmt, Assign):
            idx = self._slot(stmt.name)
            value_c = self._compile_expr(stmt.value)

            def assign(frame):
                state[0] = n = state[0] + 1
                if n > limit:
                    raise step_limit_exceeded(fn_name, limit)
                charge(compute, stmt_cost)
                frame[idx] = value_c(frame)
                return _NORMAL

            return assign

        if isinstance(stmt, ExprStmt):
            expr_c = self._compile_expr(stmt.expr)

            def expr_stmt(frame):
                state[0] = n = state[0] + 1
                if n > limit:
                    raise step_limit_exceeded(fn_name, limit)
                charge(compute, stmt_cost)
                expr_c(frame)
                return _NORMAL

            return expr_stmt

        if isinstance(stmt, Store):
            aidx = self._slot(stmt.array)
            index_c = self._compile_expr(stmt.index)
            value_c = self._compile_expr(stmt.value)
            array_name = stmt.array
            islot = getattr(index_c, "_slot", None)
            iname = getattr(index_c, "_vname", None)

            def store(frame):
                state[0] = n = state[0] + 1
                if n > limit:
                    raise step_limit_exceeded(fn_name, limit)
                charge(compute, stmt_cost)
                arr = frame[aidx]
                if not isinstance(arr, Array):
                    if arr is _UNDEF:
                        raise undefined_variable(array_name, fn_name)
                    require_array(arr, array_name, fn_name)  # raises
                if islot is None:
                    idx = index_c(frame)
                else:
                    idx = frame[islot]
                    if idx is _UNDEF:
                        raise undefined_variable(iname, fn_name)
                val = value_c(frame)
                arr.store(int(idx), float(val))
                return _NORMAL

            return store

        if isinstance(stmt, Return):
            if stmt.value is None:

                def return_void(frame):
                    state[0] = n = state[0] + 1
                    if n > limit:
                        raise step_limit_exceeded(fn_name, limit)
                    return _RETURN_NONE

                return return_void
            value_c = self._compile_expr(stmt.value)

            def return_value(frame):
                state[0] = n = state[0] + 1
                if n > limit:
                    raise step_limit_exceeded(fn_name, limit)
                return (FLOW_RETURN, value_c(frame))

            return return_value

        if isinstance(stmt, Break):

            def break_(frame):
                state[0] = n = state[0] + 1
                if n > limit:
                    raise step_limit_exceeded(fn_name, limit)
                return _BREAK

            return break_

        if isinstance(stmt, Continue):

            def continue_(frame):
                state[0] = n = state[0] + 1
                if n > limit:
                    raise step_limit_exceeded(fn_name, limit)
                return _CONTINUE

            return continue_

        if isinstance(stmt, If):
            cond_c = self._compile_expr(stmt.cond)
            then_b = self._compile_block(stmt.then_body)
            else_b = self._compile_block(stmt.else_body)

            def if_(frame):
                state[0] = n = state[0] + 1
                if n > limit:
                    raise step_limit_exceeded(fn_name, limit)
                if truthy(cond_c(frame)):
                    return then_b(frame)
                return else_b(frame)

            return if_

        if isinstance(stmt, For):
            return self._compile_for(stmt)
        if isinstance(stmt, While):
            return self._compile_while(stmt)
        raise InterpreterError(f"cannot execute {type(stmt).__name__}")

    def _compile_for(self, stmt: For):
        engine = self.engine
        state = engine._steps_cell
        limit = engine.config.step_limit
        charge = engine._charge
        iter_cost = engine.config.loop_iter_cost
        compute = CostKind.COMPUTE
        memory = CostKind.MEMORY
        fn_name = self.fn_name
        on_iters = engine._on_loop_iterations
        on_aggregate = engine._on_aggregate_calls

        start_c = self._compile_expr(stmt.start)
        stop_c = self._compile_expr(stmt.stop)
        step_c = self._compile_expr(stmt.step)
        body_b = self._compile_block(stmt.body)
        var_idx = self._slot(stmt.var)
        loop_id = stmt.loop_id
        loop_key = (fn_name, loop_id)

        # Fast-path plan (compile-time): plans are static per loop; the
        # planner's execute() re-checks runtime validity (step > 0 etc.)
        # and returns None to force the genuine-iteration path, exactly as
        # the tree-walker does.
        plan: LoopPlan | None = None
        pure_tbl: dict[int, object] = {}
        if engine.config.fast_loops:
            plan = engine._planner.plan(fn_name, stmt)
            if plan is not None:
                self._collect_plan_exprs(plan, pure_tbl)
        planner = engine._planner
        start_key = id(stmt.start)
        step_key = id(stmt.step)

        def for_(frame):
            state[0] = n = state[0] + 1
            if n > limit:
                raise step_limit_exceeded(fn_name, limit)
            if plan is not None:
                result = planner.execute(
                    plan, lambda e: pure_tbl[id(e)](frame)
                )
                if result is not None:
                    if result.compute:
                        charge(compute, result.compute)
                    if result.memory:
                        charge(memory, result.memory)
                    for (lfn, lid), iters in result.loop_iterations.items():
                        on_iters(lfn, lid, iters)
                    for callee, (count, unit) in result.calls.items():
                        on_aggregate(callee, count, unit.compute, unit.memory)
                    # Loop variable's final value: start + trips * step.
                    trips = result.loop_iterations.get(loop_key, 0)
                    frame[var_idx] = (
                        pure_tbl[start_key](frame)
                        + trips * pure_tbl[step_key](frame)
                    )
                    return _NORMAL
            # Genuine iteration.  Bounds are evaluated once at entry
            # (language semantics; matches the fast path).
            start = start_c(frame)
            stop = stop_c(frame)
            step = step_c(frame)
            if not isinstance(step, (int, float)) or step <= 0:
                raise bad_loop_step(step, fn_name)
            frame[var_idx] = start
            iters = 0
            result = _NORMAL
            while frame[var_idx] < stop:
                state[0] = n = state[0] + 1
                if n > limit:
                    raise step_limit_exceeded(fn_name, limit)
                charge(compute, iter_cost)
                iters += 1
                result = body_b(frame)
                flow = result[0]
                if flow:
                    if flow == FLOW_BREAK:
                        result = _NORMAL
                        break
                    if flow == FLOW_RETURN:
                        break
                    result = _NORMAL  # FLOW_CONTINUE: resume iteration
                frame[var_idx] = frame[var_idx] + step
            if iters:
                on_iters(fn_name, loop_id, iters)
            return result

        return for_

    def _collect_plan_exprs(self, plan: LoopPlan, table: dict[int, object]) -> None:
        """Pre-compile every pure expression a fast-path plan evaluates."""
        loop = plan.loop
        for expr in (loop.start, loop.stop, loop.step):
            if id(expr) not in table:
                table[id(expr)] = self._compile_expr(expr)
        for _name, arg in plan.intrinsics:
            if id(arg) not in table:
                table[id(arg)] = self._compile_expr(arg)
        for sub in plan.nested:
            self._collect_plan_exprs(sub, table)

    def _compile_while(self, stmt: While):
        engine = self.engine
        state = engine._steps_cell
        limit = engine.config.step_limit
        charge = engine._charge
        iter_cost = engine.config.loop_iter_cost
        compute = CostKind.COMPUTE
        fn_name = self.fn_name
        on_iters = engine._on_loop_iterations

        cond_c = self._compile_expr(stmt.cond)
        body_b = self._compile_block(stmt.body)
        loop_id = stmt.loop_id

        def while_(frame):
            state[0] = n = state[0] + 1
            if n > limit:
                raise step_limit_exceeded(fn_name, limit)
            iters = 0
            result = _NORMAL
            while truthy(cond_c(frame)):
                state[0] = n = state[0] + 1
                if n > limit:
                    raise step_limit_exceeded(fn_name, limit)
                charge(compute, iter_cost)
                iters += 1
                result = body_b(frame)
                flow = result[0]
                if flow:
                    if flow == FLOW_BREAK:
                        result = _NORMAL
                        break
                    if flow == FLOW_RETURN:
                        break
                    result = _NORMAL  # FLOW_CONTINUE: resume iteration
            if iters:
                on_iters(fn_name, loop_id, iters)
            return result

        return while_


class CompiledEngine:
    """Executes a program compiled to closures, metering simulated cost.

    Drop-in equivalent of :class:`~repro.interp.interpreter.Interpreter`
    (same constructor, same :meth:`run` contract, bit-identical
    :class:`~repro.interp.metrics.RunResult`, events and errors), minus
    the per-node ``_eval_*``/``_exec_*`` override hooks — shadow-tracking
    analyses use :class:`~repro.interp.shadowjit.CompiledShadowEngine`,
    which overrides only :meth:`_compile_functions`.

    The program is lowered once at construction; every subsequent
    :meth:`run` executes pre-dispatched closures.
    """

    def __init__(
        self,
        program: Program,
        runtime: LibraryRuntime | None = None,
        config: ExecConfig = DEFAULT_CONFIG,
        listener: ExecutionListener | None = None,
    ) -> None:
        self.program = program
        self.runtime: LibraryRuntime = runtime or NoLibraryRuntime()
        self.config = config
        self.listener: ExecutionListener = listener or NullListener()
        self.metrics = MetricsCollector()
        self._steps_cell = [0]
        self._depth = 0
        self._planner = FastPathPlanner(program, config)
        self._bind_event_sinks()
        self._compile_functions()

    def _compile_functions(self) -> None:
        """Lower every program function (overridden by shadow engines).

        Two-phase compile: create every function shell first so call
        sites (including recursive ones) bind their targets directly,
        then lower the bodies.
        """
        program = self.program
        self._functions: dict[str, CompiledFunction] = {
            name: CompiledFunction(self, fn)
            for name, fn in program.functions.items()
        }
        for name, fn in program.functions.items():
            _FunctionCompiler(self, fn).compile(self._functions[name])

    def _bind_event_sinks(self) -> None:
        """Pre-bind the metrics+listener event fan-out.

        When the listener is exactly a do-nothing :class:`NullListener`
        the listener half is dropped from the hot path entirely — an
        unobservable optimization (every dropped call was a no-op).
        """
        metrics = self.metrics
        listener = self.listener
        if type(listener) is NullListener:
            self._charge = metrics.cost_sink()
            self._on_enter = metrics.on_enter
            self._on_exit = metrics.on_exit
            self._on_loop_iterations = metrics.on_loop_iterations
            self._on_aggregate_calls = metrics.on_aggregate_calls
            return

        m_cost = metrics.cost_sink()
        l_cost = listener.on_cost
        m_enter = metrics.on_enter
        l_enter = listener.on_enter
        m_exit = metrics.on_exit
        l_exit = listener.on_exit
        m_iters = metrics.on_loop_iterations
        l_iters = listener.on_loop_iterations
        m_agg = metrics.on_aggregate_calls
        l_agg = listener.on_aggregate_calls

        def charge(kind: CostKind, amount: float) -> None:
            m_cost(kind, amount)
            l_cost(kind, amount)

        def on_enter(name: str) -> None:
            m_enter(name)
            l_enter(name)

        def on_exit(name: str) -> None:
            m_exit(name)
            l_exit(name)

        def on_loop_iterations(fn: str, loop_id: int, count: int) -> None:
            m_iters(fn, loop_id, count)
            l_iters(fn, loop_id, count)

        def on_aggregate_calls(
            callee: str, count: int, unit_compute: float, unit_memory: float
        ) -> None:
            m_agg(callee, count, unit_compute, unit_memory)
            l_agg(callee, count, unit_compute, unit_memory)

        self._charge = charge
        self._on_enter = on_enter
        self._on_exit = on_exit
        self._on_loop_iterations = on_loop_iterations
        self._on_aggregate_calls = on_aggregate_calls

    # ------------------------------------------------------------------
    # entry point

    @property
    def steps(self) -> int:
        """Statements/iterations executed so far (across runs)."""
        return self._steps_cell[0]

    def run(
        self,
        args: Mapping[str, Value] | Sequence[Value] = (),
        entry: str | None = None,
    ) -> RunResult:
        """Execute the entry function with *args* and return the result."""
        name, _fn, argvals = resolve_entry_args(self.program, args, entry)
        value = self._functions[name].call(argvals)
        return RunResult(
            value=value, metrics=self.metrics, steps=self._steps_cell[0]
        )

    # ------------------------------------------------------------------
    # library calls

    def _call_library(self, name: str, args: Sequence[Value]) -> Value:
        return execute_library_call(
            self.runtime, name, args, self.metrics, self.listener, self._charge
        )
