"""Execution semantics shared by every engine and analysis domain.

Engines execute repro-IR programs under the discrete cost model: the
tree-walking :class:`~repro.interp.interpreter.Interpreter` /
:class:`~repro.interp.shadowtree.ShadowInterpreter` pair and the
closure-compiling :class:`~repro.interp.compile.CompiledEngine` /
:class:`~repro.interp.shadowjit.CompiledShadowEngine` pair used on the
measurement and taint hot paths.  Everything *semantic* — what an
operator computes, what an intrinsic does, what errors look like, how
library calls are metered — lives here, once, so the engines can only
differ in dispatch strategy, never in meaning.

The shadow dimension is parameterized by a pluggable
:class:`~repro.interp.domain.AnalysisDomain`: the value rules below are
fixed, and the domain supplies the paired shadow rules (joins, policy
gates, sinks).  Rules whose *ordering* couples values, costs and
shadows — the library-call protocol — take the domain explicitly here
so no engine can interleave them differently.  The differential
property tests (``tests/interp/test_compiled_differential.py``) enforce
bit-identical behaviour, concrete and shadow alike, on top of this
shared core.
"""

from __future__ import annotations

import math
import operator
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

from ..errors import (
    ExecutionLimitError,
    InterpreterError,
    UndefinedVariableError,
)
from .events import CostKind
from .values import Array, Value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..ir.program import Function, Program
    from .domain import AnalysisDomain
    from .events import ExecutionListener
    from .metrics import MetricsCollector
    from .runtime import LibraryRuntime

# ----------------------------------------------------------------------
# control-flow signals
#
# Statement execution returns (flow, value).  FLOW_NORMAL is zero so
# engines can use plain truthiness to detect early exits.

FLOW_NORMAL = 0
FLOW_BREAK = 1
FLOW_CONTINUE = 2
FLOW_RETURN = 3


# ----------------------------------------------------------------------
# operator semantics
#
# One table, used by the tree-walker per evaluation and pre-bound into
# closures by the compiler.  The callables are C-level where possible so
# neither engine pays Python-level branching per operation.

BINOP_FUNCS: dict[str, Callable[[Value, Value], Value]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    "//": operator.floordiv,
    "%": operator.mod,
    "**": operator.pow,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "==": operator.eq,
    "!=": operator.ne,
    "min": min,
    "max": max,
}


def apply_binop(op: str, lhs: Value, rhs: Value) -> Value:
    """Apply a non-short-circuiting binary operator."""
    fn = BINOP_FUNCS.get(op)
    if fn is None:
        raise InterpreterError(f"unknown operator {op!r}")
    return fn(lhs, rhs)


def apply_unop(op: str, operand: Value) -> Value:
    """Apply a unary operator (``not`` or negation)."""
    return (not operand) if op == "not" else -operand


def _log2(value: Value) -> float:
    return math.log2(value) if value > 0 else 0.0


#: Pure math intrinsics (everything except the cost sinks and ``alloc``).
MATH_INTRINSICS: dict[str, Callable[[Value], Value]] = {
    "log2": _log2,
    "sqrt": math.sqrt,
    "abs": abs,
    "int": int,
}

#: Memory cost charged per allocated array element.
ALLOC_COST_PER_ELEMENT = 0.01


def alloc_array(size: Value) -> tuple[Array, float]:
    """``alloc(n)`` semantics: the array and the memory cost to charge."""
    n = int(size)
    return Array(n), float(n) * ALLOC_COST_PER_ELEMENT


def check_work_amount(amount: float) -> float:
    """Validate a ``work``/``mem_work`` amount (must be non-negative)."""
    if amount < 0:
        raise InterpreterError("negative work amount")
    return amount


def require_array(value: Value, name: str, function: str) -> Array:
    """Array-operand check shared by ``Load``/``Store`` in both engines."""
    if not isinstance(value, Array):
        raise InterpreterError(
            f"'{name}' is not an array in function '{function}'"
        )
    return value


# ----------------------------------------------------------------------
# limit and error semantics
#
# Limit errors always name the offending function and the configured
# limit value, and expose both as attributes for programmatic handling.


def step_limit_exceeded(function: str, limit: int) -> ExecutionLimitError:
    """Error raised when a run exceeds ``ExecConfig.step_limit``."""
    return ExecutionLimitError(
        f"function '{function}' exceeded the configured step limit "
        f"of {limit} steps",
        function=function,
        limit=limit,
    )


def call_depth_exceeded(function: str, limit: int) -> ExecutionLimitError:
    """Error raised when a call would exceed ``ExecConfig.max_call_depth``."""
    return ExecutionLimitError(
        f"call to '{function}' exceeded the configured call-depth limit "
        f"of {limit} frames",
        function=function,
        limit=limit,
    )


def bad_loop_step(step: Value, function: str) -> InterpreterError:
    """Error raised for a non-positive / non-numeric ``For`` step."""
    return InterpreterError(
        f"loop step must be a positive number, got {step!r} "
        f"in function '{function}'"
    )


def undefined_variable(name: str, function: str) -> UndefinedVariableError:
    """Error raised when a variable is read before assignment."""
    return UndefinedVariableError(name, function)


# ----------------------------------------------------------------------
# entry-point semantics


def resolve_entry_args(
    program: "Program",
    args: Mapping[str, Value] | Sequence[Value],
    entry: str | None,
) -> tuple[str, "Function", list[Value]]:
    """Resolve the entry function and its positional argument values.

    Mapping arguments are matched against the entry's parameter names
    (missing names raise), sequences are taken positionally.
    """
    name = entry or program.entry
    fn = program.function(name)
    if isinstance(args, Mapping):
        missing = [p for p in fn.params if p not in args]
        if missing:
            raise InterpreterError(
                f"missing entry argument(s) {missing} for '{name}'"
            )
        argvals = [args[p] for p in fn.params]
    else:
        argvals = list(args)
    return name, fn, argvals


# ----------------------------------------------------------------------
# library-call semantics


def execute_library_call(
    runtime: "LibraryRuntime",
    name: str,
    args: Sequence[Value],
    metrics: "MetricsCollector",
    listener: "ExecutionListener",
    charge: Callable[[CostKind, float], None],
) -> Value:
    """Invoke a library routine, metering its costs between enter/exit.

    Both engines route external calls through this function so event
    order (enter, per-kind costs, exit) is identical by construction.
    """
    result = runtime.call(name, args)
    metrics.on_enter(name)
    listener.on_enter(name)
    for kind, amount in result.costs.items():
        charge(kind, amount)
    metrics.on_exit(name)
    listener.on_exit(name)
    return result.value


def execute_shadow_library_call(
    domain: "AnalysisDomain",
    runtime: "LibraryRuntime",
    name: str,
    args: Sequence[Value],
    arg_shadows: Sequence,
    metrics: "MetricsCollector",
    listener: "ExecutionListener",
    charge: Callable[[CostKind, float], None],
    callpath: tuple,
) -> tuple:
    """Shadow-domain variant of :func:`execute_library_call`.

    Meters the call through :func:`execute_library_call` (one metering
    protocol, concrete and shadow alike), then asks the *domain* for the
    return value's shadow (library sources, data flow through the call)
    and attaches the active control regions.  Both shadow engines route
    external calls through this function so neither can diverge on
    metering or on shadow semantics.
    """
    value = execute_library_call(runtime, name, args, metrics, listener, charge)
    caller = callpath[-1] if callpath else "<toplevel>"
    shadow = domain.on_library_call(callpath, caller, name, args, arg_shadows)
    return value, domain.with_control(shadow)
