"""Analysis domains: the pluggable shadow half of program execution.

Execution of a repro-IR program factors into two orthogonal pieces:

* the **value domain** — what an operator computes, what an intrinsic
  does, what a library call returns and costs.  This is fixed; it lives
  in :mod:`repro.interp.semantics` and is shared verbatim by every
  engine.
* the **shadow domain** — an optional lattice of facts tracked alongside
  every live value (taint labels today; provenance sets or intervals
  tomorrow), plus the propagation rules and analysis sinks that consume
  those facts.

An :class:`AnalysisDomain` packages the shadow half.  Engines are
*dispatch strategies* over the pair: the tree-walking
:class:`~repro.interp.shadowtree.ShadowInterpreter` and the
closure-compiling :class:`~repro.interp.shadowjit.CompiledShadowEngine`
both execute the same value semantics and call the same domain hooks at
the same program points, so any domain observes an identical event
sequence regardless of engine — the property the taint differential
tests (``tests/interp/test_compiled_differential.py``) enforce.

:class:`ConcreteDomain` is the identity domain: no shadow state, every
hook a no-op.  The plain :class:`~repro.interp.interpreter.Interpreter`
and :class:`~repro.interp.compile.CompiledEngine` are hand-specialized
for it — running a shadow engine with ``ConcreteDomain`` is semantically
equivalent, just slower.  :func:`repro.interp.make_engine` picks the
specialized classes whenever the domain tracks no shadow.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .values import Array, Value

#: Call path type threaded into domain sinks (innermost function last).
CallPath = tuple[str, ...]


class AnalysisDomain:
    """Shadow lattice + propagation rules + sinks for one analysis.

    Shadows are opaque to the engines: they only ever copy them between
    slots, pass them to hooks, and compare them against :attr:`clean`
    (identity comparison via ``==``).  Every rule about how shadows
    combine — joins, policy gates, control regions, heap state — lives on
    the domain, so engines can only differ in dispatch, never in
    analysis meaning.

    Engines pre-specialize the common all-clean case, so domains must
    honor the bottom laws — clean is a two-sided identity of ``join``
    (``join(clean, x) == join(x, clean) == x``), ``data(clean) ==
    clean`` and ``data_join(clean, clean) == clean``.  (Any sane
    lattice does; the compiled engine skips no-op joins against clean
    on either side.)
    """

    #: Registry-style identifier (participates in artifact fingerprints).
    name: str = "concrete"
    #: Whether this domain carries any shadow state at all.  When False,
    #: :func:`repro.interp.make_engine` uses the specialized concrete
    #: engines instead of a generic shadow engine.
    tracks_shadow: bool = False
    #: Whether O(1) closed-form loop execution is sound under this
    #: domain.  Shadow domains whose sinks need genuine per-iteration
    #: facts (taint's loop-count sinks) must say False; engines then
    #: force real iteration even when ``ExecConfig.fast_loops`` is set.
    supports_fastpath: bool = True

    #: The bottom lattice element (the shadow of untainted data).
    clean: object = None

    # -- lattice ---------------------------------------------------------

    def join(self, a, b):
        """Least upper bound of two shadows."""
        return self.clean

    def join_all(self, shadows: Sequence) -> object:
        """Fold :meth:`join` over *shadows* (clean for an empty sequence)."""
        out = self.clean
        for shadow in shadows:
            out = self.join(out, shadow)
        return out

    # -- propagation gates -------------------------------------------------

    def data(self, shadow):
        """Gate one shadow through the domain's data-flow rule."""
        return self.clean

    def data_join(self, a, b):
        """Join two operand shadows under the data-flow rule."""
        return self.clean

    # -- control regions -----------------------------------------------------

    #: True when entering a region controlled by a non-clean shadow must
    #: be bracketed with :meth:`push_branch`/:meth:`push_loop` + ``pop``.
    tracks_control: bool = False
    #: True when the not-taken side of a branch with a non-clean
    #: condition must be reported via :meth:`on_implicit_flow`.
    tracks_implicit: bool = False

    def push_branch(self, shadow) -> None:
        """Enter a branch body controlled by *shadow*."""

    def push_loop(self, shadow, assigned: frozenset) -> None:
        """Enter a loop body controlled by *shadow*; *assigned* is the
        set of names assigned inside the body (loop-carried state)."""

    def pop_control(self) -> None:
        """Leave the innermost control region."""

    def with_control(self, shadow, reads: frozenset = frozenset()):
        """Shadow to attach to a value computed from *reads* and assigned
        under the currently active control regions."""
        return shadow

    # -- heap (array element) shadows ---------------------------------------

    def load_element(self, array: "Array", index: int):
        """Shadow of ``array[index]``."""
        return self.clean

    def store_element(self, array: "Array", index: int, shadow) -> None:
        """Record the shadow stored into ``array[index]``."""

    # -- sinks ----------------------------------------------------------------

    def on_branch(
        self,
        callpath: CallPath,
        function: str,
        branch_id: int,
        cond_shadow,
        taken: bool,
    ) -> None:
        """A non-loop conditional evaluated to *taken* under *cond_shadow*."""

    def on_loop(
        self,
        callpath: CallPath,
        function: str,
        loop_id: int,
        sink_shadow,
        iterations: int,
    ) -> None:
        """A loop exited after *iterations* with exit-condition shadow."""

    def on_implicit_flow(self, cond_shadow, current):
        """Shadow for a value the *not-taken* branch would have assigned."""
        return current

    def on_library_call(
        self,
        callpath: CallPath,
        caller: str,
        routine: str,
        args: Sequence["Value"],
        arg_shadows: Sequence,
    ):
        """Shadow of a library call's return value (pre-control)."""
        return self.clean

    # -- call protocol ---------------------------------------------------------

    def on_function_entered(self, name: str) -> None:
        """A program function began executing."""

    def on_recursive_call(self, name: str) -> None:
        """A call to *name* found *name* already on the call stack."""


class ConcreteDomain(AnalysisDomain):
    """The identity domain: concrete values only, no shadow facts.

    Exists so the domain-parameterized engines have a well-defined
    degenerate point (useful in tests proving shadow execution does not
    perturb values); production concrete runs use the specialized
    :class:`~repro.interp.interpreter.Interpreter` /
    :class:`~repro.interp.compile.CompiledEngine` instead.
    """


__all__ = ["AnalysisDomain", "CallPath", "ConcreteDomain"]
