"""Execution substrate: metered execution of repro-IR programs.

Execution factors into **engines** (dispatch strategies) × **analysis
domains** (optional shadow lattices, see :mod:`repro.interp.domain`),
over one shared semantics core (:mod:`repro.interp.semantics`):

* :class:`Interpreter` — the tree-walking engine.  Subclassable per-node
  hooks; :class:`ShadowInterpreter` is its domain-parameterized shadow
  sibling.
* :class:`CompiledEngine` — the IR-to-closure compiler
  (:mod:`repro.interp.compile`).  Lowers a finalized program once and
  executes pre-dispatched closures; the default for measurement runs.
  :class:`CompiledShadowEngine` is its shadow sibling — shadows travel
  through the same pre-resolved frame slots as values; the default for
  taint runs.

Construct engines through :func:`make_engine` rather than instantiating
any class directly — callers then inherit new engines (and the
"which engine for which job" defaults) automatically.  Passing a
shadow-tracking :class:`~repro.interp.domain.AnalysisDomain` selects an
engine's shadow variant; engines declare domain support via the
``supports_taint`` registry metadata.
"""

from ..errors import RegistryError
from ..registry import ENGINE_REGISTRY, register_engine
from .compile import CompiledEngine, CompiledFunction
from .config import DEFAULT_CONFIG, ExecConfig
from .domain import AnalysisDomain, ConcreteDomain
from .events import CostKind, ExecutionListener, MultiListener, NullListener
from .fastpath import FastPathPlanner, LeafCost, leaf_unit_cost
from .interpreter import Interpreter
from .metrics import FunctionMetrics, MetricsCollector, RunResult
from .runtime import (
    LibraryCall,
    LibraryRuntime,
    NoLibraryRuntime,
    TableRuntime,
)
from .shadowjit import CompiledShadowEngine
from .shadowtree import ShadowInterpreter
from .values import Array, Scalar, Value, truthy
from .vectorize import BatchedMetrics, VectorFallback, VectorizedEngine

#: The tree-walking engine (subclassable per-node hooks).
ENGINE_TREE = "tree"
#: The closure-compiling engine (measurement + taint hot paths).
ENGINE_COMPILED = "compiled"
#: The batched tensor engine (whole-sweep measurement hot path).
ENGINE_VECTORIZED = "vectorized"
#: Built-in engine identifiers, in preference order for measurement.
#: The full (user-extensible) set lives in the engine registry.
ENGINES: tuple[str, ...] = (ENGINE_COMPILED, ENGINE_TREE)

register_engine(
    ENGINE_COMPILED,
    help="IR-to-closure compiler (measurement + taint hot paths)",
    supports_taint=True,
    shadow_factory=CompiledShadowEngine,
)(CompiledEngine)
register_engine(
    ENGINE_TREE,
    help="tree-walking interpreter (subclassable per-node hooks)",
    supports_taint=True,
    shadow_factory=ShadowInterpreter,
)(Interpreter)
register_engine(
    ENGINE_VECTORIZED,
    help="batched tensor engine (one pass per sweep, bit-identical lanes)",
    supports_taint=False,
    supports_batch=True,
)(VectorizedEngine)

#: Engine used by the measurement layer unless a caller overrides it.
DEFAULT_MEASUREMENT_ENGINE = ENGINE_COMPILED
#: Engine used by the taint stage unless a caller overrides it.  Both
#: built-ins produce bit-identical TaintReports; the compiled engine is
#: ~2-4x faster on real programs (see benchmarks/bench_taint_speedup.py).
DEFAULT_TAINT_ENGINE = ENGINE_COMPILED


def batch_capable_engines() -> tuple[str, ...]:
    """Names of registered engines whose ``run_batch`` executes a whole
    batch of lanes in one call (``supports_batch`` metadata)."""
    return tuple(
        entry.name
        for entry in ENGINE_REGISTRY
        if entry.metadata.get("supports_batch")
    )


def shadow_capable_engines() -> tuple[str, ...]:
    """Names of registered engines that can execute shadow domains.

    Capability requires both the ``supports_taint`` declaration and the
    ``shadow_factory`` that actually executes the domain — an entry
    declaring one without the other is not capable, so everything that
    validates against this list (CLI choices, campaign specs) agrees
    with what :func:`make_engine` will accept.
    """
    return tuple(
        entry.name
        for entry in ENGINE_REGISTRY
        if entry.metadata.get("supports_taint")
        and entry.metadata.get("shadow_factory") is not None
    )


def shadow_engine_identity(engine: str) -> str:
    """Stable identity of *engine*'s shadow implementation.

    Artifact fingerprints of shadow-domain stages (taint) must key on
    the class that actually executes the analysis — the registry
    entry's ``shadow_factory`` — not just the concrete factory, so
    re-registering an engine name with a different shadow
    implementation invalidates cached artifacts.
    """
    entry = ENGINE_REGISTRY.entry(engine)
    base = ENGINE_REGISTRY.identity(engine)
    factory = entry.metadata.get("shadow_factory")
    if factory is None:
        return base
    module = getattr(factory, "__module__", "?")
    qualname = getattr(
        factory, "__qualname__", getattr(factory, "__name__", "?")
    )
    return f"{base}+shadow:{module}.{qualname}"


def make_engine(
    program,
    engine: str = ENGINE_TREE,
    runtime: "LibraryRuntime | None" = None,
    config: ExecConfig = DEFAULT_CONFIG,
    listener: "ExecutionListener | None" = None,
    domain: "AnalysisDomain | None" = None,
) -> "Interpreter | CompiledEngine | ShadowInterpreter | CompiledShadowEngine":
    """Construct an execution engine for *program*.

    *engine* names an entry of the engine registry: ``"tree"`` (the
    subclassable tree-walker, the default for direct use), ``"compiled"``
    (the closure compiler the measurement and taint layers use), or any
    engine registered by user code via
    :func:`repro.registry.register_engine`.  The built-ins produce
    bit-identical :class:`~repro.interp.metrics.RunResult` objects, events
    and errors; they differ only in dispatch cost.

    *domain* selects the analysis domain.  ``None`` (or any domain with
    ``tracks_shadow=False``) yields the concrete engine; a
    shadow-tracking domain (e.g. :class:`repro.taint.domain.TaintDomain`)
    yields the engine's shadow variant — the class its registry entry
    names as ``shadow_factory`` — which executes the same value
    semantics while threading the domain's shadows.  Engines registered
    without a shadow factory raise :class:`~repro.errors.RegistryError`
    for shadow domains.
    """
    entry = ENGINE_REGISTRY.entry(engine)
    if domain is None or not domain.tracks_shadow:
        return entry.factory(
            program, runtime=runtime, config=config, listener=listener
        )
    shadow_factory = entry.metadata.get("shadow_factory")
    if shadow_factory is None:
        capable = ", ".join(shadow_capable_engines()) or "<none>"
        raise RegistryError(
            f"engine '{engine}' does not support analysis domains "
            f"(domain '{domain.name}' requested; domain-capable engines: "
            f"{capable})"
        )
    return shadow_factory(
        program,
        runtime=runtime,
        config=config,
        listener=listener,
        domain=domain,
    )


__all__ = [
    "AnalysisDomain",
    "Array",
    "CompiledEngine",
    "CompiledFunction",
    "CompiledShadowEngine",
    "ConcreteDomain",
    "CostKind",
    "DEFAULT_CONFIG",
    "DEFAULT_MEASUREMENT_ENGINE",
    "DEFAULT_TAINT_ENGINE",
    "BatchedMetrics",
    "ENGINES",
    "ENGINE_COMPILED",
    "ENGINE_TREE",
    "ENGINE_VECTORIZED",
    "ExecConfig",
    "ExecutionListener",
    "FastPathPlanner",
    "FunctionMetrics",
    "Interpreter",
    "LeafCost",
    "LibraryCall",
    "LibraryRuntime",
    "MetricsCollector",
    "MultiListener",
    "NoLibraryRuntime",
    "NullListener",
    "RunResult",
    "Scalar",
    "ShadowInterpreter",
    "TableRuntime",
    "Value",
    "VectorFallback",
    "VectorizedEngine",
    "batch_capable_engines",
    "leaf_unit_cost",
    "make_engine",
    "shadow_capable_engines",
    "shadow_engine_identity",
    "truthy",
]
