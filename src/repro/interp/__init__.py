"""Execution substrate: metered execution of repro-IR programs.

Two engines share one semantics core (:mod:`repro.interp.semantics`):

* :class:`Interpreter` — the tree-walking engine.  Subclassable per-node
  hooks; the taint engine (:mod:`repro.taint`) extends it with shadow
  state.
* :class:`CompiledEngine` — the IR-to-closure compiler
  (:mod:`repro.interp.compile`).  Lowers a finalized program once and
  executes pre-dispatched closures; the default for measurement runs.

Construct engines through :func:`make_engine` rather than instantiating
either class directly — callers then inherit new engines (and the
"which engine for which job" defaults) automatically.
"""

from .compile import CompiledEngine, CompiledFunction
from .config import DEFAULT_CONFIG, ExecConfig
from .events import CostKind, ExecutionListener, MultiListener, NullListener
from .fastpath import FastPathPlanner, LeafCost, leaf_unit_cost
from .interpreter import Interpreter
from .metrics import FunctionMetrics, MetricsCollector, RunResult
from .runtime import (
    LibraryCall,
    LibraryRuntime,
    NoLibraryRuntime,
    TableRuntime,
)
from .values import Array, Scalar, Value, truthy

#: The tree-walking engine (taint analysis, per-node extension hooks).
ENGINE_TREE = "tree"
#: The closure-compiling engine (measurement hot path).
ENGINE_COMPILED = "compiled"
#: All valid engine identifiers, in preference order for measurement.
ENGINES: tuple[str, ...] = (ENGINE_COMPILED, ENGINE_TREE)

#: Engine used by the measurement layer unless a caller overrides it.
#: Taint runs always use the tree-walker (the taint engine subclasses
#: its per-node hooks), independent of this default.
DEFAULT_MEASUREMENT_ENGINE = ENGINE_COMPILED


def make_engine(
    program,
    engine: str = ENGINE_TREE,
    runtime: "LibraryRuntime | None" = None,
    config: ExecConfig = DEFAULT_CONFIG,
    listener: "ExecutionListener | None" = None,
) -> "Interpreter | CompiledEngine":
    """Construct an execution engine for *program*.

    *engine* is ``"tree"`` (the subclassable tree-walker, the default for
    direct use) or ``"compiled"`` (the closure compiler the measurement
    layer uses).  Both produce bit-identical
    :class:`~repro.interp.metrics.RunResult` objects, events and errors;
    they differ only in dispatch cost.
    """
    if engine == ENGINE_TREE:
        return Interpreter(
            program, runtime=runtime, config=config, listener=listener
        )
    if engine == ENGINE_COMPILED:
        return CompiledEngine(
            program, runtime=runtime, config=config, listener=listener
        )
    raise ValueError(
        f"unknown engine {engine!r} (valid engines: {', '.join(ENGINES)})"
    )


__all__ = [
    "Array",
    "CompiledEngine",
    "CompiledFunction",
    "CostKind",
    "DEFAULT_CONFIG",
    "DEFAULT_MEASUREMENT_ENGINE",
    "ENGINES",
    "ENGINE_COMPILED",
    "ENGINE_TREE",
    "ExecConfig",
    "ExecutionListener",
    "FastPathPlanner",
    "FunctionMetrics",
    "Interpreter",
    "LeafCost",
    "LibraryCall",
    "LibraryRuntime",
    "MetricsCollector",
    "MultiListener",
    "NoLibraryRuntime",
    "NullListener",
    "RunResult",
    "Scalar",
    "TableRuntime",
    "Value",
    "leaf_unit_cost",
    "make_engine",
    "truthy",
]
