"""Execution substrate: metered execution of repro-IR programs.

Two engines share one semantics core (:mod:`repro.interp.semantics`):

* :class:`Interpreter` — the tree-walking engine.  Subclassable per-node
  hooks; the taint engine (:mod:`repro.taint`) extends it with shadow
  state.
* :class:`CompiledEngine` — the IR-to-closure compiler
  (:mod:`repro.interp.compile`).  Lowers a finalized program once and
  executes pre-dispatched closures; the default for measurement runs.

Construct engines through :func:`make_engine` rather than instantiating
either class directly — callers then inherit new engines (and the
"which engine for which job" defaults) automatically.
"""

from ..registry import ENGINE_REGISTRY, register_engine
from .compile import CompiledEngine, CompiledFunction
from .config import DEFAULT_CONFIG, ExecConfig
from .events import CostKind, ExecutionListener, MultiListener, NullListener
from .fastpath import FastPathPlanner, LeafCost, leaf_unit_cost
from .interpreter import Interpreter
from .metrics import FunctionMetrics, MetricsCollector, RunResult
from .runtime import (
    LibraryCall,
    LibraryRuntime,
    NoLibraryRuntime,
    TableRuntime,
)
from .values import Array, Scalar, Value, truthy

#: The tree-walking engine (taint analysis, per-node extension hooks).
ENGINE_TREE = "tree"
#: The closure-compiling engine (measurement hot path).
ENGINE_COMPILED = "compiled"
#: Built-in engine identifiers, in preference order for measurement.
#: The full (user-extensible) set lives in the engine registry.
ENGINES: tuple[str, ...] = (ENGINE_COMPILED, ENGINE_TREE)

register_engine(
    ENGINE_COMPILED,
    help="IR-to-closure compiler (measurement hot path)",
)(CompiledEngine)
register_engine(
    ENGINE_TREE,
    help="tree-walking interpreter (subclassable per-node hooks)",
)(Interpreter)

#: Engine used by the measurement layer unless a caller overrides it.
#: Taint runs always use the tree-walker (the taint engine subclasses
#: its per-node hooks), independent of this default.
DEFAULT_MEASUREMENT_ENGINE = ENGINE_COMPILED


def make_engine(
    program,
    engine: str = ENGINE_TREE,
    runtime: "LibraryRuntime | None" = None,
    config: ExecConfig = DEFAULT_CONFIG,
    listener: "ExecutionListener | None" = None,
) -> "Interpreter | CompiledEngine":
    """Construct an execution engine for *program*.

    *engine* names an entry of the engine registry: ``"tree"`` (the
    subclassable tree-walker, the default for direct use), ``"compiled"``
    (the closure compiler the measurement layer uses), or any engine
    registered by user code via
    :func:`repro.registry.register_engine`.  The built-ins produce
    bit-identical :class:`~repro.interp.metrics.RunResult` objects, events
    and errors; they differ only in dispatch cost.
    """
    factory = ENGINE_REGISTRY.get(engine)
    return factory(program, runtime=runtime, config=config, listener=listener)


__all__ = [
    "Array",
    "CompiledEngine",
    "CompiledFunction",
    "CostKind",
    "DEFAULT_CONFIG",
    "DEFAULT_MEASUREMENT_ENGINE",
    "ENGINES",
    "ENGINE_COMPILED",
    "ENGINE_TREE",
    "ExecConfig",
    "ExecutionListener",
    "FastPathPlanner",
    "FunctionMetrics",
    "Interpreter",
    "LeafCost",
    "LibraryCall",
    "LibraryRuntime",
    "MetricsCollector",
    "MultiListener",
    "NoLibraryRuntime",
    "NullListener",
    "RunResult",
    "Scalar",
    "TableRuntime",
    "Value",
    "leaf_unit_cost",
    "make_engine",
    "truthy",
]
