"""Execution substrate: metered tree-walking interpreter.

Executes repro-IR programs under a discrete cost model, emitting events the
measurement layer (:mod:`repro.measure`) aggregates into profiles.  The
taint engine (:mod:`repro.taint`) extends :class:`Interpreter` with shadow
state.
"""

from .config import DEFAULT_CONFIG, ExecConfig
from .events import CostKind, ExecutionListener, MultiListener, NullListener
from .fastpath import FastPathPlanner, LeafCost, leaf_unit_cost
from .interpreter import Interpreter
from .metrics import FunctionMetrics, MetricsCollector, RunResult
from .runtime import (
    LibraryCall,
    LibraryRuntime,
    NoLibraryRuntime,
    TableRuntime,
)
from .values import Array, Scalar, Value, truthy

__all__ = [
    "Array",
    "CostKind",
    "DEFAULT_CONFIG",
    "ExecConfig",
    "ExecutionListener",
    "FastPathPlanner",
    "FunctionMetrics",
    "Interpreter",
    "LeafCost",
    "LibraryCall",
    "LibraryRuntime",
    "MetricsCollector",
    "MultiListener",
    "NoLibraryRuntime",
    "NullListener",
    "RunResult",
    "Scalar",
    "TableRuntime",
    "Value",
    "leaf_unit_cost",
    "truthy",
]
