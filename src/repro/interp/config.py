"""Interpreter configuration: cost model constants and execution limits.

The discrete-cost model assigns simulated time to executed operations.  The
unit is arbitrary (think "about a nanosecond"); only *ratios* matter for the
phenomena reproduced from the paper:

* plain statements are cheap (``stmt_cost``),
* function calls have small intrinsic overhead (``call_cost``),
* instrumentation overhead per call (configured in the measurement layer)
  is 2–3 orders of magnitude larger, which is what makes full
  instrumentation of accessor-heavy C++ code catastrophic (Figures 3/4).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ExecConfig:
    """Knobs of the execution substrate."""

    #: Simulated cost units charged per executed simple statement.
    stmt_cost: float = 1.0
    #: Extra cost units charged per function call (caller side).
    call_cost: float = 2.0
    #: Cost charged per loop iteration for condition/increment bookkeeping.
    loop_iter_cost: float = 1.0
    #: Abort execution after this many interpreter steps (hang protection).
    step_limit: int = 200_000_000
    #: Enable the O(1) fast path for pure-cost counted loop nests.
    fast_loops: bool = True
    #: Maximum call depth before aborting (runaway recursion protection).
    max_call_depth: int = 500


DEFAULT_CONFIG = ExecConfig()
