"""Tree-walking interpreter with discrete cost metering.

The interpreter executes finalized :class:`~repro.ir.program.Program`
objects, charging simulated time for every executed operation (see
:class:`~repro.interp.config.ExecConfig`) and emitting
:class:`~repro.interp.events.ExecutionListener` events that the measurement
layer turns into profiles.  Library calls (``MPI_*``) resolve through a
:class:`~repro.interp.runtime.LibraryRuntime`.

Subclasses may override the ``_eval_*``/``_exec_*`` hooks; the
domain-parameterized :class:`~repro.interp.shadowtree.ShadowInterpreter`
extends this class with analysis-domain shadow state (taint being the
bundled shadow domain, see :mod:`repro.taint.domain`).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..errors import (
    ArityError,
    InterpreterError,
    UndefinedFunctionError,
    UndefinedVariableError,
)
from ..ir.expr import BinOp, Call, Const, Expr, Intrinsic, Load, UnOp, Var
from ..ir.program import Program
from ..ir.stmt import (
    Assign,
    Break,
    Continue,
    ExprStmt,
    For,
    If,
    Return,
    Stmt,
    Store,
    While,
)
from .config import DEFAULT_CONFIG, ExecConfig
from .events import CostKind, ExecutionListener, NullListener
from .fastpath import FastPathPlanner
from .metrics import MetricsCollector, RunResult
from .runtime import LibraryRuntime, NoLibraryRuntime
from .semantics import (
    FLOW_BREAK,
    FLOW_CONTINUE,
    FLOW_NORMAL,
    FLOW_RETURN,
    MATH_INTRINSICS,
    alloc_array,
    apply_binop,
    apply_unop,
    bad_loop_step,
    call_depth_exceeded,
    check_work_amount,
    execute_library_call,
    require_array,
    resolve_entry_args,
    step_limit_exceeded,
)
from .values import Value, truthy

__all__ = [
    "FLOW_BREAK",
    "FLOW_CONTINUE",
    "FLOW_NORMAL",
    "FLOW_RETURN",
    "Interpreter",
]


class Interpreter:
    """Executes a program, metering simulated cost.

    Parameters
    ----------
    program:
        A finalized program.
    runtime:
        Resolver for library calls (default: none).
    config:
        Cost-model and limit configuration.
    listener:
        Execution event consumer (in addition to the built-in metrics
        collector).
    """

    def __init__(
        self,
        program: Program,
        runtime: LibraryRuntime | None = None,
        config: ExecConfig = DEFAULT_CONFIG,
        listener: ExecutionListener | None = None,
    ) -> None:
        self.program = program
        self.runtime: LibraryRuntime = runtime or NoLibraryRuntime()
        self.config = config
        self.listener: ExecutionListener = listener or NullListener()
        self.metrics = MetricsCollector()
        self._steps = 0
        self._depth = 0
        self._planner = FastPathPlanner(program, config)
        # Current function name, for error messages and loop events.
        self._fn_stack: list[str] = []

    # ------------------------------------------------------------------
    # entry point

    def run(
        self,
        args: Mapping[str, Value] | Sequence[Value] = (),
        entry: str | None = None,
    ) -> RunResult:
        """Execute the entry function with *args* and return the result."""
        name, _fn, argvals = resolve_entry_args(self.program, args, entry)
        value = self._call_function(name, argvals)
        return RunResult(value=value, metrics=self.metrics, steps=self._steps)

    # ------------------------------------------------------------------
    # cost / step accounting

    def _charge(self, kind: CostKind, amount: float) -> None:
        self.metrics.on_cost(kind, amount)
        self.listener.on_cost(kind, amount)

    def _step(self) -> None:
        self._steps += 1
        if self._steps > self.config.step_limit:
            raise step_limit_exceeded(
                self.current_function, self.config.step_limit
            )

    @property
    def current_function(self) -> str:
        """Name of the innermost executing function."""
        return self._fn_stack[-1] if self._fn_stack else "<toplevel>"

    # ------------------------------------------------------------------
    # calls

    def _call_function(self, name: str, args: Sequence[Value]) -> Value:
        fn = self.program.function(name)
        if len(args) != len(fn.params):
            raise ArityError(name, len(fn.params), len(args))
        if self._depth >= self.config.max_call_depth:
            raise call_depth_exceeded(name, self.config.max_call_depth)
        env: dict[str, Value] = dict(zip(fn.params, args))
        self._depth += 1
        self._fn_stack.append(name)
        self.metrics.on_enter(name)
        self.listener.on_enter(name)
        try:
            flow, value = self._exec_block(fn.body, env)
            return value if flow == FLOW_RETURN else None
        finally:
            self.metrics.on_exit(name)
            self.listener.on_exit(name)
            self._fn_stack.pop()
            self._depth -= 1

    def _call_library(self, name: str, args: Sequence[Value]) -> Value:
        return execute_library_call(
            self.runtime, name, args, self.metrics, self.listener, self._charge
        )

    # ------------------------------------------------------------------
    # statements

    def _exec_block(
        self, body: Sequence[Stmt], env: dict[str, Value]
    ) -> tuple[int, Value]:
        for stmt in body:
            flow, value = self._exec_stmt(stmt, env)
            if flow != FLOW_NORMAL:
                return flow, value
        return FLOW_NORMAL, None

    def _exec_stmt(self, stmt: Stmt, env: dict[str, Value]) -> tuple[int, Value]:
        self._step()
        if isinstance(stmt, Assign):
            self._charge(CostKind.COMPUTE, self.config.stmt_cost)
            env[stmt.name] = self._eval(stmt.value, env)
            return FLOW_NORMAL, None
        if isinstance(stmt, ExprStmt):
            self._charge(CostKind.COMPUTE, self.config.stmt_cost)
            self._eval(stmt.expr, env)
            return FLOW_NORMAL, None
        if isinstance(stmt, Store):
            self._charge(CostKind.COMPUTE, self.config.stmt_cost)
            arr = require_array(
                self._lookup(stmt.array, env), stmt.array, self.current_function
            )
            idx = self._eval(stmt.index, env)
            val = self._eval(stmt.value, env)
            arr.store(int(idx), float(val))
            return FLOW_NORMAL, None
        if isinstance(stmt, Return):
            value = self._eval(stmt.value, env) if stmt.value is not None else None
            return FLOW_RETURN, value
        if isinstance(stmt, Break):
            return FLOW_BREAK, None
        if isinstance(stmt, Continue):
            return FLOW_CONTINUE, None
        if isinstance(stmt, If):
            return self._exec_if(stmt, env)
        if isinstance(stmt, For):
            return self._exec_for(stmt, env)
        if isinstance(stmt, While):
            return self._exec_while(stmt, env)
        raise InterpreterError(f"cannot execute {type(stmt).__name__}")

    def _exec_if(self, stmt: If, env: dict[str, Value]) -> tuple[int, Value]:
        cond = self._eval(stmt.cond, env)
        if truthy(cond):
            return self._exec_block(stmt.then_body, env)
        return self._exec_block(stmt.else_body, env)

    def _exec_for(self, stmt: For, env: dict[str, Value]) -> tuple[int, Value]:
        # Fast path: closed-form execution of pure-cost loop nests.
        if self.config.fast_loops:
            plan = self._planner.plan(self.current_function, stmt)
            if plan is not None:
                result = self._planner.execute(
                    plan, lambda e: self._eval_pure(e, env)
                )
                if result is not None:
                    if result.compute:
                        self._charge(CostKind.COMPUTE, result.compute)
                    if result.memory:
                        self._charge(CostKind.MEMORY, result.memory)
                    for (fn, loop_id), iters in result.loop_iterations.items():
                        self.metrics.on_loop_iterations(fn, loop_id, iters)
                        self.listener.on_loop_iterations(fn, loop_id, iters)
                    for callee, (count, unit) in result.calls.items():
                        self.metrics.on_aggregate_calls(
                            callee, count, unit.compute, unit.memory
                        )
                        self.listener.on_aggregate_calls(
                            callee, count, unit.compute, unit.memory
                        )
                    # Loop variable's final value: start + trips * step.
                    trips = result.loop_iterations.get(
                        (self.current_function, stmt.loop_id), 0
                    )
                    start = self._eval_pure(stmt.start, env)
                    step = self._eval_pure(stmt.step, env)
                    env[stmt.var] = start + trips * step
                    return FLOW_NORMAL, None

        # Slow path: genuine iteration.  Loop bounds are evaluated once at
        # entry (language semantics; matches the fast path).
        start = self._eval(stmt.start, env)
        stop = self._eval(stmt.stop, env)
        step = self._eval(stmt.step, env)
        if not isinstance(step, (int, float)) or step <= 0:
            raise bad_loop_step(step, self.current_function)
        env[stmt.var] = start
        iters = 0
        flow: int = FLOW_NORMAL
        value: Value = None
        while env[stmt.var] < stop:
            self._step()
            self._charge(CostKind.COMPUTE, self.config.loop_iter_cost)
            iters += 1
            flow, value = self._exec_block(stmt.body, env)
            if flow == FLOW_BREAK:
                flow = FLOW_NORMAL
                break
            if flow == FLOW_RETURN:
                break
            env[stmt.var] = env[stmt.var] + step
        if iters:
            self.metrics.on_loop_iterations(
                self.current_function, stmt.loop_id, iters
            )
            self.listener.on_loop_iterations(
                self.current_function, stmt.loop_id, iters
            )
        if flow == FLOW_RETURN:
            return flow, value
        return FLOW_NORMAL, None

    def _exec_while(self, stmt: While, env: dict[str, Value]) -> tuple[int, Value]:
        iters = 0
        flow: int = FLOW_NORMAL
        value: Value = None
        while truthy(self._eval(stmt.cond, env)):
            self._step()
            self._charge(CostKind.COMPUTE, self.config.loop_iter_cost)
            iters += 1
            flow, value = self._exec_block(stmt.body, env)
            if flow == FLOW_BREAK:
                flow = FLOW_NORMAL
                break
            if flow == FLOW_RETURN:
                break
        if iters:
            self.metrics.on_loop_iterations(
                self.current_function, stmt.loop_id, iters
            )
            self.listener.on_loop_iterations(
                self.current_function, stmt.loop_id, iters
            )
        if flow == FLOW_RETURN:
            return flow, value
        return FLOW_NORMAL, None

    # ------------------------------------------------------------------
    # expressions

    def _lookup(self, name: str, env: dict[str, Value]) -> Value:
        try:
            return env[name]
        except KeyError:
            raise UndefinedVariableError(name, self.current_function) from None

    def _eval(self, expr: Expr, env: dict[str, Value]) -> Value:
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, Var):
            return self._lookup(expr.name, env)
        if isinstance(expr, BinOp):
            return self._eval_binop(expr, env)
        if isinstance(expr, UnOp):
            return apply_unop(expr.op, self._eval(expr.operand, env))
        if isinstance(expr, Load):
            arr = require_array(
                self._lookup(expr.array, env), expr.array, self.current_function
            )
            return arr.load(int(self._eval(expr.index, env)))
        if isinstance(expr, Intrinsic):
            return self._eval_intrinsic(expr, env)
        if isinstance(expr, Call):
            args = [self._eval(a, env) for a in expr.args]
            self._charge(CostKind.COMPUTE, self.config.call_cost)
            if expr.callee in self.program:
                return self._call_function(expr.callee, args)
            if self.runtime.handles(expr.callee):
                return self._call_library(expr.callee, args)
            raise UndefinedFunctionError(expr.callee)
        raise InterpreterError(f"cannot evaluate {type(expr).__name__}")

    def _eval_binop(self, expr: BinOp, env: dict[str, Value]) -> Value:
        op = expr.op
        if op == "and":
            lhs = self._eval(expr.lhs, env)
            return self._eval(expr.rhs, env) if truthy(lhs) else lhs
        if op == "or":
            lhs = self._eval(expr.lhs, env)
            return lhs if truthy(lhs) else self._eval(expr.rhs, env)
        lhs = self._eval(expr.lhs, env)
        rhs = self._eval(expr.rhs, env)
        return apply_binop(op, lhs, rhs)

    def _eval_intrinsic(self, expr: Intrinsic, env: dict[str, Value]) -> Value:
        name = expr.name
        if name == "work" or name == "mem_work":
            amount = check_work_amount(float(self._eval(expr.args[0], env)))
            kind = CostKind.COMPUTE if name == "work" else CostKind.MEMORY
            self._charge(kind, amount)
            return amount
        if name == "alloc":
            arr, cost = alloc_array(self._eval(expr.args[0], env))
            self._charge(CostKind.MEMORY, cost)
            return arr
        arg = self._eval(expr.args[0], env)
        fn = MATH_INTRINSICS.get(name)
        if fn is None:
            raise InterpreterError(f"unknown intrinsic {name!r}")
        return fn(arg)

    def _eval_pure(self, expr: Expr, env: dict[str, Value]) -> Value:
        """Evaluate an expression known to be free of calls/cost intrinsics
        (fast-path bounds and arguments) without charging anything."""
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, Var):
            return self._lookup(expr.name, env)
        if isinstance(expr, BinOp):
            if expr.op == "and":
                lhs = self._eval_pure(expr.lhs, env)
                return self._eval_pure(expr.rhs, env) if truthy(lhs) else lhs
            if expr.op == "or":
                lhs = self._eval_pure(expr.lhs, env)
                return lhs if truthy(lhs) else self._eval_pure(expr.rhs, env)
            return apply_binop(
                expr.op,
                self._eval_pure(expr.lhs, env),
                self._eval_pure(expr.rhs, env),
            )
        if isinstance(expr, UnOp):
            return apply_unop(expr.op, self._eval_pure(expr.operand, env))
        if isinstance(expr, Load):
            arr = require_array(
                self._lookup(expr.array, env), expr.array, self.current_function
            )
            return arr.load(int(self._eval_pure(expr.index, env)))
        if isinstance(expr, Intrinsic):
            fn = MATH_INTRINSICS.get(expr.name)
            if fn is not None:
                return fn(self._eval_pure(expr.args[0], env))
        raise InterpreterError(
            f"impure expression in pure context: {type(expr).__name__}"
        )


#: Backward-compatible alias; the shared implementation lives in
#: :mod:`repro.interp.semantics`.
_apply_binop = apply_binop
