"""Metrics collection: totals, per-function costs, loop iteration counts.

:class:`MetricsCollector` is an :class:`~repro.interp.events.ExecutionListener`
that aggregates a run into the quantities the rest of the pipeline consumes:

* total simulated time split by :class:`~repro.interp.events.CostKind`;
* per-function call counts and exclusive costs (flat profile);
* per-(function, loop) iteration counts — the empirical ground truth the
  volume calculus (paper section 4.2) is validated against.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from .events import CostKind


@dataclass
class FunctionMetrics:
    """Flat (exclusive) metrics of one function."""

    calls: int = 0
    compute: float = 0.0
    memory: float = 0.0
    comm: float = 0.0

    @property
    def total(self) -> float:
        """Exclusive simulated time across all cost kinds."""
        return self.compute + self.memory + self.comm

    def add_cost(self, kind: CostKind, amount: float) -> None:
        if kind is CostKind.COMPUTE:
            self.compute += amount
        elif kind is CostKind.MEMORY:
            self.memory += amount
        else:
            self.comm += amount


class MetricsCollector:
    """Execution listener accumulating run metrics.

    The collector keeps a call stack so costs are attributed exclusively to
    the innermost active function, the way sampling/instrumenting profilers
    report "self time".
    """

    def __init__(self) -> None:
        self.functions: dict[str, FunctionMetrics] = defaultdict(FunctionMetrics)
        self.loop_iterations: dict[tuple[str, int], int] = defaultdict(int)
        self.totals: dict[CostKind, float] = {kind: 0.0 for kind in CostKind}
        self._stack: list[str] = []

    # -- listener interface ------------------------------------------------

    def on_enter(self, function: str) -> None:
        self._stack.append(function)
        self.functions[function].calls += 1

    def on_exit(self, function: str) -> None:
        if self._stack and self._stack[-1] == function:
            self._stack.pop()

    def on_cost(self, kind: CostKind, amount: float) -> None:
        self.totals[kind] += amount
        if self._stack:
            self.functions[self._stack[-1]].add_cost(kind, amount)

    def on_loop_iterations(self, function: str, loop_id: int, count: int) -> None:
        self.loop_iterations[(function, loop_id)] += count

    def cost_sink(self):
        """A flattened equivalent of :meth:`on_cost` for hot paths.

        Returns a closure with the exact same effect (same additions to
        the same fields, in the same order — bit-identical totals) but
        without the method-dispatch and :meth:`FunctionMetrics.add_cost`
        call layers.  The compiled engine charges through this.
        """
        totals = self.totals
        functions = self.functions
        stack = self._stack
        compute = CostKind.COMPUTE
        memory = CostKind.MEMORY

        def on_cost(kind: CostKind, amount: float) -> None:
            totals[kind] += amount
            if stack:
                fm = functions[stack[-1]]
                if kind is compute:
                    fm.compute += amount
                elif kind is memory:
                    fm.memory += amount
                else:
                    fm.comm += amount

        return on_cost

    def on_aggregate_calls(
        self, callee: str, count: int, unit_compute: float, unit_memory: float
    ) -> None:
        fm = self.functions[callee]
        fm.calls += count
        fm.compute += count * unit_compute
        fm.memory += count * unit_memory
        self.totals[CostKind.COMPUTE] += count * unit_compute
        self.totals[CostKind.MEMORY] += count * unit_memory

    # -- queries -------------------------------------------------------------

    @property
    def total_time(self) -> float:
        """Total simulated time of the run (all cost kinds)."""
        return sum(self.totals.values())

    def iterations_of(self, function: str, loop_id: int) -> int:
        """Total iterations of one loop across the whole run."""
        return self.loop_iterations.get((function, loop_id), 0)

    def calls_of(self, function: str) -> int:
        """Total number of calls to *function*."""
        fm = self.functions.get(function)
        return fm.calls if fm else 0

    def snapshot(self) -> dict[str, FunctionMetrics]:
        """A copy of the per-function flat profile."""
        return dict(self.functions)


@dataclass
class RunResult:
    """Outcome of one interpreted execution."""

    value: object
    metrics: MetricsCollector
    steps: int = 0
    extra: dict[str, object] = field(default_factory=dict)

    @property
    def time(self) -> float:
        """Total simulated time."""
        return self.metrics.total_time
