"""Runtime values of the repro interpreter.

Scalars are plain Python ints/floats/bools.  Arrays are a thin mutable
wrapper over a list of floats created by the ``alloc`` intrinsic; the taint
engine keeps a parallel shadow array per allocation.
"""

from __future__ import annotations

from typing import Union

Scalar = Union[int, float, bool]


class Array:
    """A fixed-size numeric array (``alloc(n)``)."""

    __slots__ = ("data",)

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError("array size must be non-negative")
        self.data: list[float] = [0.0] * int(size)

    def __len__(self) -> int:
        return len(self.data)

    def load(self, index: int) -> float:
        """Read element *index* (bounds-checked)."""
        return self.data[self._check(index)]

    def store(self, index: int, value: float) -> None:
        """Write element *index* (bounds-checked)."""
        self.data[self._check(index)] = value

    def _check(self, index: Scalar) -> int:
        idx = int(index)
        if not 0 <= idx < len(self.data):
            raise IndexError(
                f"array index {idx} out of range [0, {len(self.data)})"
            )
        return idx

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Array(len={len(self.data)})"


Value = Union[Scalar, Array, None]


def truthy(value: Value) -> bool:
    """Branch/loop condition semantics: C-like truthiness of numbers."""
    if isinstance(value, Array):
        raise TypeError("arrays cannot be used as conditions")
    if value is None:
        raise TypeError("void value used as condition")
    return bool(value)
