"""Library-runtime protocol.

Programs may call routines that are not defined in the program itself —
most importantly the MPI routines the paper's library database covers
(section 5.3).  The interpreter resolves such calls through an object
implementing :class:`LibraryRuntime`; :mod:`repro.mpisim` provides the MPI
implementation, and tests use small fakes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence

from .events import CostKind
from .values import Value


@dataclass
class LibraryCall:
    """Result of a library-routine invocation."""

    value: Value = None
    costs: dict[CostKind, float] = field(default_factory=dict)

    @classmethod
    def comm(cls, amount: float, value: Value = None) -> "LibraryCall":
        """Convenience for a pure communication cost."""
        return cls(value=value, costs={CostKind.COMM: amount})

    @classmethod
    def compute(cls, amount: float, value: Value = None) -> "LibraryCall":
        """Convenience for a pure compute cost."""
        return cls(value=value, costs={CostKind.COMPUTE: amount})


class LibraryRuntime(Protocol):
    """Resolver for calls to functions not defined in the program."""

    def handles(self, name: str) -> bool:
        """True if this runtime implements routine *name*."""

    def call(self, name: str, args: Sequence[Value]) -> LibraryCall:
        """Invoke routine *name* with evaluated *args*."""


class NoLibraryRuntime:
    """Runtime that implements nothing (default)."""

    def handles(self, name: str) -> bool:  # noqa: D102
        return False

    def call(self, name: str, args: Sequence[Value]) -> LibraryCall:  # noqa: D102
        raise NotImplementedError("NoLibraryRuntime cannot call anything")


class TableRuntime:
    """Simple dict-backed runtime for tests and small examples.

    Maps routine names to Python callables returning :class:`LibraryCall`
    (or a plain value, which is wrapped with zero cost).
    """

    def __init__(self) -> None:
        self._table: dict[str, object] = {}

    def register(self, name: str, fn: object) -> None:
        """Register *fn* as the implementation of routine *name*."""
        self._table[name] = fn

    def handles(self, name: str) -> bool:  # noqa: D102
        return name in self._table

    def call(self, name: str, args: Sequence[Value]) -> LibraryCall:  # noqa: D102
        result = self._table[name](*args)
        if isinstance(result, LibraryCall):
            return result
        return LibraryCall(value=result)
