"""O(1) execution of pure-cost counted loop nests.

Interpreting a LULESH-sized element loop (``size**3`` iterations, dozens of
kernels, hundreds of measurement configurations) statement-by-statement in
Python would dominate the whole reproduction.  Following the optimization
guidance for numerical Python (vectorize the hot loop; compute aggregates in
closed form), the metered interpreter recognizes loop nests whose execution
affects *only* simulated cost — no program state — and executes them in
closed form:

* a counted ``For`` loop whose bounds and step are invariant within the
  nest, and whose body consists solely of

  - cost intrinsics (``work``/``mem_work``) with nest-invariant arguments,
  - calls to *leaf constant-cost* functions (no loops, branches, calls or
    stores — the C++ getters/setters of the paper's LULESH discussion), and
  - nested ``For`` loops satisfying the same conditions,

  executes as ``trip_count × per-iteration cost`` with aggregated call and
  loop-iteration events.

The taint engine never uses this path (taint runs use tiny representative
configurations, paper section 6: LULESH ``size=5, p=8``), so taint semantics
are unaffected.  Equivalence of fast and slow paths is property-tested in
``tests/interp/test_fastpath.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from ..ir.expr import Call, Const, Expr, Intrinsic
from ..ir.program import Function, Program
from ..ir.stmt import Assign, ExprStmt, For, Return
from .config import ExecConfig


@dataclass(frozen=True)
class LeafCost:
    """Constant per-call cost of a leaf function."""

    compute: float
    memory: float


def leaf_unit_cost(fn: Function, config: ExecConfig) -> LeafCost | None:
    """Constant per-call cost of *fn*, or None if *fn* is not a leaf.

    Leaf functions contain no loops, branches, calls or stores, and any cost
    intrinsics must have literal arguments — i.e. every call costs the same
    regardless of arguments or program state.  These are exactly the
    "simple constant functions, such as class getters and setters" the
    paper prunes (section A3).
    """
    compute = 0.0
    memory = 0.0
    for stmt in fn.statements():
        if not isinstance(stmt, (Assign, ExprStmt, Return)):
            return None
        for expr in stmt.exprs():
            for node in expr.walk():
                if isinstance(node, Call):
                    return None
                if isinstance(node, Intrinsic):
                    if node.name == "alloc":
                        return None
                    if node.is_cost:
                        if not node.args or not isinstance(node.args[0], Const):
                            return None
                        amount = float(node.args[0].value)
                        if node.name == "work":
                            compute += amount
                        else:
                            memory += amount
        # Return is free in the interpreter's cost model; Assign/ExprStmt
        # charge stmt_cost (must match Interpreter._exec_stmt exactly).
        if isinstance(stmt, (Assign, ExprStmt)):
            compute += config.stmt_cost
    return LeafCost(compute, memory)


@dataclass
class LoopPlan:
    """Static shape of a fast-executable loop nest rooted at one ``For``."""

    loop: For
    function: str
    #: (intrinsic name, argument expression) for each cost statement.
    intrinsics: list[tuple[str, Expr]] = field(default_factory=list)
    #: (callee name, per-call LeafCost) for each leaf call statement.
    calls: list[tuple[str, LeafCost]] = field(default_factory=list)
    #: Nested fast sub-loops.
    nested: list["LoopPlan"] = field(default_factory=list)
    #: Number of body statements (for stmt_cost charging).
    stmt_count: int = 0


@dataclass
class FastResult:
    """Aggregated outcome of executing a loop nest in closed form."""

    compute: float = 0.0
    memory: float = 0.0
    #: (function, loop_id) -> iterations
    loop_iterations: dict[tuple[str, int], int] = field(default_factory=dict)
    #: callee -> (count, unit LeafCost)
    calls: dict[str, tuple[int, LeafCost]] = field(default_factory=dict)


class FastPathPlanner:
    """Builds and caches :class:`LoopPlan` objects for a program."""

    def __init__(self, program: Program, config: ExecConfig) -> None:
        self._program = program
        self._config = config
        self._leaf_cache: dict[str, LeafCost | None] = {}
        # (function name, loop_id) -> plan or None
        self._plan_cache: dict[tuple[str, int], LoopPlan | None] = {}

    # -- leaf costs ----------------------------------------------------------

    def leaf_cost(self, name: str) -> LeafCost | None:
        """Cached :func:`leaf_unit_cost` for program function *name*."""
        if name not in self._leaf_cache:
            if name in self._program:
                self._leaf_cache[name] = leaf_unit_cost(
                    self._program.function(name), self._config
                )
            else:
                self._leaf_cache[name] = None
        return self._leaf_cache[name]

    # -- planning --------------------------------------------------------------

    def plan(self, fn_name: str, loop: For) -> LoopPlan | None:
        """Return a fast plan for *loop* in *fn_name*, or None if ineligible."""
        key = (fn_name, loop.loop_id)
        if key not in self._plan_cache:
            self._plan_cache[key] = self._build(fn_name, loop)
        return self._plan_cache[key]

    def _build(self, fn_name: str, loop: For) -> LoopPlan | None:
        plan = self._build_rec(fn_name, loop)
        if plan is None:
            return None
        # Invariance: no expression in the nest may read a name assigned in
        # the nest (the only assigned names are the loop variables).
        loop_vars = self._collect_loop_vars(plan)
        if not self._check_invariance(plan, loop_vars, outermost=True):
            return None
        return plan

    def _build_rec(self, fn_name: str, loop: For) -> LoopPlan | None:
        for bound in (loop.start, loop.stop, loop.step):
            if not _pure_arith(bound):
                return None
        plan = LoopPlan(loop=loop, function=fn_name)
        for stmt in loop.body:
            if isinstance(stmt, ExprStmt):
                plan.stmt_count += 1
                expr = stmt.expr
                if isinstance(expr, Intrinsic) and expr.is_cost:
                    if len(expr.args) != 1 or not _pure_arith(expr.args[0]):
                        return None
                    plan.intrinsics.append((expr.name, expr.args[0]))
                    continue
                if isinstance(expr, Call):
                    unit = self.leaf_cost(expr.callee)
                    if unit is None:
                        return None
                    if not all(_pure_arith(a) for a in expr.args):
                        return None
                    plan.calls.append((expr.callee, unit))
                    continue
                return None
            if isinstance(stmt, For):
                sub = self._build_rec(fn_name, stmt)
                if sub is None:
                    return None
                plan.nested.append(sub)
                continue
            return None
        return plan

    @staticmethod
    def _collect_loop_vars(plan: LoopPlan) -> frozenset[str]:
        out = {plan.loop.var}
        stack = list(plan.nested)
        while stack:
            sub = stack.pop()
            out.add(sub.loop.var)
            stack.extend(sub.nested)
        return frozenset(out)

    def _check_invariance(
        self, plan: LoopPlan, loop_vars: frozenset[str], outermost: bool
    ) -> bool:
        loop = plan.loop
        # Bounds of the outermost loop may not read any nest loop var; bounds
        # of inner loops may not either (so trip counts are nest-invariant).
        # The outermost start is evaluated before the loop var exists, but a
        # reference to a nest var would still be a different (outer) binding
        # we cannot reason about — reject uniformly.
        for bound in (loop.start, loop.stop, loop.step):
            if bound.free_vars() & loop_vars:
                return False
        for _, arg in plan.intrinsics:
            if arg.free_vars() & loop_vars:
                return False
        for sub in plan.nested:
            if not self._check_invariance(sub, loop_vars, outermost=False):
                return False
        return True

    # -- execution -----------------------------------------------------------

    def execute(
        self,
        plan: LoopPlan,
        eval_expr: Callable[[Expr], float],
    ) -> FastResult | None:
        """Execute *plan* in closed form using *eval_expr* for bound/arg
        evaluation.  Returns None if runtime values make the plan invalid
        (non-positive step, non-numeric bounds)."""
        result = FastResult()
        if self._execute_into(plan, eval_expr, result, multiplier=1) is None:
            return None
        return result

    def _execute_into(
        self,
        plan: LoopPlan,
        eval_expr: Callable[[Expr], float],
        result: FastResult,
        multiplier: int,
    ) -> bool | None:
        cfg = self._config
        loop = plan.loop
        try:
            start = float(eval_expr(loop.start))
            stop = float(eval_expr(loop.stop))
            step = float(eval_expr(loop.step))
        except (TypeError, ValueError):
            return None
        if not step > 0:
            return None
        trip = max(0, math.ceil((stop - start) / step)) if stop > start else 0

        total_trips = trip * multiplier
        if total_trips == 0:
            return True
        key = (plan.function, loop.loop_id)
        result.loop_iterations[key] = (
            result.loop_iterations.get(key, 0) + total_trips
        )

        per_iter_compute = cfg.loop_iter_cost + plan.stmt_count * cfg.stmt_cost
        per_iter_memory = 0.0
        for name, arg in plan.intrinsics:
            amount = float(eval_expr(arg))
            if name == "work":
                per_iter_compute += amount
            else:
                per_iter_memory += amount
        for callee, unit in plan.calls:
            per_iter_compute += cfg.call_cost
            count, _ = result.calls.get(callee, (0, unit))
            result.calls[callee] = (count + total_trips, unit)

        result.compute += total_trips * per_iter_compute
        result.memory += total_trips * per_iter_memory

        for sub in plan.nested:
            if self._execute_into(sub, eval_expr, result, total_trips) is None:
                return None
        return True


def _pure_arith(expr: Expr) -> bool:
    """True when *expr* contains no calls, cost intrinsics, or allocations
    (so evaluating it is free and side-effect free)."""
    for node in expr.walk():
        if isinstance(node, Call):
            return False
        if isinstance(node, Intrinsic) and (node.is_cost or node.name == "alloc"):
            return False
    return True
