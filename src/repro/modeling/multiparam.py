"""Multi-parameter modeling heuristic.

The full multi-parameter PMNF search space explodes ("with as few as three
parameters, the model search space contains more than 10^14 candidates",
paper 4.5).  Extra-P's published heuristic (Calotoiu et al., "Fast
Multi-Parameter Performance Modeling") first finds the best *single*
parameter models, then only combines their terms — reducing "hundreds of
billions of models to under a thousand".  We implement that scheme:

1. for each parameter, fit single-parameter hypotheses on a data slice
   where the other parameters are held at their base value (falling back
   to marginal means when no such slice exists);
2. lift the top terms of each parameter into the full parameter space and
   enumerate additive and multiplicative combinations, bounded by the
   normal form's term budget;
3. fit every combined hypothesis on the full data set and select the best.

Hypothesis generation accepts *restrictions* — the hook the hybrid modeler
(paper section 4.5 "Hybrid modeler") uses to encode taint knowledge:
excluded parameters never appear, and product terms are only generated for
parameter pairs the volume analysis proved multiplicative.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations, product as iproduct

import numpy as np

from .backends import ModelSearchBackend, default_model_backend
from .hypothesis import Model, fit_constant
from .search import (
    DEFAULT_SEARCH,
    SearchConfig,
    _better,
    _rss_floor,
    best_terms_for_parameter,
)
from .terms import TermSpec, product_term, single_param_term


@dataclass(frozen=True)
class TermRestrictions:
    """Restrictions on hypothesis generation (the taint prior's shape)."""

    #: Parameter names allowed to appear (None: all).
    allowed_params: frozenset[str] | None = None
    #: Unordered name pairs allowed to multiply (None: all pairs).
    multiplicative_pairs: frozenset[frozenset[str]] | None = None

    def param_allowed(self, name: str) -> bool:
        return self.allowed_params is None or name in self.allowed_params

    def product_allowed(self, names: "frozenset[str]") -> bool:
        if self.multiplicative_pairs is None:
            return True
        return all(
            frozenset(pair) in self.multiplicative_pairs
            for pair in combinations(sorted(names), 2)
        )


NO_RESTRICTIONS = TermRestrictions()


def _slice_for_parameter(
    X: np.ndarray, y: np.ndarray, index: int
) -> tuple[np.ndarray, np.ndarray]:
    """Data slice exposing parameter *index*: rows where all other
    parameters sit at their minimum; falls back to marginal means."""
    others = [l for l in range(X.shape[1]) if l != index]
    if not others:
        return X[:, index], y
    mask = np.ones(X.shape[0], dtype=bool)
    for l in others:
        mask &= X[:, l] == X[:, l].min()
    xs = X[mask, index]
    if len(np.unique(xs)) >= 3:
        return xs, y[mask]
    # Marginal means: average y per distinct value of x_index.
    values = np.unique(X[:, index])
    means = np.array(
        [y[X[:, index] == v].mean() for v in values], dtype=float
    )
    return values, means


def _lift(term: TermSpec, index: int, n_params: int) -> TermSpec:
    """Lift a 1-parameter term to the n-parameter space at *index*."""
    (i, j) = term.exponents[0]
    return single_param_term(index, n_params, i, j)


def generate_hypotheses(
    per_param_terms: "dict[int, list[TermSpec]]",
    n_params: int,
    parameters: tuple[str, ...],
    restrictions: TermRestrictions = NO_RESTRICTIONS,
    n_terms: int = 2,
) -> list[tuple[TermSpec, ...]]:
    """Enumerate combined hypotheses from per-parameter term shortlists."""
    hypotheses: set[tuple[TermSpec, ...]] = set()
    indices = [
        l
        for l in sorted(per_param_terms)
        if per_param_terms[l] and restrictions.param_allowed(parameters[l])
    ]

    # Single-parameter hypotheses (1 term).
    for l in indices:
        for term in per_param_terms[l]:
            hypotheses.add((term,))

    # Additive combinations: one term per parameter subset, up to n_terms.
    for size in range(2, min(n_terms, len(indices)) + 1):
        for subset in combinations(indices, size):
            for choice in iproduct(*(per_param_terms[l] for l in subset)):
                hypotheses.add(tuple(choice))

    # Multiplicative combinations: product of one term per parameter, for
    # subsets whose pairs are allowed to multiply.
    for size in range(2, len(indices) + 1):
        for subset in combinations(indices, size):
            names = frozenset(parameters[l] for l in subset)
            if not restrictions.product_allowed(names):
                continue
            for choice in iproduct(*(per_param_terms[l] for l in subset)):
                prod = product_term(list(choice))
                hypotheses.add((prod,))
                # Product plus one extra single-parameter term (2 terms).
                if n_terms >= 2:
                    for l in indices:
                        for extra in per_param_terms[l][:1]:
                            hypotheses.add(tuple(sorted(
                                (prod, extra),
                                key=lambda t: t.exponents,
                            )))
    return sorted(hypotheses, key=lambda h: (len(h), [t.exponents for t in h]))


def search_multi_parameter(
    X: np.ndarray,
    y: np.ndarray,
    parameters: tuple[str, ...],
    config: SearchConfig = DEFAULT_SEARCH,
    restrictions: TermRestrictions = NO_RESTRICTIONS,
    top_k: int = 3,
    backend: "ModelSearchBackend | None" = None,
) -> Model:
    """Best multi-parameter PMNF model under *restrictions*."""
    backend = backend or default_model_backend()
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, len(parameters))
    n_params = X.shape[1]
    floor = _rss_floor(y)

    best = fit_constant(X, y, parameters)

    per_param: dict[int, list[TermSpec]] = {}
    for l in range(n_params):
        if not restrictions.param_allowed(parameters[l]):
            continue
        xs, ys = _slice_for_parameter(X, y, l)
        lifted = [
            _lift(t, l, n_params)
            for t in best_terms_for_parameter(
                xs, ys, parameters[l], config, top_k, backend=backend
            )
        ]
        per_param[l] = lifted

    hypotheses = generate_hypotheses(
        per_param, n_params, parameters, restrictions, config.n_terms
    )
    for model in backend.fit_batch(
        X, y, parameters, hypotheses, config.require_nonnegative
    ):
        if model is not None and _better(
            model, best, config.improvement_threshold, floor
        ):
            best = model
    return best
