"""The Extra-P-style modeler facade.

:class:`Modeler` fits PMNF models to measurements; a :class:`SearchPrior`
(built by the Perf-Taint core from taint results) optionally constrains the
search:

* ``forced_constant`` — the taint analysis proved no parameter affects the
  function: skip the search, emit the mean ("pruning out parametric models
  for constant functions", paper 4.5);
* ``allowed_params`` — only these parameters may appear in terms
  ("removing parameters that could not affect performance", section 5);
* ``multiplicative_pairs`` — products only for parameter pairs the volume
  analysis found nested (section A2).

Without a prior, the modeler is the black-box baseline the paper compares
against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ModelingError
from .backends import (
    DEFAULT_MODEL_BACKEND,
    ModelSearchBackend,
    make_model_backend,
)
from .hypothesis import Model, fit_constant
from .multiparam import (
    NO_RESTRICTIONS,
    TermRestrictions,
    search_multi_parameter,
)
from .search import DEFAULT_SEARCH, SearchConfig, search_single_parameter


@dataclass(frozen=True)
class SearchPrior:
    """White-box knowledge injected into the model search."""

    forced_constant: bool = False
    allowed_params: frozenset[str] | None = None
    multiplicative_pairs: frozenset[frozenset[str]] | None = None

    @classmethod
    def constant(cls) -> "SearchPrior":
        return cls(forced_constant=True)

    @classmethod
    def black_box(cls) -> "SearchPrior":
        """No restrictions (the baseline modeler)."""
        return cls()

    def restrictions(self) -> TermRestrictions:
        return TermRestrictions(
            allowed_params=self.allowed_params,
            multiplicative_pairs=self.multiplicative_pairs,
        )


@dataclass
class Modeler:
    """Fits PMNF models, optionally under a white-box prior.

    *backend* names a registered model-search backend (see
    :mod:`repro.modeling.backends`): ``batched`` (default) fits every
    hypothesis class with one stacked-LAPACK call, ``loop`` is the
    per-hypothesis reference oracle.  Both select identical models; the
    choice participates in campaign fingerprints, so cached model
    artifacts never cross backends.
    """

    config: SearchConfig = DEFAULT_SEARCH
    backend: str = DEFAULT_MODEL_BACKEND

    def __post_init__(self) -> None:
        self._backend_obj: "ModelSearchBackend | None" = None

    def search_backend(self) -> ModelSearchBackend:
        """The backend instance (memoized: it owns the term-column and
        factorization caches shared across this modeler's fits)."""
        if self._backend_obj is None:
            self._backend_obj = make_model_backend(self.backend)
        return self._backend_obj

    def model(
        self,
        X: np.ndarray,
        y: np.ndarray,
        parameters: tuple[str, ...],
        prior: SearchPrior | None = None,
    ) -> Model:
        """Fit the best model of measurements ``y(X)``.

        *X* is an (n_points x n_parameters) configuration matrix aligned
        with *parameters*; *y* are mean measured times.
        """
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        if X.shape[1] != len(parameters):
            raise ModelingError(
                f"X has {X.shape[1]} columns but {len(parameters)} "
                "parameters were named"
            )
        if X.shape[0] != y.shape[0]:
            raise ModelingError("X and y disagree on the number of points")
        if y.size == 0:
            raise ModelingError("cannot model zero measurements")

        prior = prior or SearchPrior.black_box()
        if prior.forced_constant:
            model = fit_constant(X, y, parameters)
            model.metadata["prior"] = "constant"
            return model

        restrictions = prior.restrictions()
        if restrictions.allowed_params is not None:
            usable = [
                p for p in parameters if p in restrictions.allowed_params
            ]
            if not usable:
                model = fit_constant(X, y, parameters)
                model.metadata["prior"] = "constant"
                return model

        if len(parameters) == 1:
            if restrictions.allowed_params is not None and not restrictions.param_allowed(parameters[0]):
                model = fit_constant(X, y, parameters)
                model.metadata["prior"] = "constant"
                return model
            model = search_single_parameter(
                X[:, 0],
                y,
                parameters[0],
                self.config,
                backend=self.search_backend(),
            )
        else:
            model = search_multi_parameter(
                X,
                y,
                parameters,
                self.config,
                restrictions,
                backend=self.search_backend(),
            )
        model.metadata["prior"] = (
            "black-box" if prior == SearchPrior.black_box() else "taint"
        )
        return model
