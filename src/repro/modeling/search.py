"""Single-parameter model search.

Enumerates PMNF hypotheses over one parameter (constant, one-term, and
two-term combinations of the I x J candidate terms) and selects the best
by residual error with a mild parsimony bias — close to Extra-P 3.0's
behaviour, which is deliberately permissive: under noise it will happily
prefer a spurious parametric model over the true constant, which is the
failure mode the paper's taint prior eliminates (section B1).

Hypotheses are fitted through a pluggable
:class:`~repro.modeling.backends.ModelSearchBackend` (``loop`` reference
vs ``batched`` stacked-LAPACK); selection — the fold over
:func:`_better` in enumeration order — is backend-independent, which is
what makes the backends decision-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations

import numpy as np

from .backends import ModelSearchBackend, default_model_backend
from .hypothesis import Model, fit_constant
from .terms import (
    DEFAULT_I,
    DEFAULT_J,
    DEFAULT_N_TERMS,
    TermSpec,
    candidate_terms,
)


@dataclass(frozen=True)
class SearchConfig:
    """Knobs of the hypothesis search."""

    i_set: tuple = DEFAULT_I
    j_set: tuple = DEFAULT_J
    n_terms: int = DEFAULT_N_TERMS
    #: Relative improvement a larger hypothesis must deliver over a smaller
    #: one to be preferred (Extra-P-style mild parsimony).
    improvement_threshold: float = 1e-4
    #: Reject hypotheses with non-positive term coefficients.
    require_nonnegative: bool = True


DEFAULT_SEARCH = SearchConfig()


def _rss_floor(y: np.ndarray) -> float:
    """RSS below this level is float rounding noise from an exact fit.

    Residuals of a hypothesis that matches the data exactly are pure
    rounding error (relative magnitude well under 1e-8), yet relative-RSS
    comparisons would amplify that noise into arbitrary selections —
    and different-but-equally-exact backends would amplify it
    *differently*.  Flooring RSS at this scale makes exact fits compare
    as exactly zero, so selection among them falls back to the
    deterministic enumeration-order/parsimony rules on every backend.
    """
    if y.size == 0:
        return 0.0
    scale = max(1.0, float(np.max(np.abs(y))))
    return y.size * (1e-8 * scale) ** 2


#: Relative RSS improvement below which two same-size hypotheses count
#: as tied.  Mathematically tied hypotheses are common — on a two-level
#: factorial design every additive pair spans the same column space — and
#: their computed RSS differs only by backend rounding (<= ~1e-12
#: relative), so a raw ``<`` would let float noise pick the winner.
#: Ties keep the earlier-enumerated hypothesis on every backend.
RSS_TIE_REL_TOL = 1e-10


def _better(
    candidate: Model, incumbent: Model, threshold: float, floor: float = 0.0
) -> bool:
    """Does *candidate* beat *incumbent* under the parsimony rule?

    Smaller RSS wins; a hypothesis with more coefficients must improve RSS
    by at least *threshold* relatively to displace a smaller one.  RSS at
    or below *floor* (see :func:`_rss_floor`) counts as an exact fit, and
    same-size displacement needs a genuine improvement
    (:data:`RSS_TIE_REL_TOL`), keeping selection backend-independent.
    """
    c_rss = candidate.stats.rss if candidate.stats.rss > floor else 0.0
    i_rss = incumbent.stats.rss if incumbent.stats.rss > floor else 0.0
    if candidate.stats.n_coefficients > incumbent.stats.n_coefficients:
        if i_rss <= 0:
            return False
        gain = (i_rss - c_rss) / i_rss
        return gain > threshold
    if candidate.stats.n_coefficients < incumbent.stats.n_coefficients:
        if c_rss <= 0:
            return True
        loss = (c_rss - i_rss) / c_rss
        return loss <= threshold
    if i_rss <= 0:
        return False
    return (i_rss - c_rss) / i_rss > RSS_TIE_REL_TOL


def _rank_rss(rss: float, floor: float) -> float:
    """RSS as a deterministic ranking key.

    Floored (:func:`_rss_floor`) and quantized to 10 significant digits,
    so backend rounding (<= ~1e-12 relative) cannot reorder near-ties —
    the exponent tie-break decides those instead.
    """
    if rss <= floor:
        return 0.0
    scale = 10.0 ** (math.floor(math.log10(rss)) - 9)
    return round(rss / scale) * scale


def _shortlist(
    fitted_single: "list[tuple[TermSpec, Model]]",
    limit: int = 16,
    floor: float = 0.0,
) -> "list[TermSpec]":
    """The most promising single terms for pair enumeration.

    Ordered by (quantized RSS, exponents): the exponent tuple breaks RSS
    ties deterministically, so the shortlist — and hence the pair
    search — does not depend on candidate enumeration order or on the
    fitting backend.
    """
    ranked = sorted(
        fitted_single,
        key=lambda tm: (
            _rank_rss(tm[1].stats.rss, floor),
            tm[0].exponents,
        ),
    )
    return [term for term, _model in ranked[:limit]]


def search_single_parameter(
    x: np.ndarray,
    y: np.ndarray,
    parameter: str,
    config: SearchConfig = DEFAULT_SEARCH,
    backend: "ModelSearchBackend | None" = None,
) -> Model:
    """Best single-parameter PMNF model of measurements ``y(x)``."""
    backend = backend or default_model_backend()
    X = np.asarray(x, dtype=float).reshape(-1, 1)
    y = np.asarray(y, dtype=float)
    params = (parameter,)
    floor = _rss_floor(y)
    best = fit_constant(X, y, params)
    candidates = candidate_terms(1, 0, config.i_set, config.j_set)
    fitted = backend.fit_batch(
        X,
        y,
        params,
        [(term,) for term in candidates],
        config.require_nonnegative,
    )
    fitted_single: list[tuple[TermSpec, Model]] = []
    for term, model in zip(candidates, fitted):
        if model is None:
            continue
        fitted_single.append((term, model))
        if _better(model, best, config.improvement_threshold, floor):
            best = model
    if config.n_terms >= 2:
        # Restrict pair enumeration to the most promising single terms so
        # the search stays near Extra-P's "under a thousand" hypotheses.
        shortlist = _shortlist(fitted_single, floor=floor)
        pairs = list(combinations(shortlist, 2))
        for model in backend.fit_batch(
            X, y, params, pairs, config.require_nonnegative
        ):
            if model is not None and _better(
                model, best, config.improvement_threshold, floor
            ):
                best = model
    return best


def best_terms_for_parameter(
    x: np.ndarray,
    y: np.ndarray,
    parameter: str,
    config: SearchConfig = DEFAULT_SEARCH,
    top_k: int = 3,
    backend: "ModelSearchBackend | None" = None,
) -> list[TermSpec]:
    """The strongest single-parameter candidate terms (for the
    multi-parameter heuristic).  Always includes the best model's terms.
    Ranked by (RSS, exponents) so ties resolve deterministically."""
    backend = backend or default_model_backend()
    X = np.asarray(x, dtype=float).reshape(-1, 1)
    y = np.asarray(y, dtype=float)
    params = (parameter,)
    candidates = candidate_terms(1, 0, config.i_set, config.j_set)
    fitted = backend.fit_batch(
        X,
        y,
        params,
        [(term,) for term in candidates],
        config.require_nonnegative,
    )
    floor = _rss_floor(y)
    scored = [
        (_rank_rss(model.stats.rss, floor), term.exponents, term)
        for term, model in zip(candidates, fitted)
        if model is not None
    ]
    scored.sort(key=lambda ste: (ste[0], ste[1]))
    return [term for _rss, _exp, term in scored[:top_k]]
