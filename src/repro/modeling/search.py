"""Single-parameter model search.

Enumerates PMNF hypotheses over one parameter (constant, one-term, and
two-term combinations of the I x J candidate terms) and selects the best
by residual error with a mild parsimony bias — close to Extra-P 3.0's
behaviour, which is deliberately permissive: under noise it will happily
prefer a spurious parametric model over the true constant, which is the
failure mode the paper's taint prior eliminates (section B1).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from .hypothesis import Model, fit_constant, fit_hypothesis
from .terms import (
    DEFAULT_I,
    DEFAULT_J,
    DEFAULT_N_TERMS,
    TermSpec,
    candidate_terms,
)


@dataclass(frozen=True)
class SearchConfig:
    """Knobs of the hypothesis search."""

    i_set: tuple = DEFAULT_I
    j_set: tuple = DEFAULT_J
    n_terms: int = DEFAULT_N_TERMS
    #: Relative improvement a larger hypothesis must deliver over a smaller
    #: one to be preferred (Extra-P-style mild parsimony).
    improvement_threshold: float = 1e-4
    #: Reject hypotheses with non-positive term coefficients.
    require_nonnegative: bool = True


DEFAULT_SEARCH = SearchConfig()


def _better(candidate: Model, incumbent: Model, threshold: float) -> bool:
    """Does *candidate* beat *incumbent* under the parsimony rule?

    Smaller RSS wins; a hypothesis with more coefficients must improve RSS
    by at least *threshold* relatively to displace a smaller one.
    """
    if candidate.stats.n_coefficients > incumbent.stats.n_coefficients:
        if incumbent.stats.rss <= 0:
            return False
        gain = (incumbent.stats.rss - candidate.stats.rss) / incumbent.stats.rss
        return gain > threshold
    if candidate.stats.n_coefficients < incumbent.stats.n_coefficients:
        if candidate.stats.rss <= 0:
            return True
        loss = (candidate.stats.rss - incumbent.stats.rss) / candidate.stats.rss
        return loss <= threshold
    return candidate.stats.rss < incumbent.stats.rss


def search_single_parameter(
    x: np.ndarray,
    y: np.ndarray,
    parameter: str,
    config: SearchConfig = DEFAULT_SEARCH,
) -> Model:
    """Best single-parameter PMNF model of measurements ``y(x)``."""
    X = np.asarray(x, dtype=float).reshape(-1, 1)
    y = np.asarray(y, dtype=float)
    params = (parameter,)
    best = fit_constant(X, y, params)
    candidates = candidate_terms(1, 0, config.i_set, config.j_set)
    fitted_single: list[tuple[TermSpec, Model]] = []
    for term in candidates:
        model = fit_hypothesis(
            X, y, params, (term,), config.require_nonnegative
        )
        if model is None:
            continue
        fitted_single.append((term, model))
        if _better(model, best, config.improvement_threshold):
            best = model
    if config.n_terms >= 2:
        # Restrict pair enumeration to the most promising single terms so
        # the search stays near Extra-P's "under a thousand" hypotheses.
        fitted_single.sort(key=lambda tm: tm[1].stats.rss)
        shortlist = [t for t, _ in fitted_single[:16]]
        for t1, t2 in combinations(shortlist, 2):
            model = fit_hypothesis(
                X, y, params, (t1, t2), config.require_nonnegative
            )
            if model is not None and _better(
                model, best, config.improvement_threshold
            ):
                best = model
    return best


def best_terms_for_parameter(
    x: np.ndarray,
    y: np.ndarray,
    parameter: str,
    config: SearchConfig = DEFAULT_SEARCH,
    top_k: int = 3,
) -> list[TermSpec]:
    """The strongest single-parameter candidate terms (for the
    multi-parameter heuristic).  Always includes the best model's terms."""
    X = np.asarray(x, dtype=float).reshape(-1, 1)
    y = np.asarray(y, dtype=float)
    params = (parameter,)
    scored: list[tuple[float, TermSpec]] = []
    for term in candidate_terms(1, 0, config.i_set, config.j_set):
        model = fit_hypothesis(
            X, y, params, (term,), config.require_nonnegative
        )
        if model is not None:
            scored.append((model.stats.rss, term))
    scored.sort(key=lambda st: st[0])
    return [term for _rss, term in scored[:top_k]]
