"""Model-search backends: the modeling stage's execution substrate.

The model search is the stage the paper's whole pipeline exists to
accelerate ("with as few as three parameters, the model search space
contains more than 10^14 candidates", section 4.5), and after the
measurement and taint stages compiled their hot paths, it was the last
tree-walked one: every PMNF hypothesis cost one ``np.linalg.lstsq`` call
inside a Python loop, with candidate term columns re-evaluated per
hypothesis and leave-one-out CV refitting n times per model.

Mirroring the engines x domains architecture, the fitting strategy is
now a registered component (``repro.registry.MODEL_BACKEND_REGISTRY``):

* ``loop`` — the original implementation, one least-squares call per
  hypothesis and one refit per CV fold.  Kept as the reference oracle
  the differential test suite checks the fast path against.
* ``batched`` — evaluates each unique candidate term exactly once into
  a shared term-column cache keyed by exponents, stacks same-width
  hypotheses into an ``(H, n, k)`` design tensor, factorizes the whole
  class with one stacked-LAPACK QR call, and scores leave-one-out CV in
  closed form from the factors (loo residual = e_i / (1 - h_ii), the
  hat-matrix diagonal being the rowwise squared norms of Q).  Because a
  factorization depends only on the design — not on the measurements —
  one factorization serves every function fitted at the same
  configuration matrix as additional right-hand sides.

**Decision identity.**  Both backends reject hypotheses through the same
rules evaluated on the same term columns: ``n < k``, non-finite columns
(``np.isfinite``), intercept-duplicating constant columns
(``np.allclose(col, col[0])``), the shared
:func:`~repro.modeling.hypothesis.rank_guard` conditioning test standing
in for ``lstsq``'s rank, and the non-positive-coefficient rule.  Fitted
statistics agree to float tolerance (QR on the equilibrated design vs
SVD on the raw one); selected models — term sets, prior metadata,
constancy — are identical, enforced by the Hypothesis differential
suite in ``tests/modeling/test_backend_differential.py``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from ..registry import MODEL_BACKEND_REGISTRY, register_model_backend
from .hypothesis import (
    Model,
    ModelStats,
    fit_constant,
    fit_hypothesis,
    rank_guard,
    smape,
)
from .terms import TermSpec

#: Backend the modeler uses unless a caller overrides it.  The ``loop``
#: oracle remains registered for differential testing and bisection.
DEFAULT_MODEL_BACKEND = "batched"

#: A LOOCV fold whose training design loses rank when point *i* leaves
#: (leverage h_ii -> 1) cannot be scored by the hat-matrix identity, and
#: close to that point the refit loop's own screens (its ``np.allclose``
#: constant-column test, its rank guard on the training matrix) start
#: firing.  When any fold's slack ``1 - h_ii`` is at or below this
#: bound, the closed form delegates the whole computation to the refit
#: loop, whose per-fold verdicts are authoritative — so the two LOOCV
#: implementations can never disagree where degeneracy is in play.
CLOSED_FORM_MIN_SLACK = 1e-6


class ModelSearchBackend(Protocol):
    """What the search functions need from a fitting strategy."""

    name: str

    def fit_batch(
        self,
        X: np.ndarray,
        y: np.ndarray,
        parameters: "tuple[str, ...]",
        hypotheses: "Sequence[tuple[TermSpec, ...]]",
        require_nonnegative: bool = True,
    ) -> "list[Model | None]":
        """Fit every hypothesis on ``(X, y)``; None marks a rejection."""
        ...

    def loocv_smape(
        self, X: np.ndarray, y: np.ndarray, model: Model
    ) -> float:
        """Leave-one-out CV error of *model*'s term structure."""
        ...


# ----------------------------------------------------------------------
# the reference oracle


def refit_fold_model(
    X: np.ndarray, y: np.ndarray, model: Model
) -> "Model | None":
    """Refit *model*'s term structure on a training fold.

    The reference cross-validation refit: the constant model refits to
    the fold mean, anything else to the unconstrained least squares of
    its fixed term set.  ``None`` marks a degenerate fold (the training
    matrix rejects the term set).  Shared by :func:`refit_loocv_smape`
    and :mod:`repro.modeling.crossval`'s k-fold loop.
    """
    if model.is_constant:
        return fit_constant(X, y, model.parameters)
    return fit_hypothesis(
        X, y, model.parameters, model.terms, require_nonnegative=False
    )


def refit_loocv_smape(X: np.ndarray, y: np.ndarray, model: Model) -> float:
    """LOOCV by n full refits — the reference the closed form must match.

    Degenerate folds (the training matrix rejects the term set) score the
    maximal SMAPE of 2.0.
    """
    n = X.shape[0]
    errors = []
    for i in range(n):
        mask = np.ones(n, dtype=bool)
        mask[i] = False
        refit = refit_fold_model(X[mask], y[mask], model)
        if refit is None:
            errors.append(2.0)
            continue
        pred = refit.predict(X[~mask])
        errors.append(smape(y[~mask], pred))
    return float(np.mean(errors))


class LoopModelBackend:
    """One ``lstsq`` per hypothesis, one refit per CV fold (the oracle)."""

    name = "loop"

    def fit_batch(
        self,
        X: np.ndarray,
        y: np.ndarray,
        parameters: "tuple[str, ...]",
        hypotheses: "Sequence[tuple[TermSpec, ...]]",
        require_nonnegative: bool = True,
    ) -> "list[Model | None]":
        X = _as_design_matrix(X, parameters)
        y = np.asarray(y, dtype=float)
        return [
            fit_hypothesis(
                X, y, parameters, tuple(terms), require_nonnegative
            )
            for terms in hypotheses
        ]

    def loocv_smape(
        self, X: np.ndarray, y: np.ndarray, model: Model
    ) -> float:
        X = _as_design_matrix(X, model.parameters)
        y = np.asarray(y, dtype=float)
        return refit_loocv_smape(X, y, model)


# ----------------------------------------------------------------------
# the batched backend


def _as_design_matrix(X: np.ndarray, parameters: "tuple[str, ...]"):
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, len(parameters))
    return X


@dataclass
class _PreparedClass:
    """One factorized hypothesis class: same coefficient count *k*.

    ``order[v]`` maps the v-th factorized design back to its position in
    the hypothesis tuple the class was prepared for; hypotheses missing
    from ``order`` were rejected by the column or conditioning guards.
    """

    k: int
    n_hypotheses: int
    order: np.ndarray  # (V,) int indices of the surviving hypotheses
    scales: np.ndarray  # (V, k) column norms of the surviving designs
    q: np.ndarray  # (V, n, k) orthonormal factors
    r: np.ndarray  # (V, k, k) triangular factors
    #: Surviving hypotheses, aligned with ``order`` (Model construction).
    hypotheses: "tuple[tuple[TermSpec, ...], ...]"


_EMPTY = np.empty(0, dtype=int)


class _Fitter:
    """Everything batched that is bound to one configuration matrix.

    Holds the term-column cache (each unique exponent tuple evaluated
    exactly once over *X*) and an LRU of prepared hypothesis classes, so
    fitting a second function at the same design reuses the stacked QR
    factors and only pays one matrix-vector product per class.
    """

    def __init__(self, X: np.ndarray, max_classes: int = 64) -> None:
        self.X = X
        self.n = X.shape[0]
        self._max_classes = max_classes
        self._columns: dict[tuple, np.ndarray] = {}
        self._usable: dict[tuple, bool] = {}
        self._classes: "OrderedDict[tuple, _PreparedClass]" = OrderedDict()

    # -- term columns ---------------------------------------------------

    def column(self, term: TermSpec) -> np.ndarray:
        col = self._columns.get(term.exponents)
        if col is None:
            col = term.evaluate(self.X)
            self._columns[term.exponents] = col
        return col

    def column_usable(self, term: TermSpec) -> bool:
        """Same screens the loop backend applies to this term's column:
        finite everywhere, not an intercept-duplicating constant."""
        usable = self._usable.get(term.exponents)
        if usable is None:
            col = self.column(term)
            usable = bool(np.all(np.isfinite(col))) and not bool(
                np.allclose(col, col[0])
            )
            self._usable[term.exponents] = usable
        return usable

    # -- hypothesis classes ----------------------------------------------

    def prepared(
        self, k: int, hypotheses: "tuple[tuple[TermSpec, ...], ...]"
    ) -> _PreparedClass:
        key = (k, hypotheses)
        cached = self._classes.get(key)
        if cached is not None:
            self._classes.move_to_end(key)
            return cached
        prepared = self._prepare(k, hypotheses)
        self._classes[key] = prepared
        if len(self._classes) > self._max_classes:
            self._classes.popitem(last=False)
        return prepared

    def _prepare(
        self, k: int, hypotheses: "tuple[tuple[TermSpec, ...], ...]"
    ) -> _PreparedClass:
        n = self.n
        empty = _PreparedClass(
            k=k,
            n_hypotheses=len(hypotheses),
            order=_EMPTY,
            scales=np.empty((0, k)),
            q=np.empty((0, n, k)),
            r=np.empty((0, k, k)),
            hypotheses=(),
        )
        if n < k or not hypotheses:
            return empty
        usable = np.fromiter(
            (
                all(self.column_usable(term) for term in terms)
                for terms in hypotheses
            ),
            dtype=bool,
            count=len(hypotheses),
        )
        order = np.flatnonzero(usable)
        if order.size == 0:
            return empty
        design = np.ones((order.size, n, k))
        for v, h in enumerate(order):
            for idx, term in enumerate(hypotheses[h]):
                design[v, :, idx + 1] = self.column(term)
        # One stacked QR factorizes the whole class; the guard's verdict
        # and the solve factors come out of the same call.
        scaled, scales, q, r, deficient = rank_guard(design)
        keep = ~deficient
        order = order[keep]
        if order.size == 0:
            return empty
        return _PreparedClass(
            k=k,
            n_hypotheses=len(hypotheses),
            order=order,
            scales=scales[keep],
            q=q[keep],
            r=r[keep],
            hypotheses=tuple(hypotheses[h] for h in order),
        )


def _pointwise_smape(
    y: np.ndarray, pred: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-point SMAPE terms plus the zero-denominator validity mask.

    The one kernel behind every vectorized SMAPE here, replicating
    :func:`~repro.modeling.hypothesis.smape`'s conventions: masked-out
    points (|y| + |pred| == 0) contribute 0.
    """
    denom = (np.abs(y) + np.abs(pred)) * 0.5
    mask = denom > 0
    values = np.where(
        mask, np.abs(y - pred) / np.where(mask, denom, 1.0), 0.0
    )
    return values, mask


def _batched_smape(y: np.ndarray, pred: np.ndarray) -> np.ndarray:
    """Rowwise :func:`~repro.modeling.hypothesis.smape` of (V, n) *pred*."""
    values, mask = _pointwise_smape(y[None, :], pred)
    counts = mask.sum(axis=1)
    return np.where(
        counts > 0, values.sum(axis=1) / np.maximum(counts, 1), 0.0
    )


class BatchedModelBackend:
    """Stacked-LAPACK fitting: one QR per hypothesis class.

    Keeps an LRU of :class:`_Fitter` objects keyed by configuration
    matrix, so the model stage — which fits many functions at the same
    design — factorizes each hypothesis class once and reuses it across
    functions as additional right-hand sides.
    """

    name = "batched"

    def __init__(self, max_fitters: int = 8) -> None:
        self._fitters: "OrderedDict[tuple, _Fitter]" = OrderedDict()
        self._max_fitters = max_fitters

    # ------------------------------------------------------------------

    def _fitter(self, X: np.ndarray) -> _Fitter:
        X = np.ascontiguousarray(X)
        key = (X.shape, X.tobytes())
        fitter = self._fitters.get(key)
        if fitter is None:
            fitter = _Fitter(X)
            self._fitters[key] = fitter
            if len(self._fitters) > self._max_fitters:
                self._fitters.popitem(last=False)
        else:
            self._fitters.move_to_end(key)
        return fitter

    # ------------------------------------------------------------------

    def fit_batch(
        self,
        X: np.ndarray,
        y: np.ndarray,
        parameters: "tuple[str, ...]",
        hypotheses: "Sequence[tuple[TermSpec, ...]]",
        require_nonnegative: bool = True,
    ) -> "list[Model | None]":
        X = _as_design_matrix(X, parameters)
        y = np.asarray(y, dtype=float)
        out: "list[Model | None]" = [None] * len(hypotheses)
        if not hypotheses or X.shape[0] == 0:
            return out
        fitter = self._fitter(X)
        tss = float(np.sum((y - y.mean()) ** 2)) if y.size else 0.0

        by_k: "dict[int, list[int]]" = {}
        for idx, terms in enumerate(hypotheses):
            by_k.setdefault(len(terms) + 1, []).append(idx)

        for k, idxs in sorted(by_k.items()):
            group = tuple(tuple(hypotheses[i]) for i in idxs)
            prepared = fitter.prepared(k, group)
            if prepared.order.size == 0:
                continue
            models = self._solve(
                X, prepared, y, parameters, require_nonnegative, tss
            )
            for v, h in enumerate(prepared.order):
                out[idxs[h]] = models[v]
        return out

    def _solve(
        self,
        X: np.ndarray,
        prepared: _PreparedClass,
        y: np.ndarray,
        parameters: "tuple[str, ...]",
        require_nonnegative: bool,
        tss: float,
    ) -> "list[Model | None]":
        n = y.shape[0]
        k = prepared.k
        # One matrix-vector product per class: Q^T y for every design.
        b = np.einsum("vnk,n->vk", prepared.q, y)
        try:
            coef_scaled = np.linalg.solve(prepared.r, b[..., None])[..., 0]
        except np.linalg.LinAlgError:  # pragma: no cover - guarded by rank
            return [
                fit_hypothesis(X, y, parameters, terms, require_nonnegative)
                for terms in prepared.hypotheses
            ]
        coef = coef_scaled / prepared.scales
        # Projection: Q (Q^T y) is the fitted response of every design.
        pred = np.einsum("vnk,vk->vn", prepared.q, b)
        resid = y[None, :] - pred
        rss = np.einsum("vn,vn->v", resid, resid)
        smapes = _batched_smape(y, pred)
        if tss > 0:
            r2 = 1.0 - rss / tss
        else:
            r2 = np.ones_like(rss)

        if require_nonnegative and k > 1:
            rejected = np.any(coef[:, 1:] <= 0, axis=1)
        else:
            rejected = np.zeros(coef.shape[0], dtype=bool)

        models: "list[Model | None]" = []
        for v, terms in enumerate(prepared.hypotheses):
            if rejected[v]:
                models.append(None)
                continue
            stats = ModelStats(
                rss=float(rss[v]),
                smape=float(smapes[v]),
                r_squared=float(r2[v]),
                n_points=n,
                n_coefficients=k,
            )
            models.append(
                Model(parameters, terms, coef[v].copy(), stats)
            )
        return models

    # ------------------------------------------------------------------

    def loocv_smape(
        self, X: np.ndarray, y: np.ndarray, model: Model
    ) -> float:
        """Exact LOOCV from the hat-matrix identity.

        loo residual = e_i / (1 - h_ii), with h_ii the hat-matrix
        diagonal — the rowwise squared norms of the already-computed Q
        factor.  The closed form runs only when every fold is
        comfortably non-degenerate (leverage slack above
        :data:`CLOSED_FORM_MIN_SLACK`); near-degenerate folds — and
        designs the column screens reject outright — delegate the whole
        computation to the reference refit loop, whose per-fold verdicts
        are authoritative.  The two implementations therefore agree
        exactly wherever they could differ, and to float tolerance
        everywhere else.
        """
        X = _as_design_matrix(X, model.parameters)
        y = np.asarray(y, dtype=float)
        fitter = self._fitter(X)
        terms = tuple(model.terms)
        if not all(fitter.column_usable(term) for term in terms):
            return refit_loocv_smape(X, y, model)
        prepared = fitter.prepared(len(terms) + 1, (terms,))
        if prepared.order.size == 0:
            # The full design is rank-deficient: so is every fold's, and
            # the refit loop scores every fold the maximal 2.0.
            return 2.0
        q = prepared.q[0]
        slack = 1.0 - np.einsum("nk,nk->n", q, q)
        if float(np.min(slack)) <= CLOSED_FORM_MIN_SLACK:
            return refit_loocv_smape(X, y, model)
        b = q.T @ y
        loo_pred = y - (y - q @ b) / slack
        errors, _mask = _pointwise_smape(y, loo_pred)
        return float(np.mean(errors))


register_model_backend(
    "loop",
    help="reference oracle: one lstsq per hypothesis, refit-loop LOOCV",
)(LoopModelBackend)
register_model_backend(
    "batched",
    help="stacked-LAPACK QR per hypothesis class, closed-form LOOCV",
)(BatchedModelBackend)


def make_model_backend(name: str = DEFAULT_MODEL_BACKEND):
    """Instantiate the registered model-search backend *name*."""
    return MODEL_BACKEND_REGISTRY.create(name)


_SHARED_BACKENDS: "dict[str, ModelSearchBackend]" = {}


def default_model_backend(
    name: str = DEFAULT_MODEL_BACKEND,
) -> ModelSearchBackend:
    """Process-shared backend instance (its caches persist across calls).

    The search functions use this when no backend is passed explicitly;
    :class:`~repro.modeling.modeler.Modeler` instances hold their own.
    """
    backend = _SHARED_BACKENDS.get(name)
    if backend is None:
        backend = make_model_backend(name)
        _SHARED_BACKENDS[name] = backend
    return backend


__all__ = [
    "BatchedModelBackend",
    "CLOSED_FORM_MIN_SLACK",
    "DEFAULT_MODEL_BACKEND",
    "LoopModelBackend",
    "ModelSearchBackend",
    "default_model_backend",
    "make_model_backend",
    "refit_fold_model",
    "refit_loocv_smape",
]
