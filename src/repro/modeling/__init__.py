"""Empirical performance modeling: an Extra-P re-implementation.

PMNF terms and hypotheses (paper Eq. 1), single-parameter search over the
paper's I/J exponent sets, the fast multi-parameter heuristic, and the
:class:`Modeler` facade with white-box :class:`SearchPrior` support.
"""

from .backends import (
    DEFAULT_MODEL_BACKEND,
    BatchedModelBackend,
    LoopModelBackend,
    ModelSearchBackend,
    default_model_backend,
    make_model_backend,
)
from .hypothesis import (
    Model,
    ModelStats,
    fit_constant,
    fit_hypothesis,
    smape,
)
from .crossval import compare_models, kfold_smape, loocv_smape
from .modeler import Modeler, SearchPrior
from .multiparam import (
    NO_RESTRICTIONS,
    TermRestrictions,
    generate_hypotheses,
    search_multi_parameter,
)
from .search import (
    DEFAULT_SEARCH,
    SearchConfig,
    best_terms_for_parameter,
    search_single_parameter,
)
from .terms import (
    DEFAULT_I,
    DEFAULT_J,
    DEFAULT_N_TERMS,
    TermSpec,
    candidate_terms,
    evaluate_term_columns,
    product_term,
    single_param_term,
)

__all__ = [
    "BatchedModelBackend",
    "DEFAULT_I",
    "DEFAULT_J",
    "DEFAULT_MODEL_BACKEND",
    "DEFAULT_N_TERMS",
    "DEFAULT_SEARCH",
    "LoopModelBackend",
    "Model",
    "ModelSearchBackend",
    "ModelStats",
    "Modeler",
    "NO_RESTRICTIONS",
    "SearchConfig",
    "SearchPrior",
    "TermRestrictions",
    "TermSpec",
    "best_terms_for_parameter",
    "candidate_terms",
    "compare_models",
    "default_model_backend",
    "evaluate_term_columns",
    "fit_constant",
    "fit_hypothesis",
    "generate_hypotheses",
    "kfold_smape",
    "loocv_smape",
    "make_model_backend",
    "product_term",
    "search_multi_parameter",
    "search_single_parameter",
    "single_param_term",
    "smape",
]
