"""Empirical performance modeling: an Extra-P re-implementation.

PMNF terms and hypotheses (paper Eq. 1), single-parameter search over the
paper's I/J exponent sets, the fast multi-parameter heuristic, and the
:class:`Modeler` facade with white-box :class:`SearchPrior` support.
"""

from .hypothesis import (
    Model,
    ModelStats,
    fit_constant,
    fit_hypothesis,
    smape,
)
from .crossval import compare_models, kfold_smape, loocv_smape
from .modeler import Modeler, SearchPrior
from .multiparam import (
    NO_RESTRICTIONS,
    TermRestrictions,
    generate_hypotheses,
    search_multi_parameter,
)
from .search import (
    DEFAULT_SEARCH,
    SearchConfig,
    best_terms_for_parameter,
    search_single_parameter,
)
from .terms import (
    DEFAULT_I,
    DEFAULT_J,
    DEFAULT_N_TERMS,
    TermSpec,
    candidate_terms,
    product_term,
    single_param_term,
)

__all__ = [
    "DEFAULT_I",
    "DEFAULT_J",
    "DEFAULT_N_TERMS",
    "DEFAULT_SEARCH",
    "Model",
    "ModelStats",
    "Modeler",
    "NO_RESTRICTIONS",
    "SearchConfig",
    "SearchPrior",
    "TermRestrictions",
    "TermSpec",
    "best_terms_for_parameter",
    "candidate_terms",
    "compare_models",
    "fit_constant",
    "fit_hypothesis",
    "generate_hypotheses",
    "kfold_smape",
    "loocv_smape",
    "product_term",
    "search_multi_parameter",
    "search_single_parameter",
    "single_param_term",
    "smape",
]
