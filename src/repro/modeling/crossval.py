"""Cross-validated model assessment.

Extra-P selects hypotheses by (cross-validated) fit quality; the paper's
B1 discussion hinges on the fact that in-sample fit alone cannot tell a
real dependence from fitted noise.  This module provides the standard
instruments:

* :func:`loocv_smape` — leave-one-out cross-validated SMAPE of a term set
  (terms fixed; coefficients per fold).  Dispatches to the configured
  model-search backend: the ``batched`` default scores every fold in
  closed form from the hat-matrix identity (loo residual =
  e_i / (1 - h_ii)) instead of n refits, the ``loop`` oracle refits;
* :func:`kfold_smape` — k-fold variant for larger designs;
* :func:`compare_models` — paired comparison of two fitted models on held
  out points (used by tests to show the hybrid prior generalizes better
  than the black-box fit on taint-constant functions).
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelingError
from .backends import (
    ModelSearchBackend,
    default_model_backend,
    refit_fold_model,
)
from .hypothesis import Model, smape


def loocv_smape(
    X: np.ndarray,
    y: np.ndarray,
    model: Model,
    backend: "ModelSearchBackend | None" = None,
) -> float:
    """Leave-one-out CV error of *model*'s term structure on (X, y)."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, len(model.parameters))
    n = X.shape[0]
    if n < model.stats.n_coefficients + 1:
        raise ModelingError("too few points for leave-one-out CV")
    backend = backend or default_model_backend()
    return backend.loocv_smape(X, y, model)


def kfold_smape(
    X: np.ndarray, y: np.ndarray, model: Model, k: int = 5, seed: int = 0
) -> float:
    """k-fold CV error of *model*'s term structure on (X, y)."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, len(model.parameters))
    n = X.shape[0]
    k = min(k, n)
    if k < 2:
        raise ModelingError("k-fold CV needs k >= 2")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    folds = np.array_split(order, k)
    errors = []
    for fold in folds:
        mask = np.ones(n, dtype=bool)
        mask[fold] = False
        if mask.sum() < model.stats.n_coefficients:
            # Too few training points to determine the coefficients: the
            # fold is degenerate for this term set and scores the maximal
            # error, exactly like loocv_smape's failed refits — silently
            # skipping it would overstate the model's CV quality.
            errors.append(2.0)
            continue
        refit = refit_fold_model(X[mask], y[mask], model)
        if refit is None:
            errors.append(2.0)
            continue
        errors.append(smape(y[~mask], refit.predict(X[~mask])))
    if not errors:  # pragma: no cover - k >= 2 always yields folds
        raise ModelingError("no valid folds")
    return float(np.mean(errors))


def compare_models(
    X: np.ndarray,
    y: np.ndarray,
    a: Model,
    b: Model,
    backend: "ModelSearchBackend | None" = None,
) -> dict[str, float]:
    """LOO-CV comparison of two fitted models on the same data.

    Returns {"a": cv_a, "b": cv_b, "advantage": cv_b - cv_a} — positive
    advantage means *a* generalizes better.
    """
    cv_a = loocv_smape(X, y, a, backend=backend)
    cv_b = loocv_smape(X, y, b, backend=backend)
    return {"a": cv_a, "b": cv_b, "advantage": cv_b - cv_a}
