"""Model hypotheses: a term set plus fitted coefficients.

"A possible assignment of all i_k and j_k in a PMNF expression is called a
model hypothesis" (paper 4.5).  Hypotheses are fitted by linear least
squares (the PMNF is linear in its coefficients); hypotheses whose
non-constant coefficients come out non-positive are rejected, as runtime
contributions are non-negative.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ModelingError
from .terms import TermSpec, evaluate_term_columns

#: Double-precision machine epsilon, the unit of the conditioning guard.
MACHINE_EPS = float(np.finfo(np.float64).eps)


def column_scales(design: np.ndarray) -> np.ndarray:
    """Euclidean norm of every design column (zeros mapped to 1).

    Works on a single ``(n, k)`` design or a stacked ``(H, n, k)`` tensor.
    Equilibrating columns to unit norm before forming Gram matrices keeps
    the conditioning guard about the *geometry* of the term set, not the
    wildly different magnitudes PMNF columns reach (``x^3`` vs ``1``).
    """
    scales = np.sqrt(np.einsum("...nk,...nk->...k", design, design))
    return np.where(scales > 0.0, scales, 1.0)


def rank_guard(
    design: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Column-equilibrated QR factors plus rank-deficiency verdicts.

    Returns ``(scaled, scales, q, r, deficient)`` for a ``(n, k)`` design
    or a stacked ``(H, n, k)`` tensor (``deficient`` is then ``(H,)``).
    The verdict mirrors ``lstsq``'s SVD rank test — smallest singular
    value at or below ``max(n, k) * eps`` relative to the largest — using
    the diagonal of the equilibrated R factor as the singular-value
    estimate (reliable at PMNF widths, k <= 3; unlike Gram eigenvalues it
    does not square the condition number, so well-conditioned hypotheses
    over narrow parameter ranges stay accepted).  Both backends reject
    through this one test, so their accept/reject decisions agree by
    construction; the batched backend also reuses the factors for its
    stacked solves.  The design must be finite (callers screen
    non-finite columns first) and have ``n >= k``.
    """
    scales = column_scales(design)
    scaled = design / scales[..., None, :]
    q, r = np.linalg.qr(scaled)
    rdiag = np.abs(np.diagonal(r, axis1=-2, axis2=-1))
    n, k = design.shape[-2], design.shape[-1]
    cutoff = max(n, k) * MACHINE_EPS * np.max(rdiag, axis=-1)
    deficient = ~np.all(np.isfinite(rdiag), axis=-1) | (
        np.min(rdiag, axis=-1) <= cutoff
    )
    return scaled, scales, q, r, deficient


@dataclass(frozen=True)
class ModelStats:
    """Goodness-of-fit statistics of a fitted hypothesis."""

    rss: float
    smape: float
    r_squared: float
    n_points: int
    n_coefficients: int


@dataclass
class Model:
    """A fitted performance model.

    ``coefficients[0]`` is the constant c0; ``coefficients[k+1]`` pairs
    with ``terms[k]``.
    """

    parameters: tuple[str, ...]
    terms: tuple[TermSpec, ...]
    coefficients: np.ndarray
    stats: ModelStats
    metadata: dict = field(default_factory=dict)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Evaluate the model on configuration matrix *X*.

        Terms are assembled into one column matrix (each unique term
        evaluated exactly once) and applied as a single matrix-vector
        product, so prediction on large validation grids costs one BLAS
        call instead of a Python loop over terms.
        """
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, len(self.parameters))
        if not self.terms:
            return np.full(X.shape[0], float(self.coefficients[0]))
        columns = evaluate_term_columns(X, self.terms)
        coef = np.asarray(self.coefficients, dtype=float)
        return coef[0] + columns @ coef[1:]

    def predict_one(self, config: "dict[str, float]") -> float:
        """Evaluate at a single named configuration."""
        x = np.array([[config[p] for p in self.parameters]], dtype=float)
        return float(self.predict(x)[0])

    @property
    def is_constant(self) -> bool:
        """True when no term with a nonzero coefficient remains."""
        return len(self.terms) == 0

    def used_parameters(self) -> frozenset[str]:
        """Names of parameters appearing in any fitted term."""
        used: set[str] = set()
        for term in self.terms:
            for idx in term.uses():
                used.add(self.parameters[idx])
        return frozenset(used)

    def format(self, precision: int = 3) -> str:
        """Human-readable PMNF expression."""
        parts = [f"{self.coefficients[0]:.{precision}g}"]
        for coef, term in zip(self.coefficients[1:], self.terms):
            parts.append(
                f"{coef:.{precision}g} * {term.format(self.parameters)}"
            )
        return " + ".join(parts)

    def __str__(self) -> str:
        return self.format()


def fit_hypothesis(
    X: np.ndarray,
    y: np.ndarray,
    parameters: tuple[str, ...],
    terms: tuple[TermSpec, ...],
    require_nonnegative: bool = True,
) -> Model | None:
    """Fit one hypothesis by least squares.

    Returns None when the design matrix is rank-deficient for this term
    set (per the shared :func:`rank_guard` conditioning test, so the
    ``loop`` and ``batched`` backends agree) or (with
    *require_nonnegative*) a non-constant coefficient is not strictly
    positive — such hypotheses cannot describe a runtime contribution
    and are discarded from the search.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, len(parameters))
    n = X.shape[0]
    k = len(terms) + 1
    if n < k:
        return None
    design = np.ones((n, k))
    for idx, term in enumerate(terms):
        design[:, idx + 1] = term.evaluate(X)
    if not np.all(np.isfinite(design)):
        return None
    # Columns that are (numerically) constant duplicate the intercept.
    for idx in range(1, k):
        col = design[:, idx]
        if np.allclose(col, col[0]):
            return None
    _scaled, _scales, _q, _r, deficient = rank_guard(design)
    if bool(deficient):
        return None
    # The guard's QR factors are deliberately NOT reused for the solve:
    # lstsq's SVD keeps this oracle's solution path independent of the
    # batched backend's QR solves — the independence the differential
    # suite relies on — at the cost of a second small factorization.
    try:
        coef, _res, _rank, _sv = np.linalg.lstsq(design, y, rcond=None)
    except np.linalg.LinAlgError:  # pragma: no cover - lstsq rarely raises
        return None
    if require_nonnegative and len(coef) > 1 and np.any(coef[1:] <= 0):
        return None
    pred = design @ coef
    rss = float(np.sum((y - pred) ** 2))
    tss = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 - rss / tss if tss > 0 else 1.0
    stats = ModelStats(
        rss=rss,
        smape=smape(y, pred),
        r_squared=r2,
        n_points=n,
        n_coefficients=k,
    )
    return Model(parameters, tuple(terms), coef, stats)


def fit_constant(
    X: np.ndarray, y: np.ndarray, parameters: tuple[str, ...]
) -> Model:
    """The constant hypothesis (always fits)."""
    y = np.asarray(y, dtype=float)
    if y.size == 0:
        raise ModelingError("cannot fit a model to zero measurements")
    mean = float(y.mean())
    pred = np.full_like(y, mean)
    rss = float(np.sum((y - pred) ** 2))
    stats = ModelStats(
        rss=rss,
        smape=smape(y, pred),
        r_squared=1.0 if rss == 0 else 0.0,
        n_points=int(y.size),
        n_coefficients=1,
    )
    return Model(parameters, (), np.array([mean]), stats)


def smape(y: np.ndarray, pred: np.ndarray) -> float:
    """Symmetric mean absolute percentage error in [0, 2]."""
    y = np.asarray(y, dtype=float)
    pred = np.asarray(pred, dtype=float)
    denom = (np.abs(y) + np.abs(pred)) / 2.0
    mask = denom > 0
    if not np.any(mask):
        return 0.0
    return float(
        np.mean(np.abs(y[mask] - pred[mask]) / denom[mask])
    )
