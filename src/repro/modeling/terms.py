"""Performance Model Normal Form terms (paper Equation 1).

A PMNF model is ``f(x) = c0 + sum_k c_k * prod_l x_l^{i_kl} * log2(x_l)^{j_kl}``.
A :class:`TermSpec` is one product ``prod_l x_l^{i_l} * log2(x_l)^{j_l}``;
the model search chooses exponents from the paper's sets:

    I = {0/4, 1/4, 1/3, 2/4, 2/3, 3/4, 4/4, 5/4, 4/3, 6/4, 5/3, 7/4,
         8/4, 9/4, 10/4, 8/3, 11/4, 12/4}
    J = {0, 1, 2},   n = 2 terms
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from functools import lru_cache

import numpy as np

#: Polynomial exponents of the paper's default search space.
DEFAULT_I: tuple[Fraction, ...] = tuple(
    Fraction(n, d)
    for n, d in (
        (0, 4),
        (1, 4),
        (1, 3),
        (2, 4),
        (2, 3),
        (3, 4),
        (4, 4),
        (5, 4),
        (4, 3),
        (6, 4),
        (5, 3),
        (7, 4),
        (8, 4),
        (9, 4),
        (10, 4),
        (8, 3),
        (11, 4),
        (12, 4),
    )
)

#: Logarithm exponents of the default search space.
DEFAULT_J: tuple[int, ...] = (0, 1, 2)

#: Number of non-constant terms in the default normal form.
DEFAULT_N_TERMS: int = 2


@dataclass(frozen=True)
class TermSpec:
    """One PMNF product term over an ordered parameter tuple.

    ``exponents[l] = (i_l, j_l)`` — polynomial and log2 exponent of the
    l-th parameter.  Parameters with (0, 0) do not appear in the term.
    """

    exponents: tuple[tuple[float, int], ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "exponents",
            tuple((float(i), int(j)) for i, j in self.exponents),
        )

    @property
    def is_trivial(self) -> bool:
        """True for the all-zero term (a constant)."""
        return all(i == 0 and j == 0 for i, j in self.exponents)

    def uses(self) -> frozenset[int]:
        """Indices of parameters appearing in the term."""
        return frozenset(
            l for l, (i, j) in enumerate(self.exponents) if i != 0 or j != 0
        )

    def evaluate(self, X: np.ndarray) -> np.ndarray:
        """Evaluate the term on configuration matrix ``X`` (n x m)."""
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        out = np.ones(X.shape[0])
        for l, (i, j) in enumerate(self.exponents):
            col = X[:, l]
            if i != 0:
                out = out * np.power(col, i)
            if j != 0:
                with np.errstate(divide="ignore", invalid="ignore"):
                    logs = np.where(col > 0, np.log2(np.maximum(col, 1e-300)), 0.0)
                out = out * np.power(logs, j)
        return out

    def format(self, names: tuple[str, ...]) -> str:
        """Human-readable rendering, e.g. ``p^0.5 * log2(size)^2``."""
        parts: list[str] = []
        for l, (i, j) in enumerate(self.exponents):
            name = names[l] if l < len(names) else f"x{l}"
            if i != 0:
                parts.append(name if i == 1 else f"{name}^{_fmt_exp(i)}")
            if j != 0:
                parts.append(
                    f"log2({name})" if j == 1 else f"log2({name})^{j}"
                )
        return " * ".join(parts) if parts else "1"


def _fmt_exp(value: float) -> str:
    frac = Fraction(value).limit_denominator(24)
    if frac.denominator == 1:
        return str(frac.numerator)
    return f"{float(value):g}"


def single_param_term(
    index: int, n_params: int, i: float, j: int
) -> TermSpec:
    """A term touching only parameter *index* of *n_params*."""
    exps = [(0.0, 0)] * n_params
    exps[index] = (float(i), int(j))
    return TermSpec(tuple(exps))


def product_term(terms: "list[TermSpec]") -> TermSpec:
    """Multiply single-parameter terms into one multi-parameter term.

    Exponents add; terms must share the same parameter arity.
    """
    if not terms:
        raise ValueError("empty product")
    n = len(terms[0].exponents)
    exps = [[0.0, 0] for _ in range(n)]
    for term in terms:
        if len(term.exponents) != n:
            raise ValueError("terms have mismatched parameter arity")
        for l, (i, j) in enumerate(term.exponents):
            exps[l][0] += i
            exps[l][1] += j
    return TermSpec(tuple((i, int(j)) for i, j in exps))


def evaluate_term_columns(
    X: np.ndarray, terms: "tuple[TermSpec, ...] | list[TermSpec]"
) -> np.ndarray:
    """Column matrix ``(n_points, len(terms))`` of term values on *X*.

    Each *unique* term (by exponent tuple) is evaluated exactly once and
    its column shared — the batched model-search backend and
    :meth:`Model.predict <repro.modeling.hypothesis.Model.predict>` both
    build their designs through this helper, so fitted and predicted
    columns are bit-identical.
    """
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    out = np.empty((X.shape[0], len(terms)))
    cache: dict[tuple, np.ndarray] = {}
    for idx, term in enumerate(terms):
        col = cache.get(term.exponents)
        if col is None:
            col = term.evaluate(X)
            cache[term.exponents] = col
        out[:, idx] = col
    return out


@lru_cache(maxsize=64)
def _candidate_terms_cached(
    n_params: int, param_index: int, i_set: tuple, j_set: tuple
) -> tuple[TermSpec, ...]:
    out: list[TermSpec] = []
    for i in i_set:
        for j in j_set:
            if float(i) == 0 and j == 0:
                continue  # the constant is always present separately
            out.append(single_param_term(param_index, n_params, float(i), j))
    return tuple(out)


def candidate_terms(
    n_params: int,
    param_index: int,
    i_set: tuple = DEFAULT_I,
    j_set: tuple = DEFAULT_J,
) -> list[TermSpec]:
    """All single-parameter candidate terms for one parameter.

    Memoized on the exponent sets: the search calls this once per
    parameter per fitted function, and the term set never changes within
    a search configuration."""
    return list(_candidate_terms_cached(n_params, param_index, i_set, j_set))
