"""Whole-sweep batched measurement: one tensor pass per design.

The scalar runners pay one interpreter execution per configuration (and
~25us of RNG stream setup per noise sample).  This runner hands the whole
design to a batch-capable engine (``supports_batch`` registry metadata,
see :func:`repro.interp.batch_capable_engines`) in one
:func:`~repro.measure.profiler.profile_run_batch` call, and samples every
(function, configuration, repetition) noise stream through
:func:`~repro.measure.noise.perturb_block` — the vectorized twin of the
scalar ``rng_for`` derivation.

Bit-identity contract: for any design, batch size, and worker count the
returned :class:`~repro.measure.experiment.Measurements` equal the serial
:class:`~repro.measure.experiment.ExperimentRunner`'s bit for bit.  The
engine guarantees per-lane profile identity; noise streams depend only on
``(seed, function, key, repetition)``; and results merge in canonical
design order (:func:`~repro.measure.experiment.merge_results_dense`).

Composition with the process-pool runner: ``n_jobs > 1`` shards the
*batch axis* across workers — each worker executes one contiguous chunk
of configurations as its own batch, reusing the
:class:`~repro.measure.parallel.WorkloadSpec` rebuild machinery so no
live workload objects cross process boundaries.
"""

from __future__ import annotations

import pathlib
import pickle
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..errors import RegistryError
from ..interp import batch_capable_engines
from ..mpisim.contention import ContentionModel, NoContention
from ..registry import ENGINE_REGISTRY
from .experiment import (
    ConfigKey,
    ConfigRunResult,
    Measurements,
    RunSetup,
    Workload,
    config_key,
    merge_results_dense,
)
from .instrumentation import InstrumentationPlan
from .io import RunCache, program_hash
from .noise import GaussianNoise, NoiseModel, perturb_block
from .parallel import (
    RunStats,
    _workload_for,
    configuration_fingerprint,
    spec_of,
    workload_repr,
)
from .profiler import APP_KEY, ProfileNode, ProfileResult, profile_run_batch

#: Default batched engine (the only built-in with ``supports_batch``).
DEFAULT_BATCH_ENGINE = "vectorized"


def batch_chunks(
    pending: Sequence[int],
    setups: Sequence[RunSetup],
    batch_size: "int | None" = None,
    n_jobs: "int | None" = 1,
) -> list[list[int]]:
    """Split design indices into batchable chunks, preserving order.

    Lanes of one engine pass must share ``exec_config`` and ``entry``;
    within each such group, ``batch_size`` caps the chunk length, or an
    ``n_jobs`` hint splits the group into ``min(n_jobs, len)`` balanced
    chunks (sizes differing by at most one, so no worker idles on an
    uneven split; ``None`` counts as 1).  Shared by
    :class:`BatchedExperimentRunner` and the campaign-service broker,
    whose leases are exactly these chunks — so a lease handed to a
    batch-capable worker is always executable as one tensor pass.
    """
    groups: list[tuple[tuple, list[int]]] = []
    for index in pending:
        marker = (setups[index].exec_config, setups[index].entry)
        if groups and groups[-1][0] == marker:
            groups[-1][1].append(index)
        else:
            groups.append((marker, [index]))
    chunks: list[list[int]] = []
    for _marker, members in groups:
        if batch_size is not None:
            for at in range(0, len(members), batch_size):
                chunks.append(members[at : at + batch_size])
        elif n_jobs is not None and n_jobs > 1:
            parts = min(n_jobs, len(members))
            base, extra = divmod(len(members), parts)
            at = 0
            for part in range(parts):
                size = base + (1 if part < extra else 0)
                chunks.append(members[at : at + size])
                at += size
        else:
            chunks.append(members)
    return chunks


@dataclass(frozen=True)
class LaneStats:
    """Accounting over the planned ``(configuration x repetition)`` grid.

    ``planned`` counts every lane of the grid a sweep asks for;
    ``executed`` counts the representative lanes the engine actually ran
    after dedup (repetitions of a deterministic run and repeated design
    points share one representative).  ``deduped`` is the work avoided.
    """

    planned: int = 0
    executed: int = 0

    @property
    def deduped(self) -> int:
        return self.planned - self.executed

    def merged(self, other: "LaneStats") -> "LaneStats":
        return LaneStats(
            planned=self.planned + other.planned,
            executed=self.executed + other.executed,
        )


def plan_lanes(
    setups: Sequence[RunSetup], repetitions: int = 1
) -> tuple[list[int], list[int], LaneStats]:
    """Plan the ``(configuration x repetition)`` grid as engine lanes.

    Every configuration of *setups* times every repetition is one
    planned lane; lanes whose configuration identity
    (:func:`~repro.interp.vectorize.lane_signature` over entry args and
    runtime, plus ``entry``/``exec_config``) is equal collapse into one
    representative engine lane.  Returns ``(representatives,
    slot_to_rep, stats)`` where ``representatives`` are setup indices to
    execute, ``slot_to_rep[slot]`` maps each setup slot to its
    representative's position, and ``stats`` counts planned vs executed
    lanes.  Repetitions never need extra engine lanes (noise streams are
    drawn per ``(function, key, repetition)`` downstream), so they are
    pure dedup gain in the accounting.
    """
    from ..interp.vectorize import lane_signature

    representatives: list[int] = []
    slot_to_rep: list[int] = []
    seen: dict[tuple, int] = {}
    for slot, setup in enumerate(setups):
        signature = lane_signature(setup.args, setup.runtime)
        rep = None
        if signature is not None:
            key = (setup.entry, repr(setup.exec_config), signature)
            rep = seen.get(key)
        if rep is None:
            rep = len(representatives)
            representatives.append(slot)
            if signature is not None:
                seen[key] = rep
        slot_to_rep.append(rep)
    stats = LaneStats(
        planned=len(setups) * max(1, repetitions),
        executed=len(representatives),
    )
    return representatives, slot_to_rep, stats


def _broadcast_profile(profile: ProfileResult, factor: float) -> ProfileResult:
    """A duplicate slot's own :class:`ProfileResult`, copied from its
    representative lane with the slot's contention factor.

    Fresh :class:`ProfileNode` objects in the representative's insertion
    order: node values are factor-independent (contention applies at
    query time), so the copy is bit-identical to what the slot's own
    engine lane would have produced.
    """
    nodes = {
        path: ProfileNode(
            callpath=node.callpath,
            calls=node.calls,
            compute=node.compute,
            memory=node.memory,
            comm=node.comm,
            overhead=node.overhead,
        )
        for path, node in profile.nodes.items()
    }
    return ProfileResult(
        plan=profile.plan,
        nodes=nodes,
        contention_factor=factor,
        loop_iterations=dict(profile.loop_iterations),
    )


def require_batch_engine(engine: str) -> None:
    """Raise :class:`~repro.errors.RegistryError` unless *engine* is
    registered as batch-capable (instead of failing deep in the run)."""
    entry = ENGINE_REGISTRY.entry(engine)
    if not entry.metadata.get("supports_batch"):
        capable = ", ".join(batch_capable_engines()) or "<none>"
        raise RegistryError(
            f"engine '{engine}' cannot execute batches "
            f"(batch-capable engines: {capable}; "
            "see `repro engines` for the full capability listing)"
        )


def run_batch_configurations(
    program,
    setups: Sequence[RunSetup],
    keys: Sequence[ConfigKey],
    plan: InstrumentationPlan,
    noise: NoiseModel,
    contention: ContentionModel,
    repetitions: int,
    seed: int,
    engine: str = DEFAULT_BATCH_ENGINE,
    dedup: bool = True,
) -> list[ConfigRunResult]:
    """Batched twin of :func:`~repro.measure.experiment.run_configuration`.

    One profiled tensor pass over all *setups* (which must share
    ``exec_config`` and ``entry`` — the engine compiles one program
    against one execution config), then one noise block covering every
    (function, key, repetition) triple of the whole chunk.

    With *dedup* (the default), setups with identical configuration
    identity (:func:`plan_lanes`) share one representative engine lane
    whose profile is broadcast back to every duplicate slot — noise
    streams still come from each slot's own ``(function, key,
    repetition)`` triples, so the results are bit-identical to running
    every slot as its own lane.
    """
    factors = [contention.factor(s.ranks_per_node) for s in setups]
    if dedup:
        representatives, slot_to_rep, _ = plan_lanes(setups)
    else:
        representatives = list(range(len(setups)))
        slot_to_rep = list(range(len(setups)))
    rep_profiles = profile_run_batch(
        program,
        [setups[i].args for i in representatives],
        plan,
        runtimes=[setups[i].runtime for i in representatives],
        exec_config=setups[0].exec_config,
        contention_factors=[factors[i] for i in representatives],
        entry=setups[0].entry,
        engine=engine,
    )
    profiles = [
        rep_profiles[rep]
        if representatives[rep] == slot
        else _broadcast_profile(rep_profiles[rep], factors[slot])
        for slot, rep in enumerate(slot_to_rep)
    ]
    results: list[ConfigRunResult] = []
    items: list[tuple[str, ConfigKey, float]] = []
    spans: list[tuple[int, int]] = []
    for lane, profile in enumerate(profiles):
        result = ConfigRunResult(key=keys[lane], profile=profile)
        start = len(items)
        for name, node in profile.flat().items():
            if not name:
                continue
            result.calls[name] = node.calls
            items.append((name, keys[lane], node.time(factors[lane])))
        items.append((APP_KEY, keys[lane], profile.total_time()))
        spans.append((start, len(items)))
        results.append(result)
    samples = perturb_block(noise, seed, items, repetitions)
    for lane, (start, stop) in enumerate(spans):
        result = results[lane]
        for (name, _key, _base), values in zip(
            items[start:stop], samples[start:stop]
        ):
            result.samples[name] = values
    return results


# ----------------------------------------------------------------------
# worker side


@dataclass(frozen=True)
class _BatchTask:
    """One contiguous chunk of the design, shipped to a worker."""

    indices: tuple[int, ...]
    spec_blob: bytes
    configs: tuple[tuple[tuple[str, float], ...], ...]
    plan: InstrumentationPlan
    noise: NoiseModel
    contention: ContentionModel
    repetitions: int
    seed: int
    keys: tuple[ConfigKey, ...]
    engine: str = DEFAULT_BATCH_ENGINE
    dedup: bool = True


def _run_batch_task(
    task: _BatchTask,
) -> list[tuple[int, ConfigRunResult]]:
    """Worker entry point: rebuild the workload, run one chunk batched."""
    workload = _workload_for(task.spec_blob)
    setups = [workload.setup(dict(config)) for config in task.configs]
    results = run_batch_configurations(
        workload.program(),
        setups,
        task.keys,
        task.plan,
        task.noise,
        task.contention,
        task.repetitions,
        task.seed,
        engine=task.engine,
        dedup=task.dedup,
    )
    return list(zip(task.indices, results))


# ----------------------------------------------------------------------
# driver side


@dataclass
class BatchedExperimentRunner:
    """Runs a whole design as tensor batches on a batch-capable engine.

    Drop-in equivalent of the serial and parallel runners: bit-identical
    measurements for every ``batch_size`` and ``n_jobs``.  ``batch_size``
    caps lanes per engine pass (``None`` = whole design in one pass;
    with ``n_jobs > 1`` the default shards the design evenly across
    workers).  Configurations whose setups disagree on ``exec_config`` or
    ``entry`` are split into per-group batches automatically.
    """

    workload: Workload
    plan: InstrumentationPlan
    noise: NoiseModel = field(default_factory=GaussianNoise)
    contention: ContentionModel = field(default_factory=NoContention)
    repetitions: int = 5
    seed: int = 0
    engine: str = DEFAULT_BATCH_ENGINE
    batch_size: int | None = None
    n_jobs: int = 1
    cache_dir: str | pathlib.Path | None = None
    dedup: bool = True

    def __post_init__(self) -> None:
        if self.n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {self.n_jobs}")
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        require_batch_engine(self.engine)
        self._cache = (
            RunCache(self.cache_dir) if self.cache_dir is not None else None
        )
        self.last_stats = RunStats()
        self.last_lane_stats = LaneStats()

    # -- cache keys --------------------------------------------------------

    def _fingerprint(
        self,
        program_digest: str,
        config: Mapping[str, float],
        setup: RunSetup,
        workload_repr: str,
    ) -> str:
        # The engine name participates, so caches populated by scalar
        # engines are never served to batched runs or vice versa (results
        # are bit-identical, but provenance must stay honest).
        return configuration_fingerprint(
            program_digest,
            config,
            setup,
            self.plan,
            self.noise,
            self.contention,
            self.repetitions,
            self.seed,
            workload_repr,
            self.engine,
        )

    # -- execution ---------------------------------------------------------

    def run(
        self, design: Iterable[Mapping[str, float]]
    ) -> tuple[Measurements, dict[ConfigKey, ProfileResult]]:
        """Execute the design; return measurements and per-config profiles."""
        configs = [dict(c) for c in design]
        parameters = tuple(self.workload.parameters)
        program = self.workload.program()
        keys = [config_key(parameters, c) for c in configs]
        setups = [self.workload.setup(c) for c in configs]

        results: list[ConfigRunResult | None] = [None] * len(configs)
        pending: list[int] = []
        fingerprints: list[str | None] = [None] * len(configs)
        if self._cache is not None:
            digest = program_hash(program)
            wl_repr = workload_repr(self.workload)
        for index in range(len(configs)):
            if self._cache is not None:
                fingerprints[index] = self._fingerprint(
                    digest, configs[index], setups[index], wl_repr
                )
                hit = self._cache.get(fingerprints[index])
                if hit is not None:
                    results[index] = hit
                    continue
            pending.append(index)

        lane_stats = LaneStats()
        if pending:
            chunks = self._chunks(pending, setups)
            # Driver-side lane accounting: execution-side dedup is
            # deterministic per chunk, so the plan sum equals what the
            # workers actually run — also with n_jobs > 1.
            for chunk in chunks:
                if self.dedup:
                    _, _, stats = plan_lanes(
                        [setups[i] for i in chunk], self.repetitions
                    )
                else:
                    stats = LaneStats(
                        planned=len(chunk) * max(1, self.repetitions),
                        executed=len(chunk),
                    )
                lane_stats = lane_stats.merged(stats)
            if self.n_jobs == 1:
                for chunk in chunks:
                    chunk_results = run_batch_configurations(
                        program,
                        [setups[i] for i in chunk],
                        [keys[i] for i in chunk],
                        self.plan,
                        self.noise,
                        self.contention,
                        self.repetitions,
                        self.seed,
                        engine=self.engine,
                        dedup=self.dedup,
                    )
                    for i, result in zip(chunk, chunk_results):
                        results[i] = result
            else:
                self._run_pool(configs, keys, chunks, results)
            if self._cache is not None:
                for index in pending:
                    self._cache.put(fingerprints[index], results[index])

        self.last_stats = RunStats(
            executed=sum(1 for r in results if not r.cached),
            cached=sum(1 for r in results if r.cached),
        )
        self.last_lane_stats = lane_stats
        return merge_results_dense(parameters, results)

    def _chunks(
        self, pending: Sequence[int], setups: Sequence[RunSetup]
    ) -> list[list[int]]:
        """See :func:`batch_chunks` (module-level for reuse by the
        campaign-service broker)."""
        return batch_chunks(pending, setups, self.batch_size, self.n_jobs)

    def _run_pool(
        self,
        configs: Sequence[Mapping[str, float]],
        keys: Sequence[ConfigKey],
        chunks: Sequence[Sequence[int]],
        results: list[ConfigRunResult | None],
    ) -> None:
        spec_blob = pickle.dumps(spec_of(self.workload))
        tasks = [
            _BatchTask(
                indices=tuple(chunk),
                spec_blob=spec_blob,
                configs=tuple(
                    tuple(sorted(configs[i].items())) for i in chunk
                ),
                plan=self.plan,
                noise=self.noise,
                contention=self.contention,
                repetitions=self.repetitions,
                seed=self.seed,
                keys=tuple(keys[i] for i in chunk),
                engine=self.engine,
                dedup=self.dedup,
            )
            for chunk in chunks
        ]
        workers = min(self.n_jobs, len(tasks))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(_run_batch_task, task) for task in tasks}
            while futures:
                done, futures = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    for index, result in future.result():
                        results[index] = result
