"""Parallel, cached experiment execution.

The paper's measurement campaigns are embarrassingly parallel: every
configuration of the design is an independent profiled run (benchbuild
structures its experiments the same way — independent, cacheable jobs
fanned out over workers).  This module fans configurations out over a
``concurrent.futures`` process pool and merges the results **in canonical
design order**, with every noise sample drawn from a purely key-derived
RNG stream (:func:`~repro.measure.noise.rng_for`) — so the measurements
are bit-identical regardless of worker count or completion order.

Workers do not unpickle live :class:`~repro.measure.experiment.Workload`
objects (those may hold caches, runtimes, and other process-local state);
they rebuild the workload from a :class:`WorkloadSpec` — a picklable
(factory, args, kwargs) triple — and memoize the built workload per
process so the program is constructed once per worker, not once per
configuration.

An optional on-disk :class:`~repro.measure.io.RunCache` short-circuits
configurations that were already measured with identical inputs (program
content, configuration, instrumentation plan, execution config, noise
model, seed, ...), making repeated sweeps and benchmark reruns nearly
free.
"""

from __future__ import annotations

import pathlib
import pickle
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from ..interp import DEFAULT_MEASUREMENT_ENGINE
from ..mpisim.contention import ContentionModel, NoContention
from .experiment import (
    ConfigKey,
    ConfigRunResult,
    Measurements,
    RunSetup,
    Workload,
    config_key,
    merge_results,
    run_configuration,
)
from .instrumentation import InstrumentationPlan
from .io import RunCache, program_hash, run_fingerprint
from .noise import GaussianNoise, NoiseModel
from .profiler import ProfileResult


@dataclass(frozen=True)
class WorkloadSpec:
    """A picklable recipe for building a workload in another process.

    ``factory`` must be importable by reference (a module-level class or
    function); ``args``/``kwargs`` are its picklable arguments.  Workload
    classes expose a :meth:`spec` method returning one of these; any
    other picklable workload object can ride along via :func:`spec_of`.
    """

    factory: Callable[..., Workload]
    args: tuple = ()
    kwargs: Mapping[str, object] = field(default_factory=dict)

    def build(self) -> Workload:
        """Construct a fresh workload instance."""
        return self.factory(*self.args, **dict(self.kwargs))


def workload_repr(workload: Workload) -> str:
    """Fingerprint of workload identity beyond the program content.

    Non-modeled defaults, the network model, and the execution config all
    change what ``setup()`` derives from the same configuration point, so
    they must participate in cache keys — both the per-configuration run
    cache here and the stage-artifact fingerprints of
    :mod:`repro.core.stages`.
    """
    parts = [
        f"name={getattr(workload, 'name', type(workload).__name__)}",
        f"parameters={tuple(workload.parameters)}",
    ]
    defaults = getattr(workload, "defaults", None)
    if defaults is not None:
        parts.append(f"defaults={sorted(defaults.items())}")
    for attr in ("network", "exec_config"):
        value = getattr(workload, attr, None)
        if value is not None:
            parts.append(f"{attr}={value!r}")
    return ";".join(parts)


def configuration_fingerprint(
    program_digest: str,
    config: Mapping[str, float],
    setup: RunSetup,
    plan: InstrumentationPlan,
    noise: NoiseModel,
    contention: ContentionModel,
    repetitions: int,
    seed: int,
    workload_repr: str,
    engine: str,
) -> str:
    """Run-cache key of one configuration, shared by every scheduler.

    The setup carries everything the workload derives from the
    configuration point (entry args, exec config, runtime/network
    parameters) — fingerprint the derived state, not just the point.
    The parallel runner, the batched runner, and the campaign-service
    broker all key their caches with this function, so a configuration
    measured by any of them is a hit for all of them.
    """
    exec_repr = ";".join(
        [
            f"args={sorted(setup.args.items())}",
            f"ranks_per_node={setup.ranks_per_node}",
            f"exec={setup.exec_config!r}",
            f"runtime={getattr(setup.runtime, 'config', None)!r}",
            f"entry={setup.entry!r}",
        ]
    )
    return run_fingerprint(
        program_digest,
        config,
        plan,
        exec_repr=exec_repr,
        noise_repr=repr(noise),
        contention_repr=repr(contention),
        repetitions=repetitions,
        seed=seed,
        workload_repr=workload_repr,
        engine=engine,
    )


def _identity_workload(workload: Workload) -> Workload:
    return workload


def spec_of(workload: Workload) -> WorkloadSpec:
    """The workload's own spec when it has one, else a pickling fallback.

    The fallback ships the workload object itself (it must then be
    picklable); workloads with a ``spec()`` method are preferred because
    rebuilding from a factory avoids serializing cached programs.
    """
    spec = getattr(workload, "spec", None)
    if callable(spec):
        return spec()
    return WorkloadSpec(factory=_identity_workload, args=(workload,))


# ----------------------------------------------------------------------
# worker side

#: Per-process memo of built workloads, keyed by the pickled spec: each
#: worker constructs the program once and reuses it for every
#: configuration it is handed.
_WORKER_WORKLOADS: dict[bytes, Workload] = {}


def _workload_for(spec_blob: bytes) -> Workload:
    workload = _WORKER_WORKLOADS.get(spec_blob)
    if workload is None:
        workload = pickle.loads(spec_blob).build()
        _WORKER_WORKLOADS[spec_blob] = workload
    return workload


@dataclass(frozen=True)
class _ConfigTask:
    """One configuration's work order, shipped to a worker."""

    index: int
    spec_blob: bytes
    config: tuple[tuple[str, float], ...]
    plan: InstrumentationPlan
    noise: NoiseModel
    contention: ContentionModel
    repetitions: int
    seed: int
    key: ConfigKey
    engine: str = DEFAULT_MEASUREMENT_ENGINE


def _run_task(task: _ConfigTask) -> tuple[int, ConfigRunResult]:
    """Worker entry point: rebuild the workload, run one configuration."""
    workload = _workload_for(task.spec_blob)
    setup = workload.setup(dict(task.config))
    result = run_configuration(
        workload.program(),
        setup,
        task.plan,
        task.noise,
        task.contention,
        task.repetitions,
        task.seed,
        task.key,
        engine=task.engine,
    )
    return task.index, result


# ----------------------------------------------------------------------
# driver side


@dataclass
class RunStats:
    """Where the results of the last run came from."""

    executed: int = 0
    cached: int = 0

    @property
    def total(self) -> int:
        return self.executed + self.cached


@dataclass
class ParallelExperimentRunner:
    """Fan a design out over a process pool, with an optional run cache.

    Drop-in equivalent of :class:`~repro.measure.experiment.ExperimentRunner`:
    for any design, ``run()`` returns bit-identical measurements for every
    ``n_jobs`` value, because per-sample RNG streams depend only on
    ``(seed, function, configuration, repetition)`` and results are merged
    in design order.  ``n_jobs=1`` executes inline (no pool, no pickling)
    but still honors the cache.
    """

    workload: Workload
    plan: InstrumentationPlan
    noise: NoiseModel = field(default_factory=GaussianNoise)
    contention: ContentionModel = field(default_factory=NoContention)
    repetitions: int = 5
    seed: int = 0
    n_jobs: int = 1
    cache_dir: str | pathlib.Path | None = None
    #: Execution engine for the profiled runs ("compiled" | "tree").
    #: Folded into cache fingerprints so a cache populated by one engine
    #: is never served to the other.
    engine: str = DEFAULT_MEASUREMENT_ENGINE

    def __post_init__(self) -> None:
        if self.n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {self.n_jobs}")
        self._cache = (
            RunCache(self.cache_dir) if self.cache_dir is not None else None
        )
        #: Execution/cache counters of the most recent :meth:`run`.
        self.last_stats = RunStats()

    # -- cache keys --------------------------------------------------------

    def _workload_repr(self) -> str:
        """See :func:`workload_repr` (module-level for reuse by the
        campaign stage fingerprints)."""
        return workload_repr(self.workload)

    def _fingerprint(
        self,
        program_digest: str,
        config: Mapping[str, float],
        setup: RunSetup,
        workload_repr: str,
    ) -> str:
        return configuration_fingerprint(
            program_digest,
            config,
            setup,
            self.plan,
            self.noise,
            self.contention,
            self.repetitions,
            self.seed,
            workload_repr,
            self.engine,
        )

    # -- execution ---------------------------------------------------------

    def run(
        self, design: Iterable[Mapping[str, float]]
    ) -> tuple[Measurements, dict[ConfigKey, ProfileResult]]:
        """Execute the design; return measurements and per-config profiles."""
        configs = [dict(c) for c in design]
        parameters = tuple(self.workload.parameters)
        program = self.workload.program()
        digest = program_hash(program) if self._cache is not None else ""
        workload_repr = self._workload_repr() if self._cache is not None else ""

        results: list[ConfigRunResult | None] = [None] * len(configs)
        pending: list[int] = []
        fingerprints: list[str | None] = [None] * len(configs)
        setups: list[RunSetup | None] = [None] * len(configs)

        for index, config in enumerate(configs):
            if self._cache is not None:
                setups[index] = self.workload.setup(config)
                fingerprints[index] = self._fingerprint(
                    digest, config, setups[index], workload_repr
                )
                hit = self._cache.get(fingerprints[index])
                if hit is not None:
                    results[index] = hit
                    continue
            pending.append(index)

        if pending:
            if self.n_jobs == 1:
                for index in pending:
                    setup = setups[index] or self.workload.setup(configs[index])
                    results[index] = run_configuration(
                        program,
                        setup,
                        self.plan,
                        self.noise,
                        self.contention,
                        self.repetitions,
                        self.seed,
                        config_key(parameters, configs[index]),
                        engine=self.engine,
                    )
            else:
                self._run_pool(parameters, configs, pending, results)
            if self._cache is not None:
                for index in pending:
                    self._cache.put(fingerprints[index], results[index])

        self.last_stats = RunStats(
            executed=sum(1 for r in results if not r.cached),
            cached=sum(1 for r in results if r.cached),
        )
        return merge_results(parameters, results)

    def _run_pool(
        self,
        parameters: tuple[str, ...],
        configs: Sequence[Mapping[str, float]],
        pending: Sequence[int],
        results: list[ConfigRunResult | None],
    ) -> None:
        spec_blob = pickle.dumps(spec_of(self.workload))
        tasks = [
            _ConfigTask(
                index=index,
                spec_blob=spec_blob,
                config=tuple(sorted(configs[index].items())),
                plan=self.plan,
                noise=self.noise,
                contention=self.contention,
                repetitions=self.repetitions,
                seed=self.seed,
                key=config_key(parameters, configs[index]),
                engine=self.engine,
            )
            for index in pending
        ]
        workers = min(self.n_jobs, len(tasks))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(_run_task, task) for task in tasks}
            while futures:
                done, futures = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    index, result = future.result()
                    results[index] = result
