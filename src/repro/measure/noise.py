"""Measurement noise models.

Empirical modeling suffers from "random noise and ... systemic interference"
(paper section 4.5).  Crucially, "disturbances disproportionately affect
regions of code with short runtimes" — noise has an *absolute* floor
component (OS jitter, timer resolution, measurement hooks) that dwarfs a
getter's nanoseconds while being invisible on a second-long kernel.  That
asymmetry is what makes black-box Extra-P fit spurious parametric models to
constant functions (section B1); we reproduce it with a two-component
model:

    measured = base * (1 + eps_rel) + |eps_abs|
    eps_rel ~ N(0, relative_sigma),  eps_abs ~ N(0, absolute_sigma)

Deterministic seeding: every (function, configuration, repetition) triple
derives its own RNG stream, so experiments are reproducible bit-for-bit.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Protocol

import numpy as np

from ..registry import register_noise


class NoiseModel(Protocol):
    """Perturbs a true simulated time into a measured time."""

    def perturb(self, base: float, rng: np.random.Generator) -> float:
        """One noisy measurement of *base*."""


@register_noise("none")
@dataclass(frozen=True)
class NoNoise:
    """Ideal measurement (used to establish ground truth)."""

    def perturb(self, base: float, rng: np.random.Generator) -> float:  # noqa: D102
        return base


@register_noise("gaussian")
@dataclass(frozen=True)
class GaussianNoise:
    """Relative + absolute-floor Gaussian noise (default).

    ``relative_sigma`` — multiplicative component (fraction of base).
    ``absolute_sigma`` — additive floor in cost units; dominates short
    functions and is negligible for long ones.
    """

    relative_sigma: float = 0.02
    absolute_sigma: float = 200.0

    def perturb(self, base: float, rng: np.random.Generator) -> float:  # noqa: D102
        rel = rng.normal(0.0, self.relative_sigma)
        absn = abs(rng.normal(0.0, self.absolute_sigma))
        return max(0.0, base * (1.0 + rel) + absn)


def rng_for(
    seed: int, function: str, config_key: tuple, repetition: int
) -> np.random.Generator:
    """Deterministic per-measurement RNG stream.

    The stream is derived by hashing the experiment seed with the function
    name, the configuration, and the repetition index, so adding functions
    or configurations never reshuffles other measurements.
    """
    digest = hashlib.sha256(
        repr((seed, function, config_key, repetition)).encode()
    ).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))
