"""Measurement noise models.

Empirical modeling suffers from "random noise and ... systemic interference"
(paper section 4.5).  Crucially, "disturbances disproportionately affect
regions of code with short runtimes" — noise has an *absolute* floor
component (OS jitter, timer resolution, measurement hooks) that dwarfs a
getter's nanoseconds while being invisible on a second-long kernel.  That
asymmetry is what makes black-box Extra-P fit spurious parametric models to
constant functions (section B1); we reproduce it with a two-component
model:

    measured = base * (1 + eps_rel) + |eps_abs|
    eps_rel ~ N(0, relative_sigma),  eps_abs ~ N(0, absolute_sigma)

Deterministic seeding: every (function, configuration, repetition) triple
derives its own RNG stream, so experiments are reproducible bit-for-bit.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from ..registry import register_noise


class NoiseModel(Protocol):
    """Perturbs a true simulated time into a measured time."""

    def perturb(self, base: float, rng: np.random.Generator) -> float:
        """One noisy measurement of *base*."""


@register_noise("none")
@dataclass(frozen=True)
class NoNoise:
    """Ideal measurement (used to establish ground truth)."""

    def perturb(self, base: float, rng: np.random.Generator) -> float:  # noqa: D102
        return base


@register_noise("gaussian")
@dataclass(frozen=True)
class GaussianNoise:
    """Relative + absolute-floor Gaussian noise (default).

    ``relative_sigma`` — multiplicative component (fraction of base).
    ``absolute_sigma`` — additive floor in cost units; dominates short
    functions and is negligible for long ones.
    """

    relative_sigma: float = 0.02
    absolute_sigma: float = 200.0

    def perturb(self, base: float, rng: np.random.Generator) -> float:  # noqa: D102
        rel = rng.normal(0.0, self.relative_sigma)
        absn = abs(rng.normal(0.0, self.absolute_sigma))
        return max(0.0, base * (1.0 + rel) + absn)


def stream_seed(
    seed: int, function: str, config_key: tuple, repetition: int
) -> int:
    """The 64-bit RNG seed of one (function, configuration, repetition)
    measurement — the integer :func:`rng_for` hands to ``default_rng``."""
    digest = hashlib.sha256(
        repr((seed, function, config_key, repetition)).encode()
    ).digest()
    return int.from_bytes(digest[:8], "little")


def rng_for(
    seed: int, function: str, config_key: tuple, repetition: int
) -> np.random.Generator:
    """Deterministic per-measurement RNG stream.

    The stream is derived by hashing the experiment seed with the function
    name, the configuration, and the repetition index, so adding functions
    or configurations never reshuffles other measurements.
    """
    return np.random.default_rng(stream_seed(seed, function, config_key, repetition))


# ----------------------------------------------------------------------
# batched sampling
#
# The batched runner draws thousands of per-(function, config, repetition)
# samples per sweep.  ``default_rng(int)`` costs ~25us each — almost all
# of it the pure-Python ``SeedSequence`` entropy mixing and PCG64 seeding.
# Both steps are deterministic integer arithmetic, so we vectorize the
# seed-sequence mixing over all streams at once and seed each PCG64
# through a precomputed-words shim, keeping every stream bit-identical to
# ``rng_for`` (enforced by a lazy self-test against ``default_rng`` on
# first use, and by tests/measure/test_batched.py element-for-element).

#: O'Neill seed-sequence mixing constants (numpy's ``SeedSequence``).
_INIT_A = np.uint32(0x43B0D7E5)
_MULT_A = np.uint32(0x931E8875)
_INIT_B = np.uint32(0x8B51F9DD)
_MULT_B = np.uint32(0x58F38DED)
_MIX_L = np.uint32(0xCA01F9DD)
_MIX_R = np.uint32(0x4973F715)
_XSHIFT = np.uint32(16)


def _seedseq_words(seeds: np.ndarray) -> np.ndarray:
    """``SeedSequence(s).generate_state(4, uint64)`` for every 64-bit
    seed in *seeds* at once: ``(N,) uint64 -> (N, 4) uint64``."""
    n = len(seeds)
    s = np.asarray(seeds, dtype=np.uint64)
    ent = np.empty((n, 2), dtype=np.uint32)
    ent[:, 0] = s & np.uint64(0xFFFFFFFF)
    ent[:, 1] = s >> np.uint64(32)
    pool = np.empty((n, 4), dtype=np.uint32)

    hc = np.full(n, _INIT_A, dtype=np.uint32)

    def hashmix(value: np.ndarray, hc: np.ndarray) -> np.ndarray:
        value ^= hc
        hc *= _MULT_A
        value *= hc
        value ^= value >> _XSHIFT
        return value

    # First pass: hash the (zero-padded) entropy words into the pool.
    for i in range(4):
        src = ent[:, i].copy() if i < 2 else np.zeros(n, dtype=np.uint32)
        pool[:, i] = hashmix(src, hc)
    # Second pass: cross-mix every pool word into every other.
    for i_src in range(4):
        for i_dst in range(4):
            if i_src != i_dst:
                h = hashmix(pool[:, i_src].copy(), hc)
                r = pool[:, i_dst] * _MIX_L - h * _MIX_R
                r ^= r >> _XSHIFT
                pool[:, i_dst] = r
    # (No third pass: 2 entropy words never exceed the pool size of 4.)
    # generate_state(4, uint64): 8 hashed uint32 words, paired little-endian.
    hc = np.full(n, _INIT_B, dtype=np.uint32)
    out32 = np.empty((n, 8), dtype=np.uint32)
    for i in range(8):
        data = pool[:, i % 4].copy()
        data ^= hc
        hc *= _MULT_B
        data *= hc
        data ^= data >> _XSHIFT
        out32[:, i] = data
    out = out32.astype(np.uint64)
    return out[:, 0::2] | (out[:, 1::2] << np.uint64(32))


class _WordShim(np.random.bit_generator.ISeedSequence):
    """A ``SeedSequence`` stand-in returning precomputed state words.

    ``PCG64(seed_seq)`` seeds at C speed from whatever the sequence's
    ``generate_state`` returns; handing it the words we already computed
    in bulk skips the ~20us per-stream Python mixing entirely.
    """

    __slots__ = ("words",)

    def __init__(self) -> None:
        self.words: np.ndarray | None = None

    def generate_state(self, n_words: int, dtype=np.uint32) -> np.ndarray:
        if dtype is not np.uint64 and dtype != np.uint64:
            raise NotImplementedError("shim serves uint64 words only")
        return self.words[:n_words]


#: Tri-state: None = unverified, True = fast path proven bit-identical,
#: False = mismatch detected (fall back to scalar ``rng_for`` forever).
_FAST_OK: bool | None = None


def _fast_path_ok() -> bool:
    """Lazily self-test the fast stream construction against numpy.

    Run once per process: a handful of seeds spanning the 64-bit range
    must yield bit-identical ``standard_normal`` draws through both
    paths.  Any numpy-internal change flips the whole module to the
    scalar reference path — slower, never wrong.
    """
    global _FAST_OK
    if _FAST_OK is None:
        probe = np.array(
            [0, 1, 2**32 - 1, 2**32, 2**63 + 12345, 2**64 - 1],
            dtype=np.uint64,
        )
        try:
            words = _seedseq_words(probe)
            shim = _WordShim()
            ok = True
            for i, s in enumerate(probe):
                shim.words = words[i]
                fast = np.random.Generator(np.random.PCG64(shim))
                ref = np.random.default_rng(int(s))
                if (
                    fast.standard_normal(2).tolist()
                    != ref.standard_normal(2).tolist()
                ):
                    ok = False
                    break
            _FAST_OK = ok
        except Exception:
            _FAST_OK = False
    return _FAST_OK


def _fast_generators(seeds: Sequence[int]):
    """Yield one ``Generator`` per seed, bit-identical to
    ``default_rng(seed)``, amortizing stream setup over the block."""
    words = _seedseq_words(np.asarray(seeds, dtype=np.uint64))
    shim = _WordShim()
    pcg = np.random.PCG64
    gen = np.random.Generator
    for i in range(len(words)):
        shim.words = words[i]
        yield gen(pcg(shim))


def perturb_block(
    noise: NoiseModel,
    seed: int,
    items: Sequence[tuple[str, tuple, float]],
    repetitions: int,
) -> list[list[float]]:
    """All repetitions of every (function, config_key, base) item.

    Bit-identical to the scalar reference

    .. code-block:: python

        [[noise.perturb(base, rng_for(seed, function, key, rep))
          for rep in range(repetitions)]
         for function, key, base in items]

    but with stream setup vectorized across the whole block and — for
    the built-in :class:`GaussianNoise` — the perturbation arithmetic
    applied as one array expression.  Bit-identity holds because
    ``Generator.normal(0.0, sigma)`` is exactly
    ``sigma * standard_normal()`` and the two-component model's scalar
    arithmetic maps 1:1 onto float64 ufuncs.
    """
    if isinstance(noise, NoNoise):
        return [[base] * repetitions for _, _, base in items]
    if not items or repetitions <= 0:
        return [[] for _ in items]
    if not _fast_path_ok():
        return [
            [
                noise.perturb(base, rng_for(seed, function, key, rep))
                for rep in range(repetitions)
            ]
            for function, key, base in items
        ]
    # Stream seeds: sha256(repr((seed, function, key, rep))) as in
    # :func:`stream_seed`, with the (seed, function, key) prefix encoded
    # once per item instead of once per repetition.  The f-string
    # reassembles ``repr`` of the 4-tuple exactly: ``repr`` of a tuple is
    # "(" + ", ".join(repr(element)) + ")".
    sha = hashlib.sha256
    seeds_list: list[int] = []
    append = seeds_list.append
    for function, key, _ in items:
        prefix = f"({seed!r}, {function!r}, {key!r}, ".encode()
        for rep in range(repetitions):
            digest = sha(prefix + b"%d)" % rep).digest()
            append(int.from_bytes(digest[:8], "little"))
    if isinstance(noise, GaussianNoise):
        n = len(seeds_list)
        words = _seedseq_words(np.asarray(seeds_list, dtype=np.uint64))
        z = np.empty((n, 2))
        shim = _WordShim()
        pcg = np.random.PCG64
        gen_cls = np.random.Generator
        for i in range(n):
            shim.words = words[i]
            gen_cls(pcg(shim)).standard_normal(out=z[i])
        bases = np.repeat(
            np.array([base for _, _, base in items], dtype=float),
            repetitions,
        )
        rel = noise.relative_sigma * z[:, 0]
        absn = np.abs(noise.absolute_sigma * z[:, 1])
        samples = np.maximum(0.0, bases * (1.0 + rel) + absn)
        per_item = samples.reshape(len(items), repetitions)
        return [row.tolist() for row in per_item]
    # Generic noise models: scalar perturb per stream, fast stream setup.
    out: list[list[float]] = []
    gens = _fast_generators(seeds_list)
    for function, key, base in items:
        out.append(
            [noise.perturb(base, next(gens)) for _ in range(repetitions)]
        )
    return out
