"""Instrumentation modes and filters (paper section A3).

The simulated Score-P charges a fixed overhead per *instrumented* call
(event creation, timestamping, call-path bookkeeping).  Which functions are
instrumented is the difference between the paper's three modes:

* **full** — every function: sound but catastrophic on accessor-heavy C++
  code (Figure 3: up to 45x slowdown on LULESH);
* **default filter** — Score-P's heuristic skips functions it expects the
  compiler to inline (small bodies).  Cheap, but it "instruments less than
  half of the performance-relevant functions" while keeping constant
  helpers, and misses compact kernels like ``CalcQForElems`` entirely
  (false negatives, section B2);
* **taint filter** — instrument exactly the functions the taint analysis
  marks as parameter-dependent: negligible overhead, no false negatives.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..ir.program import Program
from ..ir.stmt import For, While
from ..staticanalysis.prune import StaticReport
from ..taint.report import TaintReport


class InstrumentationMode(str, Enum):
    """The three instrumentation strategies compared in Figures 3 and 4."""

    FULL = "full"
    DEFAULT_FILTER = "default"
    TAINT_FILTER = "taint"
    NONE = "none"


#: Default per-call instrumentation overhead, in simulated cost units
#: (~0.5 µs of event processing per enter/exit pair at ~1 ns units —
#: consistent with Score-P's measured per-visit overhead).
DEFAULT_OVERHEAD_PER_CALL = 500.0


@dataclass(frozen=True)
class InstrumentationPlan:
    """Which functions are instrumented, and what each call costs extra."""

    mode: InstrumentationMode
    functions: frozenset[str]
    overhead_per_call: float = DEFAULT_OVERHEAD_PER_CALL

    def is_instrumented(self, function: str) -> bool:
        return function in self.functions

    def __len__(self) -> int:
        return len(self.functions)


def full_plan(
    program: Program, overhead: float = DEFAULT_OVERHEAD_PER_CALL
) -> InstrumentationPlan:
    """Instrument every program function (plus library routines, which are
    always visible to the measurement system like Score-P's MPI adapter)."""
    return InstrumentationPlan(
        InstrumentationMode.FULL,
        frozenset(program.functions),
        overhead,
    )


def default_filter_plan(
    program: Program,
    overhead: float = DEFAULT_OVERHEAD_PER_CALL,
    max_inline_statements: int = 8,
) -> InstrumentationPlan:
    """Score-P's default heuristic: skip functions small enough that the
    compiler would likely inline them.

    The heuristic is size-based, not relevance-based: a compact kernel
    containing one loop may be skipped (false negative) while a large
    constant helper stays instrumented.  A function is kept when its body
    has more than *max_inline_statements* statements.  Functions containing
    loops with many statements survive; compact loop kernels do not —
    mirroring the failure mode of section B2.
    """
    kept: set[str] = set()
    for fn in program:
        stmt_count = sum(1 for _ in fn.statements())
        if stmt_count > max_inline_statements:
            kept.add(fn.name)
    return InstrumentationPlan(
        InstrumentationMode.DEFAULT_FILTER, frozenset(kept), overhead
    )


def taint_filter_plan(
    program: Program,
    taint: TaintReport,
    static: StaticReport | None = None,
    overhead: float = DEFAULT_OVERHEAD_PER_CALL,
) -> InstrumentationPlan:
    """Instrument only parameter-dependent functions (paper section A3).

    A function is instrumented iff the taint analysis found a parameter
    dependency in its loops or in the library calls it issues.  Statically
    pruned functions can never qualify (their models are constants), so the
    static report only serves as a sanity cross-check here.
    """
    relevant = set(taint.tainted_functions())
    if static is not None:
        relevant -= static.pruned_functions() - taint.tainted_functions()
    return InstrumentationPlan(
        InstrumentationMode.TAINT_FILTER, frozenset(relevant), overhead
    )


def none_plan() -> InstrumentationPlan:
    """No instrumentation: the native run used as the overhead baseline."""
    return InstrumentationPlan(InstrumentationMode.NONE, frozenset(), 0.0)


def has_loops(program: Program, function: str) -> bool:
    """True when *function* contains any loop (helper for filter tests)."""
    return any(
        isinstance(stmt, (For, While))
        for stmt in program.function(function).statements()
    )
