"""Serialization of measurements and models.

Extra-P consumes measurement archives (Cube files / JSON line formats);
this module provides the equivalent for the repro pipeline so experiments
can be measured once, stored, and re-modeled offline:

* :func:`save_measurements` / :func:`load_measurements` — JSON round trip
  of a :class:`~repro.measure.experiment.Measurements` container;
* :func:`model_to_dict` / :func:`model_from_dict` — JSON-able fitted
  models (terms, coefficients, statistics).
"""

from __future__ import annotations

import json
import pathlib
from typing import Mapping

import numpy as np

from ..errors import MeasurementError
from ..modeling.hypothesis import Model, ModelStats
from ..modeling.terms import TermSpec
from .experiment import Measurements

FORMAT_VERSION = 1


def measurements_to_dict(measurements: Measurements) -> dict:
    """JSON-able representation of a measurements container."""
    return {
        "version": FORMAT_VERSION,
        "parameters": list(measurements.parameters),
        "data": {
            fn: [
                {"config": list(key), "values": list(map(float, values))}
                for key, values in sorted(per_fn.items())
            ]
            for fn, per_fn in measurements.data.items()
        },
        "calls": {
            fn: [
                {"config": list(key), "calls": int(calls)}
                for key, calls in sorted(per_fn.items())
            ]
            for fn, per_fn in measurements.calls.items()
        },
    }


def measurements_from_dict(payload: Mapping) -> Measurements:
    """Inverse of :func:`measurements_to_dict`."""
    if payload.get("version") != FORMAT_VERSION:
        raise MeasurementError(
            f"unsupported measurements format version "
            f"{payload.get('version')!r}"
        )
    out = Measurements(parameters=tuple(payload["parameters"]))
    for fn, entries in payload["data"].items():
        for entry in entries:
            key = tuple(float(v) for v in entry["config"])
            if len(key) != len(out.parameters):
                raise MeasurementError(
                    f"configuration arity mismatch for '{fn}'"
                )
            for value in entry["values"]:
                out.add(fn, key, float(value))
    for fn, entries in payload.get("calls", {}).items():
        for entry in entries:
            key = tuple(float(v) for v in entry["config"])
            out.calls.setdefault(fn, {})[key] = int(entry["calls"])
    return out


def save_measurements(measurements: Measurements, path: "str | pathlib.Path") -> None:
    """Write measurements as JSON."""
    pathlib.Path(path).write_text(
        json.dumps(measurements_to_dict(measurements), indent=1)
    )


def load_measurements(path: "str | pathlib.Path") -> Measurements:
    """Read measurements from JSON."""
    return measurements_from_dict(json.loads(pathlib.Path(path).read_text()))


# ----------------------------------------------------------------------
# models


def model_to_dict(model: Model) -> dict:
    """JSON-able representation of a fitted model."""
    return {
        "parameters": list(model.parameters),
        "terms": [
            [[float(i), int(j)] for i, j in term.exponents]
            for term in model.terms
        ],
        "coefficients": [float(c) for c in model.coefficients],
        "stats": {
            "rss": model.stats.rss,
            "smape": model.stats.smape,
            "r_squared": model.stats.r_squared,
            "n_points": model.stats.n_points,
            "n_coefficients": model.stats.n_coefficients,
        },
        "metadata": dict(model.metadata),
    }


def model_from_dict(payload: Mapping) -> Model:
    """Inverse of :func:`model_to_dict`."""
    terms = tuple(
        TermSpec(tuple((float(i), int(j)) for i, j in exps))
        for exps in payload["terms"]
    )
    stats = ModelStats(**payload["stats"])
    return Model(
        parameters=tuple(payload["parameters"]),
        terms=terms,
        coefficients=np.asarray(payload["coefficients"], dtype=float),
        stats=stats,
        metadata=dict(payload.get("metadata", {})),
    )
