"""Serialization of measurements and models, plus the on-disk run cache.

Extra-P consumes measurement archives (Cube files / JSON line formats);
this module provides the equivalent for the repro pipeline so experiments
can be measured once, stored, and re-modeled offline:

* :func:`save_measurements` / :func:`load_measurements` — JSON round trip
  of a :class:`~repro.measure.experiment.Measurements` container;
* :func:`model_to_dict` / :func:`model_from_dict` — JSON-able fitted
  models (terms, coefficients, statistics);
* :func:`profile_to_dict` / :func:`profile_from_dict` — JSON-able
  :class:`~repro.measure.profiler.ProfileResult`;
* :class:`RunCache` — a content-addressed store of per-configuration
  run results keyed by (program hash, configuration, execution config,
  noise/seed, ...), so repeated sweeps and benchmark reruns skip
  already-measured configurations entirely.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from typing import Mapping

import numpy as np

from ..errors import MeasurementError
from ..ir.printer import format_program
from ..ir.program import Program
from ..modeling.hypothesis import Model, ModelStats
from ..modeling.terms import TermSpec
from .experiment import ConfigRunResult, Measurements
from .instrumentation import InstrumentationMode, InstrumentationPlan
from .profiler import ProfileNode, ProfileResult

FORMAT_VERSION = 1

#: Version of the run-cache entry format; bump to invalidate old caches.
CACHE_VERSION = 1


def measurements_to_dict(measurements: Measurements) -> dict:
    """JSON-able representation of a measurements container."""
    return {
        "version": FORMAT_VERSION,
        "parameters": list(measurements.parameters),
        "data": {
            fn: [
                {"config": list(key), "values": list(map(float, values))}
                for key, values in sorted(per_fn.items())
            ]
            for fn, per_fn in measurements.data.items()
        },
        "calls": {
            fn: [
                {"config": list(key), "calls": int(calls)}
                for key, calls in sorted(per_fn.items())
            ]
            for fn, per_fn in measurements.calls.items()
        },
    }


def measurements_from_dict(payload: Mapping) -> Measurements:
    """Inverse of :func:`measurements_to_dict`."""
    if payload.get("version") != FORMAT_VERSION:
        raise MeasurementError(
            f"unsupported measurements format version "
            f"{payload.get('version')!r}"
        )
    out = Measurements(parameters=tuple(payload["parameters"]))
    for fn, entries in payload["data"].items():
        for entry in entries:
            key = tuple(float(v) for v in entry["config"])
            if len(key) != len(out.parameters):
                raise MeasurementError(
                    f"configuration arity mismatch for '{fn}'"
                )
            for value in entry["values"]:
                out.add(fn, key, float(value))
    for fn, entries in payload.get("calls", {}).items():
        for entry in entries:
            key = tuple(float(v) for v in entry["config"])
            out.calls.setdefault(fn, {})[key] = int(entry["calls"])
    return out


def save_measurements(measurements: Measurements, path: "str | pathlib.Path") -> None:
    """Write measurements as JSON."""
    pathlib.Path(path).write_text(
        json.dumps(measurements_to_dict(measurements), indent=1)
    )


def load_measurements(path: "str | pathlib.Path") -> Measurements:
    """Read measurements from JSON."""
    return measurements_from_dict(json.loads(pathlib.Path(path).read_text()))


def profile_to_dict(profile: ProfileResult) -> dict:
    """JSON-able representation of a profiled run."""
    return {
        "plan": {
            "mode": profile.plan.mode.value,
            "functions": sorted(profile.plan.functions),
            "overhead_per_call": float(profile.plan.overhead_per_call),
        },
        "contention_factor": float(profile.contention_factor),
        "nodes": [
            {
                "callpath": list(node.callpath),
                "calls": int(node.calls),
                "compute": float(node.compute),
                "memory": float(node.memory),
                "comm": float(node.comm),
                "overhead": float(node.overhead),
            }
            for _, node in sorted(profile.nodes.items())
        ],
        "loop_iterations": [
            {"function": fn, "loop": int(loop_id), "iterations": int(n)}
            for (fn, loop_id), n in sorted(profile.loop_iterations.items())
        ],
    }


def profile_from_dict(payload: Mapping) -> ProfileResult:
    """Inverse of :func:`profile_to_dict`."""
    plan = InstrumentationPlan(
        InstrumentationMode(payload["plan"]["mode"]),
        frozenset(payload["plan"]["functions"]),
        float(payload["plan"]["overhead_per_call"]),
    )
    nodes = {}
    for entry in payload["nodes"]:
        path = tuple(entry["callpath"])
        nodes[path] = ProfileNode(
            callpath=path,
            calls=int(entry["calls"]),
            compute=float(entry["compute"]),
            memory=float(entry["memory"]),
            comm=float(entry["comm"]),
            overhead=float(entry["overhead"]),
        )
    return ProfileResult(
        plan=plan,
        nodes=nodes,
        contention_factor=float(payload["contention_factor"]),
        loop_iterations={
            (e["function"], int(e["loop"])): int(e["iterations"])
            for e in payload["loop_iterations"]
        },
    )


def config_run_result_to_dict(result: ConfigRunResult) -> dict:
    """JSON-able representation of one configuration's run result."""
    return {
        "version": CACHE_VERSION,
        "key": [float(v) for v in result.key],
        "profile": profile_to_dict(result.profile),
        "samples": {
            fn: [float(v) for v in values]
            for fn, values in result.samples.items()
        },
        "calls": {fn: int(c) for fn, c in result.calls.items()},
    }


def config_run_result_from_dict(payload: Mapping) -> ConfigRunResult:
    """Inverse of :func:`config_run_result_to_dict`."""
    if payload.get("version") != CACHE_VERSION:
        raise MeasurementError(
            f"unsupported run-cache entry version {payload.get('version')!r}"
        )
    return ConfigRunResult(
        key=tuple(float(v) for v in payload["key"]),
        profile=profile_from_dict(payload["profile"]),
        samples={
            fn: [float(v) for v in values]
            for fn, values in payload["samples"].items()
        },
        calls={fn: int(c) for fn, c in payload["calls"].items()},
    )


# ----------------------------------------------------------------------
# run cache


def program_hash(program: Program) -> str:
    """Content hash of a program (its canonical printed form)."""
    text = format_program(program)
    return hashlib.sha256(text.encode()).hexdigest()


def run_fingerprint(
    program_digest: str,
    config: Mapping[str, float],
    plan: InstrumentationPlan,
    exec_repr: str,
    noise_repr: str,
    contention_repr: str,
    repetitions: int,
    seed: int,
    workload_repr: str = "",
    *,
    engine: str,
) -> str:
    """Content-addressed key of one configuration's run.

    Every input that can change the measured numbers participates: the
    program (by content hash), the configuration point, the
    instrumentation plan, the execution config, the noise model and seed,
    the contention model, the repetition count, and a workload
    fingerprint covering non-modeled defaults (which alter the setup the
    workload derives from the same configuration point).  The execution
    engine identity also participates: engines are differentially tested
    to be bit-identical, but a cache entry must still never cross engines
    — an engine bug would otherwise be masked (or spread) by the cache.
    """
    payload = {
        "cache_version": CACHE_VERSION,
        "program": program_digest,
        "config": sorted((k, float(v)) for k, v in config.items()),
        "plan": {
            "mode": plan.mode.value,
            "functions": sorted(plan.functions),
            "overhead_per_call": float(plan.overhead_per_call),
        },
        "exec": exec_repr,
        "noise": noise_repr,
        "contention": contention_repr,
        "repetitions": int(repetitions),
        "seed": int(seed),
        "workload": workload_repr,
        "engine": str(engine),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class RunCache:
    """On-disk content-addressed cache of per-configuration run results.

    One JSON file per entry under *root*, named by the run fingerprint.
    Writes are atomic (temp file + rename), so concurrent workers and
    concurrent experiment processes can share a cache directory safely:
    the worst case is the same entry being computed twice, never a torn
    read.
    """

    def __init__(self, root: "str | pathlib.Path") -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, fingerprint: str) -> pathlib.Path:
        return self.root / f"{fingerprint}.json"

    def __contains__(self, fingerprint: str) -> bool:
        return self._path(fingerprint).exists()

    def get(self, fingerprint: str) -> ConfigRunResult | None:
        """The cached result, or None on a miss (or a corrupt entry)."""
        path = self._path(fingerprint)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        try:
            result = config_run_result_from_dict(payload)
        except (MeasurementError, KeyError, TypeError, ValueError):
            return None
        result.cached = True
        return result

    def put(self, fingerprint: str, result: ConfigRunResult) -> None:
        """Store *result* atomically under *fingerprint*."""
        path = self._path(fingerprint)
        payload = json.dumps(config_run_result_to_dict(result), indent=1)
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))


# ----------------------------------------------------------------------
# models


def model_to_dict(model: Model) -> dict:
    """JSON-able representation of a fitted model."""
    return {
        "parameters": list(model.parameters),
        "terms": [
            [[float(i), int(j)] for i, j in term.exponents]
            for term in model.terms
        ],
        "coefficients": [float(c) for c in model.coefficients],
        "stats": {
            "rss": model.stats.rss,
            "smape": model.stats.smape,
            "r_squared": model.stats.r_squared,
            "n_points": model.stats.n_points,
            "n_coefficients": model.stats.n_coefficients,
        },
        "metadata": dict(model.metadata),
    }


def model_from_dict(payload: Mapping) -> Model:
    """Inverse of :func:`model_to_dict`."""
    terms = tuple(
        TermSpec(tuple((float(i), int(j)) for i, j in exps))
        for exps in payload["terms"]
    )
    stats = ModelStats(**payload["stats"])
    return Model(
        parameters=tuple(payload["parameters"]),
        terms=terms,
        coefficients=np.asarray(payload["coefficients"], dtype=float),
        stats=stats,
        metadata=dict(payload.get("metadata", {})),
    )
