"""Measurement substrate: noise, instrumentation, profiling, experiments."""

from .experiment import (
    ConfigKey,
    ExperimentRunner,
    Measurements,
    RunSetup,
    Workload,
    config_key,
    full_factorial,
    one_at_a_time,
)
from .instrumentation import (
    DEFAULT_OVERHEAD_PER_CALL,
    InstrumentationMode,
    InstrumentationPlan,
    default_filter_plan,
    full_plan,
    none_plan,
    taint_filter_plan,
)
from .io import (
    load_measurements,
    measurements_from_dict,
    measurements_to_dict,
    model_from_dict,
    model_to_dict,
    save_measurements,
)
from .noise import GaussianNoise, NoNoise, NoiseModel, rng_for
from .profiler import (
    APP_KEY,
    ProfileNode,
    ProfileResult,
    ScorePListener,
    profile_run,
)

__all__ = [
    "APP_KEY",
    "ConfigKey",
    "DEFAULT_OVERHEAD_PER_CALL",
    "ExperimentRunner",
    "GaussianNoise",
    "InstrumentationMode",
    "InstrumentationPlan",
    "Measurements",
    "NoNoise",
    "NoiseModel",
    "ProfileNode",
    "ProfileResult",
    "RunSetup",
    "ScorePListener",
    "Workload",
    "config_key",
    "default_filter_plan",
    "full_factorial",
    "full_plan",
    "load_measurements",
    "measurements_from_dict",
    "measurements_to_dict",
    "model_from_dict",
    "model_to_dict",
    "none_plan",
    "one_at_a_time",
    "profile_run",
    "rng_for",
    "save_measurements",
    "taint_filter_plan",
]
