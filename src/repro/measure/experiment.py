"""Experiment configurations, designs, and the measurement runner.

An experiment sweeps a set of model parameters over value lists (paper
Table 2: 5x5 grids for LULESH/MILC), runs the profiled program per
configuration, and collects *repetitions* of noisy per-function timings
(5 in the paper, 125 measurements total for a 25-point design).

The runner executes each configuration **once** (the simulator is
deterministic) and derives repetitions by sampling the noise model with
per-(function, configuration, repetition) RNG streams — equivalent to
repeating the run, at a fraction of the cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Iterable, Mapping, Protocol, Sequence

import numpy as np

from ..errors import DesignError
from ..interp import DEFAULT_MEASUREMENT_ENGINE
from ..interp.config import DEFAULT_CONFIG, ExecConfig
from ..interp.runtime import LibraryRuntime
from ..interp.values import Value
from ..ir.program import Program
from ..mpisim.contention import ContentionModel, NoContention
from .instrumentation import InstrumentationPlan
from .noise import GaussianNoise, NoiseModel, rng_for
from .profiler import APP_KEY, ProfileResult, profile_run

ConfigKey = tuple[float, ...]


@dataclass(frozen=True)
class RunSetup:
    """Everything needed to execute one configuration."""

    args: Mapping[str, Value]
    runtime: LibraryRuntime | None = None
    ranks_per_node: int = 1
    exec_config: ExecConfig = DEFAULT_CONFIG
    entry: str | None = None


class Workload(Protocol):
    """A modelable application: fixed program, configurable execution."""

    name: str
    #: Model parameter names, in canonical order (e.g. ("p", "size")).
    parameters: tuple[str, ...]

    def program(self) -> Program:
        """The (configuration-independent) program structure."""

    def setup(self, config: Mapping[str, float]) -> RunSetup:
        """Execution setup for one parameter configuration."""

    def taint_config(self) -> dict[str, float]:
        """A small, representative configuration for the taint run
        (the paper uses LULESH size=5 on 8 ranks; MILC size=128 on 32)."""

    def sources(self) -> dict[str, str]:
        """Entry-argument -> label mapping for explicitly marked
        parameters (implicit parameters like ``p`` come from the library
        database)."""


def full_factorial(
    parameter_values: Mapping[str, Sequence[float]]
) -> list[dict[str, float]]:
    """All combinations of the given per-parameter value lists."""
    names = list(parameter_values)
    if not names:
        raise DesignError("empty design")
    for name in names:
        if not parameter_values[name]:
            raise DesignError(
                f"parameter '{name}' has an empty value list"
            )
    combos = product(*(parameter_values[n] for n in names))
    return [dict(zip(names, combo)) for combo in combos]


def one_at_a_time(
    parameter_values: Mapping[str, Sequence[float]],
    base: Mapping[str, float] | None = None,
) -> list[dict[str, float]]:
    """Sweep each parameter alone, holding others at their smallest value.

    Valid when all dependencies are additive-only (paper section A2): the
    design size drops from a product to a sum of the value-list lengths.
    """
    names = list(parameter_values)
    if not names:
        raise DesignError("empty design")
    for name in names:
        if not parameter_values[name]:
            raise DesignError(
                f"parameter '{name}' has an empty value list"
            )
    baseline = {
        n: (base[n] if base and n in base else min(parameter_values[n]))
        for n in names
    }
    configs: list[dict[str, float]] = [dict(baseline)]
    seen = {tuple(sorted(baseline.items()))}
    for name in names:
        for value in parameter_values[name]:
            cfg = dict(baseline)
            cfg[name] = value
            key = tuple(sorted(cfg.items()))
            if key not in seen:
                seen.add(key)
                configs.append(cfg)
    return configs


def config_key(parameters: Sequence[str], config: Mapping[str, float]) -> ConfigKey:
    """Canonical hashable key of a configuration."""
    return tuple(float(config[p]) for p in parameters)


@dataclass
class Measurements:
    """Measured per-function times of one experiment.

    ``data[function][config_key]`` is the list of repeated measurements;
    ``APP_KEY`` holds whole-application times.  Configuration keys follow
    the order of ``parameters``.
    """

    parameters: tuple[str, ...]
    data: dict[str, dict[ConfigKey, list[float]]] = field(default_factory=dict)
    #: Per-configuration call counts (function -> key -> calls per run).
    calls: dict[str, dict[ConfigKey, int]] = field(default_factory=dict)

    def add(self, function: str, key: ConfigKey, value: float) -> None:
        self.data.setdefault(function, {}).setdefault(key, []).append(value)

    def functions(self) -> list[str]:
        """Measured functions (APP_KEY excluded), sorted."""
        return sorted(n for n in self.data if n != APP_KEY)

    def configs(self) -> list[ConfigKey]:
        """All configuration keys present, sorted."""
        keys: set[ConfigKey] = set()
        for per_fn in self.data.values():
            keys.update(per_fn)
        return sorted(keys)

    def points(self, function: str) -> tuple[np.ndarray, np.ndarray]:
        """(X, y): configuration matrix and mean measured times."""
        per_fn = self.data.get(function, {})
        keys = sorted(per_fn)
        X = np.array(keys, dtype=float).reshape(len(keys), len(self.parameters))
        y = np.array([float(np.mean(per_fn[k])) for k in keys])
        return X, y

    def repetitions(self, function: str, key: ConfigKey) -> list[float]:
        """Raw repeated measurements of one configuration."""
        return list(self.data.get(function, {}).get(key, []))

    def max_cov(self, function: str) -> float:
        """Largest coefficient of variation across configurations.

        The paper's B1 screening keeps only functions with CoV <= 0.1
        everywhere ("values with a coefficient of variance larger than 0.1
        ... are too affected by noise to be reliable").  The usual case —
        every configuration measured the same number of times — reduces
        over one (configs, repetitions) matrix instead of looping
        configurations in Python (this screen runs inside the model
        stage, once per measured function).
        """
        per_fn = self.data.get(function, {})
        if not per_fn:
            return 0.0
        values = list(per_fn.values())
        lengths = {len(v) for v in values}
        if len(lengths) == 1:
            if lengths.pop() < 2:
                return 0.0
            arr = np.asarray(values, dtype=float)
            means = arr.mean(axis=1)
            ok = means > 0
            if not np.any(ok):
                return 0.0
            stds = arr[ok].std(axis=1, ddof=1)
            return float(np.max(stds / means[ok]))
        worst = 0.0
        for vals in values:
            arr = np.asarray(vals, dtype=float)
            mean = arr.mean()
            if mean > 0 and len(arr) > 1:
                worst = max(worst, float(arr.std(ddof=1) / mean))
        return worst

    def reliable_functions(self, cov_threshold: float = 0.1) -> list[str]:
        """Functions passing the CoV screen."""
        return [
            fn
            for fn in self.functions()
            if self.max_cov(fn) <= cov_threshold
        ]


@dataclass
class ConfigRunResult:
    """Everything one configuration's run produced.

    ``samples[function]`` holds the per-repetition noisy measurements in
    repetition order; ``calls[function]`` the call count of the single
    profiled run.  The container is picklable and JSON-able (see
    :mod:`repro.measure.io`) so it can cross process boundaries and live
    in the on-disk run cache.
    """

    key: ConfigKey
    profile: ProfileResult
    samples: dict[str, list[float]] = field(default_factory=dict)
    calls: dict[str, int] = field(default_factory=dict)
    #: True when the result was served from a run cache (never pickled
    #: into the cache itself; set on load).
    cached: bool = False


def run_configuration(
    program: Program,
    setup: RunSetup,
    plan: InstrumentationPlan,
    noise: NoiseModel,
    contention: ContentionModel,
    repetitions: int,
    seed: int,
    key: ConfigKey,
    engine: str = DEFAULT_MEASUREMENT_ENGINE,
) -> ConfigRunResult:
    """Profile one configuration and derive its noisy repetitions.

    The RNG stream of every sample is derived purely from
    ``(seed, function, key, repetition)`` via :func:`~repro.measure.noise.rng_for`
    — never from execution order — so results are bit-identical whether
    configurations run serially, in any order, or on different processes.
    *engine* selects the execution engine; both engines produce
    bit-identical profiles, so it does not perturb measurements either.
    """
    factor = contention.factor(setup.ranks_per_node)
    profile = profile_run(
        program,
        setup.args,
        plan,
        runtime=setup.runtime,
        exec_config=setup.exec_config,
        contention_factor=factor,
        entry=setup.entry,
        engine=engine,
    )
    result = ConfigRunResult(key=key, profile=profile)
    for name, node in profile.flat().items():
        if not name:
            continue
        base = node.time(factor)
        result.calls[name] = node.calls
        result.samples[name] = [
            noise.perturb(base, rng_for(seed, name, key, rep))
            for rep in range(repetitions)
        ]
    app_base = profile.total_time()
    result.samples[APP_KEY] = [
        noise.perturb(app_base, rng_for(seed, APP_KEY, key, rep))
        for rep in range(repetitions)
    ]
    return result


def merge_results(
    parameters: tuple[str, ...],
    results: Sequence[ConfigRunResult],
) -> tuple[Measurements, dict[ConfigKey, ProfileResult]]:
    """Combine per-configuration results into one measurements container.

    Callers must pass *results* in canonical design order: merge order is
    the only execution-order-dependent step, so fixing it here is what
    makes parallel runs bit-identical to serial ones.
    """
    measurements = Measurements(parameters=parameters)
    profiles: dict[ConfigKey, ProfileResult] = {}
    for result in results:
        profiles[result.key] = result.profile
        for name, values in result.samples.items():
            for value in values:
                measurements.add(name, result.key, value)
        for name, calls in result.calls.items():
            measurements.calls.setdefault(name, {})[result.key] = calls
    return measurements, profiles


def merge_results_dense(
    parameters: tuple[str, ...],
    results: Sequence[ConfigRunResult],
) -> tuple[Measurements, dict[ConfigKey, ProfileResult]]:
    """:func:`merge_results` for whole-design result sets.

    When every configuration key appears exactly once — the invariant of
    canonical designs, and what the batched runner delivers — each
    (function, key) repetition list can be assigned wholesale instead of
    being grown ``append``-by-``append`` through :meth:`Measurements.add`
    (one dict probe per sample, ~repetitions x configs x functions of
    them per sweep).  Same output, one probe per (function, key).
    """
    measurements = Measurements(parameters=parameters)
    profiles: dict[ConfigKey, ProfileResult] = {}
    data = measurements.data
    calls = measurements.calls
    for result in results:
        profiles[result.key] = result.profile
        for name, values in result.samples.items():
            data.setdefault(name, {})[result.key] = list(values)
        for name, count in result.calls.items():
            calls.setdefault(name, {})[result.key] = count
    return measurements, profiles


@dataclass
class ExperimentRunner:
    """Runs a design against a workload under one instrumentation plan."""

    workload: Workload
    plan: InstrumentationPlan
    noise: NoiseModel = field(default_factory=GaussianNoise)
    contention: ContentionModel = field(default_factory=NoContention)
    repetitions: int = 5
    seed: int = 0
    #: Execution engine for the profiled runs ("compiled" | "tree").
    engine: str = DEFAULT_MEASUREMENT_ENGINE

    def run(
        self, design: Iterable[Mapping[str, float]]
    ) -> tuple[Measurements, dict[ConfigKey, ProfileResult]]:
        """Execute every configuration; return measurements and profiles."""
        program = self.workload.program()
        parameters = tuple(self.workload.parameters)
        results = [
            run_configuration(
                program,
                self.workload.setup(config),
                self.plan,
                self.noise,
                self.contention,
                self.repetitions,
                self.seed,
                config_key(parameters, config),
                engine=self.engine,
            )
            for config in design
        ]
        return merge_results(parameters, results)
