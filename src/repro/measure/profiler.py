"""Simulated Score-P: call-path profiling with instrumentation overhead.

The profiler is an execution listener that attributes simulated cost to the
*nearest instrumented ancestor* on the call stack — exactly the visibility
a binary-instrumentation profiler has: uninstrumented functions' time folds
into their caller, and every instrumented call pays the per-visit event
overhead.  MPI routines are always visible (Score-P's MPI adapter wraps
them independently of the compiler filter).

The rank-per-node memory-contention factor (paper section C1) is applied
when querying times: ``time = compute + memory * factor + comm + overhead``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..interp import DEFAULT_MEASUREMENT_ENGINE, make_engine
from ..interp.config import DEFAULT_CONFIG, ExecConfig
from ..interp.events import CostKind, NullListener
from ..interp.runtime import LibraryRuntime
from ..interp.values import Value
from ..ir.program import Program
from .instrumentation import InstrumentationPlan

CallPath = tuple[str, ...]

#: Reserved name for whole-application time in measurement containers.
APP_KEY = "<<app>>"


@dataclass
class ProfileNode:
    """Exclusive metrics of one instrumented call path."""

    callpath: CallPath
    calls: int = 0
    compute: float = 0.0
    memory: float = 0.0
    comm: float = 0.0
    overhead: float = 0.0

    def time(self, contention_factor: float = 1.0) -> float:
        """Exclusive time including overhead, under memory contention."""
        return (
            self.compute
            + self.memory * contention_factor
            + self.comm
            + self.overhead
        )

    def base_time(self, contention_factor: float = 1.0) -> float:
        """Exclusive time without instrumentation overhead."""
        return self.compute + self.memory * contention_factor + self.comm

    @property
    def function(self) -> str:
        """The function this node belongs to ('' for the root)."""
        return self.callpath[-1] if self.callpath else ""


@dataclass
class ProfileResult:
    """Outcome of one profiled run."""

    plan: InstrumentationPlan
    nodes: dict[CallPath, ProfileNode]
    contention_factor: float = 1.0
    #: (function, loop_id) -> iterations, from the metered run.
    loop_iterations: dict[tuple[str, int], int] = field(default_factory=dict)

    def total_time(self) -> float:
        """Whole-application measured time (overhead included)."""
        return sum(n.time(self.contention_factor) for n in self.nodes.values())

    def base_total_time(self) -> float:
        """Whole-application time without instrumentation overhead."""
        return sum(
            n.base_time(self.contention_factor) for n in self.nodes.values()
        )

    def overhead_time(self) -> float:
        """Total instrumentation overhead of the run."""
        return sum(n.overhead for n in self.nodes.values())

    def flat(self) -> dict[str, ProfileNode]:
        """Per-function aggregation over call paths (the view Extra-P
        models by default when call paths agree)."""
        out: dict[str, ProfileNode] = {}
        for node in self.nodes.values():
            name = node.function
            agg = out.get(name)
            if agg is None:
                agg = ProfileNode((name,) if name else ())
                out[name] = agg
            agg.calls += node.calls
            agg.compute += node.compute
            agg.memory += node.memory
            agg.comm += node.comm
            agg.overhead += node.overhead
        return out

    def function_time(self, name: str) -> float:
        """Flat exclusive time of *name* (0.0 when not visible)."""
        node = self.flat().get(name)
        return node.time(self.contention_factor) if node else 0.0

    def visible_functions(self) -> frozenset[str]:
        """Functions appearing in the profile."""
        return frozenset(
            n.function for n in self.nodes.values() if n.function
        )


class ScorePListener(NullListener):
    """The profiling listener (one per run)."""

    def __init__(self, plan: InstrumentationPlan) -> None:
        self.plan = plan
        self.nodes: dict[CallPath, ProfileNode] = {}
        # Full call stack of (name, visible) pairs.
        self._stack: list[tuple[str, bool]] = []
        # Cached visible path.
        self._visible_path: CallPath = ()

    # -- helpers -----------------------------------------------------------

    def _is_visible(self, function: str) -> bool:
        return self.plan.is_instrumented(function) or function.startswith(
            "MPI_"
        )

    def _node(self, path: CallPath) -> ProfileNode:
        node = self.nodes.get(path)
        if node is None:
            node = ProfileNode(path)
            self.nodes[path] = node
        return node

    # -- listener ----------------------------------------------------------

    def on_enter(self, function: str) -> None:
        visible = self._is_visible(function)
        self._stack.append((function, visible))
        if visible:
            # Score-P's enter hook runs before the callee's timestamp and
            # the exit hook after it: half the per-visit overhead lands in
            # the caller's measured span, half in the callee's.  This
            # split is what lets instrumentation *qualitatively* distort
            # caller models (paper B2).
            half = self.plan.overhead_per_call / 2.0
            caller = self._node(self._visible_path)
            caller.overhead += half
            self._visible_path = self._visible_path + (function,)
            node = self._node(self._visible_path)
            node.calls += 1
            node.overhead += half

    def on_exit(self, function: str) -> None:
        if not self._stack:
            return
        name, visible = self._stack.pop()
        if visible:
            self._visible_path = self._visible_path[:-1]

    def on_cost(self, kind: CostKind, amount: float) -> None:
        node = self._node(self._visible_path)
        if kind is CostKind.COMPUTE:
            node.compute += amount
        elif kind is CostKind.MEMORY:
            node.memory += amount
        else:
            node.comm += amount

    def on_aggregate_calls(
        self, callee: str, count: int, unit_compute: float, unit_memory: float
    ) -> None:
        if self._is_visible(callee):
            half = self.plan.overhead_per_call / 2.0
            caller = self._node(self._visible_path)
            caller.overhead += count * half
            node = self._node(self._visible_path + (callee,))
            node.calls += count
            node.compute += count * unit_compute
            node.memory += count * unit_memory
            node.overhead += count * half
        else:
            node = self._node(self._visible_path)
            node.compute += count * unit_compute
            node.memory += count * unit_memory


class _BatchedNode:
    """Per-call-path accumulators over the whole batch.

    One ``(B,)`` array per :class:`ProfileNode` field, plus the lane set
    that has touched the path (scalar listeners create a node the moment
    any event lands on its path, so per-lane node existence must follow
    the event lane sets, not the accumulated values) and the per-lane
    first-touch sequence number (scalar node dicts are insertion-ordered
    by first touch, and :meth:`ProfileResult.flat` folds floats in that
    order — reproducing the order reproduces the rounding).
    """

    __slots__ = (
        "calls", "compute", "memory", "comm", "overhead",
        "touched", "first_seq", "complete",
    )

    def __init__(self, batch: int) -> None:
        self.calls = np.zeros(batch, dtype=np.int64)
        self.compute = np.zeros(batch)
        self.memory = np.zeros(batch)
        self.comm = np.zeros(batch)
        self.overhead = np.zeros(batch)
        self.touched = np.zeros(batch, dtype=bool)
        self.first_seq = np.zeros(batch, dtype=np.int64)
        #: Every lane has touched this path — first-touch bookkeeping is
        #: over, so the per-event hot path can skip it entirely.
        self.complete = False


class BatchedScorePListener:
    """Vector-protocol sibling of :class:`ScorePListener`.

    One instance profiles every lane of a batched run at once: the
    engine's vector event stream carries ``(amount, idx)`` pairs where
    *idx* is the sorted active-lane set (``None`` = all lanes) and vector
    amounts are compressed to it.  Call-path structure is shared by all
    lanes active at an event (the engine emits events at program points),
    so a single path stack suffices; accumulation lands on ``(B,)``
    arrays.  :meth:`lane_nodes` then slices out any lane's node dict,
    bit-identical to what a scalar :class:`ScorePListener` would have
    produced for that lane alone.
    """

    def __init__(self, plan: InstrumentationPlan, batch: int) -> None:
        self.plan = plan
        self.batch = batch
        self.nodes: dict[CallPath, _BatchedNode] = {}
        self._stack: list[tuple[str, bool]] = []
        self._visible_path: CallPath = ()
        self._seq = 0
        self._half = plan.overhead_per_call / 2.0
        self._visible_cache: dict[str, bool] = {}
        #: (function, loop_id) -> (B,) iteration counts, from the
        #: engine's loop events (stands in for per-lane RunResult metrics
        #: when the engine runs with ``collect_metrics=False``).
        self._loops: dict[tuple[str, int], np.ndarray] = {}

    # -- helpers -----------------------------------------------------------

    def _is_visible(self, function: str) -> bool:
        visible = self._visible_cache.get(function)
        if visible is None:
            visible = self.plan.is_instrumented(
                function
            ) or function.startswith("MPI_")
            self._visible_cache[function] = visible
        return visible

    def _node(self, path: CallPath, idx) -> _BatchedNode:
        node = self.nodes.get(path)
        if node is None:
            node = _BatchedNode(self.batch)
            self.nodes[path] = node
        if node.complete:
            return node
        touched = node.touched
        if idx is None:
            fresh = ~touched
            if fresh.any():
                node.first_seq[fresh] = self._seq
                self._seq += 1
            touched[:] = True
            node.complete = True
        else:
            fresh = ~touched[idx]
            if fresh.any():
                lanes = idx[fresh]
                node.first_seq[lanes] = self._seq
                self._seq += 1
                touched[lanes] = True
                node.complete = bool(touched.all())
        return node

    @staticmethod
    def _add(target: np.ndarray, amount, idx) -> None:
        # idx lane sets are sorted and duplicate-free, so fancy-index
        # accumulation is exact (no np.add.at needed).
        if idx is None:
            target += amount
        else:
            target[idx] += amount

    # -- vector listener protocol ------------------------------------------

    def on_enter(self, function: str, idx) -> None:
        visible = self._is_visible(function)
        self._stack.append((function, visible))
        if visible:
            half = self._half
            caller = self._node(self._visible_path, idx)
            self._add(caller.overhead, half, idx)
            self._visible_path = self._visible_path + (function,)
            node = self._node(self._visible_path, idx)
            self._add(node.calls, 1, idx)
            self._add(node.overhead, half, idx)

    def on_exit(self, function: str, idx) -> None:
        if not self._stack:
            return
        name, visible = self._stack.pop()
        if visible:
            self._visible_path = self._visible_path[:-1]

    def on_cost(self, kind: CostKind, amount, idx) -> None:
        node = self._node(self._visible_path, idx)
        if kind is CostKind.COMPUTE:
            self._add(node.compute, amount, idx)
        elif kind is CostKind.MEMORY:
            self._add(node.memory, amount, idx)
        else:
            self._add(node.comm, amount, idx)

    def on_loop_iterations(
        self, function: str, loop_id: int, count, idx
    ) -> None:
        counts = self._loops.get((function, loop_id))
        if counts is None:
            counts = np.zeros(self.batch, dtype=np.int64)
            self._loops[(function, loop_id)] = counts
        delta = (
            count.astype(np.int64)
            if isinstance(count, np.ndarray)
            else int(count)
        )
        if idx is None:
            counts += delta
        else:
            counts[idx] += delta

    def on_aggregate_calls(
        self, callee: str, count, unit_compute: float, unit_memory: float,
        idx,
    ) -> None:
        if self._is_visible(callee):
            half = self._half
            caller = self._node(self._visible_path, idx)
            self._add(caller.overhead, count * half, idx)
            node = self._node(self._visible_path + (callee,), idx)
            # counts arrive as float64 lanes from the engine's aggregation
            # but are exact integers; the calls field stays integral.
            calls = (
                count.astype(np.int64)
                if isinstance(count, np.ndarray)
                else int(count)
            )
            self._add(node.calls, calls, idx)
            self._add(node.compute, count * unit_compute, idx)
            self._add(node.memory, count * unit_memory, idx)
            self._add(node.overhead, count * half, idx)
        else:
            node = self._node(self._visible_path, idx)
            self._add(node.compute, count * unit_compute, idx)
            self._add(node.memory, count * unit_memory, idx)

    # -- per-lane extraction -----------------------------------------------

    def lane_nodes(self, lane: int) -> dict[CallPath, ProfileNode]:
        """Lane *lane*'s node dict, in its own first-touch order."""
        paths = [
            (int(node.first_seq[lane]), path)
            for path, node in self.nodes.items()
            if node.touched[lane]
        ]
        paths.sort()
        out: dict[CallPath, ProfileNode] = {}
        for _, path in paths:
            node = self.nodes[path]
            out[path] = ProfileNode(
                callpath=path,
                calls=int(node.calls[lane]),
                compute=float(node.compute[lane]),
                memory=float(node.memory[lane]),
                comm=float(node.comm[lane]),
                overhead=float(node.overhead[lane]),
            )
        return out

    def lane_loop_iterations(self, lane: int) -> dict[tuple[str, int], int]:
        """Lane *lane*'s loop-iteration counters (zero entries dropped,
        matching the per-lane metrics collectors)."""
        return {
            key: int(counts[lane])
            for key, counts in self._loops.items()
            if counts[lane] > 0
        }


def profile_run(
    program: Program,
    args: Mapping[str, Value],
    plan: InstrumentationPlan,
    runtime: LibraryRuntime | None = None,
    exec_config: ExecConfig = DEFAULT_CONFIG,
    contention_factor: float = 1.0,
    entry: str | None = None,
    engine: str = DEFAULT_MEASUREMENT_ENGINE,
) -> ProfileResult:
    """Execute *program* once under *plan* and return its profile.

    *engine* selects the execution engine (``"compiled"`` by default —
    the measurement hot path; ``"tree"`` for the tree-walker).  Both
    yield bit-identical profiles.
    """
    listener = ScorePListener(plan)
    interp = make_engine(
        program,
        engine,
        runtime=runtime,
        config=exec_config,
        listener=listener,
    )
    result = interp.run(args, entry=entry)
    return ProfileResult(
        plan=plan,
        nodes=listener.nodes,
        contention_factor=contention_factor,
        loop_iterations=dict(result.metrics.loop_iterations),
    )


def profile_run_batch(
    program: Program,
    args_list: Sequence[Mapping[str, Value]],
    plan: InstrumentationPlan,
    runtimes: Sequence[LibraryRuntime | None] | None = None,
    exec_config: ExecConfig = DEFAULT_CONFIG,
    contention_factors: Sequence[float] | None = None,
    entry: str | None = None,
    engine: str = "vectorized",
) -> list[ProfileResult]:
    """Profile a whole batch of configurations in one tensor pass.

    One :class:`BatchedScorePListener` rides the batched engine's vector
    event stream; per lane the resulting :class:`ProfileResult` is
    bit-identical to :func:`profile_run` of that configuration alone.
    When the program is not batch-eligible (the engine raises
    :class:`~repro.interp.VectorFallback`) every lane falls back to a
    scalar compiled-engine :func:`profile_run` — same results, scalar
    speed.
    """
    from ..interp import VectorFallback, make_engine as _make_engine
    from ..interp.vectorize import VectorizedEngine

    batch = len(args_list)
    if contention_factors is None:
        contention_factors = [1.0] * batch
    if runtimes is None:
        runtimes = [None] * batch
    interp = _make_engine(program, engine, config=exec_config)
    if not isinstance(interp, VectorizedEngine) and not hasattr(
        interp, "run_batch"
    ):
        raise TypeError(f"engine '{engine}' cannot run batches")
    listener = BatchedScorePListener(plan, batch)
    try:
        interp.run_batch(
            args_list,
            entry=entry,
            lane_runtimes=runtimes,
            vector_listeners=[listener],
            collect_metrics=False,
        )
    except VectorFallback:
        return [
            profile_run(
                program,
                args_list[lane],
                plan,
                runtime=runtimes[lane],
                exec_config=exec_config,
                contention_factor=contention_factors[lane],
                entry=entry,
                engine=DEFAULT_MEASUREMENT_ENGINE,
            )
            for lane in range(batch)
        ]
    return [
        ProfileResult(
            plan=plan,
            nodes=listener.lane_nodes(lane),
            contention_factor=contention_factors[lane],
            loop_iterations=listener.lane_loop_iterations(lane),
        )
        for lane in range(batch)
    ]
