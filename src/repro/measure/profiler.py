"""Simulated Score-P: call-path profiling with instrumentation overhead.

The profiler is an execution listener that attributes simulated cost to the
*nearest instrumented ancestor* on the call stack — exactly the visibility
a binary-instrumentation profiler has: uninstrumented functions' time folds
into their caller, and every instrumented call pays the per-visit event
overhead.  MPI routines are always visible (Score-P's MPI adapter wraps
them independently of the compiler filter).

The rank-per-node memory-contention factor (paper section C1) is applied
when querying times: ``time = compute + memory * factor + comm + overhead``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..interp import DEFAULT_MEASUREMENT_ENGINE, make_engine
from ..interp.config import DEFAULT_CONFIG, ExecConfig
from ..interp.events import CostKind, NullListener
from ..interp.runtime import LibraryRuntime
from ..interp.values import Value
from ..ir.program import Program
from .instrumentation import InstrumentationPlan

CallPath = tuple[str, ...]

#: Reserved name for whole-application time in measurement containers.
APP_KEY = "<<app>>"


@dataclass
class ProfileNode:
    """Exclusive metrics of one instrumented call path."""

    callpath: CallPath
    calls: int = 0
    compute: float = 0.0
    memory: float = 0.0
    comm: float = 0.0
    overhead: float = 0.0

    def time(self, contention_factor: float = 1.0) -> float:
        """Exclusive time including overhead, under memory contention."""
        return (
            self.compute
            + self.memory * contention_factor
            + self.comm
            + self.overhead
        )

    def base_time(self, contention_factor: float = 1.0) -> float:
        """Exclusive time without instrumentation overhead."""
        return self.compute + self.memory * contention_factor + self.comm

    @property
    def function(self) -> str:
        """The function this node belongs to ('' for the root)."""
        return self.callpath[-1] if self.callpath else ""


@dataclass
class ProfileResult:
    """Outcome of one profiled run."""

    plan: InstrumentationPlan
    nodes: dict[CallPath, ProfileNode]
    contention_factor: float = 1.0
    #: (function, loop_id) -> iterations, from the metered run.
    loop_iterations: dict[tuple[str, int], int] = field(default_factory=dict)

    def total_time(self) -> float:
        """Whole-application measured time (overhead included)."""
        return sum(n.time(self.contention_factor) for n in self.nodes.values())

    def base_total_time(self) -> float:
        """Whole-application time without instrumentation overhead."""
        return sum(
            n.base_time(self.contention_factor) for n in self.nodes.values()
        )

    def overhead_time(self) -> float:
        """Total instrumentation overhead of the run."""
        return sum(n.overhead for n in self.nodes.values())

    def flat(self) -> dict[str, ProfileNode]:
        """Per-function aggregation over call paths (the view Extra-P
        models by default when call paths agree)."""
        out: dict[str, ProfileNode] = {}
        for node in self.nodes.values():
            name = node.function
            agg = out.get(name)
            if agg is None:
                agg = ProfileNode((name,) if name else ())
                out[name] = agg
            agg.calls += node.calls
            agg.compute += node.compute
            agg.memory += node.memory
            agg.comm += node.comm
            agg.overhead += node.overhead
        return out

    def function_time(self, name: str) -> float:
        """Flat exclusive time of *name* (0.0 when not visible)."""
        node = self.flat().get(name)
        return node.time(self.contention_factor) if node else 0.0

    def visible_functions(self) -> frozenset[str]:
        """Functions appearing in the profile."""
        return frozenset(
            n.function for n in self.nodes.values() if n.function
        )


class ScorePListener(NullListener):
    """The profiling listener (one per run)."""

    def __init__(self, plan: InstrumentationPlan) -> None:
        self.plan = plan
        self.nodes: dict[CallPath, ProfileNode] = {}
        # Full call stack of (name, visible) pairs.
        self._stack: list[tuple[str, bool]] = []
        # Cached visible path.
        self._visible_path: CallPath = ()

    # -- helpers -----------------------------------------------------------

    def _is_visible(self, function: str) -> bool:
        return self.plan.is_instrumented(function) or function.startswith(
            "MPI_"
        )

    def _node(self, path: CallPath) -> ProfileNode:
        node = self.nodes.get(path)
        if node is None:
            node = ProfileNode(path)
            self.nodes[path] = node
        return node

    # -- listener ----------------------------------------------------------

    def on_enter(self, function: str) -> None:
        visible = self._is_visible(function)
        self._stack.append((function, visible))
        if visible:
            # Score-P's enter hook runs before the callee's timestamp and
            # the exit hook after it: half the per-visit overhead lands in
            # the caller's measured span, half in the callee's.  This
            # split is what lets instrumentation *qualitatively* distort
            # caller models (paper B2).
            half = self.plan.overhead_per_call / 2.0
            caller = self._node(self._visible_path)
            caller.overhead += half
            self._visible_path = self._visible_path + (function,)
            node = self._node(self._visible_path)
            node.calls += 1
            node.overhead += half

    def on_exit(self, function: str) -> None:
        if not self._stack:
            return
        name, visible = self._stack.pop()
        if visible:
            self._visible_path = self._visible_path[:-1]

    def on_cost(self, kind: CostKind, amount: float) -> None:
        node = self._node(self._visible_path)
        if kind is CostKind.COMPUTE:
            node.compute += amount
        elif kind is CostKind.MEMORY:
            node.memory += amount
        else:
            node.comm += amount

    def on_aggregate_calls(
        self, callee: str, count: int, unit_compute: float, unit_memory: float
    ) -> None:
        if self._is_visible(callee):
            half = self.plan.overhead_per_call / 2.0
            caller = self._node(self._visible_path)
            caller.overhead += count * half
            node = self._node(self._visible_path + (callee,))
            node.calls += count
            node.compute += count * unit_compute
            node.memory += count * unit_memory
            node.overhead += count * half
        else:
            node = self._node(self._visible_path)
            node.compute += count * unit_compute
            node.memory += count * unit_memory


def profile_run(
    program: Program,
    args: Mapping[str, Value],
    plan: InstrumentationPlan,
    runtime: LibraryRuntime | None = None,
    exec_config: ExecConfig = DEFAULT_CONFIG,
    contention_factor: float = 1.0,
    entry: str | None = None,
    engine: str = DEFAULT_MEASUREMENT_ENGINE,
) -> ProfileResult:
    """Execute *program* once under *plan* and return its profile.

    *engine* selects the execution engine (``"compiled"`` by default —
    the measurement hot path; ``"tree"`` for the tree-walker).  Both
    yield bit-identical profiles.
    """
    listener = ScorePListener(plan)
    interp = make_engine(
        program,
        engine,
        runtime=runtime,
        config=exec_config,
        listener=listener,
    )
    result = interp.run(args, entry=entry)
    return ProfileResult(
        plan=plan,
        nodes=listener.nodes,
        contention_factor=contention_factor,
        loop_iterations=dict(result.metrics.loop_iterations),
    )
