"""Simulated MPI substrate: analytic network/collective cost models,
rank-per-node memory contention, and the ``MPI_*`` library runtime."""

from .collectives import (
    COLLECTIVE_FAMILIES,
    allgather_cost,
    allreduce_cost,
    alltoall_cost,
    barrier_cost,
    bcast_cost,
    gather_cost,
    reduce_cost,
    scatter_cost,
    sendrecv_cost,
)
from .contention import (
    DEFAULT_CONTENTION,
    BandwidthSaturationContention,
    ContentionModel,
    LogQuadraticContention,
    NoContention,
)
from .network import DEFAULT_NETWORK, NetworkModel
from .runtime import MPIConfig, MPIRuntime
from .spmd import SPMDResult, SPMDSimulator

__all__ = [
    "BandwidthSaturationContention",
    "COLLECTIVE_FAMILIES",
    "ContentionModel",
    "DEFAULT_CONTENTION",
    "DEFAULT_NETWORK",
    "LogQuadraticContention",
    "MPIConfig",
    "MPIRuntime",
    "SPMDResult",
    "SPMDSimulator",
    "NetworkModel",
    "NoContention",
    "allgather_cost",
    "allreduce_cost",
    "alltoall_cost",
    "barrier_cost",
    "bcast_cost",
    "gather_cost",
    "reduce_cost",
    "scatter_cost",
    "sendrecv_cost",
]
