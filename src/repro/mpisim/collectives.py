"""Analytical cost models of MPI collective algorithms.

Standard algorithm costs after Thakur, Rabenseifner & Gropp ("Optimization
of Collective Communication Operations in MPICH") and Hoefler & Moor —
the same sources the paper's library database cites (section 5.3).  Each
function maps (communicator size ``p``, element ``count``, network model)
to a simulated cost.

All costs are per-rank critical-path costs of one invocation; the simulated
SPMD execution charges them to the calling rank.
"""

from __future__ import annotations

import math

from .network import NetworkModel


def _log2p(p: int) -> float:
    return math.ceil(math.log2(p)) if p > 1 else 0.0


def bcast_cost(p: int, count: float, net: NetworkModel) -> float:
    """Binomial-tree broadcast: ceil(log2 p) * (alpha + n*beta)."""
    n = net.message_bytes(count)
    return _log2p(p) * (net.latency + n * net.byte_cost)


def reduce_cost(p: int, count: float, net: NetworkModel) -> float:
    """Binomial-tree reduce: ceil(log2 p) * (alpha + n*beta + n*gamma)."""
    n = net.message_bytes(count)
    return _log2p(p) * (
        net.latency + n * net.byte_cost + n * net.reduce_cost
    )


def allreduce_cost(p: int, count: float, net: NetworkModel) -> float:
    """Recursive-doubling allreduce: log2(p) * (alpha + n*beta + n*gamma)."""
    n = net.message_bytes(count)
    return _log2p(p) * (
        net.latency + n * net.byte_cost + n * net.reduce_cost
    )


def allgather_cost(p: int, count: float, net: NetworkModel) -> float:
    """Ring allgather: (p-1)*alpha + ((p-1)/p) * n_total * beta.

    ``count`` is the per-rank contribution; n_total = p * count elements.
    """
    if p <= 1:
        return 0.0
    n_total = net.message_bytes(count) * p
    return (p - 1) * net.latency + ((p - 1) / p) * n_total * net.byte_cost


def gather_cost(p: int, count: float, net: NetworkModel) -> float:
    """Binomial gather: log2(p)*alpha + ((p-1)/p) * n_total * beta."""
    if p <= 1:
        return 0.0
    n_total = net.message_bytes(count) * p
    return _log2p(p) * net.latency + ((p - 1) / p) * n_total * net.byte_cost


def scatter_cost(p: int, count: float, net: NetworkModel) -> float:
    """Binomial scatter: same cost structure as gather."""
    return gather_cost(p, count, net)


def alltoall_cost(p: int, count: float, net: NetworkModel) -> float:
    """Pairwise-exchange alltoall: (p-1) * (alpha + n*beta)."""
    if p <= 1:
        return 0.0
    n = net.message_bytes(count)
    return (p - 1) * (net.latency + n * net.byte_cost)


def barrier_cost(p: int, net: NetworkModel) -> float:
    """Dissemination barrier: ceil(log2 p) * alpha."""
    return _log2p(p) * net.latency


def sendrecv_cost(count: float, net: NetworkModel) -> float:
    """Point-to-point message cost (either side)."""
    return net.ptp_cost(count)


#: Asymptotic parameter dependencies of each collective, as the library
#: database records them (section 5.3): every routine depends on the
#: implicit parameter ``p``; count-dependent routines additionally inherit
#: the taint labels of their count argument.
COLLECTIVE_FAMILIES: dict[str, str] = {
    "bcast": "log(p)",
    "reduce": "log(p)",
    "allreduce": "log(p)",
    "allgather": "p",
    "gather": "p",
    "scatter": "p",
    "alltoall": "p",
    "barrier": "log(p)",
}
