"""Analytic network model (Hockney alpha–beta with LogGP-style gap).

The paper derives MPI routine dependencies "from precise analytical models"
(section 5.3, citing Hoefler/Moor and Thakur et al.); this module supplies
those models' machine parameters.  Costs are in the interpreter's simulated
cost units (~1 ns); defaults approximate a commodity cluster interconnect
(1 µs latency, 10 GB/s bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkModel:
    """Machine parameters of the alpha-beta(-gamma) cost model.

    ``latency``  — alpha, per-message startup cost (cost units).
    ``byte_cost`` — beta, per-byte transfer cost (cost units / byte).
    ``reduce_cost`` — gamma, per-byte local reduction cost.
    ``datatype_bytes`` — default element size for count-based routines.
    """

    latency: float = 1000.0
    byte_cost: float = 0.1
    reduce_cost: float = 0.02
    datatype_bytes: int = 8

    def message_bytes(self, count: float) -> float:
        """Bytes of a *count*-element message with the default datatype."""
        return max(0.0, float(count)) * self.datatype_bytes

    def ptp_cost(self, count: float) -> float:
        """Point-to-point send/recv cost: alpha + n*beta."""
        return self.latency + self.message_bytes(count) * self.byte_cost

    def with_latency(self, latency: float) -> "NetworkModel":
        """Copy with a different startup latency."""
        return NetworkModel(
            latency, self.byte_cost, self.reduce_cost, self.datatype_bytes
        )


#: Default interconnect used by the workloads and benchmarks.
DEFAULT_NETWORK = NetworkModel()
