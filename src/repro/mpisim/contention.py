"""Memory-contention models for co-located MPI ranks (paper section C1).

The paper's contention experiment holds ``p`` and ``size`` constant while
varying the number of MPI ranks per node ``r``; memory-bound kernels slow
down as ranks saturate the socket's memory bandwidth, and the measured
models are log-quadratic in ``r`` (e.g. whole-application model
``2.86 * log2(r)^2 + 127`` seconds; Figure 5's per-kernel models are
``a * log2(r) + c``-shaped relative increases).

Two models are provided:

* :class:`LogQuadraticContention` (default) — slowdown factor
  ``1 + beta * log2(r)^2``, the empirical law matching the paper's fitted
  models (queueing delay under shared-resource saturation grows
  super-logarithmically but sub-linearly in the occupancy);
* :class:`BandwidthSaturationContention` — a first-principles
  bandwidth-sharing model, ``max(1, r / r_sat)``: no penalty until the
  socket bandwidth is saturated, linear sharing beyond.  Used by the
  ablation benchmark to show how the contention *detection* (section C1)
  is agnostic to the exact law.

The factor multiplies :class:`~repro.interp.events.CostKind.MEMORY` costs
at measurement time; compute-bound and communication costs are unaffected
(matching the paper's observation that only memory-heavy kernels degrade).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol

from ..registry import register_contention


class ContentionModel(Protocol):
    """Memory-cost multiplier as a function of ranks per node."""

    def factor(self, ranks_per_node: int) -> float:
        """Slowdown multiplier for memory-bound cost (>= 1)."""


@register_contention("none")
@dataclass(frozen=True)
class NoContention:
    """Ideal memory system: no co-location penalty."""

    def factor(self, ranks_per_node: int) -> float:  # noqa: D102
        return 1.0


@register_contention("logquad")
@dataclass(frozen=True)
class LogQuadraticContention:
    """``1 + beta * log2(r)^2`` slowdown (default; matches paper's fits)."""

    beta: float = 0.06

    def factor(self, ranks_per_node: int) -> float:  # noqa: D102
        r = max(1, int(ranks_per_node))
        return 1.0 + self.beta * math.log2(r) ** 2


@register_contention("bandwidth")
@dataclass(frozen=True)
class BandwidthSaturationContention:
    """Bandwidth sharing: free below ``saturation_ranks``, linear beyond."""

    saturation_ranks: int = 4

    def factor(self, ranks_per_node: int) -> float:  # noqa: D102
        r = max(1, int(ranks_per_node))
        return max(1.0, r / self.saturation_ranks)


#: Default model used by the measurement layer.
DEFAULT_CONTENTION = LogQuadraticContention()
