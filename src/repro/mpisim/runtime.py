"""Simulated MPI runtime: the library-runtime implementation for ``MPI_*``.

The simulator models an SPMD execution from the perspective of one rank
(symmetric ranks, as in the paper's benchmarks): ``MPI_Comm_size`` returns
the configured communicator size, point-to-point and collective routines
charge their analytical critical-path costs (:mod:`.collectives`), and
values flow through unchanged (reductions return their input — sufficient
because the workloads' control flow does not depend on reduced values
except via counts, which are rank-symmetric).

The paper's taint concern about cross-process label exchange (section 5.3)
does not arise: all ranks are symmetric, so labels computed on the
simulated rank are representative — the same argument the paper makes for
not needing MPI taint exchange on its applications.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..errors import InterpreterError
from ..interp.events import CostKind
from ..interp.runtime import LibraryCall
from ..interp.values import Value
from .collectives import (
    allgather_cost,
    allreduce_cost,
    alltoall_cost,
    barrier_cost,
    bcast_cost,
    gather_cost,
    reduce_cost,
    scatter_cost,
    sendrecv_cost,
)
from .network import DEFAULT_NETWORK, NetworkModel


@dataclass(frozen=True)
class MPIConfig:
    """Configuration of one simulated MPI execution."""

    #: Communicator size (the implicit parameter ``p``).
    ranks: int = 1
    #: MPI ranks co-located per node (the contention variable ``r``).
    ranks_per_node: int = 1
    #: Interconnect parameters.
    network: NetworkModel = DEFAULT_NETWORK
    #: Rank whose execution is simulated.
    rank: int = 0


def _count(args: Sequence[Value], index: int, routine: str) -> float:
    if len(args) <= index:
        raise InterpreterError(
            f"{routine} expects a count argument at position {index}"
        )
    value = args[index]
    if not isinstance(value, (int, float)):
        raise InterpreterError(f"{routine} count must be numeric")
    return float(value)


@dataclass
class MPIRuntime:
    """LibraryRuntime implementation for the ``MPI_*`` surface.

    Calling conventions (value-style, not out-pointer-style):

    ========================  =========================================
    ``MPI_Comm_size()``       returns p
    ``MPI_Comm_rank()``       returns the simulated rank
    ``MPI_Send(count)``       p2p send of *count* elements
    ``MPI_Recv(count)``       p2p receive
    ``MPI_Isend(count)``, ``MPI_Irecv(count)``, ``MPI_Wait()``
    ``MPI_Bcast(value, count)``     returns *value*
    ``MPI_Reduce(value, count)``    returns *value*
    ``MPI_Allreduce(value, count)`` returns *value*
    ``MPI_Allgather(count)``, ``MPI_Gather(count)``,
    ``MPI_Scatter(count)``, ``MPI_Alltoall(count)``, ``MPI_Barrier()``
    ``MPI_Wtime()``           returns 0.0 (use metrics for time)
    ========================  =========================================
    """

    config: MPIConfig = field(default_factory=MPIConfig)
    #: Number of invocations per routine (introspection for tests).
    call_counts: dict[str, int] = field(default_factory=dict)

    def handles(self, name: str) -> bool:  # noqa: D102
        return name.startswith("MPI_") and hasattr(
            self, "_" + name[4:].lower()
        )

    def call(self, name: str, args: Sequence[Value]) -> LibraryCall:  # noqa: D102
        self.call_counts[name] = self.call_counts.get(name, 0) + 1
        handler = getattr(self, "_" + name[4:].lower(), None)
        if handler is None:
            raise InterpreterError(f"MPI runtime does not implement {name}")
        return handler(args)

    # -- queries -----------------------------------------------------------

    def _comm_size(self, args: Sequence[Value]) -> LibraryCall:
        return LibraryCall(value=self.config.ranks)

    def _comm_rank(self, args: Sequence[Value]) -> LibraryCall:
        return LibraryCall(value=self.config.rank)

    def _wtime(self, args: Sequence[Value]) -> LibraryCall:
        return LibraryCall(value=0.0)

    def _init(self, args: Sequence[Value]) -> LibraryCall:
        return LibraryCall()

    def _finalize(self, args: Sequence[Value]) -> LibraryCall:
        return LibraryCall()

    # -- point-to-point ------------------------------------------------------

    def _send(self, args: Sequence[Value]) -> LibraryCall:
        count = _count(args, 0, "MPI_Send")
        return LibraryCall.comm(sendrecv_cost(count, self.config.network))

    def _recv(self, args: Sequence[Value]) -> LibraryCall:
        count = _count(args, 0, "MPI_Recv")
        return LibraryCall.comm(sendrecv_cost(count, self.config.network))

    def _isend(self, args: Sequence[Value]) -> LibraryCall:
        # Non-blocking: startup cost now, transfer overlaps; we charge the
        # startup here and the remainder at the matching wait.
        return LibraryCall.comm(self.config.network.latency)

    def _irecv(self, args: Sequence[Value]) -> LibraryCall:
        return LibraryCall.comm(self.config.network.latency)

    def _wait(self, args: Sequence[Value]) -> LibraryCall:
        count = _count(args, 0, "MPI_Wait") if args else 0.0
        net = self.config.network
        return LibraryCall.comm(net.message_bytes(count) * net.byte_cost)

    # -- collectives -------------------------------------------------------

    def _bcast(self, args: Sequence[Value]) -> LibraryCall:
        count = _count(args, 1, "MPI_Bcast") if len(args) > 1 else 1.0
        cost = bcast_cost(self.config.ranks, count, self.config.network)
        return LibraryCall(value=args[0] if args else None,
                           costs={CostKind.COMM: cost})

    def _reduce(self, args: Sequence[Value]) -> LibraryCall:
        count = _count(args, 1, "MPI_Reduce") if len(args) > 1 else 1.0
        cost = reduce_cost(self.config.ranks, count, self.config.network)
        return LibraryCall(value=args[0] if args else None,
                           costs={CostKind.COMM: cost})

    def _allreduce(self, args: Sequence[Value]) -> LibraryCall:
        count = _count(args, 1, "MPI_Allreduce") if len(args) > 1 else 1.0
        cost = allreduce_cost(self.config.ranks, count, self.config.network)
        return LibraryCall(value=args[0] if args else None,
                           costs={CostKind.COMM: cost})

    def _allgather(self, args: Sequence[Value]) -> LibraryCall:
        count = _count(args, 0, "MPI_Allgather")
        cost = allgather_cost(self.config.ranks, count, self.config.network)
        return LibraryCall.comm(cost)

    def _gather(self, args: Sequence[Value]) -> LibraryCall:
        count = _count(args, 0, "MPI_Gather")
        cost = gather_cost(self.config.ranks, count, self.config.network)
        return LibraryCall.comm(cost)

    def _scatter(self, args: Sequence[Value]) -> LibraryCall:
        count = _count(args, 0, "MPI_Scatter")
        cost = scatter_cost(self.config.ranks, count, self.config.network)
        return LibraryCall.comm(cost)

    def _alltoall(self, args: Sequence[Value]) -> LibraryCall:
        count = _count(args, 0, "MPI_Alltoall")
        cost = alltoall_cost(self.config.ranks, count, self.config.network)
        return LibraryCall.comm(cost)

    def _barrier(self, args: Sequence[Value]) -> LibraryCall:
        return LibraryCall.comm(
            barrier_cost(self.config.ranks, self.config.network)
        )
