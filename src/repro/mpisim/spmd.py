"""Per-rank SPMD simulation.

The analytic runtime (:mod:`repro.mpisim.runtime`) models one symmetric
rank — sufficient for every experiment in the paper, whose benchmarks are
rank-symmetric.  This module completes the substrate for programs whose
control flow *does* depend on the rank (boundary ranks, master/worker
skews): it executes the program once per simulated rank, each with its own
``MPI_Comm_rank`` value, and aggregates:

* the **critical path** (max over ranks — what a wall clock would show);
* per-rank times and the **load imbalance** ratio max/mean, a standard
  SPMD diagnostic;
* per-rank taint reports on demand (the paper's section 5.3 notes that
  cross-rank label exchange was unnecessary for its applications because
  ranks are symmetric; running the taint engine on several ranks and
  merging reports is the simulator's equivalent safeguard).

Ranks execute sequentially and independently: collective/p2p costs remain
analytic per call, so no message matching is required (the LogGP-style
model already charges the critical-path cost of each operation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..interp import (
    DEFAULT_MEASUREMENT_ENGINE,
    DEFAULT_TAINT_ENGINE,
    make_engine,
)
from ..interp.config import DEFAULT_CONFIG, ExecConfig
from ..interp.values import Value
from ..ir.program import Program
from ..taint.engine import TaintEngine
from ..taint.report import TaintReport
from ..taint.sources import LibraryTaintModel
from .network import DEFAULT_NETWORK, NetworkModel
from .runtime import MPIConfig, MPIRuntime


@dataclass
class SPMDResult:
    """Aggregated outcome of an SPMD execution."""

    per_rank_time: dict[int, float] = field(default_factory=dict)
    per_rank_value: dict[int, Value] = field(default_factory=dict)

    @property
    def ranks(self) -> int:
        return len(self.per_rank_time)

    @property
    def critical_path(self) -> float:
        """Simulated wall-clock: the slowest rank."""
        return max(self.per_rank_time.values(), default=0.0)

    @property
    def mean_time(self) -> float:
        if not self.per_rank_time:
            return 0.0
        return float(np.mean(list(self.per_rank_time.values())))

    @property
    def imbalance(self) -> float:
        """max/mean load-imbalance ratio (1.0 = perfectly balanced)."""
        mean = self.mean_time
        return self.critical_path / mean if mean > 0 else 1.0

    def slowest_rank(self) -> int:
        """Rank id on the critical path."""
        return max(self.per_rank_time, key=self.per_rank_time.get)


@dataclass
class SPMDSimulator:
    """Executes a program once per rank of a simulated communicator."""

    program: Program
    ranks: int
    ranks_per_node: int = 1
    network: NetworkModel = DEFAULT_NETWORK
    exec_config: ExecConfig = DEFAULT_CONFIG
    #: Execution engine for the per-rank runs ("compiled" | "tree").
    #: Taint runs (:meth:`taint_merged`) always use the tree-walker.
    engine: str = DEFAULT_MEASUREMENT_ENGINE

    def _runtime_for(self, rank: int) -> MPIRuntime:
        return MPIRuntime(
            MPIConfig(
                ranks=self.ranks,
                ranks_per_node=self.ranks_per_node,
                network=self.network,
                rank=rank,
            )
        )

    def run(
        self,
        args: Mapping[str, Value],
        rank_subset: Sequence[int] | None = None,
        entry: str | None = None,
    ) -> SPMDResult:
        """Execute on every rank (or *rank_subset*) and aggregate.

        For symmetric programs, passing ``rank_subset=[0]`` recovers the
        single-rank analytic model at 1/p the cost.
        """
        result = SPMDResult()
        ranks = rank_subset if rank_subset is not None else range(self.ranks)
        for rank in ranks:
            if not 0 <= rank < self.ranks:
                raise ValueError(f"rank {rank} outside communicator")
            interp = make_engine(
                self.program,
                self.engine,
                runtime=self._runtime_for(rank),
                config=self.exec_config,
            )
            run = interp.run(args, entry=entry)
            result.per_rank_time[rank] = run.time
            result.per_rank_value[rank] = run.value
        return result

    def taint_merged(
        self,
        args: Mapping[str, Value],
        sources: Mapping[str, str],
        library_taint: LibraryTaintModel | None = None,
        rank_subset: Sequence[int] | None = None,
        entry: str | None = None,
        taint_engine: str = DEFAULT_TAINT_ENGINE,
    ) -> TaintReport:
        """Taint analysis across ranks, reports merged by set union.

        Substitutes for the cross-process label exchange the paper leaves
        to future work (section 5.3): where rank-dependent branches select
        different code paths, merging per-rank reports recovers every
        parameter dependence any rank exhibits.  *taint_engine* picks the
        executing engine (the built-ins are bit-identical).
        """
        merged: TaintReport | None = None
        ranks = rank_subset if rank_subset is not None else range(self.ranks)
        for rank in ranks:
            engine = TaintEngine(
                self.program,
                runtime=self._runtime_for(rank),
                config=self.exec_config,
                library_taint=library_taint,
                engine=taint_engine,
            )
            report = engine.analyze(args, dict(sources), entry=entry).report
            merged = report if merged is None else merged.merge(report)
        return merged if merged is not None else TaintReport()
