"""Function classification (paper Table 2).

Combines the static phase and the dynamic taint run into the two-phase
pruning the paper reports:

* **pruned statically** — constant by compile-time analysis (section 5.1);
* **pruned dynamically** — executed under taint with no parameter
  dependency found;
* **kernels** — functions with parameter-dependent loops;
* **communication routines** — functions whose dependency comes (only)
  from performance-relevant library calls;
* **MPI functions used** — distinct relevant library routines observed.

The headline metric is the fraction of functions classified constant with
respect to the chosen parameters (86.2 % for LULESH, 87.7 % for MILC).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.program import Program
from ..staticanalysis.prune import StaticReport
from ..taint.report import TaintReport


@dataclass
class Classification:
    """Outcome of the two-phase function classification."""

    pruned_static: frozenset[str]
    pruned_dynamic: frozenset[str]
    kernels: frozenset[str]
    comm_routines: frozenset[str]
    mpi_functions: frozenset[str]
    #: Functions never executed during the taint run (treated dynamically
    #: constant but reported so users can improve taint-run coverage).
    unexecuted: frozenset[str]
    #: Loops: total / statically pruned / relevant (parameter-dependent).
    loops_total: int = 0
    loops_pruned_static: int = 0
    loops_relevant: int = 0
    per_function_params: dict[str, frozenset[str]] = field(default_factory=dict)

    @property
    def total_functions(self) -> int:
        return (
            len(self.pruned_static)
            + len(self.pruned_dynamic)
            + len(self.kernels)
            + len(self.comm_routines)
            + len(self.unexecuted)
        )

    @property
    def constant_functions(self) -> frozenset[str]:
        """All functions whose models are constant w.r.t. the parameters."""
        return self.pruned_static | self.pruned_dynamic | self.unexecuted

    @property
    def relevant_functions(self) -> frozenset[str]:
        """Functions that need instrumentation and empirical models."""
        return self.kernels | self.comm_routines

    @property
    def constant_fraction(self) -> float:
        """Fraction of functions classified constant (paper: ~0.86-0.88)."""
        total = self.total_functions
        return len(self.constant_functions) / total if total else 0.0

    def table2_row(self) -> dict[str, object]:
        """The workload's Table 2 column."""
        return {
            "functions": self.total_functions,
            "pruned_statically": len(self.pruned_static),
            "pruned_dynamically": len(self.pruned_dynamic) + len(self.unexecuted),
            "kernels": len(self.kernels),
            "comm_routines": len(self.comm_routines),
            "mpi_functions": len(self.mpi_functions),
            "loops": self.loops_total,
            "loops_pruned_statically": self.loops_pruned_static,
            "loops_relevant": self.loops_relevant,
        }


def classify_functions(
    program: Program,
    static: StaticReport,
    taint: TaintReport,
) -> Classification:
    """Run the two-phase classification."""
    pruned_static: set[str] = set(static.pruned_functions())
    executed = set(taint.executed_functions)

    kernels: set[str] = set()
    comm: set[str] = set()
    pruned_dynamic: set[str] = set()
    unexecuted: set[str] = set()
    per_params: dict[str, frozenset[str]] = {}

    for fn in program:
        name = fn.name
        loop_params = taint.function_loop_params(name)
        lib_params = taint.library_params(name)
        per_params[name] = loop_params | lib_params
        if name in pruned_static:
            # Static pruning wins: by construction such functions cannot
            # have dynamic dependencies (their loops are constant and they
            # call no relevant library routine).
            continue
        if name not in executed:
            unexecuted.add(name)
            continue
        if loop_params:
            kernels.add(name)
        elif lib_params:
            comm.add(name)
        else:
            pruned_dynamic.add(name)

    # Loops.
    loops_total = static.total_loops()
    loops_pruned = static.pruned_loops()
    loops_relevant = len(taint.relevant_loops())

    mpi_functions = frozenset(
        r for r in taint.routines_called() if r.startswith("MPI_")
    )

    return Classification(
        pruned_static=frozenset(pruned_static),
        pruned_dynamic=frozenset(pruned_dynamic),
        kernels=frozenset(kernels),
        comm_routines=frozenset(comm),
        mpi_functions=mpi_functions,
        unexecuted=frozenset(unexecuted),
        loops_total=loops_total,
        loops_pruned_static=loops_pruned,
        loops_relevant=loops_relevant,
        per_function_params=per_params,
    )


def table3_counts(
    program: Program,
    taint: TaintReport,
    parameters: "list[str]",
) -> dict[str, dict[str, int]]:
    """Per-parameter kernel/loop counts, excluding pure comm routines
    (paper Table 3 "excluding communication routines relevant only because
    of calls to MPI")."""
    out: dict[str, dict[str, int]] = {}
    for param in parameters:
        fns = {
            fn
            for fn in taint.functions_affected_by(param)
            if taint.function_loop_params(fn)  # has own tainted loops
            and param in taint.function_loop_params(fn)
        }
        loops = {
            (fn, lid)
            for (fn, lid) in taint.loops_affected_by(param)
        }
        out[param] = {"functions": len(fns), "loops": len(loops)}
    # Combined column (params can share regions, so not the sum).
    all_fns = {
        fn
        for fn in taint.tainted_functions()
        if taint.function_loop_params(fn)
    }
    all_loops = taint.relevant_loops()
    out["combined"] = {"functions": len(all_fns), "loops": len(all_loops)}
    return out
