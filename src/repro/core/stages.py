"""The campaign stage graph: named stages, fingerprints, resume.

The paper's pipeline (Figure 2) is a DAG of nine stages::

    static ─┐                       ┌─> plan ──┐
    taint ──┼─> classify            │          ├─> measure ─> model ─> validate
        │   └───────────> design ──┘          │
        └─> volumes ──────┘                    │

Each :class:`Stage` declares its upstream artifacts, the campaign
configuration that participates in its identity, and how its output
serializes (see :mod:`repro.core.artifacts`).  A :class:`Campaign` runs
the DAG in order, fingerprints every stage from its config plus its
parents' fingerprints, and — when a workspace is attached — persists each
artifact and **resumes**: a rerun whose fingerprint is unchanged loads the
artifact instead of recomputing, so editing only modeling parameters
re-fits models without re-measuring anything.

The stage *computations* are module-level functions shared with
:class:`~repro.core.pipeline.PerfTaintPipeline` (now a thin wrapper over
``Campaign``), so both entry points produce bit-identical results.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Callable, Mapping, Protocol, Sequence

from ..errors import CampaignSpecError, PipelineError
from ..interp import (
    DEFAULT_MEASUREMENT_ENGINE,
    DEFAULT_TAINT_ENGINE,
    shadow_capable_engines,
    shadow_engine_identity,
)
from ..libdb.database import LibraryDatabase
from ..libdb.mpi_models import MPI_DATABASE
from ..measure.experiment import (
    ConfigKey,
    ExperimentRunner,
    Measurements,
    Workload,
)
from ..measure.instrumentation import (
    InstrumentationMode,
    InstrumentationPlan,
    default_filter_plan,
    full_plan,
    none_plan,
    taint_filter_plan,
)
from ..measure.batched import BatchedExperimentRunner
from ..measure.io import program_hash
from ..measure.noise import GaussianNoise, NoiseModel
from ..measure.parallel import ParallelExperimentRunner, workload_repr
from ..measure.profiler import ProfileResult
from ..modeling.modeler import Modeler
from ..mpisim.contention import ContentionModel, NoContention
from ..registry import (
    CONTENTION_REGISTRY,
    DESIGN_REGISTRY,
    ENGINE_REGISTRY,
    MODEL_BACKEND_REGISTRY,
    NOISE_REGISTRY,
    WORKLOAD_REGISTRY,
    Registry,
    load_builtin_components,
)
from ..staticanalysis.prune import StaticReport, analyze_program
from ..taint.engine import TaintEngine
from ..taint.policy import FULL_POLICY, PropagationPolicy
from ..taint.report import TaintReport
from ..volume.depclass import ProgramDependencies, classify_program
from ..volume.loopnest import VolumeReport, compute_volumes
from . import artifacts as art
from .classify import Classification, classify_functions
from .experiment_design import DesignDecision
from .hybrid import HybridModeler, ModelComparison
from .validation import ContentionFinding, detect_contention


# ----------------------------------------------------------------------
# stage computations (shared by Campaign and PerfTaintPipeline)


def run_static_stage(program, library: LibraryDatabase) -> StaticReport:
    """Compile-time phase (paper 5.1)."""
    return analyze_program(program, library.is_relevant)


def run_taint_stage(
    workload: Workload,
    program,
    policy: PropagationPolicy,
    library: LibraryDatabase,
    engine: str = DEFAULT_TAINT_ENGINE,
) -> TaintReport:
    """Dynamic taint run on the workload's representative config.

    *engine* names a registered execution engine whose registry entry
    declares ``supports_taint`` (the built-in ``compiled`` and ``tree``
    engines are bit-identical).  A workload without a usable
    ``taint_config()`` raises a typed :class:`~repro.errors.PipelineError`
    naming the workload instead of an ``AttributeError`` mid-stage.
    """
    name = getattr(workload, "name", type(workload).__name__)
    taint_config = getattr(workload, "taint_config", None)
    if not callable(taint_config):
        raise PipelineError(
            "taint",
            f"workload '{name}' does not provide a taint_config() method; "
            "the taint stage needs a small representative configuration "
            "(see the Workload protocol in repro.measure.experiment)",
        )
    config = taint_config()
    if not isinstance(config, Mapping):
        raise PipelineError(
            "taint",
            f"workload '{name}' returned a non-mapping taint_config() "
            f"({type(config).__name__}); expected a parameter -> value "
            "mapping",
        )
    setup = workload.setup(dict(config))
    taint = TaintEngine(
        program,
        runtime=setup.runtime,
        config=setup.exec_config,
        policy=policy,
        library_taint=library,
        engine=engine,
    )
    result = taint.analyze(setup.args, workload.sources(), entry=setup.entry)
    return result.report


def run_volumes_stage(
    program, taint: TaintReport
) -> tuple[VolumeReport, ProgramDependencies]:
    """Symbolic iteration volumes plus dependency classification."""
    volumes = compute_volumes(program, taint)
    deps = classify_program(volumes.inclusive, volumes.program)
    return volumes, deps


def run_classify_stage(
    program, static: StaticReport, taint: TaintReport
) -> Classification:
    """Two-phase function classification (paper Table 2)."""
    return classify_functions(program, static, taint)


def run_design_stage(
    strategy: str,
    parameter_values: Mapping[str, Sequence[float]],
    taint: TaintReport,
    deps: ProgramDependencies,
    volumes: VolumeReport,
) -> DesignDecision:
    """Experiment design via the registered *strategy*."""
    design = DESIGN_REGISTRY.get(strategy)
    return design(parameter_values, taint, deps, volumes.program)


def run_plan_stage(
    mode: InstrumentationMode,
    program,
    taint: TaintReport | None = None,
    static: StaticReport | None = None,
) -> InstrumentationPlan:
    """Instrumentation plan for the requested mode."""
    if mode is InstrumentationMode.FULL:
        return full_plan(program)
    if mode is InstrumentationMode.DEFAULT_FILTER:
        return default_filter_plan(program)
    if mode is InstrumentationMode.NONE:
        return none_plan()
    if taint is None:
        raise PipelineError(
            "plan",
            "the taint-filter plan needs the taint stage's report",
            missing_artifact="taint",
        )
    return taint_filter_plan(program, taint, static)


class MeasureScheduler(Protocol):
    """Pluggable executor for the measure stage.

    Anything with this surface can run a campaign's measure stage — the
    campaign-service :class:`~repro.service.broker.BrokerScheduler`
    leases the design out to remote workers through it.  Implementations
    MUST be bit-identical to the built-in runners (noise streams derived
    purely from ``(seed, function, configuration key, repetition)``,
    results merged in canonical design order): the scheduler is
    deliberately **not** part of the measure stage's fingerprint, so
    local and distributed runs share cache and workspace entries.
    """

    def run_measure(
        self,
        workload: Workload,
        design: Sequence[Mapping[str, float]],
        plan: InstrumentationPlan,
        *,
        noise: NoiseModel,
        contention: ContentionModel,
        repetitions: int,
        seed: int,
        engine: str,
    ) -> tuple[Measurements, dict[ConfigKey, ProfileResult]]: ...


def run_measure_stage(
    workload: Workload,
    design: Sequence[Mapping[str, float]],
    plan: InstrumentationPlan,
    *,
    noise: NoiseModel,
    contention: ContentionModel,
    repetitions: int,
    seed: int,
    n_jobs: int = 1,
    cache_dir: "str | None" = None,
    engine: str = DEFAULT_MEASUREMENT_ENGINE,
    scheduler: "MeasureScheduler | None" = None,
    telemetry: "dict | None" = None,
) -> tuple[Measurements, dict[ConfigKey, ProfileResult]]:
    """Run the instrumented experiments.

    An explicit *scheduler* takes the whole stage (distributed
    campaigns).  Otherwise a batch-capable *engine* (``supports_batch``
    registry metadata, e.g. ``vectorized``) routes to the whole-sweep
    :class:`~repro.measure.batched.BatchedExperimentRunner`, which owns
    its own ``n_jobs`` (batch-axis sharding) and run cache; the
    process-pool runner handles ``n_jobs > 1`` or a run cache, and the
    plain serial runner everything else.  All paths produce bit-identical
    measurements.

    A *telemetry* dict, when given, is filled in place with execution
    accounting (currently the batched runner's lane plan under
    ``"lanes"``).  Telemetry never enters any stage fingerprint.
    """
    if scheduler is not None:
        return scheduler.run_measure(
            workload,
            design,
            plan,
            noise=noise,
            contention=contention,
            repetitions=repetitions,
            seed=seed,
            engine=engine,
        )
    if ENGINE_REGISTRY.entry(engine).metadata.get("supports_batch"):
        runner = BatchedExperimentRunner(
            workload=workload,
            plan=plan,
            noise=noise,
            contention=contention,
            repetitions=repetitions,
            seed=seed,
            engine=engine,
            n_jobs=n_jobs,
            cache_dir=cache_dir,
        )
        value = runner.run(design)
        if telemetry is not None:
            lanes = runner.last_lane_stats
            telemetry["lanes"] = {
                "planned": lanes.planned,
                "executed": lanes.executed,
                "deduped": lanes.deduped,
            }
        return value
    if n_jobs > 1 or cache_dir is not None:
        runner = ParallelExperimentRunner(
            workload=workload,
            plan=plan,
            noise=noise,
            contention=contention,
            repetitions=repetitions,
            seed=seed,
            n_jobs=n_jobs,
            cache_dir=cache_dir,
            engine=engine,
        )
        return runner.run(design)
    runner = ExperimentRunner(
        workload=workload,
        plan=plan,
        noise=noise,
        contention=contention,
        repetitions=repetitions,
        seed=seed,
        engine=engine,
    )
    return runner.run(design)


def run_model_stage(
    measurements: Measurements,
    taint: TaintReport,
    volumes: VolumeReport | None,
    *,
    modeler: Modeler,
    compare_black_box: bool = False,
    cov_threshold: "float | None" = 0.1,
    model_backend: "str | None" = None,
) -> dict[str, ModelComparison]:
    """Hybrid model generation (paper 4.5).

    *model_backend* names a registered model-search backend and, when
    set, overrides the modeler's own (``batched`` stacked-LAPACK by
    default; ``loop`` is the per-hypothesis reference oracle — both
    select identical models).
    """
    hybrid = HybridModeler(modeler=modeler, backend=model_backend)
    return hybrid.model_all(
        measurements,
        taint,
        volumes,
        compare_black_box=compare_black_box,
        cov_threshold=cov_threshold,
    )


def run_validate_stage(
    measurements: Measurements,
    models: Mapping[str, ModelComparison],
    taint: TaintReport,
) -> list[ContentionFinding]:
    """Contention detection over black-box models (paper C1)."""
    candidate_models = {
        fn: (cmp.black_box or cmp.hybrid) for fn, cmp in models.items()
    }
    return detect_contention(measurements, candidate_models, taint)


# ----------------------------------------------------------------------
# stage declarations


@dataclass(frozen=True)
class Stage:
    """One named pipeline stage: typed inputs/outputs plus persistence."""

    name: str
    #: Upstream artifact names this stage consumes.
    inputs: tuple[str, ...]
    description: str
    #: ``compute(campaign, artifacts) -> artifact value``.
    compute: Callable
    #: Campaign configuration participating in this stage's fingerprint.
    config: Callable
    #: Artifact value -> JSON-able payload.
    to_payload: Callable
    #: JSON-able payload -> artifact value.
    from_payload: Callable


def _values_repr(values: Mapping[str, Sequence[float]]) -> list:
    return sorted((str(k), [float(v) for v in vs]) for k, vs in values.items())


def _measure_payload(value: tuple) -> dict:
    measurements, profiles = value
    return art.measure_bundle_to_dict(measurements, profiles)


def _volumes_payload(value: tuple) -> dict:
    volumes, deps = value
    return {
        "volumes": art.volume_report_to_dict(volumes),
        "dependencies": art.dependencies_to_dict(deps),
    }


def _volumes_from_payload(payload: Mapping) -> tuple:
    return (
        art.volume_report_from_dict(payload["volumes"]),
        art.dependencies_from_dict(payload["dependencies"]),
    )


#: The paper's stage graph, in topological order.  ``repro stages`` lists
#: this; :class:`Campaign` executes it.
STAGES: dict[str, Stage] = {
    stage.name: stage
    for stage in (
        Stage(
            name="static",
            inputs=(),
            description="compile-time pruning (paper 5.1)",
            compute=lambda c, a: run_static_stage(c.program(), c.library),
            config=lambda c: {
                "program": c.program_fingerprint(),
                "library": c.library.fingerprint(),
            },
            to_payload=art.static_report_to_dict,
            from_payload=art.static_report_from_dict,
        ),
        Stage(
            name="taint",
            inputs=(),
            description="dynamic taint run on the representative config",
            compute=lambda c, a: run_taint_stage(
                c.workload,
                c.program(),
                c.policy,
                c.library,
                engine=c.taint_engine,
            ),
            # Taint-engine identity (the shadow implementation, not just
            # the concrete factory) plus the propagation policy are part
            # of the fingerprint: cached taint artifacts never cross
            # engines or policies.
            config=lambda c: {
                "program": c.program_fingerprint(),
                "workload": workload_repr(c.workload),
                "policy": repr(c.policy),
                "library": c.library.fingerprint(),
                "engine": shadow_engine_identity(c.taint_engine),
            },
            to_payload=art.taint_report_to_dict,
            from_payload=art.taint_report_from_dict,
        ),
        Stage(
            name="volumes",
            inputs=("taint",),
            description="symbolic volumes + dependency classes (4.2-4.3, A2)",
            compute=lambda c, a: run_volumes_stage(c.program(), a["taint"]),
            config=lambda c: {"program": c.program_fingerprint()},
            to_payload=_volumes_payload,
            from_payload=_volumes_from_payload,
        ),
        Stage(
            name="classify",
            inputs=("static", "taint"),
            description="two-phase function classification (Table 2)",
            compute=lambda c, a: run_classify_stage(
                c.program(), a["static"], a["taint"]
            ),
            config=lambda c: {"program": c.program_fingerprint()},
            to_payload=art.classification_to_dict,
            from_payload=art.classification_from_dict,
        ),
        Stage(
            name="design",
            inputs=("taint", "volumes"),
            description="taint-informed experiment design (A1/A2)",
            compute=lambda c, a: run_design_stage(
                c.design_strategy,
                c.parameter_values,
                a["taint"],
                a["volumes"][1],
                a["volumes"][0],
            ),
            config=lambda c: {
                "values": _values_repr(c.parameter_values),
                "strategy": DESIGN_REGISTRY.identity(c.design_strategy),
            },
            to_payload=art.design_to_dict,
            from_payload=art.design_from_dict,
        ),
        Stage(
            name="plan",
            inputs=("taint", "static"),
            description="selective instrumentation plan (A3)",
            compute=lambda c, a: run_plan_stage(
                c.mode, c.program(), a["taint"], a["static"]
            ),
            config=lambda c: {
                "program": c.program_fingerprint(),
                "mode": c.mode.value,
            },
            to_payload=art.plan_to_dict,
            from_payload=art.plan_from_dict,
        ),
        Stage(
            name="measure",
            inputs=("design", "plan"),
            description="instrumented experiments with noise/contention",
            compute=lambda c, a: run_measure_stage(
                c.workload,
                a["design"].configurations,
                a["plan"],
                noise=c.noise,
                contention=c.contention,
                repetitions=c.repetitions,
                seed=c.seed,
                n_jobs=c.n_jobs,
                cache_dir=c.cache_dir,
                engine=c.engine,
                scheduler=c.scheduler,
                telemetry=c.measure_telemetry,
            ),
            config=lambda c: {
                "workload": workload_repr(c.workload),
                "program": c.program_fingerprint(),
                "noise": repr(c.noise),
                "contention": repr(c.contention),
                "repetitions": int(c.repetitions),
                "seed": int(c.seed),
                "engine": ENGINE_REGISTRY.identity(c.engine),
            },
            to_payload=_measure_payload,
            from_payload=art.measure_bundle_from_dict,
        ),
        Stage(
            name="model",
            inputs=("measure", "taint", "volumes"),
            description="hybrid PMNF modeling under taint priors (4.5)",
            compute=lambda c, a: run_model_stage(
                a["measure"][0],
                a["taint"],
                a["volumes"][0],
                modeler=c.modeler,
                compare_black_box=c.compare_black_box,
                cov_threshold=c.cov_threshold,
                model_backend=c.model_backend,
            ),
            # The backend's registry identity (import path, not just the
            # name) is part of the fingerprint — consistent with how
            # engine identity is folded into the measure/taint stages —
            # so cached model artifacts never cross search backends.
            config=lambda c: {
                "modeler": repr(c.modeler),
                "model_backend": MODEL_BACKEND_REGISTRY.identity(
                    c.model_backend or c.modeler.backend
                ),
                "compare_black_box": bool(c.compare_black_box),
                "cov_threshold": (
                    float(c.cov_threshold)
                    if c.cov_threshold is not None
                    else None
                ),
            },
            to_payload=art.models_to_dict,
            from_payload=art.models_from_dict,
        ),
        Stage(
            name="validate",
            inputs=("measure", "model", "taint"),
            description="contention detection over black-box models (C1)",
            compute=lambda c, a: run_validate_stage(
                a["measure"][0], a["model"], a["taint"]
            ),
            config=lambda c: {},
            to_payload=art.findings_to_dict,
            from_payload=art.findings_from_dict,
        ),
    )
}


# ----------------------------------------------------------------------
# the campaign


@dataclass
class Campaign:
    """A declarative, resumable end-to-end run over one workload.

    The successor of hand-wiring :class:`PerfTaintPipeline` stage calls:
    configuration is data (constructor fields or :meth:`from_spec` /
    :meth:`from_toml` mappings), execution is the stage DAG, and an
    optional *workspace* makes every stage artifact persistent and the
    whole campaign resumable.
    """

    workload: Workload
    parameter_values: Mapping[str, Sequence[float]]
    mode: InstrumentationMode = InstrumentationMode.TAINT_FILTER
    #: Registered design-strategy name (see ``repro.registry``).
    design_strategy: str = "reduced"
    library: LibraryDatabase = field(
        default_factory=lambda: MPI_DATABASE.copy()
    )
    policy: PropagationPolicy = FULL_POLICY
    noise: NoiseModel = field(default_factory=GaussianNoise)
    contention: ContentionModel = field(default_factory=NoContention)
    modeler: Modeler = field(default_factory=Modeler)
    repetitions: int = 5
    seed: int = 0
    n_jobs: int = 1
    #: Per-configuration run-cache directory (below stage granularity).
    cache_dir: "str | None" = None
    engine: str = DEFAULT_MEASUREMENT_ENGINE
    #: Execution engine for the taint stage (must declare
    #: ``supports_taint`` in the engine registry).
    taint_engine: str = DEFAULT_TAINT_ENGINE
    #: Model-search backend for the model stage (``loop`` | ``batched``);
    #: None keeps the modeler's own (``batched`` by default).
    model_backend: "str | None" = None
    compare_black_box: bool = False
    cov_threshold: "float | None" = 0.1
    #: Stage-artifact workspace; None disables persistence and resume.
    workspace: "art.ArtifactStore | str | pathlib.Path | None" = None
    #: Measure-stage executor override (e.g. the campaign service's
    #: ``BrokerScheduler``); None keeps the built-in runner routing.
    #: Schedulers are bit-identical by contract, so this field is not
    #: part of any stage fingerprint — local and distributed campaigns
    #: share cache and workspace entries.
    scheduler: "MeasureScheduler | None" = None

    def __post_init__(self) -> None:
        if isinstance(self.mode, str):
            self.mode = InstrumentationMode(self.mode)
        if isinstance(self.workspace, (str, pathlib.Path)):
            self.workspace = art.ArtifactStore(self.workspace)
        self._program = None
        self._program_fp: "str | None" = None
        #: Artifacts of the most recent :meth:`run`, keyed by stage name.
        self.artifacts: dict[str, object] = {}
        #: Stage fingerprints of the most recent :meth:`run`.
        self.fingerprints: dict[str, str] = {}
        #: Per-stage provenance of the most recent :meth:`run`:
        #: ``"computed"`` or ``"resumed"``.
        self.stage_stats: dict[str, str] = {}
        #: Measure-stage execution accounting of the most recent run
        #: (lane plan etc.); never part of any stage fingerprint.
        self.measure_telemetry: dict = {}

    # -- memoized workload state ---------------------------------------

    def program(self):
        """The workload's program, built once per campaign."""
        if self._program is None:
            self._program = self.workload.program()
        return self._program

    def program_fingerprint(self) -> str:
        """Content hash of the workload's program, computed once."""
        if self._program_fp is None:
            self._program_fp = program_hash(self.program())
        return self._program_fp

    # -- fingerprints -----------------------------------------------------

    def stage_fingerprint(
        self, stage: Stage, parents: Mapping[str, str]
    ) -> str:
        """Content fingerprint of one stage's upcoming run."""
        return art.artifact_fingerprint(
            {
                "stage": stage.name,
                "version": art.ARTIFACT_VERSION,
                "config": stage.config(self),
                "parents": {name: parents[name] for name in stage.inputs},
            }
        )

    # -- execution ---------------------------------------------------------

    def run_stage(self, stage: Stage) -> object:
        """Run (or resume) one stage, artifacts of its inputs being ready."""
        fingerprint = self.stage_fingerprint(stage, self.fingerprints)
        self.fingerprints[stage.name] = fingerprint
        if self.workspace is not None:
            payload = self.workspace.get(stage.name, fingerprint)
            if payload is not None:
                value = stage.from_payload(payload)
                self.artifacts[stage.name] = value
                self.stage_stats[stage.name] = "resumed"
                return value
        value = stage.compute(self, self.artifacts)
        self.artifacts[stage.name] = value
        self.stage_stats[stage.name] = "computed"
        if self.workspace is not None:
            self.workspace.put(
                stage.name, fingerprint, stage.to_payload(value)
            )
        return value

    def run(self):
        """Run the full DAG; returns a
        :class:`~repro.core.pipeline.PerfTaintResult`."""
        self.artifacts = {}
        self.fingerprints = {}
        self.stage_stats = {}
        self.measure_telemetry = {}
        for stage in STAGES.values():
            missing = [n for n in stage.inputs if n not in self.artifacts]
            if missing:  # pragma: no cover - graph is declared in order
                raise PipelineError(
                    stage.name,
                    "upstream artifact not available",
                    missing_artifact=missing[0],
                )
            self.run_stage(stage)
        return self.result()

    def result(self):
        """Assemble the classic result object from the stage artifacts."""
        from .pipeline import PerfTaintResult

        missing = [n for n in STAGES if n not in self.artifacts]
        if missing:
            raise PipelineError(
                "result",
                "campaign has not produced every stage artifact; "
                "call run() first",
                missing_artifact=missing[0],
            )
        volumes, dependencies = self.artifacts["volumes"]
        measurements, profiles = self.artifacts["measure"]
        return PerfTaintResult(
            static=self.artifacts["static"],
            taint=self.artifacts["taint"],
            volumes=volumes,
            dependencies=dependencies,
            classification=self.artifacts["classify"],
            design=self.artifacts["design"],
            plan=self.artifacts["plan"],
            measurements=measurements,
            profiles=profiles,
            models=self.artifacts["model"],
            contention_findings=self.artifacts["validate"],
        )

    # -- provenance ---------------------------------------------------------

    @property
    def computed_stages(self) -> tuple[str, ...]:
        """Stages the last run actually executed."""
        return tuple(
            n for n, how in self.stage_stats.items() if how == "computed"
        )

    @property
    def resumed_stages(self) -> tuple[str, ...]:
        """Stages the last run loaded from the workspace."""
        return tuple(
            n for n, how in self.stage_stats.items() if how == "resumed"
        )

    def stats_line(self) -> str:
        """One-line provenance summary of the last run."""
        return (
            f"stages: {len(self.stage_stats)} total, "
            f"{len(self.computed_stages)} computed, "
            f"{len(self.resumed_stages)} resumed"
        )

    # -- declarative construction -----------------------------------------

    #: Keys a campaign spec may contain.
    SPEC_KEYS = frozenset(
        {
            "app",
            "parameters",
            "mode",
            "design",
            "engine",
            "taint_engine",
            "model_backend",
            "jobs",
            "seed",
            "repetitions",
            "noise",
            "contention",
            "compare_black_box",
            "cov_threshold",
            "workspace",
            "cache_dir",
        }
    )

    @classmethod
    def from_spec(
        cls,
        spec: Mapping,
        workspace: "art.ArtifactStore | str | pathlib.Path | None" = None,
    ) -> "Campaign":
        """Build a campaign from a plain mapping (a parsed TOML spec).

        Required keys: ``app`` (a registered workload name) and
        ``parameters`` (name -> list of values).  Optional: ``mode``,
        ``design``, ``engine``, ``taint_engine``, ``model_backend`` (a
        registered model-search backend for the model stage),
        ``jobs``, ``seed``, ``repetitions``,
        ``noise``/``contention`` (a registered name, or a table whose
        ``model`` key names one and whose remaining keys are constructor
        arguments), ``compare_black_box``, ``cov_threshold`` (a number or
        ``"none"`` to disable the CoV screen), ``workspace``,
        ``cache_dir``.  The *workspace* argument overrides the spec key.
        """
        load_builtin_components()
        if not isinstance(spec, Mapping):
            raise CampaignSpecError(
                f"campaign spec must be a mapping, got {type(spec).__name__}"
            )
        data = dict(spec)
        unknown = sorted(set(data) - cls.SPEC_KEYS)
        if unknown:
            raise CampaignSpecError(
                f"unknown spec key(s): {', '.join(unknown)} "
                f"(valid keys: {', '.join(sorted(cls.SPEC_KEYS))})"
            )

        app = data.get("app")
        if not isinstance(app, str) or not app:
            raise CampaignSpecError("spec needs an 'app' (a workload name)")
        raw_values = data.get("parameters")
        if not isinstance(raw_values, Mapping) or not raw_values:
            raise CampaignSpecError(
                "spec needs a non-empty 'parameters' table "
                "(name -> list of values)"
            )
        values: dict[str, list[float]] = {}
        for name, entries in raw_values.items():
            if not isinstance(entries, (list, tuple)) or not entries:
                raise CampaignSpecError(
                    f"parameter '{name}' needs a non-empty value list"
                )
            try:
                values[str(name)] = [float(v) for v in entries]
            except (TypeError, ValueError):
                raise CampaignSpecError(
                    f"parameter '{name}' has non-numeric values: {entries!r}"
                ) from None

        factory = WORKLOAD_REGISTRY.get(app)
        workload = factory(parameters=tuple(values))

        mode_name = data.get("mode", InstrumentationMode.TAINT_FILTER.value)
        try:
            mode = InstrumentationMode(mode_name)
        except ValueError:
            valid = ", ".join(m.value for m in InstrumentationMode)
            raise CampaignSpecError(
                f"unknown mode {mode_name!r} (valid modes: {valid})"
            ) from None

        design = str(data.get("design", "reduced"))
        DESIGN_REGISTRY.entry(design)  # fail fast with the valid names
        engine = str(data.get("engine", DEFAULT_MEASUREMENT_ENGINE))
        ENGINE_REGISTRY.entry(engine)
        taint_engine = str(data.get("taint_engine", DEFAULT_TAINT_ENGINE))
        ENGINE_REGISTRY.entry(taint_engine)  # unknown names fail first
        if taint_engine not in shadow_capable_engines():
            raise CampaignSpecError(
                f"engine '{taint_engine}' cannot run the taint stage "
                f"(taint-capable engines: "
                f"{', '.join(shadow_capable_engines())})"
            )
        model_backend = data.get("model_backend")
        if model_backend is not None:
            model_backend = str(model_backend)
            MODEL_BACKEND_REGISTRY.entry(model_backend)  # fail fast

        cov_threshold = data.get("cov_threshold", 0.1)
        if isinstance(cov_threshold, str):
            if cov_threshold.lower() != "none":
                raise CampaignSpecError(
                    "cov_threshold must be a number or 'none', "
                    f"got {cov_threshold!r}"
                )
            cov_threshold = None
        elif cov_threshold is not None:
            try:
                cov_threshold = float(cov_threshold)
            except (TypeError, ValueError):
                raise CampaignSpecError(
                    "cov_threshold must be a number or 'none', "
                    f"got {cov_threshold!r}"
                ) from None

        if workspace is None:
            workspace = data.get("workspace")

        return cls(
            workload=workload,
            parameter_values=values,
            mode=mode,
            design_strategy=design,
            noise=_component_from_spec(
                NOISE_REGISTRY, data.get("noise", "gaussian")
            ),
            contention=_component_from_spec(
                CONTENTION_REGISTRY, data.get("contention", "none")
            ),
            repetitions=_spec_int(data, "repetitions", 5, minimum=1),
            seed=_spec_int(data, "seed", 0),
            n_jobs=_spec_int(data, "jobs", 1, minimum=1),
            cache_dir=data.get("cache_dir"),
            engine=engine,
            taint_engine=taint_engine,
            model_backend=model_backend,
            compare_black_box=bool(data.get("compare_black_box", False)),
            cov_threshold=cov_threshold,
            workspace=workspace,
        )

    @classmethod
    def from_toml(
        cls,
        path: "str | pathlib.Path",
        workspace: "art.ArtifactStore | str | pathlib.Path | None" = None,
    ) -> "Campaign":
        """Build a campaign from a TOML spec file (see :meth:`from_spec`)."""
        try:
            import tomllib
        except ModuleNotFoundError:  # Python < 3.11
            try:
                import tomli as tomllib
            except ModuleNotFoundError:
                raise CampaignSpecError(
                    "reading TOML specs needs Python >= 3.11 (stdlib "
                    "tomllib) or the 'tomli' package; alternatively parse "
                    "the file yourself and call Campaign.from_spec()"
                ) from None

        try:
            with open(path, "rb") as handle:
                data = tomllib.load(handle)
        except OSError as exc:
            raise CampaignSpecError(
                f"cannot read spec file {str(path)!r}: {exc}"
            ) from exc
        except tomllib.TOMLDecodeError as exc:
            raise CampaignSpecError(
                f"spec file {str(path)!r} is not valid TOML: {exc}"
            ) from exc
        return cls.from_spec(data, workspace=workspace)


def _spec_int(
    data: Mapping, key: str, default: int, minimum: "int | None" = None
) -> int:
    """Integer spec value with a typed error on junk (booleans included)."""
    value = data.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise CampaignSpecError(
            f"spec key '{key}' must be an integer, got {value!r}"
        )
    value = int(value)
    if minimum is not None and value < minimum:
        raise CampaignSpecError(
            f"spec key '{key}' must be >= {minimum}, got {value}"
        )
    return value


def _component_from_spec(registry: Registry, spec: object):
    """Instantiate a registered component from a spec value.

    Accepts a bare name (``"gaussian"``) or a table whose ``model`` key
    names the component and whose remaining keys are constructor
    arguments (``{model = "gaussian", relative_sigma = 0.05}``).
    """
    if isinstance(spec, str):
        return registry.create(spec)
    if isinstance(spec, Mapping):
        kwargs = dict(spec)
        name = kwargs.pop("model", None)
        if not isinstance(name, str) or not name:
            raise CampaignSpecError(
                f"a {registry.kind} table needs a 'model' key naming a "
                f"registered {registry.kind} "
                f"(registered: {', '.join(registry.names())})"
            )
        try:
            return registry.create(name, **kwargs)
        except TypeError as exc:
            raise CampaignSpecError(
                f"bad arguments for {registry.kind} '{name}': {exc}"
            ) from None
    raise CampaignSpecError(
        f"a {registry.kind} spec must be a name or a table, "
        f"got {type(spec).__name__}"
    )
