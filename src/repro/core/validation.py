"""Validity checks (paper section C).

Two detectors turn white-box knowledge into experiment diagnostics:

* **hardware contention** (C1): a function whose taint-proven parameter set
  excludes the swept parameter, yet whose statistically sound measurements
  fit an increasing model, is being perturbed by something outside the
  application code — on multi-core nodes, memory-bandwidth saturation from
  co-located ranks;
* **segmented behavior** (C2): a parameter-dependent branch that takes
  different directions across the modeling domain splits the domain into
  qualitatively different behaviors; a single PMNF cannot represent both,
  so the user should split the experiment ("ensure there is only one
  behavior present in the data").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..measure.experiment import Measurements
from ..measure.profiler import APP_KEY
from ..modeling.hypothesis import Model
from ..interp import DEFAULT_TAINT_ENGINE
from ..taint.engine import TaintEngine
from ..taint.policy import FULL_POLICY, PropagationPolicy
from ..taint.report import TaintReport
from ..taint.sources import LibraryTaintModel


@dataclass(frozen=True)
class ContentionFinding:
    """One function flagged by the contention detector."""

    function: str
    model: str
    spurious_params: frozenset[str]
    max_cov: float

    def __str__(self) -> str:
        params = ", ".join(sorted(self.spurious_params))
        return (
            f"{self.function}: model '{self.model}' depends on [{params}] "
            f"although taint analysis proves independence (max CoV "
            f"{self.max_cov:.3f}) - systemic interference (e.g. memory "
            "contention) likely"
        )


def _marginal_effect_ratio(
    measurements: Measurements,
    function: str,
    param_index: int,
    n_params: int,
) -> float:
    """F-like statistic for the marginal effect of one parameter.

    Configurations are partitioned by the values of the *other* parameters;
    within each partition the parameter of interest varies.  The statistic
    is the variance of per-configuration means across the partition,
    normalized by the variance of those means expected from repetition
    noise alone.  ~1 for a pure-noise parameter; >> 1 for a real effect.
    """
    import numpy as np

    per_fn = measurements.data.get(function, {})
    groups: dict[tuple, list[list[float]]] = {}
    for key, reps in per_fn.items():
        rest = tuple(v for i, v in enumerate(key) if i != param_index)
        groups.setdefault(rest, []).append(list(reps))
    ratios: list[float] = []
    for reps_lists in groups.values():
        if len(reps_lists) < 2:
            continue
        means = np.array([np.mean(r) for r in reps_lists])
        n_reps = min(len(r) for r in reps_lists)
        if n_reps < 2:
            continue
        sem2 = np.mean(
            [np.var(r, ddof=1) / len(r) for r in reps_lists]
        )
        across = float(np.var(means, ddof=1))
        if sem2 <= 0:
            ratios.append(float("inf") if across > 0 else 0.0)
        else:
            ratios.append(across / sem2)
    if not ratios:
        return 0.0
    return float(np.median(ratios))


def detect_contention(
    measurements: Measurements,
    models: Mapping[str, Model],
    taint: TaintReport,
    cov_threshold: float = 0.1,
    exclude_comm: bool = True,
    effect_ratio_threshold: float = 25.0,
) -> list[ContentionFinding]:
    """Flag taint-refuted parameter dependencies in fitted models.

    Three screens separate systemic interference from fitting noise:

    * CoV: only "statistically sound measurements" count (paper B1/C1);
    * the model must use a parameter taint proved irrelevant;
    * the refuted parameter must have a *real marginal effect* in the data:
      the variance of configuration means across that parameter (others
      held fixed) must exceed the repetition-noise floor by
      ``effect_ratio_threshold`` — a term merely borrowed by the regression
      for extra flexibility is a false dependency for the hybrid modeler
      to prune (B1), not evidence of contention.

    Communication routines are excluded by default: co-location
    legitimately changes their performance (paper C1: "only communication
    routines might benefit from optimized MPI operations when processes
    are co-located").
    """
    findings: list[ContentionFinding] = []
    parameters = measurements.parameters
    for fn, model in models.items():
        if fn not in measurements.data:
            continue
        cov = measurements.max_cov(fn)
        if cov > cov_threshold:
            continue
        used = model.used_parameters()
        if not used:
            continue
        # Library routines carry their own dependency records; the whole-
        # application series legitimately depends on every parameter any
        # part of the program depends on.
        if fn == APP_KEY:
            allowed = frozenset()
            for rec in taint.loop_records.values():
                allowed |= rec.params
            for rec in taint.library_records.values():
                allowed |= rec.params
        else:
            allowed = taint.function_params(fn) | taint.routine_params(fn)
            if exclude_comm and (
                taint.library_params(fn) or fn in taint.routines_called()
            ):
                continue
        spurious = used - allowed
        if not spurious:
            continue
        confirmed: set[str] = set()
        for q in spurious:
            if q not in parameters:
                continue
            ratio = _marginal_effect_ratio(
                measurements, fn, parameters.index(q), len(parameters)
            )
            if ratio >= effect_ratio_threshold:
                confirmed.add(q)
        if confirmed:
            findings.append(
                ContentionFinding(
                    function=fn,
                    model=model.format(),
                    spurious_params=frozenset(confirmed),
                    max_cov=cov,
                )
            )
    return sorted(findings, key=lambda f: f.function)


@dataclass
class SegmentFinding:
    """One branch whose direction flips across the modeling domain."""

    function: str
    branch_id: int
    params: frozenset[str]
    #: configuration (as a tuple of (name, value) pairs) -> direction taken.
    directions: dict[tuple[tuple[str, float], ...], frozenset[bool]] = field(
        default_factory=dict
    )

    @property
    def is_segmented(self) -> bool:
        """True when at least two configurations disagree on direction."""
        seen: set[frozenset[bool]] = set(self.directions.values())
        if len(seen) > 1:
            return True
        return any(len(d) > 1 for d in seen)

    def boundary(self) -> str:
        """Human-readable summary of where behavior changes."""
        parts = []
        for key, dirs in sorted(self.directions.items()):
            cfg = ", ".join(f"{k}={v:g}" for k, v in key)
            taken = "/".join(
                "then" if d else "else" for d in sorted(dirs, reverse=True)
            )
            parts.append(f"({cfg}) -> {taken}")
        return "; ".join(parts)


def detect_segmented_behavior(
    program,
    configs: Sequence[Mapping[str, float]],
    setup_factory,
    sources: Mapping[str, str],
    library_taint: LibraryTaintModel | None = None,
    policy: PropagationPolicy = FULL_POLICY,
    taint_engine: str = DEFAULT_TAINT_ENGINE,
) -> list[SegmentFinding]:
    """Run cheap taint executions across *configs* and flag parameter-
    dependent branches whose direction changes (paper C2).

    ``setup_factory(config)`` must return a
    :class:`~repro.measure.experiment.RunSetup` for the configuration
    (the workload's ``setup`` method).  Use scaled-down configurations:
    only the branch-relevant parameters need their real values.
    *taint_engine* picks the executing engine (built-ins bit-identical).
    """
    by_branch: dict[tuple[str, int], SegmentFinding] = {}
    for config in configs:
        setup = setup_factory(config)
        engine = TaintEngine(
            program,
            runtime=setup.runtime,
            config=setup.exec_config,
            policy=policy,
            library_taint=library_taint,
            engine=taint_engine,
        )
        result = engine.analyze(setup.args, dict(sources), entry=setup.entry)
        key_cfg = tuple(sorted((k, float(v)) for k, v in config.items()))
        for (_cp, fn, bid), rec in result.report.branch_records.items():
            if not rec.params:
                continue
            finding = by_branch.get((fn, bid))
            if finding is None:
                finding = SegmentFinding(fn, bid, rec.params)
                by_branch[(fn, bid)] = finding
            finding.params |= rec.params
            prev = finding.directions.get(key_cfg, frozenset())
            finding.directions[key_cfg] = prev | rec.directions
    return sorted(
        (f for f in by_branch.values() if f.is_segmented),
        key=lambda f: (f.function, f.branch_id),
    )


def poor_fit_functions(
    models: Mapping[str, Model], smape_threshold: float = 0.15
) -> dict[str, float]:
    """Functions whose best model still fits poorly — the complementary C2
    signal that "the parametric models estimated by Extra-P cannot
    represent the function accurately unless more measurement data is
    provided"."""
    return {
        fn: model.stats.smape
        for fn, model in models.items()
        if model.stats.smape > smape_threshold
    }
