"""Taint-informed experiment design (paper sections A1/A2).

Three reductions over the naive all-combinations design:

* **parameter pruning** (A1): parameters affecting no loop and no library
  call are dropped entirely;
* **dimension collapsing** (A2, the LULESH ``iters`` corner case): a
  parameter that appears only as a single multiplicative factor on the
  whole program scales every model linearly; it "does not grant useful
  insights" and can be fixed to one value;
* **additive designs** (A2): when all cross-parameter dependencies are
  additive, one-at-a-time sweeps replace the full factorial.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..measure.experiment import full_factorial, one_at_a_time
from ..registry import register_design
from ..taint.report import TaintReport
from ..volume.depclass import ProgramDependencies
from ..volume.symbolic import Volume


@dataclass
class DesignDecision:
    """The reduced design plus an explanation of every reduction."""

    configurations: list[dict[str, float]]
    kept_parameters: tuple[str, ...]
    pruned_parameters: tuple[str, ...] = ()
    collapsed_parameters: tuple[str, ...] = ()
    strategy: str = "full-factorial"
    naive_size: int = 0
    notes: list[str] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.configurations)

    @property
    def savings_fraction(self) -> float:
        """Fraction of naive experiments avoided."""
        if self.naive_size == 0:
            return 0.0
        return 1.0 - self.size / self.naive_size


def prune_parameters(
    parameters: Sequence[str], taint: TaintReport
) -> tuple[list[str], list[str]]:
    """Split *parameters* into (affecting, non-affecting) by taint facts."""
    kept: list[str] = []
    pruned: list[str] = []
    for param in parameters:
        if taint.functions_affected_by(param):
            kept.append(param)
        else:
            pruned.append(param)
    return kept, pruned


def linear_global_factors(
    program_volume: Volume,
    parameters: Sequence[str],
    taint: TaintReport | None = None,
) -> list[str]:
    """Parameters matching the LULESH ``iters`` pattern (paper A2).

    "The taint-based modeling detects a single instance of the parameter
    iters in the main loop of the program.  Through that we recover a
    multiplicative dependency with all other model parameters."  The
    criterion: the parameter

    * affects exactly one loop in the whole program (a single sink —
      checked against the taint report when available), and
    * co-occurs multiplicatively with *every other* modeled parameter that
      appears in the program volume (the single loop encloses their
      effects).

    Such a parameter scales every model linearly and "does not grant
    useful insights": it can be fixed to one value during modeling.
    """
    out: list[str] = []
    groups = program_volume.param_groups()
    if not groups:
        return out
    present = program_volume.params
    for param in parameters:
        if param not in present:
            continue
        if taint is not None and len(taint.loops_affected_by(param)) != 1:
            continue
        others = [
            o for o in parameters if o != param and o in present
        ]
        if not others:
            continue
        if all(
            any(param in g and o in g for g in groups) for o in others
        ):
            out.append(param)
    return out


def design_experiments(
    parameter_values: Mapping[str, Sequence[float]],
    taint: TaintReport,
    deps: ProgramDependencies,
    program_volume: Volume,
    collapse_linear: bool = True,
) -> DesignDecision:
    """Produce the reduced experiment design.

    ``parameter_values`` lists candidate values per parameter; reductions
    are applied in order: pruning, linear-factor collapsing, then the
    additive-only strategy choice.
    """
    parameters = list(parameter_values)
    naive = 1
    for values in parameter_values.values():
        naive *= max(1, len(values))

    kept, pruned = prune_parameters(parameters, taint)
    notes = []
    if pruned:
        notes.append(
            f"pruned parameters with no effect on any loop or library "
            f"call: {', '.join(pruned)}"
        )

    # Collapsing only pays when it reduces dimensionality below the
    # practical multi-parameter limit (the paper models two parameters and
    # fixes iters; it would not collapse one of the two parameters of
    # interest).
    collapsed: list[str] = []
    if collapse_linear and len(kept) > 2:
        for param in linear_global_factors(program_volume, kept, taint):
            if len(kept) <= 1:
                break
            kept.remove(param)
            collapsed.append(param)
        if collapsed:
            notes.append(
                "collapsed pure linear global factors (fixed to their "
                f"smallest value): {', '.join(collapsed)}"
            )

    reduced_values = {p: list(parameter_values[p]) for p in kept}
    fixed = {
        p: float(min(parameter_values[p]))
        for p in pruned + collapsed
        if parameter_values[p]
    }

    # Strategy: additive-only dependency structure admits one-at-a-time.
    program_dep = deps.program
    additive = program_dep is not None and program_dep.additive_only
    if additive and len(kept) > 1:
        configs = one_at_a_time(reduced_values)
        strategy = "one-at-a-time (additive-only dependencies)"
        notes.append(
            "all cross-parameter dependencies are additive: single-"
            "parameter sweeps suffice (paper A2)"
        )
    else:
        configs = full_factorial(reduced_values) if reduced_values else [{}]
        strategy = "full-factorial"

    for cfg in configs:
        cfg.update(fixed)

    return DesignDecision(
        configurations=configs,
        kept_parameters=tuple(kept),
        pruned_parameters=tuple(pruned),
        collapsed_parameters=tuple(collapsed),
        strategy=strategy,
        naive_size=naive,
        notes=notes,
    )


# ----------------------------------------------------------------------
# registered design strategies (the campaign design stage's plug point)
#
# Every strategy shares one signature:
# ``(parameter_values, taint, deps, program_volume) -> DesignDecision``.
# Strategies ignoring the analysis artifacts still accept them so user
# strategies can consume as much white-box knowledge as they want.


@register_design(
    "reduced",
    help="taint-informed reductions: pruning, collapsing, additive sweeps",
)
def reduced_design(
    parameter_values: Mapping[str, Sequence[float]],
    taint: TaintReport,
    deps: ProgramDependencies,
    program_volume: Volume,
) -> DesignDecision:
    """The paper's A1/A2 design (the default)."""
    return design_experiments(parameter_values, taint, deps, program_volume)


@register_design(
    "full-factorial", help="all value combinations, no reductions"
)
def full_factorial_design(
    parameter_values: Mapping[str, Sequence[float]],
    taint: TaintReport,
    deps: ProgramDependencies,
    program_volume: Volume,
) -> DesignDecision:
    """The naive all-combinations baseline."""
    configs = full_factorial(parameter_values)
    return DesignDecision(
        configurations=configs,
        kept_parameters=tuple(parameter_values),
        strategy="full-factorial",
        naive_size=len(configs),
    )


@register_design(
    "one-at-a-time", help="single-parameter sweeps around the baseline"
)
def one_at_a_time_design(
    parameter_values: Mapping[str, Sequence[float]],
    taint: TaintReport,
    deps: ProgramDependencies,
    program_volume: Volume,
) -> DesignDecision:
    """Unconditional one-at-a-time sweeps (sound when dependencies are
    additive-only; the ``reduced`` strategy checks that precondition)."""
    naive = 1
    for values in parameter_values.values():
        naive *= max(1, len(values))
    configs = one_at_a_time(parameter_values)
    return DesignDecision(
        configurations=configs,
        kept_parameters=tuple(parameter_values),
        strategy="one-at-a-time",
        naive_size=naive,
    )
