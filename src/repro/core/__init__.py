"""Perf-Taint core: the hybrid tainted-performance-modeling pipeline."""

from .annotations import register_parameters, registered_parameters
from .artifacts import ArtifactStore, artifact_fingerprint
from .classify import Classification, classify_functions, table3_counts
from .experiment_design import (
    DesignDecision,
    design_experiments,
    linear_global_factors,
    prune_parameters,
)
from .hybrid import HybridModeler, ModelComparison
from .pipeline import PerfTaintPipeline, PerfTaintResult, core_hours
from .stages import STAGES, Campaign, Stage
from .report import (
    format_table,
    render_models,
    render_summary,
    render_table2,
    render_table3,
)
from .validation import (
    ContentionFinding,
    SegmentFinding,
    detect_contention,
    detect_segmented_behavior,
    poor_fit_functions,
)

__all__ = [
    "ArtifactStore",
    "Campaign",
    "Classification",
    "ContentionFinding",
    "DesignDecision",
    "HybridModeler",
    "ModelComparison",
    "PerfTaintPipeline",
    "PerfTaintResult",
    "STAGES",
    "SegmentFinding",
    "Stage",
    "artifact_fingerprint",
    "classify_functions",
    "core_hours",
    "design_experiments",
    "detect_contention",
    "detect_segmented_behavior",
    "format_table",
    "linear_global_factors",
    "poor_fit_functions",
    "prune_parameters",
    "register_parameters",
    "registered_parameters",
    "render_models",
    "render_summary",
    "render_table2",
    "render_table3",
    "table3_counts",
]
