"""The hybrid modeler: taint priors over the black-box search (paper 4.5).

"We use the results of the taint analysis to minimize the negative effects
of measurement noise.  The model of computational volume is applied to
restrict the search space by removing parameters that could not affect
performance. ... The immediate effect is pruning out parametric models for
constant functions. ... The second important result is the removal of false
dependencies in performance models."

Per function, the prior is assembled from:

* the taint report — the set of parameters that can affect the function at
  all (loops + library calls); empty set forces a constant model;
* the volume analysis — which parameter pairs may multiply (nested loops),
  everything else restricted to additive terms;
* the library database — parameters entering through MPI calls are treated
  as one multiplicative group (a collective's cost is a product of a
  p-term and a message-size term, section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from itertools import combinations

from ..measure.experiment import Measurements
from ..measure.profiler import APP_KEY
from ..modeling.hypothesis import Model
from ..modeling.modeler import Modeler, SearchPrior
from ..taint.report import TaintReport
from ..volume.depclass import classify_volume
from ..volume.loopnest import VolumeReport


@dataclass
class ModelComparison:
    """Hybrid vs black-box model of one function."""

    function: str
    hybrid: Model
    black_box: Model | None = None
    prior: SearchPrior | None = None

    @property
    def false_dependencies(self) -> frozenset[str]:
        """Parameters the black-box model uses although taint excluded them."""
        if self.black_box is None or self.prior is None:
            return frozenset()
        allowed = (
            self.prior.allowed_params
            if self.prior.allowed_params is not None
            else None
        )
        if self.prior.forced_constant:
            allowed = frozenset()
        if allowed is None:
            return frozenset()
        return self.black_box.used_parameters() - allowed


@dataclass
class HybridModeler:
    """Fits per-function models under taint priors.

    *backend*, when set, overrides the wrapped modeler's model-search
    backend (``loop`` | ``batched``); the per-function fits share that
    backend's term-column and factorization caches, so every function
    measured at the same configuration matrix reuses one set of
    factorized hypothesis classes.
    """

    modeler: Modeler = field(default_factory=Modeler)
    #: Registered model-search backend name; None keeps the modeler's.
    backend: "str | None" = None

    def __post_init__(self) -> None:
        if self.backend is not None and self.backend != self.modeler.backend:
            self.modeler = replace(self.modeler, backend=self.backend)

    # ------------------------------------------------------------------

    def prior_for(
        self,
        function: str,
        taint: TaintReport,
        volumes: VolumeReport | None = None,
    ) -> SearchPrior:
        """Assemble the white-box prior of one function."""
        loop_params = taint.function_loop_params(function)
        lib_params = taint.library_params(function)
        params = loop_params | lib_params
        if not params:
            return SearchPrior.constant()

        pairs: set[frozenset[str]] = set()
        if volumes is not None and function in volumes.exclusive:
            dep = classify_volume(volumes.exclusive[function])
            pairs |= set(dep.multiplicative_pairs)
        # Library-call parameters form one conservative multiplicative
        # group (collective cost = f(p) * g(message size)).
        for a, b in combinations(sorted(lib_params), 2):
            pairs.add(frozenset({a, b}))
        return SearchPrior(
            allowed_params=frozenset(params),
            multiplicative_pairs=frozenset(pairs),
        )

    def app_prior(
        self, taint: TaintReport, volumes: VolumeReport | None = None
    ) -> SearchPrior:
        """Prior for the whole-application model: program volume deps."""
        if volumes is None:
            return SearchPrior.black_box()
        dep = classify_volume(volumes.program)
        params = dep.params | frozenset(
            p
            for rec in taint.library_records.values()
            for p in rec.params
        )
        if not params:
            return SearchPrior.constant()
        return SearchPrior(
            allowed_params=frozenset(params),
            multiplicative_pairs=None,
        )

    # ------------------------------------------------------------------

    def model_function(
        self,
        function: str,
        measurements: Measurements,
        taint: TaintReport,
        volumes: VolumeReport | None = None,
        compare_black_box: bool = False,
    ) -> ModelComparison:
        """Fit the hybrid (and optionally black-box) model of one function."""
        X, y = measurements.points(function)
        parameters = measurements.parameters
        if function == APP_KEY:
            prior = self.app_prior(taint, volumes)
        else:
            prior = self.prior_for(function, taint, volumes)
        hybrid = self.modeler.model(X, y, parameters, prior)
        black_box = (
            self.modeler.model(X, y, parameters, SearchPrior.black_box())
            if compare_black_box
            else None
        )
        return ModelComparison(function, hybrid, black_box, prior)

    def model_all(
        self,
        measurements: Measurements,
        taint: TaintReport,
        volumes: VolumeReport | None = None,
        functions: "list[str] | None" = None,
        compare_black_box: bool = False,
        cov_threshold: float | None = 0.1,
        include_app: bool = True,
    ) -> dict[str, ModelComparison]:
        """Fit models for all (reliable) measured functions.

        ``cov_threshold`` applies the paper's B1 screening; pass None to
        model everything.
        """
        if functions is None:
            if cov_threshold is not None:
                functions = measurements.reliable_functions(cov_threshold)
            else:
                functions = measurements.functions()
        out: dict[str, ModelComparison] = {}
        for fn in functions:
            out[fn] = self.model_function(
                fn, measurements, taint, volumes, compare_black_box
            )
        if include_app and APP_KEY in measurements.data:
            out[APP_KEY] = self.model_function(
                APP_KEY, measurements, taint, volumes, compare_black_box
            )
        return out

    # ------------------------------------------------------------------

    @staticmethod
    def false_dependency_report(
        comparisons: "dict[str, ModelComparison]",
    ) -> dict[str, frozenset[str]]:
        """Functions whose black-box models contain taint-refuted
        parameters (the models the hybrid approach corrects; paper B1:
        '77% models previously indicating performance effects')."""
        return {
            fn: cmp.false_dependencies
            for fn, cmp in comparisons.items()
            if cmp.false_dependencies
        }
