"""Parameter annotations.

"The only user action is the annotation of each input parameter with one
line of code in the program source" (paper section 5):

    register_variable(&opts.nx, "size");

Here the analogue attaches a mapping from entry-function arguments to label
names onto the program's metadata, where the pipeline picks it up.
"""

from __future__ import annotations

from typing import Mapping

from ..errors import IRError
from ..ir.program import Program

METADATA_KEY = "perf_taint.parameters"


def register_parameters(
    program: Program, mapping: Mapping[str, str]
) -> Program:
    """Mark entry arguments as performance parameters.

    *mapping* maps entry-argument names to label names (often identical).
    Returns the program for chaining.
    """
    entry = program.function(program.entry)
    for arg in mapping:
        if arg not in entry.params:
            raise IRError(
                f"cannot register '{arg}': not an argument of entry "
                f"function '{program.entry}'"
            )
    existing = dict(program.metadata.get(METADATA_KEY, {}))
    existing.update(mapping)
    program.metadata[METADATA_KEY] = existing
    return program


def registered_parameters(program: Program) -> dict[str, str]:
    """The argument -> label mapping registered on *program* (may be {})."""
    return dict(program.metadata.get(METADATA_KEY, {}))
