"""The Perf-Taint pipeline (paper Figure 2).

Orchestrates the four stages the paper improves with taint information:

1. **parameter identification** — static pruning plus a dynamic taint run
   on a small representative configuration;
2. **reduced experiment design** — parameter pruning, linear-factor
   collapsing, additive-only sweeps;
3. **instrumented experiments** — selective instrumentation, measurement
   with noise and contention;
4. **model generation** — hybrid PMNF modeling with taint priors, plus
   validity checks.

Each stage is a separate method so benchmarks and examples can run any
prefix; :meth:`PerfTaintPipeline.run` chains them all.

Since the Campaign API redesign this class is a thin wrapper: the stage
*computations* live in :mod:`repro.core.stages` (shared with
:class:`~repro.core.stages.Campaign`, which adds artifact persistence and
resume), and :meth:`run` simply executes a workspace-less campaign — the
two entry points are bit-identical by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import math

from ..interp import DEFAULT_MEASUREMENT_ENGINE, DEFAULT_TAINT_ENGINE
from ..libdb.database import LibraryDatabase
from ..libdb.mpi_models import MPI_DATABASE
from ..measure.experiment import ConfigKey, Measurements, Workload
from ..measure.instrumentation import InstrumentationMode, InstrumentationPlan
from ..measure.noise import GaussianNoise, NoiseModel
from ..measure.profiler import ProfileResult
from ..modeling.modeler import Modeler
from ..mpisim.contention import ContentionModel, NoContention
from ..staticanalysis.prune import StaticReport
from ..taint.policy import FULL_POLICY, PropagationPolicy
from ..taint.report import TaintReport
from ..volume.depclass import ProgramDependencies
from ..volume.loopnest import VolumeReport
from .classify import Classification
from .experiment_design import DesignDecision, design_experiments
from .hybrid import ModelComparison
from .stages import (
    Campaign,
    run_classify_stage,
    run_measure_stage,
    run_model_stage,
    run_plan_stage,
    run_static_stage,
    run_taint_stage,
    run_validate_stage,
    run_volumes_stage,
)
from .validation import ContentionFinding


@dataclass
class PerfTaintResult:
    """Everything the pipeline produced."""

    static: StaticReport
    taint: TaintReport
    volumes: VolumeReport
    dependencies: ProgramDependencies
    classification: Classification
    design: DesignDecision
    plan: InstrumentationPlan
    measurements: Measurements
    profiles: dict[ConfigKey, ProfileResult]
    models: dict[str, ModelComparison]
    contention_findings: list[ContentionFinding] = field(default_factory=list)


@dataclass
class PerfTaintPipeline:
    """Configurable end-to-end Perf-Taint run over one workload."""

    workload: Workload
    #: Each pipeline gets its own copy: LibraryDatabase is mutable
    #: (``register``), and sharing the module-level MPI_DATABASE instance
    #: would let one run's registrations leak into concurrent runs.
    library: LibraryDatabase = field(default_factory=lambda: MPI_DATABASE.copy())
    policy: PropagationPolicy = FULL_POLICY
    noise: NoiseModel = field(default_factory=GaussianNoise)
    contention: ContentionModel = field(default_factory=NoContention)
    modeler: Modeler = field(default_factory=Modeler)
    repetitions: int = 5
    seed: int = 0
    #: Worker processes for the instrumented-experiments stage (1 = the
    #: in-process serial runner).  Results are bit-identical for every
    #: value: RNG streams are key-derived and merging is design-ordered.
    n_jobs: int = 1
    #: Run-cache directory; None disables caching.
    cache_dir: str | None = None
    #: Execution engine for the measurement stage ("compiled" | "tree" |
    #: "vectorized" — batch-capable engines route to the batched runner).
    engine: str = DEFAULT_MEASUREMENT_ENGINE
    #: Execution engine for the taint stage.  Any registered engine whose
    #: entry declares ``supports_taint``; the built-ins are bit-identical
    #: (the compiled engine executes taint through the same pre-resolved
    #: slots it uses for values).
    taint_engine: str = DEFAULT_TAINT_ENGINE
    #: Model-search backend for the model stage ("batched" | "loop");
    #: None keeps the modeler's own choice.  The built-ins select
    #: identical models; "batched" fits every hypothesis class with one
    #: stacked LAPACK call (see benchmarks/bench_model_speedup.py).
    model_backend: str | None = None

    def __post_init__(self) -> None:
        self._program = None

    def program(self):
        """The workload's program, built once per pipeline.

        Workload implementations may or may not memoize their own
        ``program()``; the pipeline must not depend on that.
        """
        if self._program is None:
            self._program = self.workload.program()
        return self._program

    # ------------------------------------------------------------------
    # stage 1: analysis

    def analyze_static(self) -> StaticReport:
        """Compile-time phase (paper 5.1)."""
        return run_static_stage(self.program(), self.library)

    def analyze_taint(self) -> TaintReport:
        """Dynamic taint run on the workload's representative config."""
        return run_taint_stage(
            self.workload,
            self.program(),
            self.policy,
            self.library,
            engine=self.taint_engine,
        )

    def analyze(
        self,
    ) -> tuple[StaticReport, TaintReport, VolumeReport, ProgramDependencies, Classification]:
        """Run the full analysis stage."""
        static = self.analyze_static()
        taint = self.analyze_taint()
        volumes, deps = run_volumes_stage(self.program(), taint)
        classification = run_classify_stage(self.program(), static, taint)
        return static, taint, volumes, deps, classification

    # ------------------------------------------------------------------
    # stage 2: design

    def design(
        self,
        parameter_values: Mapping[str, Sequence[float]],
        taint: TaintReport,
        deps: ProgramDependencies,
        volumes: VolumeReport,
    ) -> DesignDecision:
        """Taint-informed experiment design (paper A1/A2)."""
        return design_experiments(
            parameter_values, taint, deps, volumes.program
        )

    # ------------------------------------------------------------------
    # stage 3: measurement

    def plan_for(
        self,
        mode: InstrumentationMode,
        taint: TaintReport | None = None,
        static: StaticReport | None = None,
    ) -> InstrumentationPlan:
        """Instrumentation plan for the requested mode.

        Raises :class:`~repro.errors.PipelineError` when the taint-filter
        mode is requested without a taint report.
        """
        return run_plan_stage(mode, self.program(), taint, static)

    def measure(
        self,
        design: Sequence[Mapping[str, float]],
        plan: InstrumentationPlan,
    ) -> tuple[Measurements, dict[ConfigKey, ProfileResult]]:
        """Run the instrumented experiments.

        Uses the process-pool runner when ``n_jobs > 1`` or a run cache is
        configured; the plain serial runner otherwise.  Both produce
        bit-identical measurements.
        """
        return run_measure_stage(
            self.workload,
            design,
            plan,
            noise=self.noise,
            contention=self.contention,
            repetitions=self.repetitions,
            seed=self.seed,
            n_jobs=self.n_jobs,
            cache_dir=self.cache_dir,
            engine=self.engine,
        )

    # ------------------------------------------------------------------
    # stage 4: modeling and validation

    def model(
        self,
        measurements: Measurements,
        taint: TaintReport,
        volumes: VolumeReport | None = None,
        compare_black_box: bool = False,
        cov_threshold: float | None = 0.1,
    ) -> dict[str, ModelComparison]:
        """Hybrid model generation (paper 4.5)."""
        return run_model_stage(
            measurements,
            taint,
            volumes,
            modeler=self.modeler,
            compare_black_box=compare_black_box,
            cov_threshold=cov_threshold,
            model_backend=self.model_backend,
        )

    def validate(
        self,
        measurements: Measurements,
        models: Mapping[str, ModelComparison],
        taint: TaintReport,
    ) -> list[ContentionFinding]:
        """Contention detection over black-box models (paper C1).

        The check runs on the *black-box* side of each comparison when
        present (the hybrid model already excludes refuted parameters);
        a finding means the measurements contradict the code.
        """
        return run_validate_stage(measurements, models, taint)

    # ------------------------------------------------------------------

    def campaign(
        self,
        parameter_values: Mapping[str, Sequence[float]],
        mode: InstrumentationMode = InstrumentationMode.TAINT_FILTER,
        compare_black_box: bool = False,
        cov_threshold: float | None = 0.1,
    ) -> Campaign:
        """The equivalent :class:`Campaign` of one :meth:`run` call."""
        campaign = Campaign(
            workload=self.workload,
            parameter_values=parameter_values,
            mode=mode,
            library=self.library,
            policy=self.policy,
            noise=self.noise,
            contention=self.contention,
            modeler=self.modeler,
            repetitions=self.repetitions,
            seed=self.seed,
            n_jobs=self.n_jobs,
            cache_dir=self.cache_dir,
            engine=self.engine,
            taint_engine=self.taint_engine,
            model_backend=self.model_backend,
            compare_black_box=compare_black_box,
            cov_threshold=cov_threshold,
        )
        # Share the pipeline's memoized program: stage methods and run()
        # must build the workload program once per pipeline, not once per
        # entry point.
        campaign._program = self.program()
        return campaign

    def run(
        self,
        parameter_values: Mapping[str, Sequence[float]],
        mode: InstrumentationMode = InstrumentationMode.TAINT_FILTER,
        compare_black_box: bool = False,
        cov_threshold: float | None = 0.1,
    ) -> PerfTaintResult:
        """Full pipeline: analyze, design, measure, model, validate.

        Equivalent to running the campaign stage DAG without a workspace
        (and verified to be bit-identical to it).
        """
        return self.campaign(
            parameter_values,
            mode=mode,
            compare_black_box=compare_black_box,
            cov_threshold=cov_threshold,
        ).run()


def core_hours(
    profiles: Mapping[ConfigKey, ProfileResult],
    parameters: Sequence[str],
    ranks_param: str = "p",
    time_unit_seconds: float = 1e-9,
) -> float:
    """Aggregate experiment cost in core-hours (paper section A3's
    20483 -> 547 comparison): measured time x ranks, summed over runs."""
    total = 0.0
    idx = list(parameters).index(ranks_param) if ranks_param in parameters else None
    for key, profile in profiles.items():
        ranks = key[idx] if idx is not None else 1.0
        seconds = profile.total_time() * time_unit_seconds
        total += seconds * ranks / 3600.0
    if math.isnan(total):  # pragma: no cover - defensive
        raise ValueError("core-hour aggregation produced NaN")
    return total
