"""Human-readable rendering of pipeline results (Tables 2/3-style)."""

from __future__ import annotations

from typing import Mapping, Sequence

from ..measure.profiler import APP_KEY
from .classify import Classification
from .hybrid import ModelComparison
from .pipeline import PerfTaintResult


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Plain-text table with right-aligned numeric columns."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        line = "  ".join(c.rjust(w) for c, w in zip(row, widths))
        lines.append(line)
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def render_table2(name: str, classification: Classification) -> str:
    """Table 2-style overview of one workload."""
    row = classification.table2_row()
    rows = [
        ("Functions", row["functions"]),
        ("Pruned statically", row["pruned_statically"]),
        ("Pruned dynamically", row["pruned_dynamically"]),
        ("Kernels", row["kernels"]),
        ("Comm. routines", row["comm_routines"]),
        ("MPI functions used", row["mpi_functions"]),
        ("Loops", row["loops"]),
        ("Loops pruned statically", row["loops_pruned_statically"]),
        ("Loops relevant", row["loops_relevant"]),
        (
            "Constant fraction",
            f"{classification.constant_fraction * 100:.1f}%",
        ),
    ]
    return f"== {name} ==\n" + format_table(("metric", "value"), rows)


def render_table3(
    name: str, counts: Mapping[str, Mapping[str, int]]
) -> str:
    """Table 3-style per-parameter coverage."""
    params = [p for p in counts if p != "combined"] + ["combined"]
    rows = [
        (p, counts[p]["functions"], counts[p]["loops"]) for p in params
    ]
    return f"== {name}: parameter coverage ==\n" + format_table(
        ("parameter", "functions", "loops"), rows
    )


def render_models(
    models: Mapping[str, ModelComparison], max_rows: int | None = None
) -> str:
    """Fitted models, hybrid vs black-box side by side."""
    rows = []
    for fn in sorted(models):
        cmp = models[fn]
        label = "<app>" if fn == APP_KEY else fn
        bb = cmp.black_box.format() if cmp.black_box else "-"
        rows.append((label, cmp.hybrid.format(), bb))
        if max_rows is not None and len(rows) >= max_rows:
            break
    return format_table(("function", "hybrid model", "black-box model"), rows)


def render_summary(name: str, result: PerfTaintResult) -> str:
    """One-page pipeline summary."""
    parts = [render_table2(name, result.classification)]
    parts.append(
        f"\nDesign: {result.design.strategy}, "
        f"{result.design.size} configurations "
        f"(naive: {result.design.naive_size}, "
        f"saved {result.design.savings_fraction * 100:.1f}%)"
    )
    if result.design.notes:
        parts.extend(f"  - {note}" for note in result.design.notes)
    parts.append(
        f"Instrumentation: {result.plan.mode.value}, "
        f"{len(result.plan)} functions instrumented"
    )
    parts.append("\n" + render_models(result.models, max_rows=30))
    if result.contention_findings:
        parts.append("\nValidity findings:")
        parts.extend(f"  ! {f}" for f in result.contention_findings)
    if result.taint.warnings:
        parts.append("\nTaint warnings:")
        parts.extend(f"  * {w}" for w in result.taint.warnings)
    return "\n".join(parts)
